"""Message and byte complexity across topologies (Table 1 evidence, §1).

The paper's Table 1 contrasts communication patterns; here the contrast is
measured: messages and leader-bytes per committed block for PBFT (clique,
O(n²)), HotStuff (star, O(n)) and Kauri (tree, O(n) total but O(fanout)
per node), across system sizes.
"""

from conftest import SCALE, run_once

from repro.analysis import format_table
from repro.runtime.cluster import Cluster

SIZES = (7, 16, 31)
MODES = ("pbft", "hotstuff-secp", "kauri")


def sweep():
    rows = {}
    for n in SIZES:
        for mode in MODES:
            cluster = Cluster(n=n, mode=mode, scenario="national")
            cluster.start()
            cluster.run(duration=60.0 * max(SCALE, 0.2), max_commits=40)
            cluster.check_agreement()
            blocks = max(1, cluster.metrics.committed_blocks)
            root = cluster.policy.leader_of(0)
            rows[(n, mode)] = (
                cluster.network.messages_sent / blocks,
                cluster.network.nic(root).bytes_sent / blocks,
                blocks,
            )
    return rows


def test_message_complexity_by_topology(benchmark, save_table):
    data = run_once(benchmark, sweep)
    rows = [
        (n, mode, round(msgs, 1), round(leader_bytes / 1024, 1), blocks)
        for (n, mode), (msgs, leader_bytes, blocks) in data.items()
    ]
    save_table(
        "message_complexity",
        format_table(
            ("N", "System", "Msgs/block", "Leader KB/block", "Blocks"),
            rows,
            title="Message complexity per committed block (national)",
        ),
    )

    def msgs(mode, n):
        return data[(n, mode)][0]

    def leader_kb(mode, n):
        return data[(n, mode)][1]

    # PBFT messages grow super-linearly; HotStuff's and Kauri's linearly
    for lo, hi in ((7, 16), (16, 31)):
        scale = hi / lo
        assert msgs("pbft", hi) / msgs("pbft", lo) > 1.4 * scale
        assert msgs("hotstuff-secp", hi) / msgs("hotstuff-secp", lo) < 1.6 * scale
        assert msgs("kauri", hi) / msgs("kauri", lo) < 1.6 * scale
    # the tree bounds the *leader's* bytes by its fanout, not by N:
    # HotStuff's leader ships ~(N-1)/fanout times more bytes than Kauri's
    for n in (16, 31):
        assert leader_kb("hotstuff-secp", n) > 2 * leader_kb("kauri", n)
