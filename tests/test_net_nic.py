"""Unit tests for the NIC serialization model."""

import math

import pytest

from repro.errors import NetworkError
from repro.net import Nic
from repro.sim import Simulator


def test_single_transmit_takes_size_over_bandwidth():
    sim = Simulator()
    nic = Nic(sim)
    done = []
    # 1250 bytes at 10 kb/s = 1250*8/10000 = 1.0 s
    nic.transmit(1250, 10_000.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(1.0)]


def test_back_to_back_transmits_serialize_fifo():
    sim = Simulator()
    nic = Nic(sim)
    done = []
    nic.transmit(1250, 10_000.0, lambda: done.append(("a", sim.now)))
    nic.transmit(1250, 10_000.0, lambda: done.append(("b", sim.now)))
    nic.transmit(2500, 10_000.0, lambda: done.append(("c", sim.now)))
    sim.run()
    assert done == [
        ("a", pytest.approx(1.0)),
        ("b", pytest.approx(2.0)),
        ("c", pytest.approx(4.0)),
    ]


def test_sending_time_matches_paper_formula():
    """§4.3: sending time = fanout * block / bandwidth."""
    sim = Simulator()
    nic = Nic(sim)
    fanout, block, bw = 10, 250 * 1024, 25e6  # global scenario, 250 KB
    finished = []
    for _ in range(fanout):
        nic.transmit(block, bw, lambda: finished.append(sim.now))
    sim.run()
    expected = fanout * block * 8 / bw
    assert finished[-1] == pytest.approx(expected)


def test_idle_gap_resets_queue():
    sim = Simulator()
    nic = Nic(sim)
    done = []
    nic.transmit(1250, 10_000.0, lambda: done.append(sim.now))
    sim.schedule(5.0, nic.transmit, 1250, 10_000.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(1.0), pytest.approx(6.0)]


def test_queueing_delay_accounting():
    sim = Simulator()
    nic = Nic(sim)
    nic.transmit(1250, 10_000.0, lambda: None)  # finishes t=1
    nic.transmit(1250, 10_000.0, lambda: None)  # queued 1s, finishes t=2
    sim.run()
    assert nic.total_queueing_delay == pytest.approx(1.0)
    assert nic.total_tx_time == pytest.approx(2.0)
    assert nic.bytes_sent == 2500
    assert nic.messages_sent == 2


def test_backlog_and_busy():
    sim = Simulator()
    nic = Nic(sim)
    nic.transmit(2500, 10_000.0, lambda: None)  # 2 s of traffic
    assert nic.busy
    assert nic.backlog == pytest.approx(2.0)
    assert nic.max_backlog == pytest.approx(2.0)
    sim.run()
    assert not nic.busy
    assert nic.backlog == 0.0


def test_infinite_bandwidth_is_instant():
    sim = Simulator()
    nic = Nic(sim)
    done = []
    nic.transmit(10**9, math.inf, lambda: done.append(sim.now))
    sim.run()
    assert done == [0.0]


def test_utilization():
    sim = Simulator()
    nic = Nic(sim)
    nic.transmit(1250, 10_000.0, lambda: None)  # 1 s busy
    sim.run(until=4.0)
    assert nic.utilization() == pytest.approx(0.25)


def test_invalid_arguments():
    sim = Simulator()
    nic = Nic(sim)
    with pytest.raises(NetworkError):
        nic.transmit(-1, 10_000.0, lambda: None)
    with pytest.raises(NetworkError):
        nic.transmit(10, 0.0, lambda: None)
