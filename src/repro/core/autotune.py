"""Automatic configuration search (the paper's §8 future work).

Kauri as published "requires the topology of the tree and the value of the
pipelining stretch to be manually configured, using the performance model
provided in this paper"; finding the best deployment configuration
automatically is left as future work (§8, §7.9). This module implements
that search on top of the §4.3 model:

- :func:`tune_homogeneous` -- enumerate tree heights and root fanouts for a
  homogeneous scenario and pick the configuration optimising throughput,
  latency, or a balanced score. The stretch comes with it.
- :func:`tune_heterogeneous` -- for a clustered deployment (§7.9), choose
  the leader's cluster (the paper places it by hand in Oregon) by scoring
  every cluster on its inter-cluster links, and lay internal nodes beside
  their leaf nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.config import (
    ClusterParams,
    NetworkParams,
    ProtocolConfig,
    default_root_fanout,
)
from repro.core.perfmodel import PerfModel
from repro.crypto.costs import BLS_COSTS, CryptoCostModel
from repro.errors import ConfigError
from repro.topology.builder import tree_level_sizes
from repro.topology.tree import Tree

OBJECTIVES = ("throughput", "latency", "balanced")


@dataclass(frozen=True)
class TuningResult:
    """One scored candidate configuration."""

    height: int
    root_fanout: int
    stretch: float
    expected_throughput_txs: float
    expected_latency: float
    model: PerfModel

    @property
    def is_star(self) -> bool:
        return self.height == 1

    def describe(self) -> str:
        kind = "star" if self.is_star else f"tree h={self.height}"
        return (
            f"{kind}, fanout {self.root_fanout}, stretch {self.stretch:.1f}: "
            f"{self.expected_throughput_txs:,.0f} tx/s, "
            f"{self.expected_latency * 1000:.0f} ms/instance"
        )


def _score(result: TuningResult, objective: str) -> float:
    if objective == "throughput":
        return result.expected_throughput_txs
    if objective == "latency":
        return -result.expected_latency
    if objective == "balanced":
        return result.expected_throughput_txs / max(result.expected_latency, 1e-9)
    raise ConfigError(f"unknown objective {objective!r}; pick from {OBJECTIVES}")


def _candidate_fanouts(n: int, height: int, spread: int = 2) -> List[int]:
    """The default balanced fanout plus a few neighbours."""
    base = default_root_fanout(n, height) if height > 1 else n - 1
    if height == 1:
        return [n - 1]
    candidates = sorted(
        {max(2, base + delta) for delta in range(-spread, spread + 1)}
    )
    return candidates


def enumerate_candidates(
    n: int,
    params: NetworkParams,
    config: ProtocolConfig,
    costs: CryptoCostModel = BLS_COSTS,
    heights: Sequence[int] = (1, 2, 3, 4),
    star_costs: CryptoCostModel = None,
) -> List[TuningResult]:
    """All feasible (height, fanout) pairs with model scores."""
    out: List[TuningResult] = []
    for height in heights:
        for fanout in _candidate_fanouts(n, height):
            try:
                tree_level_sizes(n, height, fanout if height > 1 else None)
            except Exception:
                continue
            chosen_costs = costs
            if height == 1 and star_costs is not None:
                chosen_costs = star_costs
            try:
                model = PerfModel.for_tree_shape(
                    n, height, fanout, params, config.block_size, chosen_costs
                )
            except ConfigError:
                continue
            out.append(
                TuningResult(
                    height=height,
                    root_fanout=fanout,
                    stretch=model.pipelining_stretch,
                    expected_throughput_txs=model.expected_throughput_txs(config),
                    expected_latency=model.instance_latency(),
                    model=model,
                )
            )
    if not out:
        raise ConfigError(f"no feasible configuration for n={n}")
    return out


def tune_homogeneous(
    n: int,
    params: NetworkParams,
    config: Optional[ProtocolConfig] = None,
    objective: str = "throughput",
    costs: CryptoCostModel = BLS_COSTS,
    heights: Sequence[int] = (1, 2, 3, 4),
) -> TuningResult:
    """Pick (height, fanout, stretch) for a homogeneous deployment."""
    cfg = config if config is not None else ProtocolConfig()
    candidates = enumerate_candidates(n, params, cfg, costs=costs, heights=heights)
    return max(candidates, key=lambda c: _score(c, objective))


# ---------------------------------------------------------------------------
# Heterogeneous placement (§7.9's manual step, automated)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PlacementResult:
    """A leader-cluster choice with its tree and model."""

    leader_cluster: int
    tree: Tree
    stretch: float
    expected_round_time: float
    model: PerfModel


def cluster_tree_rooted_at(clusters: ClusterParams, leader_cluster: int) -> Tree:
    """§7.9 layout with a configurable leader cluster: the root in
    ``leader_cluster``, one internal head per cluster, leaves beside their
    head."""
    root = next(iter(clusters.members(leader_cluster)))
    children = {root: []}
    for index in range(len(clusters.cluster_sizes)):
        members = [p for p in clusters.members(index) if p != root]
        if not members:
            continue
        head = members[0]
        children[root].append(head)
        if len(members) > 1:
            children[head] = members[1:]
    return Tree(root, children)


def _leader_link_params(clusters: ClusterParams, leader_cluster: int) -> NetworkParams:
    """Summary of the candidate leader's inter-cluster links."""
    anchor = next(iter(clusters.members(leader_cluster)))
    links = [
        clusters.params_between(anchor, next(iter(clusters.members(other))))
        for other in range(len(clusters.cluster_sizes))
        if other != leader_cluster
    ]
    mean_rtt = sum(link.rtt for link in links) / len(links)
    min_bw = min(link.bandwidth_bps for link in links)
    return NetworkParams(
        f"leader-in-{leader_cluster}", rtt=mean_rtt, bandwidth_bps=min_bw
    )


def tune_heterogeneous(
    clusters: ClusterParams,
    config: Optional[ProtocolConfig] = None,
    costs: CryptoCostModel = BLS_COSTS,
) -> PlacementResult:
    """Choose the leader cluster minimising the expected round time.

    Scores each cluster by the §4.3 round time of a tree rooted there
    (fanout = number of clusters, height 2), using that cluster's worst
    inter-cluster bandwidth and mean RTT -- the quantities that bound the
    root's sending and remaining time.
    """
    cfg = config if config is not None else ProtocolConfig()
    num_clusters = len(clusters.cluster_sizes)
    best: Optional[PlacementResult] = None
    for candidate in range(num_clusters):
        params = _leader_link_params(clusters, candidate)
        model = PerfModel.for_topology(
            clusters.n, 2, num_clusters, params, cfg.block_size, costs
        )
        placement = PlacementResult(
            leader_cluster=candidate,
            tree=cluster_tree_rooted_at(clusters, candidate),
            stretch=model.pipelining_stretch,
            expected_round_time=model.round_time,
            model=model,
        )
        if best is None or placement.expected_round_time < best.expected_round_time:
            best = placement
    assert best is not None
    return best
