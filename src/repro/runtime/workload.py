"""Workload engine: aggregate arrival processes for huge client populations.

The ROADMAP's north star is serving heavy traffic from *millions* of
users; spawning one simulator process per user is hopeless at that scale.
This module exploits the superposition property of Poisson processes: the
union of N independent Poisson streams at rate ``r`` is one Poisson stream
at rate ``N*r``, so an entire client *class* (a population sharing a rate,
a load shape, and an SLO) collapses into a single arrival process whose
cost is O(arrivals), not O(users).

Pieces, bottom up:

- :class:`LoadShape` -- composable deterministic rate modulation (steady /
  diurnal / burst / flash-crowd), multiplied together per class.
- :class:`MmppModulator` -- a Markov-modulated Poisson process layered on
  top: discrete rate states with exponential dwell times, giving the
  bursty, autocorrelated traffic that plain Poisson misses.
- :class:`ZipfSampler` -- rank-skewed key popularity driving the
  ``app/kvstore`` state machine (real workloads hammer hot keys).
- :class:`ClientClassSpec` / :class:`WorkloadSpec` -- frozen, declarative
  descriptions that lower from scenario-pack TOML (``from_mapping``) and
  canonicalise into sweep-engine cache keys.
- :class:`WorkloadHarness` -- one simulator loop per *class*, submitting
  through the normal client path (leader mempools, admission control,
  commit notifications), tracking per-class SLO attainment.

Determinism: every random draw comes from a ``random.Random`` seeded from
the run seed and the class name, so arrival counts are reproducible across
runs and execution backends (the sweep engine's process pool included).
"""

from __future__ import annotations

import math
import os
import random
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.runtime.clients import (
    MEMPOOL_POLICIES,
    ClientHarness,
    MempoolWorkload,
    TxChunk,
)

__all__ = [
    "LoadShape",
    "MmppModulator",
    "ZipfSampler",
    "ClientClassSpec",
    "WorkloadSpec",
    "WorkloadHarness",
    "make_workload_factory",
    "saturation_knee",
]


# ----------------------------------------------------------------------
# Load shapes
# ----------------------------------------------------------------------

SHAPE_KINDS = ("steady", "diurnal", "burst", "flash")


@dataclass(frozen=True)
class LoadShape:
    """One deterministic rate multiplier over simulated time.

    Kinds:

    - ``steady``: constant 1.0 (the identity; useful as a default).
    - ``diurnal``: raised-cosine day/night cycle between ``low`` and 1.0
      over ``period`` seconds, starting at the trough.
    - ``burst``: square pulse of ``factor`` over ``[start, start+duration)``.
    - ``flash``: flash crowd -- instant spike to ``factor`` at ``start``,
      decaying exponentially back to 1.0 with time constant ``decay``.

    Shapes compose by multiplication (see :meth:`compose`), so a diurnal
    baseline with a lunchtime flash crowd is just two entries.
    """

    kind: str = "steady"
    period: float = 86400.0
    low: float = 0.25
    start: float = 0.0
    duration: float = 0.0
    factor: float = 1.0
    decay: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in SHAPE_KINDS:
            raise ConfigError(
                f"unknown load shape {self.kind!r}; expected one of {SHAPE_KINDS}"
            )
        if self.kind == "diurnal" and (self.period <= 0 or not 0 <= self.low <= 1):
            raise ConfigError(
                f"diurnal shape needs period > 0 and 0 <= low <= 1, "
                f"got period={self.period}, low={self.low}"
            )
        if self.kind in ("burst", "flash") and self.factor < 0:
            raise ConfigError(f"negative shape factor: {self.factor}")
        if self.kind == "flash" and self.decay <= 0:
            raise ConfigError(f"flash decay must be positive, got {self.decay}")

    def multiplier(self, t: float) -> float:
        if self.kind == "steady":
            return 1.0
        if self.kind == "diurnal":
            phase = 0.5 * (1.0 - math.cos(2.0 * math.pi * t / self.period))
            return self.low + (1.0 - self.low) * phase
        if self.kind == "burst":
            if self.start <= t < self.start + self.duration:
                return self.factor
            return 1.0
        # flash
        if t < self.start:
            return 1.0
        return 1.0 + (self.factor - 1.0) * math.exp(-(t - self.start) / self.decay)

    @staticmethod
    def compose(shapes: Sequence["LoadShape"], t: float) -> float:
        product = 1.0
        for shape in shapes:
            product *= shape.multiplier(t)
        return product

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "LoadShape":
        allowed = {"kind", "period", "low", "start", "duration", "factor", "decay"}
        unknown = set(mapping) - allowed
        if unknown:
            raise ConfigError(
                f"unknown load-shape fields {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}"
            )
        return cls(**{key: mapping[key] for key in mapping})

    def canonical(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "period": self.period,
            "low": self.low,
            "start": self.start,
            "duration": self.duration,
            "factor": self.factor,
            "decay": self.decay,
        }


# ----------------------------------------------------------------------
# MMPP modulation
# ----------------------------------------------------------------------


class MmppModulator:
    """Markov-modulated rate multiplier (an MMPP on top of the base rate).

    ``states`` is a sequence of ``(multiplier, mean_dwell_seconds)`` pairs;
    the process starts in state 0 and cycles through states with
    exponentially distributed dwell times drawn from ``rng``. Cycling (vs a
    full transition matrix) already captures the canonical ON/OFF and
    calm/storm traffic patterns with a fraction of the spec surface.

    ``multiplier(t)`` must be called with nondecreasing ``t`` (simulated
    time, which never goes backwards) -- state history is generated lazily.
    """

    def __init__(
        self, states: Sequence[Tuple[float, float]], rng: random.Random
    ):
        if not states:
            raise ConfigError("MMPP needs at least one (multiplier, dwell) state")
        for multiplier, dwell in states:
            if multiplier < 0 or dwell <= 0:
                raise ConfigError(
                    f"MMPP state needs multiplier >= 0 and dwell > 0, "
                    f"got ({multiplier}, {dwell})"
                )
        self.states = [(float(m), float(d)) for m, d in states]
        self.rng = rng
        self._index = 0
        self._next_switch = rng.expovariate(1.0 / self.states[0][1])

    def multiplier(self, t: float) -> float:
        while t >= self._next_switch:
            self._index = (self._index + 1) % len(self.states)
            dwell = self.states[self._index][1]
            self._next_switch += self.rng.expovariate(1.0 / dwell)
        return self.states[self._index][0]


# ----------------------------------------------------------------------
# Zipfian key skew
# ----------------------------------------------------------------------


class ZipfSampler:
    """Zipf(s) ranks over ``keyspace`` keys via a precomputed CDF + bisect.

    Rank ``k`` (1-based) has probability proportional to ``1 / k**s``;
    sampling is O(log keyspace) per draw after an O(keyspace) setup. With
    ``s = 0`` this degrades gracefully to uniform.
    """

    def __init__(self, keyspace: int, s: float, rng: random.Random):
        if keyspace < 1:
            raise ConfigError(f"keyspace must be >= 1, got {keyspace}")
        if s < 0:
            raise ConfigError(f"negative zipf exponent: {s}")
        self.keyspace = keyspace
        self.s = s
        self.rng = rng
        weights = [1.0 / (rank ** s) for rank in range(1, keyspace + 1)]
        total = math.fsum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against fp undershoot

    def sample(self) -> int:
        """Draw a 0-based key index (0 = hottest key)."""
        return bisect_left(self._cdf, self.rng.random())

    def sample_batch(self, count: int) -> List[int]:
        """Draw ``count`` key indices in one pass.

        Draw-order identical to ``count`` sequential :meth:`sample` calls
        (same rng stream), but with the CDF, the rng method, and the
        bisect hoisted out of the loop -- the per-draw cost is one uniform
        plus one C-level bisect, nothing else.
        """
        cdf = self._cdf
        rand = self.rng.random
        search = bisect_left
        return [search(cdf, rand()) for _ in range(count)]


# ----------------------------------------------------------------------
# Declarative specs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ClientClassSpec:
    """One client population sharing a rate, a load shape, and an SLO.

    ``population * rate_per_user`` is the class's steady aggregate offered
    rate in transactions per second; shapes and MMPP modulate it over time.
    ``slo_ms`` is the end-to-end latency target judged at
    ``slo_percentile`` (per-class attainment lands in the run report).
    """

    name: str
    population: int
    rate_per_user: float
    shapes: Tuple[LoadShape, ...] = (LoadShape(),)
    mmpp: Tuple[Tuple[float, float], ...] = ()
    slo_ms: float = 1000.0
    slo_percentile: float = 99.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("client class needs a name")
        if self.population < 1:
            raise ConfigError(f"population must be >= 1, got {self.population}")
        if self.rate_per_user <= 0:
            raise ConfigError(
                f"rate_per_user must be positive, got {self.rate_per_user}"
            )
        if self.slo_ms <= 0 or not 0 < self.slo_percentile <= 100:
            raise ConfigError(
                f"SLO needs slo_ms > 0 and slo_percentile in (0, 100], got "
                f"({self.slo_ms}, {self.slo_percentile})"
            )

    @property
    def steady_rate(self) -> float:
        """Aggregate offered transactions/second before modulation."""
        return self.population * self.rate_per_user

    def rate_at(self, t: float) -> float:
        return self.steady_rate * LoadShape.compose(self.shapes, t)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ClientClassSpec":
        allowed = {
            "name", "population", "rate_per_user", "shapes", "mmpp",
            "slo_ms", "slo_percentile",
        }
        unknown = set(mapping) - allowed
        if unknown:
            raise ConfigError(
                f"unknown client-class fields {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}"
            )
        kwargs: Dict[str, Any] = {
            key: mapping[key] for key in mapping if key not in ("shapes", "mmpp")
        }
        if "shapes" in mapping:
            kwargs["shapes"] = tuple(
                LoadShape.from_mapping(shape) for shape in mapping["shapes"]
            )
        if "mmpp" in mapping:
            kwargs["mmpp"] = tuple(
                (float(m), float(d)) for m, d in mapping["mmpp"]
            )
        return cls(**kwargs)

    def canonical(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "population": self.population,
            "rate_per_user": self.rate_per_user,
            "shapes": [shape.canonical() for shape in self.shapes],
            "mmpp": [list(state) for state in self.mmpp],
            "slo_ms": self.slo_ms,
            "slo_percentile": self.slo_percentile,
        }


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything the workload engine needs for one run, declaratively.

    ``capacity_txs`` / ``policy`` configure leader admission control (the
    bounded :class:`~repro.runtime.clients.MempoolWorkload`);
    ``keyspace`` / ``zipf_s`` configure key skew for the KV application;
    ``batch_interval`` is the arrival-accounting tick (smaller = finer
    open-loop granularity, more simulator events).
    """

    classes: Tuple[ClientClassSpec, ...]
    keyspace: int = 1024
    zipf_s: float = 0.99
    capacity_txs: Optional[int] = None
    policy: str = "drop"
    batch_interval: float = 0.1
    jitter: bool = True

    def __post_init__(self) -> None:
        if not self.classes:
            raise ConfigError("workload needs at least one client class")
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate client class names: {names}")
        if self.policy not in MEMPOOL_POLICIES:
            raise ConfigError(
                f"unknown mempool policy {self.policy!r}; "
                f"expected one of {MEMPOOL_POLICIES}"
            )
        if self.capacity_txs is not None and self.capacity_txs < 1:
            raise ConfigError(
                f"mempool capacity must be >= 1, got {self.capacity_txs}"
            )
        if self.batch_interval <= 0:
            raise ConfigError(
                f"batch_interval must be positive, got {self.batch_interval}"
            )
        if self.keyspace < 1 or self.zipf_s < 0:
            raise ConfigError(
                f"need keyspace >= 1 and zipf_s >= 0, got "
                f"({self.keyspace}, {self.zipf_s})"
            )

    @property
    def total_steady_rate(self) -> float:
        return sum(cls.steady_rate for cls in self.classes)

    @property
    def total_population(self) -> int:
        return sum(cls.population for cls in self.classes)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "WorkloadSpec":
        allowed = {
            "classes", "keyspace", "zipf_s", "capacity_txs", "policy",
            "batch_interval", "jitter",
        }
        unknown = set(mapping) - allowed
        if unknown:
            raise ConfigError(
                f"unknown workload fields {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}"
            )
        if "classes" not in mapping:
            raise ConfigError("workload mapping needs a 'classes' list")
        kwargs: Dict[str, Any] = {
            key: mapping[key] for key in mapping if key != "classes"
        }
        kwargs["classes"] = tuple(
            ClientClassSpec.from_mapping(entry) for entry in mapping["classes"]
        )
        return cls(**kwargs)

    def canonical(self) -> Dict[str, Any]:
        """Plain-data form for sweep cache keys (stable across processes)."""
        return {
            "classes": [cls.canonical() for cls in self.classes],
            "keyspace": self.keyspace,
            "zipf_s": self.zipf_s,
            "capacity_txs": self.capacity_txs,
            "policy": self.policy,
            "batch_interval": self.batch_interval,
            "jitter": self.jitter,
        }


def saturation_knee(
    points: Sequence[Mapping[str, Any]], goodput_threshold: float = 0.9
) -> int:
    """Index of the saturation knee in an offered-load sweep.

    ``points`` are per-load-level dicts (ascending offered load) carrying
    ``goodput`` (committed / generated) and ``slo_met``. The knee is the
    highest load level still committing at least ``goodput_threshold`` of
    what clients generated *with its SLO met*; -1 if even the lightest
    level fails (the topology cannot serve the lightest load tested).
    """
    knee = -1
    for index, point in enumerate(points):
        if point["goodput"] >= goodput_threshold and point["slo_met"]:
            knee = index
    return knee


def make_workload_factory(spec: WorkloadSpec, config):
    """Per-node mempool factory honouring the spec's admission control."""

    def factory(node_id: int) -> MempoolWorkload:
        return MempoolWorkload(
            config, capacity_txs=spec.capacity_txs, policy=spec.policy
        )

    return factory


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


@dataclass
class _ClassState:
    """Mutable per-class accounting (one per ClientClassSpec).

    Latencies live in a :class:`LatencyHistogram` (O(buckets), not
    O(committed)); submission times are recorded per *tick* as parallel
    ``(start_seq, time)`` epoch arrays -- every transaction of one tick
    shares a submit instant, so a commit recovers its submit time with one
    bisect over O(ticks) state instead of an O(generated) per-tx dict.
    """

    spec: ClientClassSpec
    client_id: int
    generated: int = 0
    within_slo: int = 0
    slo_target_s: float = 0.0
    hist: "LatencyHistogram" = field(default_factory=lambda: _new_histogram())
    submit_seqs: List[int] = field(default_factory=list)
    submit_times: List[float] = field(default_factory=list)


def _new_histogram():
    from repro.runtime.metrics import LatencyHistogram

    return LatencyHistogram()


class WorkloadHarness(ClientHarness):
    """Aggregate client populations submitting through the real client path.

    One simulator loop per client *class* (not per user): each tick
    integrates the class's modulated rate into an expected arrival count
    (fractional backlog carried forward, optional gaussian jitter -- the
    N(lambda, lambda) approximation of Poisson counts, exact in
    distribution as lambda grows), materialises that many transactions,
    and ships them to the current leader. Commit notifications close the
    loop per class, so SLO attainment is judged on end-to-end latency.

    When ``registry`` is given, every transaction carries a KV write whose
    key is Zipf-skewed over the spec's keyspace, driving the
    ``app/kvstore`` state machine with realistic hot-key traffic.

    The harness registers itself as ``cluster.workload_harness`` so the
    observability layer can attach :meth:`summary` to the run report.
    """

    def __init__(self, cluster, spec: WorkloadSpec, registry=None, seed: int = 0):
        self.spec = spec
        self.registry = registry
        self.seed = seed
        super().__init__(
            cluster,
            num_clients=len(spec.classes),
            rate_txs=spec.total_steady_rate,
            batch_interval=spec.batch_interval,
        )
        self.classes: List[_ClassState] = [
            _ClassState(
                spec=cls,
                client_id=self._client_ids[index],
                slo_target_s=cls.slo_ms / 1000.0,
            )
            for index, cls in enumerate(spec.classes)
        ]
        self._class_by_client = {
            state.client_id: state for state in self.classes
        }
        self._zipf = ZipfSampler(
            spec.keyspace,
            spec.zipf_s,
            random.Random(f"workload-keys:{seed}"),
        )
        self._latency_hist = _new_histogram()
        # Ticks at very high rates ship one flyweight chunk per
        # ``_chunk_txs`` transactions (payload partitioning only -- the
        # per-tick network send and its byte size are unchanged).
        self._chunk_txs = max(1, int(os.environ.get("REPRO_INGEST_CHUNK", "8192")))
        cluster.workload_harness = self

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn one submission loop per client class."""
        from repro.core.node import CLIENT_TX_TAG
        from repro.sim.process import Sleep, spawn

        def class_loop(state: _ClassState):
            cls = state.spec
            rng = random.Random(f"workload:{self.seed}:{cls.name}")
            mmpp = MmppModulator(cls.mmpp, rng) if cls.mmpp else None
            interval = self.spec.batch_interval
            jitter = self.spec.jitter
            chunk_txs = self._chunk_txs
            tx_size = self.tx_size
            client_id = state.client_id
            sim = self.cluster.sim
            network_send = self.cluster.network.send
            backlog = 0.0
            seq = 0
            while True:
                yield Sleep(interval)
                now = sim.now
                rate = cls.rate_at(now)
                if mmpp is not None:
                    rate *= mmpp.multiplier(now)
                expected = rate * interval
                if jitter and expected > 0:
                    expected = max(0.0, rng.gauss(expected, expected ** 0.5))
                backlog += expected
                count = int(backlog)
                backlog -= count
                if count == 0:
                    continue
                if self.registry is not None:
                    self._record_ops(state, seq, count)
                batch: List[TxChunk] = []
                start = seq
                end = seq + count
                while start < end:
                    take = min(chunk_txs, end - start)
                    batch.append(TxChunk(client_id, start, take, tx_size, now))
                    start += take
                state.generated += count
                state.submit_seqs.append(seq)
                state.submit_times.append(now)
                seq = end
                leader = self._current_leader()
                network_send(
                    client_id, leader, CLIENT_TX_TAG, batch,
                    size=count * self.tx_size,
                )

        for state in self.classes:
            spawn(
                self.cluster.sim,
                class_loop(state),
                name=f"workload-{state.spec.name}",
            )

    def _record_ops(self, state: _ClassState, seq: int, count: int) -> None:
        """Attach one Zipf-keyed KV write per transaction of a tick.

        Keys come from one batched draw (same rng stream and draw order as
        ``count`` sequential draws, pinned by the arrival-sequence test).
        """
        from repro.app.kvstore import KvOp

        record = self.registry.record
        name = state.spec.name
        client_id = state.client_id
        for offset, key_index in enumerate(self._zipf.sample_batch(count)):
            tx_seq = seq + offset
            record(
                (client_id, tx_seq),
                KvOp(kind="set", key=f"k{key_index}", value=f"{name}s{tx_seq}"),
            )

    def _on_commit(self, record, block) -> None:
        commit_time = record.time
        by_client = self._class_by_client
        total_hist_add = self._latency_hist.add
        for tx_id in block.tx_ids:
            state = by_client.get(tx_id[0])
            if state is None:
                continue
            # Every tx of one tick shares a submit time; recover it from
            # the per-tick epoch arrays by sequence number.
            index = bisect_right(state.submit_seqs, tx_id[1]) - 1
            if index < 0:
                continue
            latency = commit_time - state.submit_times[index]
            state.hist.add(latency)
            if latency <= state.slo_target_s:
                state.within_slo += 1
            total_hist_add(latency)

    # ------------------------------------------------------------------
    def _mempool_counters(self) -> Tuple[Dict[int, int], Dict[int, int], int]:
        """(admitted, dropped) per client id + total offered, summed over
        every node's mempool (transactions to deposed leaders land in a
        stopped node's mempool; they still count as offered)."""
        admitted: Dict[int, int] = {}
        dropped: Dict[int, int] = {}
        offered = 0
        for node in self.cluster.nodes:
            mempool = getattr(node, "workload", None)
            if mempool is None or not hasattr(mempool, "admitted_by_client"):
                continue
            offered += mempool.offered
            for client_id, count in mempool.admitted_by_client.items():
                admitted[client_id] = admitted.get(client_id, 0) + count
            for client_id, count in mempool.dropped_by_client.items():
                dropped[client_id] = dropped.get(client_id, 0) + count
        return admitted, dropped, offered

    # ------------------------------------------------------------------
    @property
    def committed_txs(self) -> int:
        return self._latency_hist.count

    @property
    def lost_estimate(self) -> int:
        """Generated transactions not (yet) committed -- in flight,
        shed by admission control, or lost to deposed leaders."""
        generated = sum(state.generated for state in self.classes)
        return generated - self._latency_hist.count

    def e2e_latency_stats(self) -> Dict[str, float]:
        """Histogram-backed end-to-end latency summary (same key set as
        the exact path; see :class:`LatencyHistogram` for the error
        model)."""
        from repro.runtime.metrics import E2E_PERCENTILES

        return self._latency_hist.summary(E2E_PERCENTILES)

    def summary(self) -> Dict[str, Any]:
        """Deterministic per-class + total accounting for the run report.

        Conservation laws the tests pin down: per class,
        ``admitted + dropped <= generated`` (the difference is in flight or
        lost to deposed leaders), and across the mempools
        ``offered == admitted + dropped (+ still-deferred)``.
        """
        from repro.runtime.metrics import E2E_PERCENTILES

        admitted_by, dropped_by, mempool_offered = self._mempool_counters()
        classes = []
        for state in self.classes:
            cls = state.spec
            stats = state.hist.summary(E2E_PERCENTILES)
            committed = state.hist.count
            if committed:
                observed = state.hist.percentile(cls.slo_percentile)
                attainment = state.within_slo / committed
                slo_met = observed * 1000.0 <= cls.slo_ms
            else:
                observed = 0.0
                attainment = 0.0
                slo_met = False
            admitted = admitted_by.get(state.client_id, 0)
            dropped = dropped_by.get(state.client_id, 0)
            classes.append({
                "name": cls.name,
                "population": cls.population,
                "steady_rate_txs": cls.steady_rate,
                "generated": state.generated,
                "admitted": admitted,
                "dropped": dropped,
                "committed": committed,
                "latency": stats,
                "slo": {
                    "target_ms": cls.slo_ms,
                    "percentile": cls.slo_percentile,
                    "observed_ms": observed * 1000.0,
                    "attainment": attainment,
                    "met": slo_met,
                },
            })
        generated = sum(entry["generated"] for entry in classes)
        admitted = sum(entry["admitted"] for entry in classes)
        dropped = sum(entry["dropped"] for entry in classes)
        committed = sum(entry["committed"] for entry in classes)
        totals = {
            "population": self.spec.total_population,
            "offered_rate_txs": self.spec.total_steady_rate,
            "generated": generated,
            "offered": mempool_offered,
            "admitted": admitted,
            "dropped": dropped,
            "committed": committed,
            "drop_rate": dropped / mempool_offered if mempool_offered else 0.0,
            "latency": self._latency_hist.summary(E2E_PERCENTILES),
        }
        return {
            "policy": self.spec.policy,
            "capacity_txs": self.spec.capacity_txs,
            "keyspace": self.spec.keyspace,
            "zipf_s": self.spec.zipf_s,
            "classes": classes,
            "totals": totals,
        }
