"""Unit tests for cluster wiring and the experiment harness."""

import pytest

from repro import Cluster, ProtocolConfig, resilientdb_clusters, run_experiment
from repro.errors import ConfigError, ConsensusError
from repro.runtime.cluster import build_cluster_tree, representative_params


class TestClusterWiring:
    def test_nodes_registered_and_keyed(self):
        cluster = Cluster(n=7)
        assert len(cluster.nodes) == 7
        for node in cluster.nodes:
            assert node.keypair.node_id == node.node_id
        assert cluster.f == 2

    def test_mode_selects_scheme_and_policy(self):
        kauri = Cluster(n=7, mode="kauri")
        assert kauri.scheme.name == "bls"
        assert kauri.policy.configuration(0).height == 2
        hotstuff = Cluster(n=7, mode="hotstuff-secp")
        assert hotstuff.scheme.name == "secp256k1"
        assert hotstuff.policy.configuration(0).is_star

    def test_model_cached_per_shape(self):
        cluster = Cluster(n=7)
        tree = cluster.policy.configuration(0)
        assert cluster.model_for(tree) is cluster.model_for(tree)

    def test_scenario_string_resolution(self):
        for name in ("global", "regional", "national"):
            cluster = Cluster(n=7, scenario=name)
            assert cluster.scenario.name == name

    def test_custom_network_params(self):
        from repro.config import NetworkParams

        params = NetworkParams("custom", rtt=0.05, bandwidth_bps=1e7)
        cluster = Cluster(n=7, scenario=params)
        assert cluster.scenario == params


class TestHeterogeneous:
    def test_cluster_tree_placement(self):
        """§7.9: root in Oregon, one internal head per cluster, leaves
        beside their head."""
        clusters = resilientdb_clusters()
        tree = build_cluster_tree(clusters)
        assert tree.root == 0  # Oregon
        assert tree.height == 2
        heads = tree.children(tree.root)
        assert len(heads) == 6
        for head in heads:
            head_cluster = clusters.cluster_of(head)
            for leaf in tree.children(head):
                assert clusters.cluster_of(leaf) == head_cluster
        assert set(tree.nodes) == set(range(60))

    def test_n_derived_from_clusters(self):
        cluster = Cluster(scenario=resilientdb_clusters())
        assert cluster.n == 60
        with pytest.raises(ConfigError):
            Cluster(n=100, scenario=resilientdb_clusters())

    def test_representative_params(self):
        clusters = resilientdb_clusters()
        params = representative_params(clusters)
        assert 0.03 < params.rtt < 0.3
        assert params.bandwidth_bps > 0

    def test_hotstuff_on_clusters_uses_star(self):
        cluster = Cluster(mode="hotstuff-bls", scenario=resilientdb_clusters())
        assert cluster.policy.configuration(0).is_star


class TestAgreementCheck:
    def test_detects_cross_replica_conflict(self):
        from repro.consensus import Block
        from repro.consensus.block import GENESIS_HASH

        cluster = Cluster(n=7)
        a = Block.create(1, 0, GENESIS_HASH, 0, 10, 1, 0.0, salt=1)
        b = Block.create(1, 0, GENESIS_HASH, 0, 10, 1, 0.0, salt=2)
        cluster.nodes[0].store.add(a)
        cluster.nodes[0].store.commit(a)
        cluster.nodes[1].store.add(b)
        cluster.nodes[1].store.commit(b)
        with pytest.raises(ConsensusError, match="AGREEMENT"):
            cluster.check_agreement()

    def test_byzantine_nodes_excluded_from_check(self):
        from repro.consensus import Block
        from repro.consensus.block import GENESIS_HASH
        from repro.consensus.byzantine import SilentNode

        cluster = Cluster(n=7, byzantine={6: SilentNode})
        a = Block.create(1, 0, GENESIS_HASH, 0, 10, 1, 0.0, salt=1)
        b = Block.create(1, 0, GENESIS_HASH, 0, 10, 1, 0.0, salt=2)
        cluster.nodes[0].store.add(a)
        cluster.nodes[0].store.commit(a)
        cluster.nodes[6].store.add(b)
        cluster.nodes[6].store.commit(b)  # byzantine replica's fake chain
        cluster.check_agreement()  # must not raise


class TestStatsSummary:
    def test_snapshot_after_run(self):
        cluster = Cluster(n=7, mode="kauri", scenario="national")
        cluster.start()
        cluster.run(duration=5.0)
        stats = cluster.stats_summary()
        assert stats["now"] == pytest.approx(5.0)
        assert stats["committed_blocks"] > 0
        assert stats["messages_sent"] > stats["committed_blocks"]
        assert stats["bytes_sent_leader"] > 0
        assert stats["cpu_busy_total"] > 0
        assert stats["view_changes"] == 0

    def test_load_balancing_visible_in_stats(self):
        """The tree's point: the leader's share of bytes sent is bounded by
        its fanout, not by N (§3.2)."""
        cluster = Cluster(n=31, mode="kauri", scenario="national")
        cluster.start()
        cluster.run(duration=5.0)
        stats = cluster.stats_summary()
        leader_share = stats["bytes_sent_leader"] / stats["bytes_sent_total"]
        tree = cluster.policy.configuration(0)
        internals = len(tree.internal_nodes)
        assert leader_share < 2.0 / internals + 0.15

    def test_star_concentrates_load_on_leader(self):
        cluster = Cluster(n=31, mode="hotstuff-bls", scenario="national")
        cluster.start()
        cluster.run(duration=20.0)
        stats = cluster.stats_summary()
        leader_share = stats["bytes_sent_leader"] / stats["bytes_sent_total"]
        assert leader_share > 0.5


class TestRunExperiment:
    def test_basic_result_fields(self):
        result = run_experiment(
            mode="kauri", scenario="national", n=7, duration=5.0, seed=1
        )
        assert result.mode == "kauri"
        assert result.scenario == "national"
        assert result.n == 7
        assert result.throughput_txs > 0
        assert result.committed_blocks > 0
        assert result.latency["count"] > 0
        assert 0.0 <= result.leader_cpu_utilization <= 1.0
        assert result.view_changes == 0
        assert isinstance(result.row(), tuple)

    def test_block_size_and_stretch_override(self):
        result = run_experiment(
            mode="kauri",
            scenario="national",
            n=7,
            duration=5.0,
            block_size=32 * 1024,
            stretch=2.0,
        )
        assert result.block_size == 32 * 1024
        assert result.stretch == 2.0

    def test_crash_plan_passthrough(self):
        result = run_experiment(
            mode="kauri",
            scenario="national",
            n=7,
            duration=20.0,
            crashes=[(0, 5.0)],
        )
        assert result.max_view >= 1

    def test_max_commits_bounds_runtime(self):
        result = run_experiment(
            mode="kauri", scenario="national", n=7, duration=600.0, max_commits=10
        )
        assert result.duration < 600.0
        assert result.committed_blocks >= 10
