"""repro.obs -- bottleneck-attribution observability for simulated runs.

Answers *which resource binds* for any configuration: exact windowed CPU
utilization and link busy fractions (the inputs to the paper's red-circle
CPU-saturation convention, Fig. 6), per-round dissemination / aggregation /
wait spans (the measured analogue of §4.3's decomposition), and one
deterministic :func:`build_report` JSON document joining them with the
commit metrics. Enable per run via ``run_experiment(observability=True)``,
``ExperimentSpec(observability=True)``, or the ``repro report`` CLI.
"""

from repro.obs.recorder import PhaseRecorder, SPAN_KINDS
from repro.obs.report import (
    REPORT_SCHEMA_VERSION,
    SCHEMA_PATH,
    build_report,
    load_schema,
    report_json,
    validate_report,
)

__all__ = [
    "PhaseRecorder",
    "SPAN_KINDS",
    "REPORT_SCHEMA_VERSION",
    "SCHEMA_PATH",
    "build_report",
    "load_schema",
    "report_json",
    "validate_report",
]
