"""Unit tests for the replica safety rules (vote-once, locking, safeNode)."""

import pytest

from repro.consensus import Block, BlockStore, GENESIS_HASH, Phase, QuorumCert, SafetyRules
from repro.consensus.vote import genesis_qc, vote_value
from repro.crypto import Pki, make_scheme

PKI = Pki(n=7)
SCHEME = make_scheme("bls", PKI)
QUORUM = 5


def qc(phase, view, height, block_hash, signers=range(QUORUM)):
    value = vote_value(phase, view, height, block_hash)
    coll = SCHEME.empty()
    for node in signers:
        coll = coll | SCHEME.new(PKI.keypair(node), value)
    return QuorumCert(phase, view, height, block_hash, coll)


def make_chain(store, length, view=0, parent=GENESIS_HASH, start=1, salt=0):
    blocks, current = [], parent
    for offset in range(length):
        block = Block.create(start + offset, view, current, 0, 100, 1, 0.0, salt=salt)
        store.add(block)
        blocks.append(block)
        current = block.hash
    return blocks


@pytest.fixture
def rules():
    return SafetyRules(BlockStore())


class TestVoteOnce:
    def test_single_vote_per_slot(self, rules):
        assert rules.may_vote(0, 1, Phase.PREPARE)
        rules.record_vote(0, 1, Phase.PREPARE)
        assert not rules.may_vote(0, 1, Phase.PREPARE)

    def test_slots_independent(self, rules):
        rules.record_vote(0, 1, Phase.PREPARE)
        assert rules.may_vote(0, 1, Phase.PRECOMMIT)
        assert rules.may_vote(0, 2, Phase.PREPARE)
        assert rules.may_vote(1, 1, Phase.PREPARE)


class TestSafeProposal:
    def test_first_block_on_genesis(self, rules):
        block = Block.create(1, 0, GENESIS_HASH, 0, 100, 1, 0.0)
        assert rules.safe_proposal(block, genesis_qc())

    def test_height_must_exceed_justify(self, rules):
        block = Block.create(0, 0, GENESIS_HASH, 0, 100, 1, 0.0)
        assert not rules.safe_proposal(block, genesis_qc())

    def test_must_extend_justify_block(self, rules):
        blocks = make_chain(rules.store, 2)
        justify = qc(Phase.PREPARE, 0, 1, blocks[0].hash)
        ok = Block.create(3, 0, blocks[1].hash, 0, 100, 1, 0.0)
        rules.store.add(ok)
        assert rules.safe_proposal(ok, justify)
        stranger = Block.create(3, 0, "unrelated", 0, 100, 1, 0.0)
        assert not rules.safe_proposal(stranger, justify)

    def test_pipelined_justify_several_heights_back(self, rules):
        """§4.2: the justify may lag the proposal by several heights."""
        blocks = make_chain(rules.store, 5)
        justify = qc(Phase.PREPARE, 0, 1, blocks[0].hash)
        tip = Block.create(6, 0, blocks[4].hash, 0, 100, 1, 0.0)
        rules.store.add(tip)
        assert rules.safe_proposal(tip, justify)

    def test_locked_blocks_conflicting_branch(self, rules):
        blocks = make_chain(rules.store, 2, view=1)
        # lock on blocks[1] in view 1
        rules.observe_precommit_qc(qc(Phase.PRECOMMIT, 1, 2, blocks[1].hash))
        # same-view fork not extending the lock: rejected
        fork = Block.create(3, 1, blocks[0].hash, 0, 100, 1, 0.0, salt=9)
        rules.store.add(fork)
        justify_old = qc(Phase.PREPARE, 1, 1, blocks[0].hash)
        assert not rules.safe_proposal(fork, justify_old)
        # extension of the lock: accepted
        extend = Block.create(3, 1, blocks[1].hash, 0, 100, 1, 0.0)
        rules.store.add(extend)
        justify_lock = qc(Phase.PREPARE, 1, 2, blocks[1].hash)
        assert rules.safe_proposal(extend, justify_lock)

    def test_newer_view_justify_overrides_lock(self, rules):
        """The HotStuff liveness rule: a strictly newer justify unlocks."""
        blocks = make_chain(rules.store, 2, view=1)
        rules.observe_precommit_qc(qc(Phase.PRECOMMIT, 1, 2, blocks[1].hash))
        other = Block.create(2, 3, blocks[0].hash, 1, 100, 1, 0.0, salt=4)
        rules.store.add(other)
        tip = Block.create(3, 3, other.hash, 1, 100, 1, 0.0)
        rules.store.add(tip)
        justify_newer = qc(Phase.PREPARE, 3, 2, other.hash)
        assert rules.safe_proposal(tip, justify_newer)
        justify_same_view = qc(Phase.PREPARE, 1, 2, other.hash)
        assert not rules.safe_proposal(tip, justify_same_view)


class TestQcObservation:
    def test_high_prepare_tracks_newest(self, rules):
        a = qc(Phase.PREPARE, 1, 1, "a")
        b = qc(Phase.PREPARE, 2, 1, "b")
        rules.observe_qc(b)
        rules.observe_qc(a)  # older: ignored
        assert rules.high_prepare_qc == b

    def test_lock_tracks_newest_precommit(self, rules):
        a = qc(Phase.PRECOMMIT, 1, 1, "a")
        b = qc(Phase.PRECOMMIT, 3, 1, "b")
        rules.observe_qc(a)
        assert rules.locked_block_hash == "a"
        rules.observe_qc(b)
        assert rules.locked_block_hash == "b"
        rules.observe_qc(a)
        assert rules.locked_block_hash == "b"

    def test_commit_qc_does_not_touch_lock(self, rules):
        rules.observe_qc(qc(Phase.COMMIT, 5, 9, "c"))
        assert rules.locked_qc.is_genesis
        assert rules.high_prepare_qc.is_genesis

    def test_prepare_does_not_lock(self, rules):
        rules.observe_qc(qc(Phase.PREPARE, 5, 9, "p"))
        assert rules.locked_qc.is_genesis
        assert rules.high_prepare_qc.block_hash == "p"
