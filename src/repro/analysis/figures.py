"""Figure generators: one function per evaluation figure (§7.3-§7.10).

Every function runs real deployments and returns the same series the
paper plots. Simulation horizons adapt to each configuration's expected
instance latency (slow configurations need longer windows to commit a
meaningful number of blocks; fast ones are capped by ``max_commits`` so the
event count stays bounded). ``scale`` < 1.0 shrinks horizons uniformly for
quick smoke runs.

Each generator builds its grid as a list of
:class:`~repro.runtime.sweep.ExperimentSpec` cells and hands it to a
:class:`~repro.runtime.sweep.SweepRunner`: ``jobs`` fans the independent
cells out over a process pool (``None`` reads ``$REPRO_SWEEP_JOBS``), and
``use_cache`` re-uses completed cells from the on-disk result cache.
Results are identical for any ``jobs`` value -- every cell is a
deterministic function of its spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import (
    GLOBAL,
    KB,
    NATIONAL,
    REGIONAL,
    NetworkParams,
    ProtocolConfig,
    default_root_fanout,
    max_faults,
    mbps,
    ms,
    resilientdb_clusters,
)
from repro.core.modes import mode_spec
from repro.core.perfmodel import PerfModel
from repro.crypto.costs import BLS_COSTS, SECP_COSTS
from repro.runtime.experiment import ExperimentResult
from repro.runtime.sweep import ExperimentSpec, SweepRunner

_COSTS = {"bls": BLS_COSTS, "secp": SECP_COSTS}


def _runner(jobs: Optional[int], use_cache: bool) -> SweepRunner:
    """The sweep engine instance shared by every figure generator."""
    return SweepRunner(jobs=jobs, cache=use_cache)


def _model_for(mode: str, n: int, params: NetworkParams, block_size: int, height: int = 2) -> PerfModel:
    spec = mode_spec(mode)
    costs = _COSTS[spec.scheme]
    if spec.uses_tree:
        fanout = default_root_fanout(n, height)
        return PerfModel.for_tree_shape(n, height, fanout, params, block_size, costs)
    return PerfModel.for_star(n, params, block_size, costs)


def adaptive_duration(
    mode: str,
    n: int,
    params: NetworkParams,
    block_size: int,
    height: int = 2,
    min_duration: float = 30.0,
    instances: float = 8.0,
    scale: float = 1.0,
) -> float:
    """Simulated horizon long enough for ``instances`` full instances."""
    model = _model_for(mode, n, params, block_size, height)
    return scale * max(min_duration, instances * model.instance_latency())


# ---------------------------------------------------------------------------
# Figure 5: throughput vs pipelining stretch (§7.3)
# ---------------------------------------------------------------------------
def fig5_stretch_sweep(
    block_sizes_kb: Sequence[int] = (50, 100, 200, 250),
    stretches: Sequence[float] = (1, 2, 4, 6, 8, 12, 16, 20),
    n: int = 100,
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
) -> Dict[int, List[Tuple[float, float]]]:
    """Global scenario, N=100: throughput (Ktx/s) per stretch per block size."""
    cells = [(kb, float(stretch)) for kb in block_sizes_kb for stretch in stretches]
    specs = [
        ExperimentSpec(
            mode="kauri",
            scenario="global",
            n=n,
            block_size=kb * KB,
            stretch=stretch,
            duration=adaptive_duration("kauri", n, GLOBAL, kb * KB, scale=scale),
            max_commits=int(200 * scale) or 20,
            seed=seed,
        )
        for kb, stretch in cells
    ]
    out: Dict[int, List[Tuple[float, float]]] = {kb: [] for kb in block_sizes_kb}
    for (kb, stretch), result in zip(cells, _runner(jobs, use_cache).run(specs)):
        out[kb].append((stretch, result.throughput_txs / 1000.0))
    return out


# ---------------------------------------------------------------------------
# Figure 6: throughput across scenarios and system sizes (§7.4)
# ---------------------------------------------------------------------------
#: The paper's marker for "data point obtained in a saturated testbed".
RED_CIRCLE = "●"


def saturation_marker(result: ExperimentResult) -> str:
    """Figure annotation for a data point: the paper's red circle when the
    run's leader CPU saturated over the measurement window, else empty."""
    return RED_CIRCLE if result.cpu_saturated else ""


def fig6_scenarios(
    scenarios: Sequence[str] = ("national", "regional", "global"),
    ns: Sequence[int] = (100, 200, 400),
    modes: Sequence[str] = ("kauri", "kauri-np", "hotstuff-secp", "hotstuff-bls"),
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
    observability: bool = False,
) -> List[ExperimentResult]:
    """The paper's headline grid: every system in every scenario at every
    size, 250 KB blocks, model-driven stretch for Kauri. With
    ``observability=True`` each result carries a full RunReport
    (``result.report``) for bottleneck attribution behind the red circles."""
    from repro.config import SCENARIOS

    specs = [
        ExperimentSpec(
            mode=mode,
            scenario=scenario,
            n=n,
            duration=adaptive_duration(
                mode, n, SCENARIOS[scenario], 250 * KB, scale=scale
            ),
            max_commits=int(150 * scale) or 15,
            seed=seed,
            observability=observability,
        )
        for scenario in scenarios
        for n in ns
        for mode in modes
    ]
    return _runner(jobs, use_cache).run(specs)


def fig6_kudzu_headtohead(
    scenarios: Sequence[str] = ("national", "global"),
    ns: Sequence[int] = (31, 100),
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
    observability: bool = False,
) -> List[ExperimentResult]:
    """Fig. 6-style head-to-head of the protocol zoo's star contenders:
    Kauri (tree, pipelined) vs HotStuff-bls (star, chained) vs Kudzu (star,
    chained, optimistic single-round fast path). One sweep command; the
    Kudzu rows carry ``fast_commits``/``fast_fallbacks`` so the fast-path
    engagement is visible next to the throughput numbers."""
    return fig6_scenarios(
        scenarios=scenarios,
        ns=ns,
        modes=("kauri", "hotstuff-bls", "kudzu"),
        scale=scale,
        seed=seed,
        jobs=jobs,
        use_cache=use_cache,
        observability=observability,
    )


# ---------------------------------------------------------------------------
# Figure 7: throughput vs RTT (§7.5)
# ---------------------------------------------------------------------------
def fig7_rtt_sweep(
    rtts_ms: Sequence[int] = (50, 100, 200, 300, 400),
    modes: Sequence[str] = ("kauri", "hotstuff-secp"),
    n: int = 100,
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
) -> Dict[str, List[Tuple[int, float, float]]]:
    """Regional bandwidth (100 Mb/s), varying RTT: (rtt_ms, Ktx/s, stretch)."""
    cells = [
        (rtt, mode, REGIONAL.with_rtt(ms(rtt))) for rtt in rtts_ms for mode in modes
    ]
    specs = [
        ExperimentSpec(
            mode=mode,
            scenario=params,
            n=n,
            duration=adaptive_duration(mode, n, params, 250 * KB, scale=scale),
            max_commits=int(150 * scale) or 15,
            seed=seed,
        )
        for rtt, mode, params in cells
    ]
    out: Dict[str, List[Tuple[int, float, float]]] = {mode: [] for mode in modes}
    for (rtt, mode, params), result in zip(
        cells, _runner(jobs, use_cache).run(specs)
    ):
        model = _model_for(mode, n, params, 250 * KB)
        out[mode].append(
            (rtt, result.throughput_txs / 1000.0, round(model.pipelining_stretch, 1))
        )
    return out


# ---------------------------------------------------------------------------
# Figure 8: latency vs bandwidth (§7.6)
# ---------------------------------------------------------------------------
def fig8_latency_bandwidth(
    bandwidths_mbps: Sequence[int] = (25, 50, 100, 1000),
    modes: Sequence[str] = ("kauri", "hotstuff-secp", "hotstuff-bls"),
    n: int = 100,
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
) -> Dict[str, List[Tuple[float, float]]]:
    """RTT fixed at 100 ms, bandwidth swept: (bandwidth, p50 latency ms).

    Includes the paper's analytical infinite-bandwidth floor as the
    ``"<mode>-infinite"`` entries.
    """
    cells = [
        (bw, mode, NetworkParams(f"bw{bw}", rtt=ms(100), bandwidth_bps=mbps(bw)))
        for bw in bandwidths_mbps
        for mode in modes
    ]
    specs = [
        ExperimentSpec(
            mode=mode,
            scenario=params,
            n=n,
            duration=adaptive_duration(mode, n, params, 250 * KB, scale=scale),
            max_commits=int(100 * scale) or 10,
            seed=seed,
        )
        for bw, mode, params in cells
    ]
    out: Dict[str, List[Tuple[float, float]]] = {mode: [] for mode in modes}
    for (bw, mode, _), result in zip(cells, _runner(jobs, use_cache).run(specs)):
        out[mode].append((float(bw), result.latency["p50"] * 1000.0))
    # Analytical floor: zero sending time, pure RTT + processing.
    import math

    inf_params = NetworkParams("inf", rtt=ms(100), bandwidth_bps=math.inf)
    for mode in modes:
        model = _model_for(mode, n, inf_params, 250 * KB)
        out[f"{mode}-infinite"] = [(math.inf, model.instance_latency() * 1000.0)]
    return out


# ---------------------------------------------------------------------------
# Figure 9: throughput vs latency under varying load (§7.7)
# ---------------------------------------------------------------------------
def fig9_throughput_latency(
    block_sizes_kb: Sequence[int] = (32, 64, 125, 250, 500, 1024),
    modes: Sequence[str] = ("kauri", "hotstuff-secp", "hotstuff-bls"),
    n: int = 100,
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
) -> Dict[str, List[Tuple[int, float, float]]]:
    """Global scenario: (block_kb, Ktx/s, p50 latency ms) per mode; Kauri's
    stretch follows the model per block size (§7.7)."""
    cells = [(kb, mode) for kb in block_sizes_kb for mode in modes]
    specs = [
        ExperimentSpec(
            mode=mode,
            scenario="global",
            n=n,
            block_size=kb * KB,
            duration=adaptive_duration(mode, n, GLOBAL, kb * KB, scale=scale),
            max_commits=int(150 * scale) or 15,
            seed=seed,
        )
        for kb, mode in cells
    ]
    out: Dict[str, List[Tuple[int, float, float]]] = {mode: [] for mode in modes}
    for (kb, mode), result in zip(cells, _runner(jobs, use_cache).run(specs)):
        out[mode].append(
            (kb, result.throughput_txs / 1000.0, result.latency["p50"] * 1000.0)
        )
    return out


# ---------------------------------------------------------------------------
# Figure 10: impact of tree height (§7.8)
# ---------------------------------------------------------------------------
def fig10_tree_height(
    bandwidths_mbps: Sequence[int] = (25, 50, 100, 1000),
    n: int = 100,
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
) -> Dict[str, List[Tuple[float, float, float, bool]]]:
    """RTT=100 ms: Kauri h=2 (f=10) vs h=3 (f=5) vs HotStuff variants.
    Rows: (bandwidth, Ktx/s, p50 latency ms, cpu_saturated)."""
    systems = [
        ("kauri-h2", "kauri", 2),
        ("kauri-h3", "kauri", 3),
        ("hotstuff-secp", "hotstuff-secp", 1),
        ("hotstuff-bls", "hotstuff-bls", 1),
    ]
    cells = [
        (bw, label, mode, height,
         NetworkParams(f"bw{bw}", rtt=ms(100), bandwidth_bps=mbps(bw)))
        for bw in bandwidths_mbps
        for label, mode, height in systems
    ]
    specs = [
        ExperimentSpec(
            mode=mode,
            scenario=params,
            n=n,
            height=max(height, 2) if mode_spec(mode).uses_tree else 2,
            duration=adaptive_duration(
                mode, n, params, 250 * KB, height=max(height, 1), scale=scale
            ),
            max_commits=int(150 * scale) or 15,
            seed=seed,
        )
        for bw, label, mode, height, params in cells
    ]
    out: Dict[str, List[Tuple[float, float, float, bool]]] = {
        label: [] for label, _, _ in systems
    }
    for (bw, label, _, _, _), result in zip(
        cells, _runner(jobs, use_cache).run(specs)
    ):
        out[label].append(
            (
                float(bw),
                result.throughput_txs / 1000.0,
                result.latency["p50"] * 1000.0,
                result.cpu_saturated,
            )
        )
    return out


# ---------------------------------------------------------------------------
# Beyond Figure 10: tree-depth scaling up to N = 1000
# ---------------------------------------------------------------------------
def fig_depth_scaling(
    sizes: Sequence[int] = (200, 400, 1000),
    heights: Sequence[int] = (2, 3, 4),
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
) -> Dict[str, List[Tuple[int, float, float, bool]]]:
    """Tree depth vs system size past the paper's largest plotted scale.

    Fig. 10 asks which tree height wins at which bandwidth with N fixed
    at 100; this sweep asks the same question along the *size* axis, up
    to N = 1000 on the global scenario -- the regime the bitmap signer
    sets, flyweight replica state, and batched event dispatch make
    simulable in minutes. Star-shaped HotStuff-bls rides along as the
    depth-1 contrast whose leader uplink the trees exist to relieve.
    Rows per system: (n, Ktx/s, p50 latency ms, cpu_saturated).
    """
    systems = [(f"kauri-h{height}", "kauri", height) for height in heights]
    systems.append(("hotstuff-bls", "hotstuff-bls", 1))
    cells = [
        (n, label, mode, height)
        for n in sizes
        for label, mode, height in systems
    ]
    specs = [
        ExperimentSpec(
            mode=mode,
            scenario=GLOBAL,
            n=n,
            height=max(height, 2) if mode_spec(mode).uses_tree else 2,
            duration=adaptive_duration(
                mode, n, GLOBAL, 250 * KB, height=max(height, 1), scale=scale
            ),
            max_commits=int(60 * scale) or 6,
            seed=seed,
        )
        for n, label, mode, height in cells
    ]
    out: Dict[str, List[Tuple[int, float, float, bool]]] = {
        label: [] for label, _, _ in systems
    }
    for (n, label, _, _), result in zip(
        cells, _runner(jobs, use_cache).run(specs)
    ):
        out[label].append(
            (
                n,
                result.throughput_txs / 1000.0,
                result.latency["p50"] * 1000.0,
                result.cpu_saturated,
            )
        )
    return out


# ---------------------------------------------------------------------------
# Figure 11: heterogeneous networks (§7.9)
# ---------------------------------------------------------------------------
def fig11_heterogeneous(
    modes: Sequence[str] = ("kauri", "kauri-np", "hotstuff-secp", "hotstuff-bls"),
    per_cluster: int = 10,
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
) -> List[ExperimentResult]:
    """The ResilientDB deployment: N=60 over six geo clusters."""
    clusters = resilientdb_clusters(per_cluster=per_cluster)
    specs = [
        ExperimentSpec(
            mode=mode,
            scenario=clusters,
            n=clusters.n,
            duration=scale * 120.0,
            max_commits=int(200 * scale) or 20,
            seed=seed,
        )
        for mode in modes
    ]
    return _runner(jobs, use_cache).run(specs)


# ---------------------------------------------------------------------------
# Figure 12: reconfiguration under faults (§7.10)
# ---------------------------------------------------------------------------
@dataclass
class ReconfigRun:
    """One Figure 12 sub-experiment."""

    label: str
    mode: str
    fault_time: float
    faulty: List[int]
    timeseries: List[Tuple[float, float]]
    recovery_gap: Optional[float]
    max_view: int
    final_is_star: bool
    prefault_txs: float
    postfault_txs: float


def fig12_reconfiguration(
    case: str,
    mode: str = "kauri",
    n: int = 100,
    scenario: str = "global",
    fault_time: float = 40.0,
    duration: float = 100.0,
    bucket: float = 2.0,
    seed: int = 0,
) -> ReconfigRun:
    """Inject §7.10's fault patterns and record the throughput time series.

    ``case`` is one of:

    - ``"leader"`` -- one faulty leader (Fig. 12a);
    - ``"three-leaders"`` -- three consecutive faulty leaders (Fig. 12b);
    - ``"internal+leaders"`` -- f faulty processes placed to poison every
      bin and then the first star leaders, forcing the full m+f+1 walk
      (Fig. 12c, "Kauri internal+leaders");
    - ``"f-leaders"`` -- f consecutive tree roots / star leaders (Fig. 12c,
      "Kauri leaders").
    """
    from repro.runtime.cluster import Cluster

    cluster = Cluster(n=n, mode=mode, scenario=scenario, seed=seed)
    policy = cluster.policy
    f = cluster.f
    faulty: List[int] = []

    def add(node: int) -> None:
        if node not in faulty and len(faulty) < f:
            faulty.append(node)

    if case == "leader":
        add(policy.leader_of(0))
    elif case == "three-leaders":
        for view in range(3):
            add(policy.leader_of(view))
    elif case == "f-leaders":
        view = 0
        cycle = getattr(policy, "num_bins", 0) + n
        while len(faulty) < f and view < 2 * cycle:
            add(policy.leader_of(view))
            view += 1
    elif case == "internal+leaders":
        # The paper's worst case (§7.10): faulty processes block every tree
        # configuration (as internal nodes -- the root is an internal node
        # too, and one faulty root blocks its whole tree) and then serve as
        # the first star leaders, forcing the full m + f + 1 walk. A single
        # non-root internal node cannot block a tree here: its subtree only
        # cuts ~n/m processes, leaving the N-f quorum intact -- blocking
        # via non-root internals costs ~4 faults per tree, which exceeds
        # the f budget across all bins, so roots are the binding choice.
        m = getattr(policy, "num_bins", 0)
        for view in range(m):
            add(policy.configuration(view).root)
        view = m
        while len(faulty) < f and view < m + n:
            add(policy.leader_of(view))
            view += 1
    else:
        raise ValueError(f"unknown case {case!r}")

    for node in faulty:
        cluster.crash_at(node, fault_time)
    cluster.start()
    cluster.run(duration=duration)
    cluster.check_agreement()

    metrics = cluster.metrics
    max_view = metrics.max_view
    final = policy.configuration(max_view)
    recovery = metrics.commit_gap_after(fault_time)
    return ReconfigRun(
        label=case,
        mode=mode,
        fault_time=fault_time,
        faulty=faulty,
        timeseries=metrics.timeseries_txs(bucket=bucket),
        recovery_gap=recovery,
        max_view=max_view,
        final_is_star=final.is_star,
        prefault_txs=metrics.throughput_txs(start=fault_time * 0.25, end=fault_time),
        postfault_txs=metrics.throughput_txs(
            start=fault_time + (recovery or 0.0), end=duration
        ),
    )
