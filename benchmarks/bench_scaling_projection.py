"""Scaling projection to 1000 validators (§1's motivation).

The paper opens with Diem's requirement to "initially support at least 100
validators and ... evolve over time to support 500-1,000 validators". The
simulator validates the §4.3 model up to N=400 (see
bench_model_validation.py); this bench extends the *validated model* to
N=1000 across systems and tree heights, reproducing the argument that only
pipelined trees keep usable throughput at that scale -- and showing the
paper's own remedy (§7.8: grow the tree height) kicking in.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.config import GLOBAL, KB, ProtocolConfig, default_root_fanout
from repro.core.perfmodel import PerfModel
from repro.crypto.costs import BLS_COSTS, SECP_COSTS

SIZES = (100, 200, 400, 700, 1000)


def project():
    config = ProtocolConfig()
    rows = []
    for n in SIZES:
        star = PerfModel.for_star(n, GLOBAL, config.block_size, SECP_COSTS)
        entries = {
            "hotstuff-secp": star.expected_throughput_txs(config),
        }
        for height in (2, 3):
            fanout = default_root_fanout(n, height)
            model = PerfModel.for_tree_shape(
                n, height, fanout, GLOBAL, config.block_size, BLS_COSTS
            )
            entries[f"kauri-h{height}"] = model.expected_throughput_txs(config)
        rows.append(
            (
                n,
                round(entries["hotstuff-secp"], 1),
                round(entries["kauri-h2"], 1),
                round(entries["kauri-h3"], 1),
                round(entries["kauri-h3"] / max(entries["hotstuff-secp"], 1e-9), 1),
            )
        )
    return rows


def test_scaling_projection_to_1000_validators(benchmark, save_table):
    rows = run_once(benchmark, project)
    save_table(
        "scaling_projection",
        format_table(
            ("N", "HotStuff-secp tx/s", "Kauri h=2 tx/s", "Kauri h=3 tx/s",
             "h=3 speedup"),
            rows,
            title="Model projection, global scenario, 250 KB blocks",
        ),
    )
    by_n = {row[0]: row for row in rows}
    # HotStuff collapses towards zero at 1000 validators
    assert by_n[1000][1] < 0.1 * by_n[100][1]
    # deeper trees recover throughput at scale (§7.8's remedy)
    assert by_n[1000][3] > by_n[1000][2]
    # the speedup keeps growing with N
    speedups = [row[4] for row in rows]
    assert speedups == sorted(speedups)
    assert by_n[1000][4] > 50
