"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``    -- run one deployment and print (or emit as JSON) its metrics.
- ``model``  -- evaluate the §4.3 performance model for a deployment.
- ``tune``   -- automatic configuration search (§8 future work).
- ``table``  -- regenerate Table 1 or Table 2.
- ``fig``    -- regenerate an evaluation figure's series (fig5..fig12).
- ``scenarios`` -- list / show / validate / run the declarative scenario
  packs checked in under ``scenarios/``.
- ``capacity`` -- sweep offered load through the workload engine and
  report how many users fit a topology (the saturation knee).
- ``perf``   -- run the hot-path microbenchmarks (BENCH_core.json).
- ``report`` -- run one deployment with observability on and emit its
  RunReport JSON (per-node utilization, saturation flags, phase spans).

Examples::

    python -m repro run --mode kauri --scenario global --n 100 --duration 60
    python -m repro model --n 400 --scenario global
    python -m repro tune --n 400 --scenario global --objective throughput
    python -m repro table 2
    python -m repro fig 12a
    python -m repro scenarios validate
    python -m repro scenarios run smoke --report run_report.json
    python -m repro perf --quick --check BENCH_core.json
    python -m repro report --mode kauri --n 100 --duration 30 --validate
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import List, Optional

from repro.analysis import FIGURES, format_table
from repro.config import KB, SCENARIOS, ProtocolConfig, resilientdb_clusters
from repro.core.modes import MODES

#: Every registered mode, straight from the registry -- adding a ModeSpec
#: automatically surfaces it in ``run``/``report`` and in ``repro modes``.
MODE_CHOICES = sorted(MODES)


def _add_run_parser(subparsers) -> None:
    p = subparsers.add_parser("run", help="run one deployment")
    p.add_argument("--mode", default="kauri", choices=MODE_CHOICES)
    p.add_argument("--scenario", default="global",
                   choices=[*SCENARIOS, "heterogeneous"])
    p.add_argument("--n", type=int, default=100)
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument("--max-commits", type=int, default=None)
    p.add_argument("--block-size-kb", type=int, default=250)
    p.add_argument("--stretch", type=float, default=None,
                   help="pipelining stretch; default follows the model")
    p.add_argument("--adaptive-stretch", action="store_true",
                   help="adapt the stretch at runtime (§6 future work)")
    p.add_argument("--height", type=int, default=2)
    p.add_argument("--lanes", type=int, default=1, help="uplink lanes per process")
    p.add_argument("--crash-leader-at", type=float, default=None,
                   help="crash the view-0 leader at this time")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true", help="emit the result as JSON")


def _cmd_run(args) -> int:
    from repro.runtime.cluster import Cluster
    from repro.runtime.experiment import run_experiment

    scenario = (
        resilientdb_clusters() if args.scenario == "heterogeneous" else args.scenario
    )
    crashes = []
    if args.crash_leader_at is not None:
        probe = Cluster(
            n=None if args.scenario == "heterogeneous" else args.n,
            mode=args.mode,
            scenario=scenario,
        )
        crashes = [(probe.policy.leader_of(0), args.crash_leader_at)]
    config = ProtocolConfig(
        block_size=args.block_size_kb * KB,
        stretch=args.stretch,
        adaptive_stretch=args.adaptive_stretch,
    )
    result = run_experiment(
        mode=args.mode,
        scenario=scenario,
        n=None if args.scenario == "heterogeneous" else args.n,
        duration=args.duration,
        max_commits=args.max_commits,
        height=args.height,
        seed=args.seed,
        config=config,
        crashes=crashes,
        uplink_lanes=args.lanes,
    )
    if args.json:
        print(json.dumps(dataclasses.asdict(result), indent=2, default=str))
        return 0
    print(f"mode={result.mode} scenario={result.scenario} n={result.n}")
    print(f"simulated {result.duration:.1f}s, committed {result.committed_blocks} blocks")
    print(f"throughput : {result.throughput_txs:,.0f} tx/s "
          f"({result.throughput_blocks:.2f} blocks/s)")
    print(f"latency    : p50 {result.latency['p50']:.3f}s, "
          f"p95 {result.latency['p95']:.3f}s")
    print(f"view changes: {result.view_changes} (max view {result.max_view})")
    if result.fast_commits or result.fast_fallbacks:
        print(f"fast path  : {result.fast_commits} fast commits, "
              f"{result.fast_fallbacks} fallbacks")
    if result.cpu_saturated:
        print("NOTE: leader CPU saturated "
              f"(utilization {result.leader_cpu_utilization:.0%})")
    return 0


def _add_model_parser(subparsers) -> None:
    p = subparsers.add_parser("model", help="evaluate the §4.3 performance model")
    p.add_argument("--n", type=int, default=100)
    p.add_argument("--scenario", default="global", choices=list(SCENARIOS))
    p.add_argument("--block-size-kb", type=int, default=250)
    p.add_argument("--lanes", type=int, default=1)


def _cmd_model(args) -> int:
    from repro.config import default_root_fanout
    from repro.core.perfmodel import PerfModel
    from repro.crypto.costs import BLS_COSTS, SECP_COSTS

    params = SCENARIOS[args.scenario]
    block = args.block_size_kb * KB
    rows = []
    systems = [("hotstuff-secp (star)", 1, args.n - 1, SECP_COSTS)]
    for height in (2, 3):
        try:
            fanout = default_root_fanout(args.n, height)
            systems.append((f"kauri h={height}", height, fanout, BLS_COSTS))
        except Exception:
            continue
    for label, height, fanout, costs in systems:
        try:
            model = PerfModel.for_tree_shape(
                args.n, height, fanout, params, block, costs
            ) if height > 1 else PerfModel.for_star(args.n, params, block, costs)
        except Exception:
            continue
        rows.append(
            (
                label,
                fanout,
                round(model.sending_time * 1000, 1),
                round(model.processing_time * 1000, 1),
                round(model.remaining_time * 1000, 1),
                round(model.pipelining_stretch, 1),
                round(model.max_speedup, 1),
                round(model.instance_latency() * 1000, 0),
            )
        )
    print(
        format_table(
            ("System", "Fanout", "Send (ms)", "Proc (ms)", "Remain (ms)",
             "Stretch", "Max speedup", "Instance lat (ms)"),
            rows,
            title=f"Performance model: N={args.n}, {args.scenario}, "
                  f"{args.block_size_kb} KB blocks",
        )
    )
    return 0


def _add_tune_parser(subparsers) -> None:
    p = subparsers.add_parser("tune", help="automatic configuration search")
    p.add_argument("--n", type=int, default=100)
    p.add_argument("--scenario", default="global",
                   choices=[*SCENARIOS, "heterogeneous"])
    p.add_argument("--objective", default="throughput",
                   choices=["throughput", "latency", "balanced"])
    p.add_argument("--block-size-kb", type=int, default=250)


def _cmd_tune(args) -> int:
    from repro.core.autotune import tune_heterogeneous, tune_homogeneous

    config = ProtocolConfig(block_size=args.block_size_kb * KB)
    if args.scenario == "heterogeneous":
        placement = tune_heterogeneous(resilientdb_clusters(), config=config)
        print(f"leader cluster : {placement.leader_cluster}")
        print(f"tree root      : process {placement.tree.root}")
        print(f"stretch        : {placement.stretch:.1f}")
        print(f"expected round : {placement.expected_round_time * 1000:.0f} ms")
        return 0
    best = tune_homogeneous(
        args.n, SCENARIOS[args.scenario], config=config, objective=args.objective
    )
    print(f"recommended    : {best.describe()}")
    print(f"objective      : {args.objective}")
    return 0


def _add_table_parser(subparsers) -> None:
    p = subparsers.add_parser("table", help="regenerate a paper table")
    p.add_argument("number", choices=["1", "2"])
    p.add_argument("--n", type=int, default=100)
    p.add_argument("--measured", action="store_true",
                   help="table 2 only: simulate the grid through the sweep "
                        "engine and report measured vs expected speedups")
    p.add_argument("--scale", type=float, default=0.3,
                   help="horizon scale for --measured runs")
    _add_engine_args(p)


def _cmd_table(args) -> int:
    from repro.analysis.tables import (
        TABLE1_HEADERS,
        TABLE2_HEADERS,
        TABLE2_MEASURED_HEADERS,
        table1_rows,
        table2_measured_rows,
        table2_rows,
    )

    if args.number == "1":
        print(format_table(TABLE1_HEADERS, table1_rows(n=args.n), title="Table 1"))
    elif args.measured:
        rows = table2_measured_rows(
            scale=args.scale, jobs=args.jobs, use_cache=not args.no_cache
        )
        print(format_table(TABLE2_MEASURED_HEADERS, rows,
                           title="Table 2 (measured)"))
    else:
        print(format_table(TABLE2_HEADERS, table2_rows(), title="Table 2"))
    return 0


def _add_modes_parser(subparsers) -> None:
    subparsers.add_parser(
        "modes", help="list the registered protocol modes"
    )


def _cmd_modes(args) -> int:
    from repro.core.modes import PROTOCOLS

    rows = [
        (spec.name, spec.topology, spec.scheme, spec.pacing, spec.protocol,
         PROTOCOLS[spec.protocol]["kind"])
        for _, spec in sorted(MODES.items())
    ]
    print(format_table(
        ("Mode", "Topology", "Scheme", "Pacing", "Protocol", "Kind"),
        rows,
        title="Registered modes",
    ))
    return 0


#: Every figure the CLI can regenerate, straight from the FIGURES registry
#: in :mod:`repro.analysis.figures` -- adding a figure there automatically
#: surfaces it here, the way ``--mode`` choices derive from MODES.
FIG_CHOICES = list(FIGURES)


def _add_engine_args(p) -> None:
    """Sweep-engine knobs shared by grid-shaped commands."""
    p.add_argument("--jobs", type=int, default=None,
                   help="parallel worker processes for independent cells "
                        "(default: $REPRO_SWEEP_JOBS or 1)")
    p.add_argument("--no-cache", action="store_true",
                   help="always re-simulate; skip the on-disk result cache "
                        "under benchmarks/results/.cache/")


def _add_fig_parser(subparsers) -> None:
    p = subparsers.add_parser("fig", help="regenerate an evaluation figure")
    p.add_argument("figure", choices=FIG_CHOICES)
    p.add_argument("--scale", type=float, default=0.3,
                   help="horizon scale; 1.0 = benchmark depth (default 0.3)")
    _add_engine_args(p)


def _cmd_fig(args) -> int:
    from repro.analysis import (
        fig5_stretch_sweep,
        fig7_rtt_sweep,
        fig8_latency_bandwidth,
        fig9_throughput_latency,
        fig10_tree_height,
        fig11_heterogeneous,
        fig12_reconfiguration,
        fig_depth_scaling,
    )

    scale = args.scale
    engine = {"jobs": args.jobs, "use_cache": not args.no_cache}
    if args.figure == "depth":
        data = fig_depth_scaling(scale=scale, **engine)
        rows = [
            (label, n, ktx, lat, "SAT" if sat else "")
            for label, series in data.items()
            for n, ktx, lat, sat in series
        ]
        print(format_table(
            ("System", "N", "Ktx/s", "p50 lat (ms)", "CPU"),
            rows,
            title="Tree-depth scaling to N=1000 (beyond Figure 10)",
        ))
        return 0
    if args.figure == "3":
        from repro.analysis import extract_spans, max_concurrency, render_gantt
        from repro.net.trace import MessageTrace
        from repro.runtime.cluster import Cluster

        for mode in ("kauri", "hotstuff-bls", "kauri-np"):
            cluster = Cluster(n=31, mode=mode, scenario="regional")
            trace = MessageTrace(capacity=300_000)
            cluster.network.observers.append(trace)
            cluster.start()
            cluster.run(duration=60.0 * max(scale, 0.2), max_commits=30)
            spans = extract_spans(trace, cluster.policy.leader_of(0))
            print(f"\n--- {mode} (peak in-flight: {max_concurrency(spans)}) ---")
            print(render_gantt(spans[2:], max_rows=8))
        return 0
    if args.figure == "6":
        from repro.analysis import fig6_kudzu_headtohead, saturation_marker

        results = fig6_kudzu_headtohead(scale=scale, **engine)
        rows = [
            (r.mode, r.scenario, r.n,
             round(r.throughput_txs / 1000, 2),
             round(r.latency["p50"] * 1000, 0),
             r.fast_commits or "",
             saturation_marker(r))
            for r in results
        ]
        print(format_table(
            ("System", "Scenario", "N", "Ktx/s", "p50 lat (ms)",
             "Fast commits", "CPU"),
            rows,
            title="Figure 6: Kauri vs HotStuff-bls vs Kudzu",
        ))
        return 0
    if args.figure == "5":
        data = fig5_stretch_sweep(scale=scale, **engine)
        rows = [
            (f"{kb}KB", stretch, ktx)
            for kb, series in sorted(data.items())
            for stretch, ktx in series
        ]
        print(format_table(("Block", "Stretch", "Ktx/s"), rows, title="Figure 5"))
    elif args.figure == "7":
        data = fig7_rtt_sweep(scale=scale, **engine)
        rows = [
            (mode, rtt, ktx, stretch)
            for mode, series in data.items()
            for rtt, ktx, stretch in series
        ]
        print(format_table(("System", "RTT (ms)", "Ktx/s", "Stretch"), rows,
                           title="Figure 7"))
    elif args.figure == "8":
        data = fig8_latency_bandwidth(scale=scale, **engine)
        rows = [
            (mode, bw, lat)
            for mode, series in sorted(data.items())
            for bw, lat in series
        ]
        print(format_table(("System", "Mb/s", "p50 latency (ms)"), rows,
                           title="Figure 8"))
    elif args.figure == "9":
        data = fig9_throughput_latency(scale=scale, **engine)
        rows = [
            (mode, kb, ktx, lat)
            for mode, series in data.items()
            for kb, ktx, lat in series
        ]
        print(format_table(("System", "Block (KB)", "Ktx/s", "p50 lat (ms)"),
                           rows, title="Figure 9"))
    elif args.figure == "10":
        data = fig10_tree_height(scale=scale, **engine)
        rows = [
            (label, bw, ktx, lat, "SAT" if sat else "")
            for label, series in data.items()
            for bw, ktx, lat, sat in series
        ]
        print(format_table(("System", "Mb/s", "Ktx/s", "p50 lat (ms)", "CPU"),
                           rows, title="Figure 10"))
    elif args.figure == "11":
        results = fig11_heterogeneous(scale=scale, **engine)
        rows = [
            (r.mode, round(r.throughput_txs / 1000, 2),
             round(r.latency["p50"] * 1000, 0))
            for r in results
        ]
        print(format_table(("System", "Ktx/s", "p50 lat (ms)"), rows,
                           title="Figure 11"))
    else:
        case = {"12a": "leader", "12b": "three-leaders", "12c": "internal+leaders"}[
            args.figure
        ]
        scenario = "national" if args.figure == "12c" else "global"
        duration = {"12a": 100.0, "12b": 160.0, "12c": 700.0}[args.figure]
        run = fig12_reconfiguration(
            case, scenario=scenario, duration=duration, bucket=5.0
        )
        print(format_table(("t (s)", "tx/s"), run.timeseries,
                           title=f"Figure {args.figure}: {case}"))
        print(f"reconfigurations: {run.max_view}; "
              f"final topology: {'star' if run.final_is_star else 'tree'}; "
              f"recovery gap: {run.recovery_gap}")
    return 0


def _add_sweep_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "sweep", help="grid of runs over modes / sizes / block sizes"
    )
    p.add_argument("--modes", default="kauri,hotstuff-secp",
                   help="comma-separated mode list")
    p.add_argument("--sizes", default="31", help="comma-separated N list")
    p.add_argument("--block-sizes-kb", default="250",
                   help="comma-separated block sizes (KB)")
    p.add_argument("--scenario", default="global", choices=list(SCENARIOS))
    p.add_argument("--duration", type=float, default=None,
                   help="simulated seconds per cell; default adapts per cell")
    p.add_argument("--max-commits", type=int, default=60)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true")
    _add_engine_args(p)


def _cmd_sweep(args) -> int:
    from repro.analysis.figures import adaptive_duration
    from repro.runtime.sweep import ExperimentSpec, SweepRunner

    params = SCENARIOS[args.scenario]
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    sizes = [int(s) for s in args.sizes.split(",")]
    blocks = [int(b) for b in args.block_sizes_kb.split(",")]
    specs = [
        ExperimentSpec(
            mode=mode,
            scenario=args.scenario,
            n=n,
            block_size=block_kb * KB,
            duration=(
                args.duration
                if args.duration is not None
                else adaptive_duration(mode, n, params, block_kb * KB)
            ),
            max_commits=args.max_commits,
            seed=args.seed,
        )
        for n in sizes
        for mode in modes
        for block_kb in blocks
    ]
    runner = SweepRunner(jobs=args.jobs, cache=not args.no_cache)
    results = runner.run(specs)
    if args.json:
        print(json.dumps(
            [dataclasses.asdict(r) for r in results], indent=2, default=str
        ))
        return 0
    rows = [
        (
            r.scenario,
            r.n,
            r.mode,
            r.block_size // KB,
            round(r.throughput_txs, 1),
            round(r.latency["p50"], 3),
            "SAT" if r.cpu_saturated else "",
        )
        for r in results
    ]
    print(
        format_table(
            ("Scenario", "N", "System", "Block KB", "tx/s", "p50 (s)", "CPU"),
            rows,
            title="Sweep",
        )
    )
    stats = runner.last_stats
    print(f"[{stats.backend} x{stats.jobs}: {stats.executed} simulated, "
          f"{stats.cache_hits} cached]")
    return 0


def _scenario_label(scenario) -> str:
    """Display name for a spec's scenario (str / NetworkParams / ClusterParams)."""
    return scenario if isinstance(scenario, str) else scenario.name


def _add_scenarios_parser(subparsers) -> None:
    from repro.scenarios import pack_names

    try:
        names = sorted(pack_names())
    except Exception:  # unreadable catalog dir: accept any name, fail late
        names = []
    # Empty catalog -> no choices restriction; load_pack gives the precise
    # "unknown pack" error (with the catalog location) at run time.
    choices = names or None
    p = subparsers.add_parser(
        "scenarios",
        help="list / show / validate / run declarative scenario packs",
    )
    sub = p.add_subparsers(dest="scenarios_command", required=True)
    sub.add_parser("list", help="list every pack in the catalog")
    show = sub.add_parser("show", help="show a pack's axes and compiled cells")
    show.add_argument("name", choices=choices, metavar="PACK")
    validate = sub.add_parser(
        "validate", help="dry-run compile packs; exit 1 on any error"
    )
    validate.add_argument("name", nargs="?", choices=choices, metavar="PACK",
                          help="one pack; default: every pack in the catalog")
    run = sub.add_parser("run", help="compile a pack and run its grid")
    run.add_argument("name", choices=choices, metavar="PACK")
    run.add_argument("--scale", type=float, default=1.0,
                     help="horizon/budget scale (default 1.0)")
    run.add_argument("--seed", type=int, default=None,
                     help="override every cell's seed")
    run.add_argument("--json", action="store_true",
                     help="emit the results as JSON")
    run.add_argument("--report", default=None, metavar="PATH",
                     help="run with observability on and write the first "
                          "cell's RunReport JSON here")
    _add_engine_args(run)


def _cmd_scenarios(args) -> int:
    from repro.scenarios import (
        PackError,
        catalog,
        compile_pack,
        load_pack,
        load_pack_file,
        validate_pack,
    )

    if args.scenarios_command == "list":
        rows = []
        for name, path in catalog().items():
            pack = load_pack_file(path)
            grid = validate_pack(pack)
            rows.append(
                (name, len(grid.cells), " x ".join(pack.axis_names) or "-",
                 pack.title)
            )
        print(format_table(("Pack", "Cells", "Axes", "Title"), rows,
                           title="Scenario packs"))
        return 0

    if args.scenarios_command == "show":
        pack = load_pack(args.name)
        grid = compile_pack(pack)
        print(f"{pack.name}: {pack.title}")
        if pack.description:
            print(pack.description)
        print(f"source: {pack.source}")
        if pack.defaults:
            print("defaults: " + ", ".join(
                f"{key}={value!r}" for key, value in pack.defaults.items()
            ))
        for pgrid in pack.grids:
            for axis, values in pgrid.axes:
                print(f"axis {axis}: {len(values)} values")
        rows = [
            (
                cell.index,
                cell.label or "-",
                cell.spec.mode,
                _scenario_label(cell.spec.scenario),
                cell.spec.n,
                "-" if cell.spec.block_size is None
                else cell.spec.block_size // KB,
                round(cell.spec.duration, 1),
                cell.spec.max_commits,
            )
            for cell in grid.cells
        ]
        print(format_table(
            ("#", "Label", "Mode", "Scenario", "N", "Block KB",
             "Duration (s)", "Commits"),
            rows,
            title=f"{len(grid.cells)} cells at scale 1.0",
        ))
        return 0

    if args.scenarios_command == "validate":
        targets = (
            {args.name: catalog()[args.name]} if args.name else catalog()
        )
        failures = 0
        for name, path in targets.items():
            try:
                grid = validate_pack(load_pack_file(path))
            except PackError as exc:
                failures += 1
                print(f"FAIL {name}: {exc}", file=sys.stderr)
            else:
                print(f"ok   {name} ({len(grid.cells)} cells)")
        if failures:
            print(f"{failures} of {len(targets)} packs failed validation",
                  file=sys.stderr)
            return 1
        print(f"all {len(targets)} packs validate")
        return 0

    # run
    from repro.runtime.sweep import SweepRunner

    grid = compile_pack(
        load_pack(args.name),
        scale=args.scale,
        seed=args.seed,
        observability=True if args.report else None,
    )
    runner = SweepRunner(jobs=args.jobs, cache=not args.no_cache)
    results = runner.run(grid.specs)
    if args.json:
        print(json.dumps(
            [dataclasses.asdict(r) for r in results], indent=2, default=str
        ))
    else:
        rows = [
            (
                cell.label or "-",
                r.mode,
                _scenario_label(r.scenario),
                r.n,
                round(r.throughput_txs / 1000, 2),
                round(r.latency["p50"] * 1000, 0),
                "SAT" if r.cpu_saturated else "",
            )
            for cell, r in zip(grid.cells, results)
        ]
        print(format_table(
            ("Label", "Mode", "Scenario", "N", "Ktx/s", "p50 lat (ms)", "CPU"),
            rows,
            title=f"{grid.pack.title} (scale {args.scale})",
        ))
        stats = runner.last_stats
        print(f"[{stats.backend} x{stats.jobs}: {stats.executed} simulated, "
              f"{stats.cache_hits} cached]")
    if args.report:
        from repro.obs import report_json, validate_report

        report = results[0].report
        with open(args.report, "w") as fh:
            fh.write(report_json(report))
        print(f"wrote {args.report}")
        problems = validate_report(report)
        if problems:
            for problem in problems:
                print(f"SCHEMA: {problem}", file=sys.stderr)
            return 1
    return 0


def _add_capacity_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "capacity",
        help="how many users fit this topology: sweep offered load through "
             "the workload engine and report the saturation knee",
    )
    p.add_argument("--mode", default="kauri", choices=MODE_CHOICES)
    p.add_argument("--scenario", default="national", choices=list(SCENARIOS))
    p.add_argument("--n", type=int, default=7)
    p.add_argument("--height", type=int, default=2)
    p.add_argument("--users", type=int, default=1_000_000,
                   help="target client population (the sweep's top load "
                        "level is --max-load-factor times this)")
    p.add_argument("--rate-per-user", type=float, default=0.001,
                   help="transactions per second per user")
    p.add_argument("--points", type=int, default=5,
                   help="load levels swept up to users * max-load-factor")
    p.add_argument("--max-load-factor", type=float, default=2.0)
    p.add_argument("--duration", type=float, default=15.0,
                   help="simulated seconds per load level")
    p.add_argument("--capacity-txs", type=int, default=None,
                   help="bounded leader mempool (admission control); "
                        "default unbounded")
    p.add_argument("--policy", default="drop", choices=["drop", "defer"],
                   help="mempool overflow policy")
    p.add_argument("--slo-ms", type=float, default=1000.0,
                   help="end-to-end latency SLO, judged at p99")
    p.add_argument("--goodput-threshold", type=float, default=0.9,
                   help="knee rule: commit at least this fraction of "
                        "generated load with the SLO met")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true")
    p.add_argument("--report", default=None, metavar="PATH",
                   help="write the knee cell's schema-validated RunReport "
                        "JSON here")
    _add_engine_args(p)


def _cmd_capacity(args) -> int:
    from repro.runtime.sweep import ExperimentSpec, SweepRunner
    from repro.runtime.workload import (
        ClientClassSpec,
        WorkloadSpec,
        saturation_knee,
    )

    if args.points < 1:
        print("error: --points must be >= 1", file=sys.stderr)
        return 2
    factors = [
        args.max_load_factor * (index + 1) / args.points
        for index in range(args.points)
    ]
    populations = [max(1, int(args.users * factor)) for factor in factors]
    specs = [
        ExperimentSpec(
            mode=args.mode,
            scenario=args.scenario,
            n=args.n,
            height=args.height,
            duration=args.duration,
            seed=args.seed,
            observability=bool(args.report),
            workload=WorkloadSpec(
                classes=(
                    ClientClassSpec(
                        name="users",
                        population=population,
                        rate_per_user=args.rate_per_user,
                        slo_ms=args.slo_ms,
                        slo_percentile=99.0,
                    ),
                ),
                capacity_txs=args.capacity_txs,
                policy=args.policy,
            ),
        )
        for population in populations
    ]
    runner = SweepRunner(jobs=args.jobs, cache=not args.no_cache)
    results = runner.run(specs)

    points = []
    for population, result in zip(populations, results):
        totals = result.workload["totals"]
        generated = totals["generated"]
        latency = totals["latency"]
        goodput = totals["committed"] / generated if generated else 0.0
        points.append({
            "users": population,
            "offered_rate_txs": totals["offered_rate_txs"],
            "generated": generated,
            "committed": totals["committed"],
            "dropped": totals["dropped"],
            "drop_rate": totals["drop_rate"],
            "goodput": goodput,
            "latency": latency,
            "slo_met": latency["p99"] <= args.slo_ms / 1000.0,
        })
    knee = saturation_knee(points, goodput_threshold=args.goodput_threshold)

    if args.json:
        print(json.dumps({"points": points, "knee": knee}, indent=2))
    else:
        rows = [
            (
                f"{point['users']:,}",
                round(point["offered_rate_txs"], 1),
                point["committed"],
                round(point["latency"]["p50"] * 1000, 1),
                round(point["latency"]["p99"] * 1000, 1),
                round(point["latency"]["p999"] * 1000, 1),
                f"{point['drop_rate']:.1%}",
                "yes" if point["slo_met"] else "NO",
                "<- knee" if index == knee else "",
            )
            for index, point in enumerate(points)
        ]
        print(format_table(
            ("Users", "Offered tx/s", "Committed", "p50 ms", "p99 ms",
             "p999 ms", "Drops", "SLO", ""),
            rows,
            title=f"Capacity sweep: {args.mode} n={args.n} "
                  f"({args.scenario}), SLO p99 <= {args.slo_ms:.0f} ms",
        ))
        if knee >= 0:
            point = points[knee]
            print(f"saturation knee: ~{point['users']:,} users "
                  f"({point['offered_rate_txs']:,.0f} tx/s offered) fit this "
                  f"topology within the SLO")
        else:
            print("saturation knee: none of the tested load levels met the "
                  "goodput/SLO rule; try a lighter load or a bigger topology")
        stats = runner.last_stats
        print(f"[{stats.backend} x{stats.jobs}: {stats.executed} simulated, "
              f"{stats.cache_hits} cached]")

    if args.report:
        from repro.obs import report_json, validate_report

        report = results[knee if knee >= 0 else 0].report
        with open(args.report, "w") as fh:
            fh.write(report_json(report))
        print(f"wrote {args.report}")
        problems = validate_report(report)
        if problems:
            for problem in problems:
                print(f"SCHEMA: {problem}", file=sys.stderr)
            return 1
    return 0


def _add_perf_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "perf", help="run the hot-path microbenchmarks"
    )
    p.add_argument("--quick", action="store_true",
                   help="shrunken workloads for CI smoke runs")
    p.add_argument("--out", default="BENCH_core.json",
                   help="where to write results (default: BENCH_core.json)")
    p.add_argument("--check", default=None, metavar="BASELINE",
                   help="compare against a committed BENCH json; exit 1 on "
                        "a regression beyond --tolerance")
    p.add_argument("--tolerance", type=float, default=0.30,
                   help="allowed fractional regression for --check "
                        "(default 0.30; wall-clock benches are noisy)")
    p.add_argument("--mem-tolerance", type=float, default=0.15,
                   help="allowed fractional peak-memory growth for --check "
                        "(default 0.15; traced bytes are stable across "
                        "machines, so the budget is tighter)")
    p.add_argument("--bench", action="append", default=None, metavar="NAME",
                   help="run only this bench (repeatable); default: all")
    p.add_argument("--profile", action="store_true",
                   help="run the benches under cProfile and write the "
                        "top-25 cumulative hotspots next to --out")
    p.add_argument("--seed", type=int, default=0)


def _profile_path(out: str) -> str:
    """``BENCH_core.json`` -> ``BENCH_core.profile.txt`` (same directory)."""
    root, _ext = os.path.splitext(out)
    return f"{root}.profile.txt"


def _cmd_perf(args) -> int:
    from repro.perf import (
        compare_to_baseline,
        load_results,
        run_benches,
        write_results,
    )

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        results = run_benches(quick=args.quick, seed=args.seed, only=args.bench)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    finally:
        if profiler is not None:
            profiler.disable()
    if profiler is not None:
        import io
        import pstats

        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(25)
        profile_path = _profile_path(args.out)
        with open(profile_path, "w") as fh:
            fh.write(buffer.getvalue())
        print(f"wrote {profile_path}")
    rows = [
        (name, f"{r.value:,.1f}", r.unit, r.n,
         "-" if r.peak_mb is None else f"{r.peak_mb:,.1f}", r.seed)
        for name, r in sorted(results.items())
    ]
    print(format_table(
        ("Bench", "Value", "Unit", "N", "Peak MiB", "Seed"),
        rows,
        title="Hot-path microbenchmarks" + (" (quick)" if args.quick else ""),
    ))
    to_write = results
    if args.bench and os.path.exists(args.out):
        # A subset run must not clobber the other benches' entries.
        to_write = {**load_results(args.out), **results}
    write_results(to_write, args.out)
    print(f"wrote {args.out}")
    if args.check is not None:
        baseline = load_results(args.check)
        problems = compare_to_baseline(
            results, baseline, tolerance=args.tolerance,
            mem_tolerance=args.mem_tolerance,
        )
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"no regression beyond {args.tolerance:.0%} "
              f"(memory {args.mem_tolerance:.0%}) vs {args.check}")
    return 0


def _add_cache_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "cache",
        help="inspect or bound the on-disk sweep result cache",
    )
    sub = p.add_subparsers(dest="cache_command", required=True)
    stats = sub.add_parser("stats", help="inventory the cache directory")
    stats.add_argument("--dir", default=None, metavar="PATH",
                       help="cache directory (default: the sweep engine's, "
                            "benchmarks/results/.cache or "
                            "$REPRO_SWEEP_CACHE_DIR)")
    stats.add_argument("--json", action="store_true", dest="as_json",
                       help="machine-readable output")
    prune = sub.add_parser(
        "prune",
        help="delete tmp/stale entries and bound the cache by age/size",
    )
    prune.add_argument("--dir", default=None, metavar="PATH",
                       help="cache directory (default: the sweep engine's)")
    prune.add_argument("--max-age-days", type=float, default=None,
                       help="drop entries older than this many days")
    prune.add_argument("--max-size-mb", type=float, default=None,
                       help="drop oldest entries until the cache fits")
    prune.add_argument("--keep-stale", action="store_true",
                       help="keep entries with a non-current cache schema "
                            "(dropped by default; they can never hit)")
    prune.add_argument("--dry-run", action="store_true",
                       help="report what would be removed without deleting")


def _cmd_cache(args) -> int:
    from repro.runtime.sweep import cache_stats, prune_cache

    if args.cache_command == "stats":
        stats = cache_stats(root=args.dir)
        if args.as_json:
            print(json.dumps(dataclasses.asdict(stats), indent=2, sort_keys=True))
            return 0
        rows = [
            ("entries", stats.entries),
            ("size", f"{stats.size_bytes / 1e6:,.2f} MB"),
            ("stale (old schema)", stats.stale),
            ("corrupt", stats.corrupt),
            ("tmp files", stats.tmp_files),
            ("oldest", f"{stats.oldest_age_s / 86400.0:,.1f} days"),
            ("newest", f"{stats.newest_age_s / 86400.0:,.1f} days"),
        ]
        print(format_table(("Field", "Value"), rows,
                           title=f"Sweep cache: {stats.root}"))
        return 0
    result = prune_cache(
        root=args.dir,
        max_age_days=args.max_age_days,
        max_size_mb=args.max_size_mb,
        drop_stale=not args.keep_stale,
        dry_run=args.dry_run,
    )
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"{verb} {result.removed} files ({result.freed_bytes / 1e6:,.2f} MB), "
        f"kept {result.kept} entries"
    )
    return 0


def _add_report_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "report",
        help="run one deployment with observability on; emit RunReport JSON",
    )
    p.add_argument("--mode", default="kauri", choices=MODE_CHOICES)
    p.add_argument("--scenario", default="global",
                   choices=[*SCENARIOS, "heterogeneous"])
    p.add_argument("--n", type=int, default=100)
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument("--max-commits", type=int, default=None)
    p.add_argument("--block-size-kb", type=int, default=250)
    p.add_argument("--height", type=int, default=2)
    p.add_argument("--lanes", type=int, default=1, help="uplink lanes per process")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the report here instead of stdout")
    p.add_argument("--validate", action="store_true",
                   help="check the report against the checked-in schema; "
                        "exit 1 on mismatch")


def _cmd_report(args) -> int:
    from repro.obs import report_json, validate_report
    from repro.runtime.experiment import run_experiment

    scenario = (
        resilientdb_clusters() if args.scenario == "heterogeneous" else args.scenario
    )
    config = ProtocolConfig(block_size=args.block_size_kb * KB)
    result = run_experiment(
        mode=args.mode,
        scenario=scenario,
        n=None if args.scenario == "heterogeneous" else args.n,
        duration=args.duration,
        max_commits=args.max_commits,
        height=args.height,
        seed=args.seed,
        config=config,
        uplink_lanes=args.lanes,
        observability=True,
    )
    report = result.report
    text = report_json(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    if args.validate:
        problems = validate_report(report)
        if problems:
            for problem in problems:
                print(f"SCHEMA: {problem}", file=sys.stderr)
            return 1
        print("report validates against the schema", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Kauri (SOSP 2021) reproduction: run deployments, "
                    "evaluate the performance model, regenerate the paper's "
                    "tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(subparsers)
    _add_modes_parser(subparsers)
    _add_model_parser(subparsers)
    _add_tune_parser(subparsers)
    _add_table_parser(subparsers)
    _add_fig_parser(subparsers)
    _add_scenarios_parser(subparsers)
    _add_sweep_parser(subparsers)
    _add_capacity_parser(subparsers)
    _add_perf_parser(subparsers)
    _add_cache_parser(subparsers)
    _add_report_parser(subparsers)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "modes": _cmd_modes,
        "model": _cmd_model,
        "tune": _cmd_tune,
        "table": _cmd_table,
        "fig": _cmd_fig,
        "scenarios": _cmd_scenarios,
        "sweep": _cmd_sweep,
        "capacity": _cmd_capacity,
        "perf": _cmd_perf,
        "cache": _cmd_cache,
        "report": _cmd_report,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) closed the pipe: not an error
        return 0


if __name__ == "__main__":
    sys.exit(main())
