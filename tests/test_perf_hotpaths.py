"""Guard rails for the hot-path performance work.

Two kinds of protection:

- **Golden metrics**: the memo caches (digest, expected-MAC, validity
  sets) and the copy-on-write ⊕ trade wall-clock work for memory, but
  *simulated* results must be bit-for-bit what the seed code produced.
  Two sweep cells -- one Kauri/BLS, one HotStuff/secp -- are pinned to
  the exact metric values captured before the optimisation landed.
  These comparisons are ``==`` on floats on purpose.
- **Scaling**: folding N fresh shares into a growing aggregate (the
  Algorithm 3 pattern) must do O(1) Python-level merge work per ⊕, not
  O(shares so far). :data:`repro.crypto.bls.MERGE_STATS` counts the
  entries the Python merge loop actually walks.
"""

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import KB
from repro.crypto.bls import MERGE_STATS, BlsCollection, BlsScheme
from repro.crypto.costs import BLS_COSTS
from repro.crypto.keys import Pki, canonical_digest
from repro.runtime.experiment import run_experiment


def _kauri_cell():
    return run_experiment(
        mode="kauri",
        scenario="global",
        n=100,
        block_size=100 * KB,
        stretch=2.0,
        duration=9.0,
        max_commits=20,
        seed=0,
    )


# ---------------------------------------------------------------------------
# Golden metrics: wall-clock caches must not leak into simulated results
# ---------------------------------------------------------------------------
def test_golden_kauri_cell_metrics_unchanged():
    """Fig. 5 cell (Kauri, global, N=100, 100KB, stretch 2): every metric
    equals the values captured on the pre-optimisation seed code."""
    result = _kauri_cell()
    assert result.throughput_txs == 474.0740740740741
    assert result.throughput_blocks == 2.3703703703703702
    assert result.latency["count"] == 16
    # Mean recaptured (last-ulp shift) when latency_stats moved from naive
    # sum to math.fsum; every other golden value is untouched.
    assert result.latency["mean"] == 3.4062286799999937
    assert result.latency["p50"] == 3.406282319999992
    assert result.latency["p95"] == 3.406282319999995
    assert result.latency["max"] == 3.406282319999995
    assert result.committed_blocks == 16
    assert result.view_changes == 0
    assert result.max_view == 0
    assert result.duration == 9.0


def test_golden_secp_cell_metrics_unchanged():
    """HotStuff-secp cell (global, N=31, 250KB): the non-aggregating
    scheme takes the SecpCollection fast paths; metrics are pinned to the
    seed-code capture as well."""
    result = run_experiment(
        mode="hotstuff-secp",
        scenario="global",
        n=31,
        block_size=250 * KB,
        duration=30.0,
        max_commits=12,
        seed=7,
    )
    assert result.throughput_txs == 200.0
    assert result.throughput_blocks == 0.4
    assert result.latency["mean"] == 5.446049439999896
    assert result.latency["p50"] == 5.446049439999891
    assert result.committed_blocks == 10
    assert result.view_changes == 0
    assert result.duration == 30.0


def test_same_seed_same_metrics():
    """Two runs of the same cell in one process agree exactly -- warm
    memo caches from the first run cannot perturb the second."""
    first = _kauri_cell()
    second = _kauri_cell()
    assert first.throughput_txs == second.throughput_txs
    assert first.latency == second.latency
    assert first.committed_blocks == second.committed_blocks
    assert first.view_changes == second.view_changes


# ---------------------------------------------------------------------------
# Scaling: ⊕ is copy-on-write, not copy-everything
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("n", [64, 256])
def test_fold_merge_work_is_linear(n):
    """Folding N singleton shares does O(N) total Python-level merge work.

    Each ⊕ walks only the smaller side (the incoming singleton), so
    entries_examined stays ~N after folding N shares; the quadratic
    pre-optimisation behaviour would examine ~N^2/2 entries.
    """
    pki = Pki(n)
    scheme = BlsScheme(pki, BLS_COSTS)
    value = ("scaling", n)
    singles = [scheme.new(pki.keypair(i), value) for i in range(n)]
    MERGE_STATS.reset()
    acc = scheme.empty()
    for single in singles:
        acc = acc.combine(single)
    assert len(acc.signers_for(value)) == n
    # 2x headroom over strictly-one-entry-per-merge; far below N^2/2.
    assert MERGE_STATS.entries_examined <= 2 * n


def test_fold_shares_slots_with_sources():
    """The growing aggregate inherits whole signer maps by reference when
    one side already holds the union (here: the first share folded into
    the empty aggregate)."""
    pki = Pki(8)
    scheme = BlsScheme(pki, BLS_COSTS)
    value = "slot-sharing"
    first = scheme.new(pki.keypair(0), value)
    MERGE_STATS.reset()
    acc = scheme.empty().combine(first)
    assert MERGE_STATS.slot_copies == 0
    assert acc.signers_for(value) == frozenset({0})


def test_combine_leaves_operands_untouched():
    """⊕ is copy-on-write: operands still answer queries identically
    after being merged into something larger."""
    pki = Pki(8)
    scheme = BlsScheme(pki, BLS_COSTS)
    value = "immutability"
    a = scheme.new(pki.keypair(1), value)
    b = scheme.new(pki.keypair(2), value)
    merged = a.combine(b)
    assert merged.signers_for(value) == frozenset({1, 2})
    assert a.signers_for(value) == frozenset({1})
    assert b.signers_for(value) == frozenset({2})
    assert a.cardinality() == 1 and b.cardinality() == 1


# ---------------------------------------------------------------------------
# Differential property tests: bitmap slots vs a dict-backed reference
# ---------------------------------------------------------------------------
_REF_N = 8
_REF_PKI = Pki(_REF_N)
_REF_SCHEME = BlsScheme(_REF_PKI, BLS_COSTS)
_REF_VALUES = ("a", "b", "c")


def _is_canonical(value, signer, tag):
    if not 0 <= signer < _REF_N:
        return False
    return _REF_PKI.expected_mac(signer, canonical_digest(value)) == tag


class _DictRefBls:
    """Executable spec for :class:`BlsCollection` merge semantics.

    Plain ``value -> {signer: tag}`` dicts implementing the documented
    rules directly -- a canonical tag shadows a forged one for the same
    signer, and between two forged tags the accumulator's entry wins --
    with none of the bitmask/arena machinery under test.
    """

    def __init__(self):
        self.byvalue = {}

    def absorb(self, piece):
        for value, entries in piece.items():
            mine = self.byvalue.setdefault(value, {})
            for signer, tag in entries.items():
                old = mine.get(signer)
                if old is None or (
                    _is_canonical(value, signer, tag)
                    and not _is_canonical(value, signer, old)
                ):
                    mine[signer] = tag

    def signers_for(self, value):
        return frozenset(
            signer
            for signer, tag in self.byvalue.get(value, {}).items()
            if _is_canonical(value, signer, tag)
        )

    def cardinality(self):
        return sum(len(entries) for entries in self.byvalue.values())

    def extras_for(self, value):
        return {
            signer: tag
            for signer, tag in self.byvalue.get(value, {}).items()
            if not _is_canonical(value, signer, tag)
        }


# A raw entry is (value, signer, kind); "alien" shifts the signer outside
# the PKI, the two forged kinds exercise forged-vs-forged precedence.
_raw_entries = st.lists(
    st.tuples(
        st.sampled_from(_REF_VALUES),
        st.integers(min_value=0, max_value=_REF_N - 1),
        st.sampled_from(["honest", "forged", "forged2", "alien"]),
    ),
    min_size=1,
    max_size=4,
)
_raw_pieces = st.lists(_raw_entries, max_size=8)


def _materialise(raw):
    piece = {}
    for value, signer, kind in raw:
        if kind == "honest":
            tag = _REF_PKI.keypair(signer).mac(canonical_digest(value))
        elif kind == "alien":
            signer = _REF_N + signer
            tag = b"\x0a" * 32
        else:
            tag = (b"\x01" if kind == "forged" else b"\x02") * 32
        piece.setdefault(value, {})[signer] = tag
    return piece


@settings(max_examples=80, deadline=None)
@given(_raw_pieces)
def test_bitmap_collection_matches_dict_reference(raw_pieces):
    """Bitmap-backed merges agree with the dict model after *every* step
    of an arbitrary fold over honest, forged, and out-of-PKI shares."""
    ref = _DictRefBls()
    acc = _REF_SCHEME.empty()
    for raw in raw_pieces:
        piece = _materialise(raw)
        acc = acc.combine(BlsCollection(_REF_PKI, BLS_COSTS, piece))
        ref.absorb(piece)
        for value in _REF_VALUES:
            assert acc.signers_for(value) == ref.signers_for(value)
            for threshold in (1, 3, _REF_N):
                assert acc.has(value, threshold) == (
                    len(ref.signers_for(value)) >= threshold
                )
        assert acc.cardinality() == ref.cardinality()
        assert acc.values() == frozenset(ref.byvalue)
    # The quarantined extras match the reference exactly, tag bytes
    # included -- forged entries stay detectable, never silently dropped.
    for value in _REF_VALUES:
        slot = acc._byvalue.get(value)
        extras = dict(slot[1]) if slot and slot[1] else {}
        assert extras == ref.extras_for(value)


@settings(max_examples=60, deadline=None)
@given(_raw_pieces, st.randoms(use_true_random=False))
def test_bitmap_merge_order_is_query_invariant(raw_pieces, rng):
    """Any two fold orders (tree shapes!) answer all quorum queries the
    same, even with forged and alien shares in the mix."""
    pieces = [
        BlsCollection(_REF_PKI, BLS_COSTS, _materialise(raw))
        for raw in raw_pieces
    ]
    shuffled = list(pieces)
    rng.shuffle(shuffled)
    fold = lambda parts: functools.reduce(
        lambda x, y: x.combine(y), parts, _REF_SCHEME.empty()
    )
    a, b = fold(pieces), fold(shuffled)
    for value in _REF_VALUES:
        assert a.signers_for(value) == b.signers_for(value)
    assert a.cardinality() == b.cardinality()
    assert a.values() == b.values()


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.lists(
            st.tuples(
                st.sampled_from(_REF_VALUES),
                st.integers(min_value=0, max_value=_REF_N - 1),
            ),
            min_size=1,
            max_size=4,
        ),
        max_size=8,
    )
)
def test_honest_merges_never_walk_entries(specs):
    """Folding any sequence of honest-only shares does zero Python-level
    entry walks: honest signer sets union with int ORs alone."""
    pieces = [
        _materialise([(value, signer, "honest") for value, signer in raw])
        for raw in specs
    ]
    collections = [
        BlsCollection(_REF_PKI, BLS_COSTS, piece) for piece in pieces
    ]
    MERGE_STATS.reset()
    acc = _REF_SCHEME.empty()
    for coll in collections:
        acc = acc.combine(coll)
    assert MERGE_STATS.entries_examined == 0
