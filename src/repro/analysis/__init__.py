"""Generators for every table and figure of the paper's evaluation (§7).

Each ``figN_*`` function runs the relevant deployments and returns
structured rows; each has a matching formatter producing the same
rows/series the paper reports. The benchmark harness under ``benchmarks/``
wraps these one-to-one, and EXPERIMENTS.md records paper-vs-measured.
"""

from repro.analysis.report import format_table
from repro.analysis.tables import table1_rows, table2_measured_rows, table2_rows
from repro.analysis.pipeline_viz import (
    InstanceSpan,
    extract_spans,
    max_concurrency,
    render_gantt,
)
from repro.analysis.figures import (
    FIGURES,
    RED_CIRCLE,
    adaptive_duration,
    fig5_stretch_sweep,
    fig6_kudzu_headtohead,
    fig6_scenarios,
    saturation_marker,
    fig7_rtt_sweep,
    fig8_latency_bandwidth,
    fig9_throughput_latency,
    fig10_tree_height,
    fig11_heterogeneous,
    fig12_reconfiguration,
    fig_depth_scaling,
)

__all__ = [
    "FIGURES",
    "format_table",
    "table1_rows",
    "table2_rows",
    "table2_measured_rows",
    "InstanceSpan",
    "extract_spans",
    "render_gantt",
    "max_concurrency",
    "RED_CIRCLE",
    "adaptive_duration",
    "fig5_stretch_sweep",
    "fig6_kudzu_headtohead",
    "fig6_scenarios",
    "saturation_marker",
    "fig7_rtt_sweep",
    "fig8_latency_bandwidth",
    "fig9_throughput_latency",
    "fig10_tree_height",
    "fig11_heterogeneous",
    "fig12_reconfiguration",
    "fig_depth_scaling",
]
