"""Topologies: trees, stars, robustness, and reconfiguration schedules.

Implements §3.2 (robust trees), §5 (bin-based evolving graphs with
t-Bounded Conformity, Algorithm 4) and §5.3 (graceful degradation to a
star after ``m`` failed tree reconfigurations).
"""

from repro.topology.tree import Tree
from repro.topology.builder import build_star, build_tree, tree_level_sizes
from repro.topology.robustness import (
    all_internals_correct,
    can_reach_quorum,
    is_robust,
    is_robust_star,
    safe_edges_only,
)
from repro.topology.bins import BinPartition
from repro.topology.evolving import EvolvingGraph, first_robust_index, t_bounded_conformity
from repro.topology.reconfig import ReconfigurationPolicy

__all__ = [
    "Tree",
    "build_tree",
    "build_star",
    "tree_level_sizes",
    "is_robust",
    "is_robust_star",
    "all_internals_correct",
    "can_reach_quorum",
    "safe_edges_only",
    "BinPartition",
    "EvolvingGraph",
    "t_bounded_conformity",
    "first_robust_index",
    "ReconfigurationPolicy",
]
