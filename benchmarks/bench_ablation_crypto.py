"""Ablation A3: BLS aggregation vs secp lists inside Kauri's tree (§3.3.2,
§6).

The paper motivates BLS with two claims: aggregates keep vote messages
O(1)-sized up the tree, and verification at each internal node is O(m)
rather than O(N). Running Kauri's tree with secp signature lists
(kauri-secp) isolates the aggregation choice from the topology choice.
"""

from conftest import SCALE, run_grid, run_once

from repro.analysis import adaptive_duration, format_table
from repro.config import GLOBAL, KB
from repro.runtime import ExperimentSpec


def sweep():
    cells = [(n, mode) for n in (100, 200) for mode in ("kauri", "kauri-secp")]
    specs = [
        ExperimentSpec(
            mode=mode,
            scenario="global",
            n=n,
            duration=adaptive_duration(mode, n, GLOBAL, 250 * KB, scale=SCALE),
            max_commits=int(120 * SCALE) or 12,
        )
        for n, mode in cells
    ]
    return dict(zip(cells, run_grid(specs)))


def test_ablation_bls_vs_secp_in_tree(benchmark, save_table):
    results = run_once(benchmark, sweep)
    rows = [
        (
            n,
            mode,
            round(r.throughput_txs / 1000.0, 3),
            round(r.latency["p50"], 2),
            round(r.leader_cpu_utilization, 3),
        )
        for (n, mode), r in results.items()
    ]
    save_table(
        "ablation_crypto",
        format_table(
            ("N", "System", "Ktx/s", "p50 lat (s)", "Root CPU util"),
            rows,
            title="Ablation: aggregation scheme inside the Kauri tree (global)",
        ),
    )

    for n in (100, 200):
        bls = results[(n, "kauri")]
        secp = results[(n, "kauri-secp")]
        # without aggregation the vote path carries O(quorum)-sized lists
        # and every level re-verifies O(N) signatures: throughput suffers
        assert bls.throughput_txs >= secp.throughput_txs
    # the gap grows with N (O(1) vs O(N) certificates)
    gap100 = results[(100, "kauri")].throughput_txs / max(
        1e-9, results[(100, "kauri-secp")].throughput_txs
    )
    gap200 = results[(200, "kauri")].throughput_txs / max(
        1e-9, results[(200, "kauri-secp")].throughput_txs
    )
    assert gap200 >= 0.9 * gap100  # monotone within noise
