"""The evaluated systems (paper §6-§7) as declarative mode specs.

- **kauri**: tree topology, BLS aggregation, stretch-paced pipelining
  (§4.2) and bin-based reconfiguration with star fallback (§5).
- **kauri-np**: Kauri without pipelining -- one instance at a time. §7.4
  uses it as a stand-in for non-pipelining tree systems (Motor,
  Omniledger).
- **hotstuff-secp**: the baseline HotStuff: star topology, secp signature
  lists, chained pipelining of depth 4 (§4.1).
- **hotstuff-bls**: the paper's HotStuff variant with BLS aggregation (§6),
  isolating the effect of the signature scheme from the topology.
- **kauri-secp**: ablation -- Kauri's tree and pipelining but without
  aggregation (not in the paper's figures; used by the ablation bench).
- **pbft**: the §1 baseline: clique topology, all-to-all quadratic traffic.
- **kudzu**: Kudzu-style optimistic fast path on the star/BLS fabric --
  commits in a single aggregated round when a ⌈(n+f+1)/2⌉ fast quorum
  forms, falling back to the chained slow path otherwise.

Each :class:`ModeSpec` names a *protocol strategy* from the ``PROTOCOLS``
registry. Strategies are resolved lazily from dotted paths so this module
stays import-light (strategy modules pull in the simulation stack).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Dict

from repro.errors import ConfigError

#: Protocol registry: name -> (kind, "module:attr").
#:
#: ``kind`` selects how the cluster builds replicas:
#: - ``"strategy"``: a :class:`~repro.consensus.protocol.Protocol` subclass
#:   plugged into the shared :class:`~repro.core.smr.SmrNode` base;
#: - ``"node"``: a standalone node class with its own message flow (PBFT's
#:   clique all-to-all does not fit the disseminate/aggregate skeleton).
PROTOCOLS: Dict[str, Dict[str, str]] = {
    "kauri": {"kind": "strategy", "target": "repro.consensus.protocol:KauriProtocol"},
    "hotstuff": {
        "kind": "strategy",
        "target": "repro.consensus.protocol:HotStuffProtocol",
    },
    "kudzu": {"kind": "strategy", "target": "repro.consensus.kudzu:KudzuProtocol"},
    "pbft": {"kind": "node", "target": "repro.consensus.pbft:PbftNode"},
}


def _resolve(target: str) -> Any:
    module_name, _, attr = target.partition(":")
    return getattr(importlib.import_module(module_name), attr)


def protocol_kind(name: str) -> str:
    """``"strategy"`` or ``"node"`` for a registered protocol name."""
    try:
        return PROTOCOLS[name]["kind"]
    except KeyError:
        raise ConfigError(
            f"unknown protocol {name!r}; registered: {sorted(PROTOCOLS)}"
        ) from None


def protocol_class(name: str) -> Any:
    """Resolve a registered protocol to its class (strategy or node)."""
    protocol_kind(name)  # raises on unknown names
    return _resolve(PROTOCOLS[name]["target"])


def protocol_for(mode: "ModeSpec") -> Any:
    """Instantiate the strategy object for a mode.

    Strategies are stateless (they receive the node on every call), so one
    instance per *deployment* suffices -- ``ReplicaShared`` shares it across
    all replicas; a node wanting a bespoke strategy assigns its own
    ``node.protocol``."""
    if protocol_kind(mode.protocol) != "strategy":
        raise ConfigError(
            f"protocol {mode.protocol!r} is a standalone node class, "
            "not an SmrNode strategy"
        )
    return protocol_class(mode.protocol)()


@dataclass(frozen=True)
class ModeSpec:
    """One protocol configuration."""

    name: str
    topology: str  # "tree" | "star" | "clique"
    scheme: str  # "bls" | "secp"
    pacing: str  # "stretch" | "sequential" | "chained"
    protocol: str = "kauri"  # key into PROTOCOLS

    def __post_init__(self) -> None:
        if self.topology not in ("tree", "star", "clique"):
            raise ConfigError(f"unknown topology {self.topology!r}")
        if self.scheme not in ("bls", "secp"):
            raise ConfigError(f"unknown scheme {self.scheme!r}")
        if self.pacing not in ("stretch", "sequential", "chained"):
            raise ConfigError(f"unknown pacing {self.pacing!r}")
        if self.protocol not in PROTOCOLS:
            raise ConfigError(
                f"unknown protocol {self.protocol!r}; "
                f"registered: {sorted(PROTOCOLS)}"
            )

    @property
    def uses_tree(self) -> bool:
        return self.topology == "tree"

    @property
    def pipelined(self) -> bool:
        return self.pacing != "sequential"


MODES = {
    "kauri": ModeSpec("kauri", "tree", "bls", "stretch", protocol="kauri"),
    "kauri-np": ModeSpec("kauri-np", "tree", "bls", "sequential", protocol="kauri"),
    "kauri-secp": ModeSpec("kauri-secp", "tree", "secp", "stretch", protocol="kauri"),
    "hotstuff-secp": ModeSpec(
        "hotstuff-secp", "star", "secp", "chained", protocol="hotstuff"
    ),
    "hotstuff-bls": ModeSpec(
        "hotstuff-bls", "star", "bls", "chained", protocol="hotstuff"
    ),
    # The §1 baseline: clique topology, all-to-all quadratic traffic.
    "pbft": ModeSpec("pbft", "clique", "secp", "sequential", protocol="pbft"),
    # Kudzu-style optimistic fast path over the HotStuff star fabric.
    "kudzu": ModeSpec("kudzu", "star", "bls", "chained", protocol="kudzu"),
}


def mode_spec(name: str) -> ModeSpec:
    try:
        return MODES[name]
    except KeyError:
        raise ConfigError(
            f"unknown mode {name!r}; available: {sorted(MODES)}"
        ) from None
