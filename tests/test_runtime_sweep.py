"""Sweep engine: spec hashing, backend equivalence, caching, ordering."""

import dataclasses

import pytest

from repro.config import GLOBAL, ProtocolConfig, resilientdb_clusters
from repro.errors import ConfigError
from repro.runtime.sweep import (
    ExperimentSpec,
    ResultCache,
    SweepRunner,
    run_specs,
)

#: A small but heterogeneous grid: two modes x two sizes, national scenario
#: so every cell simulates in well under a second.
GRID = [
    ExperimentSpec(
        mode=mode, scenario="national", n=n, duration=5.0, max_commits=10
    )
    for mode in ("kauri", "hotstuff-secp")
    for n in (7, 13)
]


def as_dicts(results):
    return [dataclasses.asdict(r) for r in results]


class TestExperimentSpec:
    def test_hashable_and_equal(self):
        a = ExperimentSpec(mode="kauri", n=31, crashes=[(0, 1.0)])
        b = ExperimentSpec(mode="kauri", n=31, crashes=((0, 1.0),))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_crashes_normalised_to_tuple(self):
        spec = ExperimentSpec(crashes=[[3, 2.5]])
        assert spec.crashes == ((3, 2.5),)

    def test_key_is_stable_and_discriminating(self):
        base = ExperimentSpec(mode="kauri", scenario="national", n=7)
        assert base.key() == ExperimentSpec(
            mode="kauri", scenario="national", n=7
        ).key()
        assert base.key() != dataclasses.replace(base, seed=1).key()
        assert base.key() != dataclasses.replace(base, mode="pbft").key()

    def test_key_covers_scenario_objects(self):
        params = ExperimentSpec(scenario=GLOBAL)
        name = ExperimentSpec(scenario="global")
        clusters = ExperimentSpec(scenario=resilientdb_clusters(2))
        assert len({params.key(), name.key(), clusters.key()}) == 3

    def test_key_covers_config(self):
        base = ExperimentSpec()
        tuned = ExperimentSpec(config=ProtocolConfig(block_size=1024))
        assert base.key() != tuned.key()

    def test_run_executes_the_cell(self):
        result = ExperimentSpec(
            mode="kauri", scenario="national", n=7, duration=5.0, max_commits=10
        ).run()
        assert result.mode == "kauri"
        assert result.committed_blocks > 0


class TestBackends:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            SweepRunner(backend="threads")

    def test_serial_preserves_spec_order(self):
        results = SweepRunner(jobs=1).run(GRID)
        assert [(r.mode, r.n) for r in results] == [
            (s.mode, s.n) for s in GRID
        ]

    def test_duplicate_specs_simulated_once(self):
        runner = SweepRunner(jobs=1)
        results = runner.run([GRID[0], GRID[1], GRID[0]])
        assert runner.last_stats.executed == 2
        assert results[0] is results[2]

    def test_process_backend_matches_serial_field_by_field(self):
        """The acceptance grid: parallel runs are byte-identical to serial."""
        serial = SweepRunner(jobs=1, backend="serial").run(GRID)
        parallel = SweepRunner(jobs=4, backend="process").run(GRID)
        assert as_dicts(serial) == as_dicts(parallel)

    def test_jobs_resolution_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "3")
        runner = SweepRunner()
        assert runner.jobs == 3
        assert runner.backend == "process"


class TestCache:
    def test_second_run_hits_cache_without_resimulating(
        self, tmp_path, monkeypatch
    ):
        grid = GRID[:2]
        first = SweepRunner(jobs=1, cache=True, cache_dir=tmp_path)
        warm = first.run(grid)
        assert first.last_stats.executed == len(grid)
        assert first.last_stats.cache_hits == 0

        # Any attempt to simulate on the second pass is an error: every
        # cell must come from the cache.
        monkeypatch.setattr(
            "repro.runtime.sweep.run_experiment",
            lambda *a, **k: pytest.fail("cache miss re-simulated a cell"),
        )
        second = SweepRunner(jobs=1, cache=True, cache_dir=tmp_path)
        cached = second.run(grid)
        assert second.last_stats.executed == 0
        assert second.last_stats.cache_hits == len(grid)
        assert as_dicts(cached) == as_dicts(warm)

    def test_cache_round_trips_every_field(self, tmp_path):
        spec = GRID[0]
        result = spec.run()
        cache = ResultCache(tmp_path)
        cache.put(spec, result)
        loaded = cache.get(spec)
        assert dataclasses.asdict(loaded) == dataclasses.asdict(result)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = GRID[0]
        cache = ResultCache(tmp_path)
        cache.root.mkdir(exist_ok=True)
        cache.path_for(spec).write_text("not json{")
        assert cache.get(spec) is None

    def test_run_specs_convenience(self, tmp_path):
        results = run_specs(GRID[:1], jobs=1, cache=True, cache_dir=tmp_path)
        assert results[0].mode == "kauri"
        assert cache_files(tmp_path) == 1


def cache_files(path):
    return len(list(path.glob("*.json")))


class TestCrossBackendDeterminism:
    """The ISSUE acceptance criterion, end to end: the same spec grid run
    through serial and process backends yields identical ExperimentResult
    lists, and a cached re-run serves every cell from disk."""

    def test_grid_identical_across_backends_and_cached(
        self, tmp_path, monkeypatch
    ):
        serial = SweepRunner(
            jobs=1, backend="serial", cache=True, cache_dir=tmp_path
        ).run(GRID)

        monkeypatch.setattr(
            "repro.runtime.sweep.run_experiment",
            lambda *a, **k: pytest.fail("cached cell was re-simulated"),
        )
        replay = SweepRunner(
            jobs=2, backend="process", cache=True, cache_dir=tmp_path
        )
        cached = replay.run(GRID)
        assert replay.last_stats.cache_hits == len(
            {spec.key() for spec in GRID}
        )
        for a, b in zip(serial, cached):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)


class TestCacheMaintenance:
    """`repro cache stats|prune`: inventory and bounding of the on-disk
    result cache, without ever touching live (current-schema) entries
    unless age/size budgets demand it."""

    @staticmethod
    def _seed_cache(root, now):
        import json as json_mod
        import os

        from repro.runtime.sweep import CACHE_SCHEMA

        def put(name, payload, age_s):
            path = root / name
            path.write_text(payload)
            os.utime(path, (now - age_s, now - age_s))
            return path

        put("old.json", json_mod.dumps({"schema": CACHE_SCHEMA, "x": "a" * 400}),
            age_s=10 * 86400)
        put("fresh.json", json_mod.dumps({"schema": CACHE_SCHEMA, "x": "b" * 400}),
            age_s=3600)
        put("stale.json", json_mod.dumps({"schema": CACHE_SCHEMA - 1}),
            age_s=7200)
        put("broken.json", "{not json", age_s=7200)
        put("partial.tmp", "x" * 50, age_s=60)

    def test_stats_inventories_without_modifying(self, tmp_path):
        import time

        from repro.runtime.sweep import cache_stats

        now = time.time()
        self._seed_cache(tmp_path, now)
        stats = cache_stats(root=tmp_path, now=now)
        assert stats.entries == 4
        assert stats.stale == 1
        assert stats.corrupt == 1
        assert stats.tmp_files == 1
        assert stats.oldest_age_s == pytest.approx(10 * 86400, rel=0.01)
        assert stats.newest_age_s == pytest.approx(3600, rel=0.01)
        assert len(list(tmp_path.iterdir())) == 5  # nothing removed

    def test_stats_on_missing_directory_is_empty(self, tmp_path):
        from repro.runtime.sweep import cache_stats

        stats = cache_stats(root=tmp_path / "nope")
        assert stats.entries == 0 and stats.size_bytes == 0

    def test_prune_removes_tmp_stale_and_corrupt(self, tmp_path):
        import time

        from repro.runtime.sweep import cache_stats, prune_cache

        now = time.time()
        self._seed_cache(tmp_path, now)
        result = prune_cache(root=tmp_path, now=now)
        assert result.removed == 3  # tmp + stale + corrupt
        assert result.kept == 2
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {"old.json", "fresh.json"}
        after = cache_stats(root=tmp_path, now=now)
        assert after.stale == 0 and after.corrupt == 0 and after.tmp_files == 0

    def test_prune_by_age_keeps_recent_entries(self, tmp_path):
        import time

        from repro.runtime.sweep import prune_cache

        now = time.time()
        self._seed_cache(tmp_path, now)
        result = prune_cache(root=tmp_path, max_age_days=7, now=now)
        assert result.kept == 1
        assert (tmp_path / "fresh.json").exists()
        assert not (tmp_path / "old.json").exists()

    def test_prune_by_size_drops_oldest_first(self, tmp_path):
        import time

        from repro.runtime.sweep import prune_cache

        now = time.time()
        self._seed_cache(tmp_path, now)
        # Both survivors are ~420 bytes; a 0.0005 MB budget (500 bytes)
        # forces the oldest one out and keeps the newest.
        result = prune_cache(root=tmp_path, max_size_mb=0.0005, now=now)
        assert (tmp_path / "fresh.json").exists()
        assert not (tmp_path / "old.json").exists()
        assert result.kept == 1

    def test_prune_dry_run_deletes_nothing(self, tmp_path):
        import time

        from repro.runtime.sweep import prune_cache

        now = time.time()
        self._seed_cache(tmp_path, now)
        before = sorted(p.name for p in tmp_path.iterdir())
        result = prune_cache(root=tmp_path, dry_run=True, now=now)
        assert result.removed == 3
        assert sorted(p.name for p in tmp_path.iterdir()) == before

    def test_keep_stale_preserves_old_schema_entries(self, tmp_path):
        import time

        from repro.runtime.sweep import prune_cache

        now = time.time()
        self._seed_cache(tmp_path, now)
        result = prune_cache(root=tmp_path, drop_stale=False, now=now)
        assert result.removed == 1  # only the .tmp leftover
        assert (tmp_path / "stale.json").exists()
        assert (tmp_path / "broken.json").exists()

    def test_prune_composes_with_live_result_cache(self, tmp_path):
        """Entries written by ResultCache survive a default prune and are
        still served afterwards."""
        from repro.runtime.sweep import prune_cache

        runner = SweepRunner(
            jobs=1, backend="serial", cache=True, cache_dir=tmp_path
        )
        first = runner.run(GRID[:1])
        result = prune_cache(root=tmp_path)
        assert result.removed == 0 and result.kept == 1
        replay = SweepRunner(
            jobs=1, backend="serial", cache=True, cache_dir=tmp_path
        )
        again = replay.run(GRID[:1])
        assert replay.last_stats.cache_hits == 1
        assert dataclasses.asdict(first[0]) == dataclasses.asdict(again[0])
