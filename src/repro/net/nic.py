"""Per-process network interface: FIFO serialization at link bandwidth.

This is where the paper's *sending time* (§4.3) physically happens: a node
sending a block to its ``m`` children occupies its uplink for
``m * block_size / bandwidth`` seconds, which is why a tree's root finishes
its dissemination phase ``(N-1)/m`` times sooner than a star's leader.

Messages are serialized strictly in enqueue order. Queueing delay (time a
message waits behind earlier traffic) is tracked so experiments can observe
over-pipelining: a proposal interval shorter than the sending time makes
the backlog grow without bound.

Serialization busy time is checkpointed per lane as coalesced
``[start, end)`` intervals and bytes are logged as a cumulative series at
enqueue instants, so the observability layer can ask for the exact link
busy fraction and bytes carried over an arbitrary measurement window
(half-open, like every window in this library). Back-to-back traffic
coalesces, so a saturated uplink costs O(1) interval memory.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_left, bisect_right
from typing import Callable, List, Optional, Tuple

from repro.errors import NetworkError
from repro.sim.engine import Simulator


class Nic:
    """Outgoing interface of one process.

    Bandwidth is supplied per transmit call (heterogeneous deployments have
    different rates per destination cluster); serialization is FIFO over
    ``lanes`` parallel queues. ``lanes=1`` (the default) is the strict
    per-process-uplink model the §4.3 formulas assume: one message at a
    time at the scenario's link rate. Higher lane counts approximate the
    paper's physical testbed, where NetEm shapes each *pair* to the link
    rate but a machine's NIC carries several such streams concurrently --
    the knob the uplink-model ablation bench sweeps.
    """

    __slots__ = (
        "sim", "name", "lanes", "_lane_busy_until", "_lane_intervals",
        "_bytes_log", "_inflight_done", "bytes_sent", "messages_sent",
        "total_queueing_delay", "total_tx_time", "max_backlog",
        "max_queue_depth", "_created_at",
    )

    def __init__(self, sim: Simulator, name: str = "nic", lanes: int = 1):
        if lanes < 1:
            raise NetworkError(f"need at least one lane, got {lanes}")
        self.sim = sim
        self.name = name
        self.lanes = lanes
        self._lane_busy_until = [0.0] * lanes
        #: Per-lane coalesced busy intervals (lanes never overlap themselves).
        self._lane_intervals: List[List[List[float]]] = [[] for _ in range(lanes)]
        #: (enqueue time, cumulative bytes including that message); enqueue
        #: times are nondecreasing, so window queries can bisect.
        self._bytes_log: List[Tuple[float, int]] = []
        #: Heap of in-flight serialization completion times -- sized lazily
        #: at enqueue, giving the exact concurrent queue depth.
        self._inflight_done: List[float] = []
        self.bytes_sent = 0
        self.messages_sent = 0
        self.total_queueing_delay = 0.0
        self.total_tx_time = 0.0
        self.max_backlog = 0.0
        #: High-water mark of messages simultaneously queued or serializing.
        self.max_queue_depth = 0
        self._created_at = sim.now

    def transmit(
        self,
        size_bytes: int,
        bandwidth_bps: float,
        on_serialized: Callable[[], None],
    ) -> float:
        """Enqueue ``size_bytes`` for serialization; returns completion time.

        ``on_serialized`` fires when the last bit leaves the interface
        (propagation is the caller's concern). Infinite bandwidth
        (``math.inf``) serializes instantly -- used for the paper's
        "idealized infinite bandwidth" latency floor (§7.6).
        """
        done = self.transmit_raw(size_bytes, bandwidth_bps)
        self.sim.schedule_call_at(done, on_serialized)
        return done

    def transmit_raw(self, size_bytes: int, bandwidth_bps: float) -> float:
        """:meth:`transmit` minus the completion event: charge the NIC and
        return the completion time, leaving scheduling to the caller.

        The fabric uses this to schedule its own handle-free completion
        callbacks (one per message, carrying the precomputed propagation
        delay) instead of a per-message closure.
        """
        if size_bytes < 0:
            raise NetworkError(f"negative transmit size: {size_bytes}")
        if bandwidth_bps <= 0:
            raise NetworkError(f"non-positive bandwidth: {bandwidth_bps}")
        now = self.sim.now
        tx_time = 0.0 if math.isinf(bandwidth_bps) else size_bytes * 8.0 / bandwidth_bps
        lane = min(range(self.lanes), key=self._lane_busy_until.__getitem__)
        start = max(now, self._lane_busy_until[lane])
        queueing = start - now
        done = start + tx_time
        self._lane_busy_until[lane] = done
        self.bytes_sent += size_bytes
        self.messages_sent += 1
        self.total_queueing_delay += queueing
        self.total_tx_time += tx_time
        self.max_backlog = max(self.max_backlog, done - now)
        if tx_time > 0.0:
            self._record_busy(lane, start, done)
        self._bytes_log.append((now, self.bytes_sent))
        inflight = self._inflight_done
        while inflight and inflight[0] <= now:
            heapq.heappop(inflight)
        heapq.heappush(inflight, done)
        if len(inflight) > self.max_queue_depth:
            self.max_queue_depth = len(inflight)
        return done

    def transmit_batch(
        self, size_bytes: int, bandwidths: List[float]
    ) -> List[float]:
        """Chain one ``size_bytes`` serialization per entry of ``bandwidths``
        in a single pass; returns the per-message completion times.

        This is the paper's §4.3 sending time made literal: a parent
        multicasting a block to ``m`` children occupies its uplink for the
        ``m`` serializations back-to-back. Every piece of NIC state (lane
        choice, busy intervals, byte log, queue-depth high-water, counters)
        is updated exactly as ``m`` sequential :meth:`transmit_raw` calls
        in the same order would -- the multicast equivalence property test
        pins this bit-for-bit.
        """
        if size_bytes < 0:
            raise NetworkError(f"negative transmit size: {size_bytes}")
        now = self.sim.now
        lanes = self.lanes
        busy = self._lane_busy_until
        log = self._bytes_log
        inflight = self._inflight_done
        heappush = heapq.heappush
        heappop = heapq.heappop
        size_bits = size_bytes * 8.0
        done_times: List[float] = []
        max_backlog = self.max_backlog
        max_depth = self.max_queue_depth
        for bandwidth_bps in bandwidths:
            if bandwidth_bps <= 0:
                raise NetworkError(f"non-positive bandwidth: {bandwidth_bps}")
            tx_time = 0.0 if math.isinf(bandwidth_bps) else size_bits / bandwidth_bps
            lane = 0 if lanes == 1 else min(range(lanes), key=busy.__getitem__)
            start = busy[lane]
            if start < now:
                start = now
            done = start + tx_time
            busy[lane] = done
            self.bytes_sent += size_bytes
            self.total_queueing_delay += start - now
            self.total_tx_time += tx_time
            if done - now > max_backlog:
                max_backlog = done - now
            if tx_time > 0.0:
                self._record_busy(lane, start, done)
            log.append((now, self.bytes_sent))
            while inflight and inflight[0] <= now:
                heappop(inflight)
            heappush(inflight, done)
            if len(inflight) > max_depth:
                max_depth = len(inflight)
            done_times.append(done)
        self.messages_sent += len(done_times)
        self.max_backlog = max_backlog
        self.max_queue_depth = max_depth
        return done_times

    def _record_busy(self, lane: int, start: float, end: float) -> None:
        intervals = self._lane_intervals[lane]
        # FIFO per lane: a message starting exactly when its predecessor
        # finished extends the open interval instead of opening a new one.
        if intervals and start <= intervals[-1][1]:
            if end > intervals[-1][1]:
                intervals[-1][1] = end
        else:
            intervals.append([start, end])

    @property
    def backlog(self) -> float:
        """Seconds until a newly enqueued message could start serializing."""
        return max(0.0, min(self._lane_busy_until) - self.sim.now)

    @property
    def busy(self) -> bool:
        return any(t > self.sim.now for t in self._lane_busy_until)

    def busy_in(self, start: float, end: float) -> float:
        """Exact lane-seconds spent serializing inside ``[start, end)``.

        Sums over lanes, so the result is bounded by ``lanes * (end-start)``.
        Traffic *scheduled* past the current instant still counts -- lane
        occupancy is decided at enqueue time, which is what the sending-time
        formulas of §4.3 model.
        """
        if end <= start:
            return 0.0
        total = 0.0
        for intervals in self._lane_intervals:
            index = bisect_right(intervals, start, key=lambda iv: iv[1])
            for i in range(index, len(intervals)):
                s, e = intervals[i]
                if s >= end:
                    break
                total += min(e, end) - max(s, start)
        return total

    def bytes_in(self, start: float, end: float) -> int:
        """Bytes enqueued for serialization inside ``[start, end)``."""
        if end <= start or not self._bytes_log:
            return 0
        log = self._bytes_log
        lo = bisect_left(log, (start, -1))
        hi = bisect_left(log, (end, -1))
        if hi <= lo:
            return 0
        before = log[lo - 1][1] if lo else 0
        return log[hi - 1][1] - before

    def utilization(self, since: float = 0.0, until: Optional[float] = None) -> float:
        """Fraction of aggregate lane capacity spent serializing over the
        half-open window ``[since, until)`` (``until`` defaults to now).

        Exact windowed accounting (in-window busy over in-window capacity),
        so no clamp is needed; values can only exceed 1.0 for a window
        ending before already-scheduled traffic drains, which is genuine
        oversubscription worth seeing, not a bug to mask.
        """
        hi = self.sim.now if until is None else until
        lo = max(since, self._created_at)
        elapsed = (hi - lo) * self.lanes
        if elapsed <= 0:
            return 0.0
        return self.busy_in(lo, hi) / elapsed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Nic({self.name!r}, backlog={self.backlog:.4f}s)"
