"""Client workloads: how blocks get filled (paper §2's client processes).

The evaluation drives the system with saturating load and varies the block
size (§7.7: "vary the load in the system by manipulating the block size,
i.e. the number of transactions offered by the client"). Accordingly:

- :class:`SaturatedWorkload` always fills blocks to the configured size --
  the benchmark default.
- :class:`PoissonWorkload` models an open-loop client population with a
  finite transaction arrival rate; blocks carry whatever accumulated since
  the previous proposal (capped at the block size), exercising the partial
  -block path used in examples and tests.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import List, Tuple

from repro.config import ProtocolConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class BlockFill:
    """What the leader packs into one proposal."""

    payload_size: int
    num_txs: int
    tx_ids: Tuple = ()


@dataclass(frozen=True)
class Tx:
    """One client transaction (identity + accounting only)."""

    tx_id: Tuple[int, int]  # (client id, sequence number)
    size: int
    submitted_at: float


class SaturatedWorkload:
    """Clients always have a full block's worth of transactions queued."""

    def __init__(self, config: ProtocolConfig):
        self.config = config

    def next_fill(self, now: float) -> BlockFill:
        return BlockFill(self.config.block_size, self.config.txs_per_block)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SaturatedWorkload(block={self.config.block_size}B)"


class MempoolWorkload:
    """A leader-side mempool fed by real client submissions (§2's client
    processes).

    Client batches arrive over the network (see :class:`ClientHarness`);
    the node's client pump calls :meth:`ingest`, and each proposal drains
    the oldest transactions up to the block size. Carries transaction ids
    into blocks so end-to-end (submit-to-commit) latency is measurable.
    """

    def __init__(self, config: ProtocolConfig):
        self.config = config
        self._pending: "deque[Tx]" = deque()
        self.ingested = 0

    def ingest(self, txs) -> None:
        for tx in txs:
            if isinstance(tx, Tx):
                self._pending.append(tx)
                self.ingested += 1

    def next_fill(self, now: float) -> BlockFill:
        taken = []
        payload = 0
        while self._pending and payload + self._pending[0].size <= self.config.block_size:
            tx = self._pending.popleft()
            payload += tx.size
            taken.append(tx)
        return BlockFill(payload, len(taken), tuple(tx.tx_id for tx in taken))

    @property
    def queued_txs(self) -> int:
        return len(self._pending)


class _ClientAwareNetem:
    """Netem wrapper mapping client process ids onto host-node parameters.

    Clients get ids ``n, n+1, ...``; cluster-based shapers only know
    processes ``0..n-1``, so a client inherits the link characteristics of
    the node ``id mod n`` (its "access point")."""

    def __init__(self, base, n: int):
        self._base = base
        self._n = n
        self._base_link_key = getattr(base, "link_key", None)

    def _map(self, process: int) -> int:
        return process if process < self._n else process % self._n

    def params_between(self, src: int, dst: int):
        return self._base.params_between(self._map(src), self._map(dst))

    def link_key(self, src: int, dst: int):
        """A client shares its access point's link class by construction,
        so mapped ids delegate to the base shaper's classes (or stand in
        as the pair key when the base has none)."""
        base_key = self._base_link_key
        if base_key is None:
            return (self._map(src), self._map(dst))
        return base_key(self._map(src), self._map(dst))


class ClientHarness:
    """Real client processes (§2) submitting transactions over the network.

    Each client batches transactions every ``batch_interval`` seconds and
    sends them to the replica it currently believes is the leader; replica
    mempools (:class:`MempoolWorkload`) drain them into blocks; commit
    notifications close the loop, yielding end-to-end (submit-to-commit)
    latency. Transactions addressed to a deposed leader are simply lost --
    clients here do not retransmit (tracked in :attr:`lost_estimate`).

    Usage::

        cluster = Cluster(n=7, ..., workload_factory=MempoolWorkload factory)
        harness = ClientHarness(cluster, num_clients=4, rate_txs=500.0)
        harness.start()
        cluster.run(duration=20.0)
        print(harness.e2e_latency_stats())
    """

    def __init__(
        self,
        cluster,
        num_clients: int = 4,
        rate_txs: float = 500.0,
        batch_interval: float = 0.2,
    ):
        if num_clients < 1:
            raise ConfigError(f"need at least one client, got {num_clients}")
        if rate_txs <= 0 or batch_interval <= 0:
            raise ConfigError("rate and batch interval must be positive")
        self.cluster = cluster
        self.num_clients = num_clients
        self.rate_txs = rate_txs
        self.batch_interval = batch_interval
        self.tx_size = cluster.config.tx_size
        self.submitted: dict = {}
        self.e2e_latencies: List[float] = []
        self._client_ids = [cluster.n + k for k in range(num_clients)]
        cluster.network.netem = _ClientAwareNetem(cluster.network.netem, cluster.n)
        for client_id in self._client_ids:
            cluster.network.register(client_id)
        cluster.metrics.commit_listeners.append(self._on_commit)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn one submission loop per client (call after wiring)."""
        from repro.core.node import CLIENT_TX_TAG
        from repro.sim.process import Sleep, spawn

        per_client_rate = self.rate_txs / self.num_clients

        def client_loop(client_id):
            seq = 0
            backlog = 0.0
            while True:
                yield Sleep(self.batch_interval)
                backlog += per_client_rate * self.batch_interval
                count = int(backlog)
                backlog -= count
                if count == 0:
                    continue
                now = self.cluster.sim.now
                batch = []
                for _ in range(count):
                    tx = self._make_tx(client_id, seq, now)
                    self.submitted[tx.tx_id] = now
                    batch.append(tx)
                    seq += 1
                leader = self._current_leader()
                self.cluster.network.send(
                    client_id, leader, CLIENT_TX_TAG, batch,
                    size=count * self.tx_size,
                )

        for client_id in self._client_ids:
            spawn(self.cluster.sim, client_loop(client_id), name=f"client-{client_id}")

    def _make_tx(self, client_id: int, seq: int, now: float) -> Tx:
        """Hook: build one transaction (overridden by application-level
        harnesses that attach operation payloads, e.g. the KV store)."""
        return Tx((client_id, seq), self.tx_size, now)

    def _current_leader(self) -> int:
        views = [
            node.view for node in self.cluster.nodes if not node.stopped
        ] or [0]
        return self.cluster.policy.leader_of(max(max(views), 0))

    def _on_commit(self, record, block) -> None:
        for tx_id in block.tx_ids:
            submitted_at = self.submitted.pop(tx_id, None)
            if submitted_at is not None:
                self.e2e_latencies.append(record.time - submitted_at)

    # ------------------------------------------------------------------
    @property
    def committed_txs(self) -> int:
        return len(self.e2e_latencies)

    @property
    def lost_estimate(self) -> int:
        """Submitted transactions not (yet) committed."""
        return len(self.submitted)

    def e2e_latency_stats(self) -> dict:
        from repro.runtime.metrics import percentile

        if not self.e2e_latencies:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0}
        values = sorted(self.e2e_latencies)
        return {
            "count": len(values),
            "mean": sum(values) / len(values),
            "p50": percentile(values, 50),
            "p95": percentile(values, 95),
        }


class PoissonWorkload:
    """Open-loop arrivals at ``rate_txs`` transactions per second.

    Deterministic given the RNG: arrivals are accounted in continuous time
    (expected counts, with optional jitter), so the workload composes with
    the deterministic simulator.
    """

    def __init__(
        self,
        config: ProtocolConfig,
        rate_txs: float,
        rng: random.Random = None,
        jitter: bool = True,
    ):
        if rate_txs < 0:
            raise ConfigError(f"negative arrival rate: {rate_txs}")
        self.config = config
        self.rate_txs = rate_txs
        self.rng = rng if rng is not None else random.Random(0)
        self.jitter = jitter
        self._last_drain = 0.0
        self._backlog = 0.0  # fractional queued transactions

    def next_fill(self, now: float) -> BlockFill:
        elapsed = max(0.0, now - self._last_drain)
        self._last_drain = now
        arrivals = self.rate_txs * elapsed
        if self.jitter and arrivals > 0:
            arrivals = max(0.0, self.rng.gauss(arrivals, arrivals ** 0.5))
        self._backlog += arrivals
        take = min(int(self._backlog), self.config.txs_per_block)
        self._backlog -= take
        return BlockFill(take * self.config.tx_size, take)

    @property
    def queued_txs(self) -> int:
        return int(self._backlog)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PoissonWorkload(rate={self.rate_txs}/s)"
