"""Pluggable SMR protocol strategies (the "protocol zoo" interface).

A :class:`Protocol` packages everything that distinguishes one BFT protocol
from another *on the shared fabric*: which vote rounds run and in what
order, when a replica may vote, how quorum certificates are formed and
verified, what justifies a proposal, when a block commits, and how the
leader paces new instances. Everything else -- view lifecycle, task
management, tree/star communication, the client pump, commit plumbing and
observability hooks -- lives in the protocol-agnostic
:class:`~repro.core.smr.SmrNode` base, which calls into its strategy at the
decision points.

The default method bodies implement the HotStuff/Kauri two-layer chained
protocol of the paper (§3.1): three aggregated rounds (prepare /
pre-commit / commit), QCs formed at the root and disseminated down, commit
on the commit-phase quorum. :class:`KauriProtocol` and
:class:`HotStuffProtocol` differ only in leader pacing (stretch-timed
pipelining vs QC-chained depth 4); the Kudzu fast path
(:mod:`repro.consensus.kudzu`) overrides the round structure itself.

Adding a protocol is: subclass :class:`Protocol`, override the relevant
rules, and register the class in ``PROTOCOLS`` in
:mod:`repro.core.modes` under a new ``ModeSpec.protocol`` name. No changes
to ``SmrNode`` are required.

Strategies hold no per-instance state: every method receives the node, so
one strategy object serves all heights and views of its replica. Byzantine
behaviours keep working unchanged -- the default rules delegate to the
node-level mechanism hooks (``_make_vote``, ``_resolve_qc``,
``_disseminate_proposal``) that :mod:`repro.consensus.byzantine`
subclasses override.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Tuple

from repro.consensus import tags
from repro.consensus.vote import Phase, QuorumCert

#: The aggregated rounds of the chained protocol (§3.1).
VOTE_PHASES = (Phase.PREPARE, Phase.PRECOMMIT, Phase.COMMIT)


class Protocol:
    """Strategy interface consumed by :class:`~repro.core.smr.SmrNode`.

    The base class *is* the chained HotStuff/Kauri protocol; subclasses
    override individual rules (or the whole round loop) to change protocol
    behaviour without touching the node.
    """

    #: Registry name; also used for display (``repro modes``).
    name = "chained"

    #: Aggregated vote rounds, in order.
    vote_phases: Tuple[Phase, ...] = VOTE_PHASES

    # ------------------------------------------------------------------
    # Message tags (shared vocabulary; override to re-key a protocol)
    # ------------------------------------------------------------------
    prop_tag = staticmethod(tags.prop_tag)
    vote_tag = staticmethod(tags.vote_tag)
    qc_tag = staticmethod(tags.qc_tag)
    newview_tag = staticmethod(tags.newview_tag)
    is_stale_tag = staticmethod(tags.is_stale_tag)

    # ------------------------------------------------------------------
    # Leader pacing (§4.1-§4.2)
    # ------------------------------------------------------------------
    def effective_stretch(self, node) -> float:
        """How many extra instances the leader overlaps with one round."""
        if node.mode.pacing == "sequential":
            return 0.0
        if node.config.stretch is not None:
            return node.config.stretch
        return node.model.pipelining_stretch

    def inflight_cap(self, node, stretch: float) -> int:
        """Upper bound on concurrently outstanding instances."""
        if node.mode.pacing == "sequential":
            return 1
        return max(4, math.ceil(node.config.max_inflight_factor * (1.0 + stretch)))

    def make_pacer(self, node, stretch: float):
        """Optional runtime-adaptive pacer (§6 future work); None = static."""
        if node.mode.pacing == "stretch" and node.config.adaptive_stretch:
            from repro.core.pipeline import AdaptivePacer

            return AdaptivePacer(node.model, initial_stretch=stretch)
        return None

    def pace(self, node, height: int, interval: float):
        """Coroutine: wait before the next proposal, according to the mode
        (§4.1-4.2)."""
        from repro.sim.process import Signal, Sleep, WaitSignal

        if node.mode.pacing == "sequential":
            # Kauri-np / Motor / Omniledger: next instance only after this
            # one fully decides (or dies with the view).
            signal = Signal()
            node._prepare_signals[("done", height)] = signal
            yield WaitSignal(signal)
        elif node.pacer is not None:
            # §6 future work: adapt the stretch at runtime from the local
            # uplink backlog instead of trusting the static configuration.
            yield Sleep(node.pacer.next_interval(node.network.nic(node.node_id)))
        else:
            yield Sleep(interval)

    # ------------------------------------------------------------------
    # Proposal side
    # ------------------------------------------------------------------
    def propose(self, node, view: int, height: int, parent_hash: str):
        """Build (and store) the leader's next block."""
        return node._make_block(view, height, parent_hash)

    def on_proposal(self, node, view: int, payload: Any):
        """Parse a received round-1 proposal; None rejects it (Algorithm 2
        forwards regardless -- validation gates *voting*, not relaying)."""
        return node._parse_proposal(payload)

    def verify_justify(self, node, justify: QuorumCert) -> bool:
        """Is ``justify`` an acceptable (already CPU-charged) justification
        for a new proposal or new-view message?"""
        return justify.phase is Phase.PREPARE and justify.verify(node.quorum)

    # ------------------------------------------------------------------
    # The vote rounds
    # ------------------------------------------------------------------
    def vote_rule(self, node, view, height, phase, block, can_vote):
        """Coroutine: this replica's (possibly absent) vote for ``phase``."""
        own = yield from node._make_vote(view, height, phase, block, can_vote)
        return own

    def qc_rule(self, node, view, height, phase, block, collection, is_leader):
        """Coroutine: resolve ``phase``'s QC from the aggregate (root) or
        from the parent's dissemination (everyone else); None fails the
        instance."""
        qc = yield from node._resolve_qc(
            view, height, phase, block, collection, is_leader
        )
        return qc

    def commit_rule(self, node, qc: QuorumCert, block) -> None:
        """React to a verified QC: safety bookkeeping, pacemaker progress,
        and the commit decision."""
        node._handle_qc(qc, block)

    # ------------------------------------------------------------------
    # The round loop
    # ------------------------------------------------------------------
    def run_rounds(self, node, view, block, can_vote, is_leader, observer, recorder):
        """Coroutine: drive every vote round of one instance; True iff the
        instance decided. The proposal is already in hand (disseminated by
        the root / validated by the replica)."""
        height = block.height
        for phase in self.vote_phases:
            own = yield from self.vote_rule(node, view, height, phase, block, can_vote)
            collection = yield from node.comm.wait_for(
                self.vote_tag(view, height, phase),
                own,
                node.scheme,
                node.cpu,
                observer=observer,
            )
            resolve_started = node.sim.now
            qc = yield from self.qc_rule(
                node, view, height, phase, block, collection, is_leader
            )
            if recorder is not None:
                recorder.wait(height, node.sim.now - resolve_started)
            if qc is None:
                return False
            self.commit_rule(node, qc, block)
            can_vote = True  # a verified QC re-enables voting downstream
        return True


class KauriProtocol(Protocol):
    """The paper's protocol: chained two-layer rounds with stretch-timed
    pipelining (§4.2) -- or strictly sequential instances for the Kauri-np
    baseline (``pacing="sequential"``, §7.4). The tree-vs-star choice and
    the signature scheme live in the :class:`~repro.core.modes.ModeSpec`,
    not here: ``kauri-secp`` and friends share this strategy."""

    name = "kauri"


class HotStuffProtocol(Protocol):
    """Baseline HotStuff (§4.1): same rounds, but the leader chains
    instance k+1 onto instance k's prepare QC, a fixed pipeline depth
    of 4."""

    name = "hotstuff"

    def effective_stretch(self, node) -> float:
        return 3.0  # HotStuff's fixed pipeline depth of 4 rounds (§4.1)

    def inflight_cap(self, node, stretch: float) -> int:
        return 4

    def make_pacer(self, node, stretch: float):
        return None

    def pace(self, node, height: int, interval: float):
        # HotStuff: piggyback round 1 of the next instance on round 2 of
        # this one, i.e. start once the prepare QC is in (§4.1).
        from repro.sim.process import WaitSignal

        yield WaitSignal(node._prepare_signals[height])
