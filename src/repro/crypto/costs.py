"""CPU-time and wire-size cost model for cryptographic operations.

The paper measures processing times experimentally per signature scheme
(Table 2) and feeds them to the performance model (§4.3). We do the same:
these constants are charged to simulated CPUs and NICs. The defaults are
order-of-magnitude figures for libsecp256k1 and Chia's BLS12-381 library on
the paper's testbed era hardware (2×Xeon E5-2620 v4); they are configurable
per experiment, and EXPERIMENTS.md records their effect on absolute
numbers.

Key asymmetry the evaluation hinges on (§1, §3.3.2, §6):

- *secp*: cheap per-signature ops, but a quorum certificate is a **list**
  of N-f signatures -- O(N) bytes on the wire and O(N) verifications per
  validator.
- *bls*: expensive per-operation (pairings), but aggregates are **constant
  size** and verify in O(1) pairings; each internal node aggregates only
  its fanout's worth of shares, O(m) work (§3.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError


@dataclass(frozen=True)
class CryptoCostModel:
    """Timings (seconds) and sizes (bytes) for one signature scheme."""

    name: str
    sign_time: float            # produce one share/signature
    verify_time: float          # verify one individual share/signature
    aggregate_verify_time: float  # verify one aggregate, independent of signers
    combine_per_input_time: float  # merge one input into an aggregate
    signature_size: int         # one share/signature on the wire
    aggregate_base_size: int    # fixed part of an aggregate (0 = no aggregation)
    supports_aggregation: bool

    def __post_init__(self) -> None:
        for field_name in (
            "sign_time",
            "verify_time",
            "aggregate_verify_time",
            "combine_per_input_time",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigError(f"negative {field_name}")
        if self.signature_size <= 0:
            raise ConfigError("signature_size must be positive")

    def scaled(self, factor: float) -> "CryptoCostModel":
        """Uniformly scale all timings (models faster/slower CPUs)."""
        if factor < 0:
            raise ConfigError(f"negative scale factor: {factor}")
        return replace(
            self,
            sign_time=self.sign_time * factor,
            verify_time=self.verify_time * factor,
            aggregate_verify_time=self.aggregate_verify_time * factor,
            combine_per_input_time=self.combine_per_input_time * factor,
        )


#: libsecp256k1-style ECDSA: fast ops, no aggregation (HotStuff-secp, §6).
SECP_COSTS = CryptoCostModel(
    name="secp256k1",
    sign_time=50e-6,
    verify_time=100e-6,
    aggregate_verify_time=0.0,   # no aggregates; quorums verify per signature
    combine_per_input_time=0.0,  # list append
    signature_size=64,
    aggregate_base_size=0,
    supports_aggregation=False,
)

#: Chia-style BLS12-381 multisignatures (Kauri and HotStuff-bls, §6).
BLS_COSTS = CryptoCostModel(
    name="bls",
    sign_time=1.2e-3,
    verify_time=2.6e-3,           # one pairing-based check per received share
    aggregate_verify_time=2.6e-3,  # constant regardless of signer count
    combine_per_input_time=5e-6,   # group additions are cheap
    signature_size=48,
    aggregate_base_size=48,
    supports_aggregation=True,
)


def bitmap_size(n: int) -> int:
    """Bytes needed to name the signer set of an aggregate over ``n`` nodes."""
    return (n + 7) // 8
