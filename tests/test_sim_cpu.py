"""Unit tests for the FIFO CPU resource."""

import pytest

from repro.errors import SimulationError, TaskCancelled
from repro.sim import Cpu, Simulator, Sleep
from repro.sim.process import spawn


def run_jobs(sim, cpu, jobs):
    """Spawn one task per (delay, cost, tag); return completion log."""
    log = []

    def job(delay, cost, tag):
        yield Sleep(delay)
        yield from cpu.consume(cost)
        log.append((tag, sim.now))

    for delay, cost, tag in jobs:
        spawn(sim, job(delay, cost, tag))
    return log


def test_single_job_takes_its_cost():
    sim = Simulator()
    cpu = Cpu(sim)
    log = run_jobs(sim, cpu, [(0.0, 2.0, "a")])
    sim.run()
    assert log == [("a", 2.0)]


def test_concurrent_jobs_serialize_fifo():
    sim = Simulator()
    cpu = Cpu(sim)
    log = run_jobs(sim, cpu, [(0.0, 2.0, "a"), (0.0, 3.0, "b"), (0.0, 1.0, "c")])
    sim.run()
    assert log == [("a", 2.0), ("b", 5.0), ("c", 6.0)]


def test_idle_gap_then_new_job():
    sim = Simulator()
    cpu = Cpu(sim)
    log = run_jobs(sim, cpu, [(0.0, 1.0, "a"), (10.0, 1.0, "b")])
    sim.run()
    assert log == [("a", 1.0), ("b", 11.0)]


def test_arrival_mid_job_queues():
    sim = Simulator()
    cpu = Cpu(sim)
    log = run_jobs(sim, cpu, [(0.0, 5.0, "long"), (2.0, 1.0, "late")])
    sim.run()
    assert log == [("long", 5.0), ("late", 6.0)]


def test_zero_cost_is_free_and_unqueued():
    sim = Simulator()
    cpu = Cpu(sim)
    log = run_jobs(sim, cpu, [(0.0, 10.0, "busy"), (1.0, 0.0, "free")])
    sim.run()
    assert ("free", 1.0) in log


def test_negative_cost_rejected():
    sim = Simulator()
    cpu = Cpu(sim)

    def bad():
        yield from cpu.consume(-1.0)

    spawn(sim, bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_busy_time_and_utilization():
    sim = Simulator()
    cpu = Cpu(sim)
    run_jobs(sim, cpu, [(0.0, 2.0, "a"), (0.0, 2.0, "b")])
    sim.run(until=8.0)
    assert cpu.busy_time == pytest.approx(4.0)
    assert cpu.utilization() == pytest.approx(0.5)
    assert cpu.jobs_completed == 2


def test_queue_length_observable():
    sim = Simulator()
    cpu = Cpu(sim)
    run_jobs(sim, cpu, [(0.0, 5.0, "a"), (1.0, 5.0, "b"), (1.0, 5.0, "c")])
    sim.run(until=2.0)
    assert cpu.busy
    assert cpu.queue_length == 2
    sim.run()
    assert not cpu.busy
    assert cpu.queue_length == 0


def test_cancelled_queued_waiter_does_not_stall_cpu():
    sim = Simulator()
    cpu = Cpu(sim)
    log = []

    def job(delay, cost, tag):
        yield Sleep(delay)
        yield from cpu.consume(cost)
        log.append((tag, sim.now))

    spawn(sim, job(0.0, 5.0, "first"))
    victim = spawn(sim, job(1.0, 5.0, "victim"))
    spawn(sim, job(2.0, 1.0, "survivor"))
    sim.schedule(3.0, victim.cancel)
    sim.run()
    assert ("first", 5.0) in log
    assert ("survivor", 6.0) in log
    assert all(tag != "victim" for tag, _ in log)


def test_cancelled_running_job_releases_cpu():
    sim = Simulator()
    cpu = Cpu(sim)
    log = []

    def job(delay, cost, tag):
        yield Sleep(delay)
        try:
            yield from cpu.consume(cost)
            log.append((tag, sim.now))
        except TaskCancelled:
            raise

    runner = spawn(sim, job(0.0, 100.0, "runner"))
    spawn(sim, job(1.0, 1.0, "next"))
    sim.schedule(2.0, runner.cancel)
    sim.run()
    assert log == [("next", 3.0)]
    assert not cpu.busy


# ---------------------------------------------------------------------------
# Windowed accounting: utilization over an arbitrary [start, end) window
# ---------------------------------------------------------------------------
def test_windowed_utilization_is_windowed_not_lifetime():
    """Regression: utilization(since) used to divide *lifetime* busy time by
    the windowed elapsed time, then hide the >1 results behind a clamp."""
    sim = Simulator()
    cpu = Cpu(sim)
    run_jobs(sim, cpu, [(0.0, 4.0, "early")])  # busy over [0, 4)
    sim.run(until=8.0)
    # Whole run: 4 busy of 8.
    assert cpu.utilization() == pytest.approx(0.5)
    # Idle tail [4, 8): no busy time may leak in from the earlier job.
    assert cpu.utilization(since=4.0) == pytest.approx(0.0)
    # Window straddling the job's end: 2 busy of 4.
    assert cpu.utilization(since=2.0, until=6.0) == pytest.approx(0.5)
    # Exact, so never over 1 -- no clamp required.
    assert cpu.utilization(since=0.0, until=4.0) == pytest.approx(1.0)


def test_adjacent_windows_partition_busy_time():
    """busy_in over adjacent half-open windows sums to the whole: no
    boundary double-count, no gap, even when a cut lands mid-job."""
    sim = Simulator()
    cpu = Cpu(sim)
    run_jobs(sim, cpu, [(0.0, 2.0, "a"), (3.0, 2.0, "b"), (6.5, 1.0, "c")])
    sim.run(until=10.0)
    total = cpu.busy_in(0.0, 10.0)
    assert total == pytest.approx(5.0)
    for cut in (1.0, 2.0, 3.0, 4.0, 6.5, 7.0, 7.5, 9.9):
        assert cpu.busy_in(0.0, cut) + cpu.busy_in(cut, 10.0) == pytest.approx(
            total
        ), cut


def test_in_progress_job_counts_toward_window():
    sim = Simulator()
    cpu = Cpu(sim)
    run_jobs(sim, cpu, [(0.0, 10.0, "long")])
    sim.run(until=4.0)  # job still running
    assert cpu.busy_in(0.0, 4.0) == pytest.approx(4.0)
    assert cpu.utilization() == pytest.approx(1.0)
    assert cpu.utilization(since=1.0, until=3.0) == pytest.approx(1.0)


def test_cancelled_job_partial_busy_is_accounted():
    """A cancelled job's CPU time up to the cancel is real busy time; the
    job itself counts as cancelled, not completed."""
    sim = Simulator()
    cpu = Cpu(sim)

    def job():
        yield from cpu.consume(100.0)

    task = spawn(sim, job())
    sim.schedule(3.0, task.cancel)
    sim.run(until=10.0)
    assert cpu.jobs_completed == 0
    assert cpu.jobs_cancelled == 1
    assert cpu.busy_in(0.0, 10.0) == pytest.approx(3.0)
    assert cpu.utilization() == pytest.approx(0.3)
    # The idle tail after the cancel stays idle.
    assert cpu.utilization(since=3.0) == pytest.approx(0.0)


def test_saturated_cpu_memory_is_bounded_by_coalescing():
    """Back-to-back jobs coalesce into one busy interval."""
    sim = Simulator()
    cpu = Cpu(sim)
    run_jobs(sim, cpu, [(0.0, 1.0, i) for i in range(50)])
    sim.run()
    assert len(cpu._interval_starts) == 1
    assert cpu.busy_in(0.0, 50.0) == pytest.approx(50.0)
