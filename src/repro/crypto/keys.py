"""Public-key infrastructure (paper §2).

The system model assumes a PKI distributing keys before the run, with keys
fixed for the execution. :class:`Pki` plays that role and doubles as the
verification oracle: verifying a signature recomputes the keyed MAC, which
only works because the PKI knows every secret. Within the simulation this
gives real unforgeability -- Byzantine protocol code has no access to other
processes' :class:`KeyPair` objects, so it cannot fabricate shares that
verify (tested in ``tests/test_crypto_*``).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict

from repro.errors import CryptoError


#: Digest memo keyed on the canonical ``repr`` string, so values that are
#: ``==`` but repr differently (``1`` vs ``1.0``) can never share an entry.
#: Entries are immutable facts (sha256 of the key), so the cache is never
#: invalidated; inserts simply stop at the cap to bound memory on very
#: long sweeps.
_DIGEST_CACHE: Dict[str, bytes] = {}
_DIGEST_CACHE_CAP = 1 << 17


def canonical_digest(value: Any) -> bytes:
    """Deterministic 32-byte digest of a signable value.

    Values signed by the protocol are hashable tuples of primitives
    (view numbers, phase names, block hashes); ``repr`` is stable for
    those. Digests are memoised per repr: collections re-derive the
    digest of the same value many times per aggregation wave (§3.3.2).
    """
    rep = repr(value)
    digest = _DIGEST_CACHE.get(rep)
    if digest is None:
        digest = hashlib.sha256(rep.encode("utf-8")).digest()
        if len(_DIGEST_CACHE) < _DIGEST_CACHE_CAP:
            _DIGEST_CACHE[rep] = digest
    return digest


class KeyPair:
    """A process's signing key. Possession of the object *is* the secret.

    PKI-issued keypairs share the PKI's expected-MAC memo: signing seeds
    the same ``(signer, digest)`` entry verification reads, so an
    honestly-signed tag is never re-derived by any verifier. Simulated
    crypto CPU time is charged via the cost model, so this wall-clock
    shortcut cannot affect simulation results.
    """

    __slots__ = ("node_id", "_secret", "_mac_cache")

    def __init__(self, node_id: int, secret: bytes, mac_cache: Dict = None):
        self.node_id = node_id
        self._secret = secret
        self._mac_cache = mac_cache

    def mac(self, digest: bytes) -> bytes:
        """Keyed MAC over ``digest`` -- the simulated signature tag."""
        cache = self._mac_cache
        if cache is None:
            return hashlib.sha256(self._secret + digest).digest()
        key = (self.node_id, digest)
        mac = cache.get(key)
        if mac is None:
            mac = hashlib.sha256(self._secret + digest).digest()
            if len(cache) >= Pki._MAC_CACHE_CAP:
                cache.clear()
            cache[key] = mac
        return mac

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyPair(node={self.node_id})"


class Pki:
    """Key registry and verification oracle for one deployment.

    Expected MACs are memoised per ``(signer, digest)``: keys are fixed
    for the execution (§2), so an entry is an immutable fact and is never
    invalidated. The memo doubles as the *interned tag arena* for the
    bitmap-backed BLS collections: a mask bit in a collection stands for
    "this signer contributed exactly the arena's canonical tag", so the
    tag bytes live here once per ``(signer, digest)`` instead of being
    copied into every aggregate. A tag verified once by any collection is
    therefore never re-derived by descendant collections during tree
    aggregation -- the memo turns repeat verifications into one dict
    lookup. The cache is cleared wholesale at a size cap to bound memory;
    it refills within one aggregation wave.
    """

    _MAC_CACHE_CAP = 1 << 20

    def __init__(self, n: int, seed: int = 0):
        if n < 1:
            raise CryptoError(f"PKI needs at least one process, got {n}")
        self.n = n
        self._keys: Dict[int, KeyPair] = {}
        self._mac_cache: Dict[tuple, bytes] = {}
        root = hashlib.sha256(f"pki-seed-{seed}".encode()).digest()
        for node_id in range(n):
            secret = hashlib.sha256(root + node_id.to_bytes(8, "big")).digest()
            self._keys[node_id] = KeyPair(node_id, secret, self._mac_cache)

    def keypair(self, node_id: int) -> KeyPair:
        """Hand ``node_id`` its own keypair (deployment-time distribution)."""
        try:
            return self._keys[node_id]
        except KeyError:
            raise CryptoError(f"process {node_id} is not in the PKI") from None

    def owns(self, keypair: "KeyPair") -> bool:
        """True iff ``keypair`` is the very object this PKI issued.

        Identity (not equality) on purpose: possession of the issued
        object is the secret, so a reconstructed look-alike must go
        through honest tag verification instead.
        """
        return self._keys.get(keypair.node_id) is keypair

    def expected_mac(self, node_id: int, digest: bytes) -> bytes:
        """Oracle: the MAC ``node_id`` would produce over ``digest``."""
        key = (node_id, digest)
        mac = self._mac_cache.get(key)
        if mac is None:
            mac = self.keypair(node_id).mac(digest)
            if len(self._mac_cache) >= self._MAC_CACHE_CAP:
                self._mac_cache.clear()
            self._mac_cache[key] = mac
        return mac

    def verify_mac(self, node_id: int, digest: bytes, mac: bytes) -> bool:
        """Check that ``mac`` is ``node_id``'s signature over ``digest``."""
        if not 0 <= node_id < self.n:
            return False
        return self.expected_mac(node_id, digest) == mac

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pki(n={self.n})"
