"""Tests for automatic configuration (§8 future work) and adaptive pacing
(§6 future work)."""

import pytest

from repro import Cluster, ProtocolConfig
from repro.config import GLOBAL, KB, NATIONAL, REGIONAL, resilientdb_clusters
from repro.core import AdaptivePacer, PerfModel, tune_heterogeneous, tune_homogeneous
from repro.core.autotune import cluster_tree_rooted_at, enumerate_candidates
from repro.crypto.costs import BLS_COSTS
from repro.errors import ConfigError


class TestTuneHomogeneous:
    def test_global_prefers_trees(self):
        """Bandwidth-starved deployments want deep trees, never the star."""
        best = tune_homogeneous(400, GLOBAL, objective="throughput")
        assert best.height >= 2
        assert best.expected_throughput_txs > 0
        assert best.stretch >= 0

    def test_latency_objective_prefers_shallow(self):
        tput = tune_homogeneous(100, GLOBAL, objective="throughput")
        lat = tune_homogeneous(100, GLOBAL, objective="latency")
        assert lat.expected_latency <= tput.expected_latency

    def test_candidates_cover_star_and_trees(self):
        candidates = enumerate_candidates(100, REGIONAL, ProtocolConfig())
        heights = {c.height for c in candidates}
        assert 1 in heights and 2 in heights and 3 in heights

    def test_small_system_feasible(self):
        best = tune_homogeneous(7, NATIONAL)
        assert best.root_fanout >= 1

    def test_unknown_objective_rejected(self):
        with pytest.raises(ConfigError):
            tune_homogeneous(100, GLOBAL, objective="vibes")

    def test_describe(self):
        best = tune_homogeneous(100, GLOBAL)
        assert "stretch" in best.describe()

    def test_tuned_config_runs_and_beats_star(self):
        """End-to-end: the tuned tree outperforms the star baseline."""
        from repro import run_experiment

        best = tune_homogeneous(31, GLOBAL)
        tree_result = run_experiment(
            mode="kauri",
            scenario="global",
            n=31,
            height=best.height,
            root_fanout=best.root_fanout,
            stretch=best.stretch,
            duration=40.0,
            max_commits=40,
        )
        star_result = run_experiment(
            mode="hotstuff-bls", scenario="global", n=31, duration=120.0, max_commits=40
        )
        assert tree_result.throughput_txs > star_result.throughput_txs


class TestTuneHeterogeneous:
    def test_picks_best_connected_cluster(self):
        """§7.9 places the leader in Oregon by hand; the tuner must agree."""
        placement = tune_heterogeneous(resilientdb_clusters())
        assert placement.leader_cluster == 0
        assert placement.tree.root in resilientdb_clusters().members(0)
        assert placement.stretch > 0

    def test_tree_layout_keeps_leaves_near_heads(self):
        clusters = resilientdb_clusters()
        tree = cluster_tree_rooted_at(clusters, leader_cluster=2)
        assert clusters.cluster_of(tree.root) == 2
        for head in tree.children(tree.root):
            for leaf in tree.children(head):
                assert clusters.cluster_of(leaf) == clusters.cluster_of(head)

    def test_all_processes_placed(self):
        clusters = resilientdb_clusters(per_cluster=4)
        tree = cluster_tree_rooted_at(clusters, leader_cluster=5)
        assert set(tree.nodes) == set(range(clusters.n))


class TestAdaptivePacer:
    def model(self):
        return PerfModel.for_topology(100, 2, 10, GLOBAL, 250 * KB, BLS_COSTS)

    class FakeNic:
        def __init__(self, backlog):
            self.backlog = backlog

    def test_backs_off_under_congestion(self):
        model = self.model()
        pacer = AdaptivePacer(model, initial_stretch=10.0)
        before = pacer.interval
        pacer.next_interval(self.FakeNic(backlog=10 * model.sending_time))
        assert pacer.interval > before

    def test_speeds_up_when_idle(self):
        model = self.model()
        pacer = AdaptivePacer(model, initial_stretch=0.1)
        before = pacer.interval
        pacer.next_interval(self.FakeNic(backlog=0.0))
        assert pacer.interval < before

    def test_interval_bounded(self):
        model = self.model()
        pacer = AdaptivePacer(model, initial_stretch=1.0)
        for _ in range(200):
            pacer.next_interval(self.FakeNic(backlog=1e9))
        assert pacer.interval <= model.round_time
        for _ in range(500):
            pacer.next_interval(self.FakeNic(backlog=0.0))
        assert pacer.interval >= model.bottleneck_time * 0.9 - 1e-9

    def test_steady_zone_leaves_interval_alone(self):
        model = self.model()
        pacer = AdaptivePacer(model, initial_stretch=1.0)
        before = pacer.interval
        pacer.next_interval(self.FakeNic(backlog=1.0 * model.sending_time))
        assert pacer.interval == before
        assert pacer.adjustments == 0

    def test_effective_stretch_inverse(self):
        model = self.model()
        pacer = AdaptivePacer(model, initial_stretch=1.5)
        assert pacer.effective_stretch == pytest.approx(1.5, rel=0.05)

    def test_validation(self):
        model = self.model()
        with pytest.raises(ConfigError):
            AdaptivePacer(model, 1.0, backoff=0.9)
        with pytest.raises(ConfigError):
            AdaptivePacer(model, 1.0, speedup=1.5)
        with pytest.raises(ConfigError):
            AdaptivePacer(model, 1.0, high_watermark=0.1, low_watermark=0.5)


class TestAdaptiveStretchEndToEnd:
    def test_recovers_from_gross_overpipelining(self):
        """Start with an 8x-over stretch: static churns, adaptive recovers."""

        def run(adaptive):
            config = ProtocolConfig(stretch=12.0, adaptive_stretch=adaptive)
            cluster = Cluster(n=31, mode="kauri", scenario="global", config=config)
            cluster.start()
            cluster.run(duration=120.0, max_commits=100)
            cluster.check_agreement()
            return cluster

        adaptive = run(True)
        static = run(False)
        # adaptive pacing must commit more than the churning static config
        # (which may commit nothing at all)
        assert adaptive.metrics.committed_blocks > static.metrics.committed_blocks
        assert adaptive.metrics.committed_blocks > 0
        leader = adaptive.policy.leader_of(0)
        assert adaptive.nodes[leader].pacer is not None
        assert adaptive.nodes[leader].pacer.adjustments > 0

    def test_adaptive_matches_model_from_good_start(self):
        config_static = ProtocolConfig()
        config_adaptive = ProtocolConfig(adaptive_stretch=True)

        def run(config):
            cluster = Cluster(n=31, mode="kauri", scenario="global", config=config)
            cluster.start()
            cluster.run(duration=90.0, max_commits=80)
            cluster.check_agreement()
            return cluster.metrics.throughput_txs(start=20.0)

        assert run(config_adaptive) > 0.7 * run(config_static)
