"""The protocol-agnostic SMR replica base.

One :class:`SmrNode` per process. It owns everything every protocol on this
fabric shares -- lifecycle (start/stop, crash injection), view entry and
task cancellation, the persistent client pump, pacemaker/timeout wiring,
per-view :class:`~repro.core.comm.TreeComm` construction, the commit
plumbing (buffered out-of-order commits, metrics, state-machine
application) and the :class:`~repro.obs.recorder.PhaseRecorder` hooks --
and delegates every protocol decision to a pluggable
:class:`~repro.consensus.protocol.Protocol` strategy resolved from the
mode's ``protocol`` field:

- a *proposal pump* (non-roots): receives round-1 proposals from the
  parent, forwards them down (Algorithm 2), and spawns one instance
  handler per height;
- *instance handlers*: dissemination/validation followed by the strategy's
  vote rounds (``Protocol.run_rounds``) -- the §3.1 three-round chain for
  Kauri/HotStuff, the one-round optimistic fast path for Kudzu;
- the *leader loop* (root): collects 2f+1 new-view messages when taking
  over (§6), then paces proposals according to the strategy -- stretch-timed
  for Kauri (§4.2), QC-chained with depth 4 for HotStuff (§4.1), strictly
  sequential for Kauri-np;
- the *pacemaker*: resets on verified quorum certificates and commits;
  expiry sends a new-view message to the next root and advances the view.

The *mechanism* coroutines (signing a vote, forming/verifying a QC,
disseminating a proposal) also live here as overridable hooks: Byzantine
behaviours in :mod:`repro.consensus.byzantine` subclass them directly,
independent of which strategy is plugged in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.config import ProtocolConfig, quorum_size
from repro.consensus.block import Block, BlockStore
from repro.consensus.pacemaker import Pacemaker
from repro.consensus.safety import SafetyRules
from repro.consensus.vote import Phase, QuorumCert, vote_value
from repro.core.comm import TreeComm
from repro.core.modes import ModeSpec, protocol_for
from repro.core.perfmodel import PROPOSAL_OVERHEAD, PerfModel
from repro.crypto.collection import Collection
from repro.crypto.signature import SignatureScheme
from repro.net.impatient import BOTTOM
from repro.net.network import Network
from repro.sim.cpu import Cpu
from repro.sim.engine import Simulator
from repro.sim.process import Signal, Sleep, Task, spawn
from repro.topology.reconfig import ReconfigurationPolicy
from repro.topology.tree import Tree

#: Extra wire bytes of a new-view message beyond its QC.
NEWVIEW_OVERHEAD = 256

#: Tag for client transaction submissions (see ClientHarness).
CLIENT_TX_TAG = ("client", "txs")


@dataclass(frozen=True, slots=True)
class ReplicaShared:
    """Deployment-wide immutable replica configuration (the flyweight).

    Every replica of one deployment runs the same protocol strategy
    against the same crypto scheme, topology policy, protocol config,
    mode spec, performance-model factory and metrics sink -- and derives
    the same quorum sizes from them. One frozen instance holds all of it;
    per-node state keeps a single reference, so an N=1000 deployment pays
    for this configuration once instead of a thousand times.

    Strategies are stateless (they receive the node on every call), which
    is what makes sharing :attr:`protocol` across replicas safe; a node
    that needs a bespoke strategy can still assign ``node.protocol``.
    """

    scheme: SignatureScheme
    policy: ReconfigurationPolicy
    config: ProtocolConfig
    mode: ModeSpec
    model_factory: Callable[[Tree], PerfModel]
    metrics: Any
    protocol: Any
    n: int
    quorum: int
    newview_quorum: int

    @classmethod
    def build(
        cls,
        scheme: SignatureScheme,
        policy: ReconfigurationPolicy,
        config: ProtocolConfig,
        mode: ModeSpec,
        model_factory: Callable[[Tree], PerfModel],
        metrics: Any,
    ) -> "ReplicaShared":
        n = policy.n
        return cls(
            scheme=scheme,
            policy=policy,
            config=config,
            mode=mode,
            model_factory=model_factory,
            metrics=metrics,
            protocol=protocol_for(mode),
            n=n,
            quorum=quorum_size(n),
            newview_quorum=2 * ((n - 1) // 3) + 1,  # §6: 2f+1
        )


class SmrNode:
    """One replica of the deployment, parameterized by a protocol strategy."""

    __slots__ = (
        "shared", "node_id", "sim", "network", "workload", "protocol",
        "keypair", "endpoint", "cpu", "store", "safety",
        "view", "tree", "comm", "model", "pacemaker", "stopped",
        "_view_tasks", "_persistent_tasks", "_seen_heights",
        "_prepare_signals", "_inflight", "_pending_commits", "_salt",
        "instance_failures", "fast_commits", "fast_fallbacks",
        "pacer", "app", "obs",
    )

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        scheme: Optional[SignatureScheme] = None,
        policy: Optional[ReconfigurationPolicy] = None,
        config: Optional[ProtocolConfig] = None,
        mode: Optional[ModeSpec] = None,
        model_factory: Optional[Callable[[Tree], PerfModel]] = None,
        metrics: Any = None,
        workload: Any = None,
        shared: Optional[ReplicaShared] = None,
    ):
        if shared is None:
            # Direct construction (tests, one-off nodes): build a private
            # flyweight from the pieces. Deployment builders construct one
            # ReplicaShared up front and pass it to every node.
            shared = ReplicaShared.build(
                scheme=scheme,
                policy=policy,
                config=config,
                mode=mode,
                model_factory=model_factory,
                metrics=metrics,
            )
        self.shared = shared
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.workload = workload  # None = saturated (always-full blocks)
        self.protocol = shared.protocol

        self.keypair = shared.scheme.pki.keypair(node_id)
        self.endpoint = network.register(node_id)
        self.cpu = Cpu(sim, name=f"cpu-{node_id}")
        self.store = BlockStore()
        self.safety = SafetyRules(self.store)

        self.view = -1
        self.tree: Optional[Tree] = None
        self.comm: Optional[TreeComm] = None
        self.model: Optional[PerfModel] = None
        self.pacemaker: Optional[Pacemaker] = None
        self.stopped = False

        self._view_tasks: List[Task] = []
        self._persistent_tasks: List[Task] = []
        self._seen_heights: set = set()
        self._prepare_signals: Dict[int, Signal] = {}
        self._inflight: set = set()
        self._pending_commits: List[Block] = []
        self._salt = 0
        self.instance_failures = 0
        #: Kudzu fast-path counters (zero for every other protocol).
        self.fast_commits = 0
        self.fast_fallbacks = 0
        self.pacer = None
        #: Optional application (state machine) fed by the commit path.
        self.app: Any = None
        #: Optional :class:`~repro.obs.recorder.PhaseRecorder`, attached by
        #: the cluster builder when observability is enabled.
        self.obs: Any = None

    # ------------------------------------------------------------------
    # Shared (deployment-wide) configuration, read through the flyweight.
    # ------------------------------------------------------------------
    @property
    def scheme(self) -> SignatureScheme:
        return self.shared.scheme

    @property
    def policy(self) -> ReconfigurationPolicy:
        return self.shared.policy

    @property
    def config(self) -> ProtocolConfig:
        return self.shared.config

    @property
    def mode(self) -> ModeSpec:
        return self.shared.mode

    @property
    def model_factory(self) -> Callable[[Tree], PerfModel]:
        return self.shared.model_factory

    @property
    def metrics(self) -> Any:
        return self.shared.metrics

    @property
    def n(self) -> int:
        return self.shared.n

    @property
    def quorum(self) -> int:
        return self.shared.quorum

    @property
    def newview_quorum(self) -> int:
        return self.shared.newview_quorum

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot the replica into view 0 (no new-view collection at genesis)."""
        self.pacemaker = Pacemaker(
            self.sim,
            base_timeout=self.config.base_timeout,
            on_timeout=self._on_timeout,
            cap=self.config.timeout_cap,
        )
        if self.workload is not None and hasattr(self.workload, "ingest"):
            self._persistent_tasks.append(
                spawn(self.sim, self._client_pump(), name=f"n{self.node_id}-clients")
            )
        self._enter_view(0)

    def _client_pump(self):
        """Persistent ingress for client transaction batches (§2).

        Admission-controlled workloads expose ``admit`` (bounded mempool
        with drop/defer backpressure); plain ones only ``ingest``. Bulk
        mempools additionally expose ``admit_batch`` (amortised headroom
        arithmetic over whole batches/chunks) -- preferred when present,
        since the workload engine ships per-tick arrivals as lazy chunks.
        """
        admit = getattr(self.workload, "admit_batch", None)
        if admit is None:
            admit = getattr(self.workload, "admit", None)
        while True:
            msg = yield from self.endpoint.receive(CLIENT_TX_TAG)
            if isinstance(msg.payload, list):
                if admit is not None:
                    admit(msg.payload, self.sim.now)
                else:
                    self.workload.ingest(msg.payload)

    def stop(self) -> None:
        """Halt the replica (crash injection); idempotent."""
        self.stopped = True
        self._cancel_view_tasks()
        for task in self._persistent_tasks:
            task.cancel()
        self._persistent_tasks.clear()
        if self.pacemaker is not None:
            self.pacemaker.stop()

    def _cancel_view_tasks(self) -> None:
        for task in self._view_tasks:
            task.cancel()
        self._view_tasks.clear()

    def _spawn(self, gen, name: str) -> Task:
        task = spawn(self.sim, gen, name=f"n{self.node_id}-{name}")
        self._view_tasks.append(task)
        return task

    def _enter_view(self, view: int) -> None:
        if self.stopped:
            return
        self._cancel_view_tasks()
        self.view = view
        self.tree = self.policy.configuration(view)
        self.model = self.model_factory(self.tree)
        # Clear in place rather than reallocating: view changes are common
        # under faults, and _cancel_view_tasks() has already run every
        # instance's finally block, so nothing observes the old contents.
        self._seen_heights.clear()
        self._prepare_signals.clear()
        self._inflight.clear()
        self.comm = self._build_comm(self.tree)
        self.endpoint.purge(lambda tag: self.protocol.is_stale_tag(tag, view))
        assert self.pacemaker is not None
        self.pacemaker.base_timeout = self.model.suggested_timeout(
            self.config.base_timeout
        )
        self.pacemaker.cap = max(self.config.timeout_cap, self.pacemaker.base_timeout)
        self.pacemaker.start_view()
        if self.tree.root == self.node_id:
            self._spawn(self._leader_main(view), f"leader-v{view}")
        else:
            self._spawn(self._proposal_pump(view), f"pump-v{view}")

    def _build_comm(self, tree: Tree) -> TreeComm:
        """Hook: build this view's communication layer (overridden by
        Byzantine behaviours in :mod:`repro.consensus.byzantine`)."""
        assert self.model is not None
        return TreeComm(
            self.sim,
            self.network,
            self.node_id,
            tree,
            delta=self.config.delta or self.model.suggested_delta(),
        )

    def _on_timeout(self) -> None:
        """Pacemaker expiry: reconfigure (§6)."""
        if self.stopped:
            return
        next_view = self.view + 1
        self.metrics.on_view_change(self.node_id, next_view, self.sim.now)
        next_leader = self.policy.leader_of(next_view)
        high = self.safety.high_prepare_qc
        payload = (high, self.store.get(high.block_hash))
        self.network.send(
            self.node_id,
            next_leader,
            self.protocol.newview_tag(next_view),
            payload,
            high.wire_size() + NEWVIEW_OVERHEAD,
        )
        self._enter_view(next_view)

    # ------------------------------------------------------------------
    # Leader side
    # ------------------------------------------------------------------
    def _leader_main(self, view: int):
        justify = self.safety.high_prepare_qc
        if view > 0:
            justify = yield from self._collect_new_views(view)
        parent_hash = justify.block_hash
        next_height = justify.height + 1
        stretch = self._effective_stretch()
        interval = self.model.proposal_interval(stretch)
        cap = self._inflight_cap(stretch)
        self.pacer = self.protocol.make_pacer(self, stretch)
        while True:
            if len(self._inflight) < cap:
                block = self.protocol.propose(self, view, next_height, parent_hash)
                justify_now = self.safety.high_prepare_qc
                self._inflight.add(block.height)
                self._prepare_signals[block.height] = Signal()
                self._spawn(
                    self._instance(view, block, justify_now, is_leader=True),
                    f"inst-{block.height}",
                )
                parent_hash = block.hash
                proposed_height = next_height
                next_height += 1
                yield from self._pace(proposed_height, interval)
            else:
                yield Sleep(interval)

    def _effective_stretch(self) -> float:
        return self.protocol.effective_stretch(self)

    def _inflight_cap(self, stretch: float) -> int:
        return self.protocol.inflight_cap(self, stretch)

    def _pace(self, height: int, interval: float):
        """Coroutine: strategy-defined wait before the next proposal."""
        yield from self.protocol.pace(self, height, interval)

    def _make_block(self, view: int, height: int, parent_hash: str) -> Block:
        self._salt += 1
        tx_ids = ()
        if self.workload is not None:
            fill = self.workload.next_fill(self.sim.now)
            payload_size, num_txs = fill.payload_size, fill.num_txs
            tx_ids = getattr(fill, "tx_ids", ())
        else:
            payload_size, num_txs = self.config.block_size, self.config.txs_per_block
        block = Block.create(
            height=height,
            view=view,
            parent=parent_hash,
            proposer=self.node_id,
            payload_size=payload_size,
            num_txs=num_txs,
            created_at=self.sim.now,
            justify_view=view,
            salt=self._salt,
            tx_ids=tx_ids,
        )
        self.store.add(block)
        return block

    def _collect_new_views(self, view: int):
        """§6: await 2f+1 new-view messages; return the high prepare QC."""
        high = self.safety.high_prepare_qc
        collected = {self.node_id}
        while len(collected) < self.newview_quorum:
            msg = yield from self.endpoint.receive(self.protocol.newview_tag(view))
            if msg.src in collected:
                continue
            payload = msg.payload
            if not (isinstance(payload, tuple) and len(payload) == 2):
                continue
            qc, block = payload
            if not isinstance(qc, QuorumCert):
                continue
            if not qc.is_genesis:
                yield from self.cpu.consume(
                    self.scheme.cost_verify_collection(qc.collection)
                )
                if not self.protocol.verify_justify(self, qc):
                    continue
            if isinstance(block, Block) and block.hash == qc.block_hash:
                self.store.add(block)
            collected.add(msg.src)
            if qc.newer_than(high):
                high = qc
        self.safety.observe_prepare_qc(high)
        self.safety.observe_fast_qc(high)
        return high

    # ------------------------------------------------------------------
    # Replica side
    # ------------------------------------------------------------------
    def _proposal_pump(self, view: int):
        """Receive proposals from the parent, forward, spawn handlers."""
        tag = self.protocol.prop_tag(view)
        while True:
            msg = yield from self.comm.receive_from_parent(tag, timeout=None)
            # Algorithm 2: forward before validating -- internal nodes are
            # relays; validation happens before *voting*.
            self.comm.send_to_children(tag, msg.payload, msg.size)
            parsed = self.protocol.on_proposal(self, view, msg.payload)
            if parsed is None:
                continue
            block, justify, parent_meta = parsed
            if block.height in self._seen_heights:
                continue  # duplicate or equivocation at a known height
            self._seen_heights.add(block.height)
            self._spawn(
                self._instance(
                    view, block, justify, is_leader=False, parent_meta=parent_meta
                ),
                f"inst-{block.height}",
            )

    @staticmethod
    def _parse_proposal(payload: Any):
        if not (isinstance(payload, tuple) and len(payload) == 3):
            return None
        block, justify, parent_meta = payload
        if not isinstance(block, Block) or not isinstance(justify, QuorumCert):
            return None
        if parent_meta is not None and not isinstance(parent_meta, Block):
            return None
        return block, justify, parent_meta

    def _validate_proposal(
        self, view: int, block: Block, justify: QuorumCert, parent_meta: Optional[Block]
    ):
        """Coroutine: full round-1 validation; returns vote eligibility."""
        if parent_meta is not None and parent_meta.hash == block.parent:
            self.store.add(parent_meta)
        if block.view != view or block.proposer != self.tree.root:
            return False
        if not justify.is_genesis:
            yield from self.cpu.consume(
                self.scheme.cost_verify_collection(justify.collection)
            )
            if not self.protocol.verify_justify(self, justify):
                return False
        self.store.add(block)
        if not self.safety.safe_proposal(block, justify):
            return False
        self.safety.observe_prepare_qc(justify)
        self.safety.observe_fast_qc(justify)
        return True

    # ------------------------------------------------------------------
    # One consensus instance (dissemination + the strategy's vote rounds)
    # ------------------------------------------------------------------
    def _instance(
        self,
        view: int,
        block: Block,
        justify: QuorumCert,
        is_leader: bool,
        parent_meta: Optional[Block] = None,
    ):
        height = block.height
        recorder = self.obs
        decided = False
        if recorder is not None:
            recorder.start(height, self.sim.now)
        try:
            if is_leader:
                self._disseminate_proposal(view, block, justify)
                if recorder is not None:
                    # Sends are synchronous NIC enqueues, so the uplink
                    # backlog right after the fan-out *is* the proposal's
                    # serialization span (the measured t_s of §4.3).
                    recorder.disseminate(
                        height, self.network.nic(self.node_id).backlog
                    )
                can_vote = True
            else:
                entered = self.sim.now
                can_vote = yield from self._validate_proposal(
                    view, block, justify, parent_meta
                )
                if recorder is not None:
                    recorder.disseminate(height, self.sim.now - entered)
            if recorder is None:
                observer = None
            else:
                observer = lambda elapsed, merged: recorder.aggregate(
                    height, elapsed, merged
                )
            decided = yield from self.protocol.run_rounds(
                self, view, block, can_vote, is_leader, observer, recorder
            )
            if not decided:
                self.instance_failures += 1
            return decided
        finally:
            if recorder is not None:
                recorder.finish(height, self.sim.now, decided)
            self._inflight.discard(height)
            done = self._prepare_signals.get(("done", height))
            if done is not None:
                done.fire_if_unfired()

    def _disseminate_proposal(self, view: int, block: Block, justify: QuorumCert) -> None:
        """Hook: round-1 dissemination by the root (overridden by Byzantine
        leaders, e.g. to equivocate).

        ``send_to_children`` is one fabric multicast: the root's §4.3
        back-to-back child serializations are charged to its uplink in a
        single batched NIC pass (on a star, this is the leader broadcast).
        """
        payload = (block, justify, self.store.get(block.parent))
        size = block.payload_size + justify.wire_size() + PROPOSAL_OVERHEAD
        self.comm.send_to_children(self.protocol.prop_tag(view), payload, size)

    def _make_vote(self, view: int, height: int, phase: Phase, block: Block, can_vote: bool):
        """Coroutine: sign this phase's vote if the safety rules allow."""
        if not can_vote or not self.safety.may_vote(view, height, phase):
            return None
        self.safety.record_vote(view, height, phase)
        yield from self.cpu.consume(self.scheme.cost_sign())
        return self.scheme.new(
            self.keypair, vote_value(phase, view, height, block.hash)
        )

    def _resolve_qc(
        self,
        view: int,
        height: int,
        phase: Phase,
        block: Block,
        collection: Collection,
        is_leader: bool,
    ):
        """Coroutine: obtain this phase's QC.

        The root forms it from the aggregate (failing the instance if the
        quorum is short) and disseminates it; everyone else receives it
        from the parent (Algorithm 2) and verifies it.
        """
        if is_leader:
            value = vote_value(phase, view, height, block.hash)
            if not collection.has(value, self.quorum):
                return None
            qc = QuorumCert(phase, view, height, block.hash, collection)
            signal = self._prepare_signals.get(height)
            if phase is Phase.PREPARE and signal is not None:
                signal.fire_if_unfired()
            self.comm.send_to_children(
                self.protocol.qc_tag(view, height, phase), qc, qc.wire_size()
            )
            return qc
        data = yield from self.comm.broadcast(self.protocol.qc_tag(view, height, phase))
        if data is BOTTOM or not isinstance(data, QuorumCert):
            return None
        qc = data
        if (
            qc.phase is not phase
            or qc.view != view
            or qc.height != height
            or qc.block_hash != block.hash
            or qc.is_genesis
        ):
            return None
        yield from self.cpu.consume(self.scheme.cost_verify_collection(qc.collection))
        if not qc.verify(self.quorum):
            return None
        return qc

    def _handle_qc(self, qc: QuorumCert, block: Block) -> None:
        self.safety.observe_qc(qc)
        assert self.pacemaker is not None
        self.pacemaker.record_progress()
        if qc.phase is Phase.COMMIT:
            self._commit(block)

    # ------------------------------------------------------------------
    # Commit path
    # ------------------------------------------------------------------
    def _commit(self, block: Block) -> None:
        """Commit ``block`` and uncommitted ancestors; buffer on gaps."""
        if self.store.is_committed(block.hash):
            return
        if not self.store.knows_chain(block):
            self._pending_commits.append(block)
            return
        newly = self.store.commit(block)  # raises ConsensusError on conflict
        for committed in newly:
            self.metrics.on_commit(self.node_id, committed, self.sim.now)
            if self.app is not None:
                self.app.apply_block(committed)
        if self._pending_commits:
            pending, self._pending_commits = self._pending_commits, []
            for buffered in pending:
                self._commit(buffered)

    # ------------------------------------------------------------------
    @property
    def committed_height(self) -> int:
        return self.store.committed_height

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "?"
        if self.tree is not None:
            role = "leader" if self.tree.root == self.node_id else "replica"
        return (
            f"{type(self).__name__}(id={self.node_id}, view={self.view}, "
            f"{role}, protocol={self.protocol.name})"
        )
