"""Run metrics: commits, latency, view changes, time series.

Measurement conventions (matching §7):

- *Throughput* counts each height once, at the moment the **first** correct
  replica commits it (transactions per second over a window, excluding
  warm-up).
- *Latency* is proposal-to-first-commit per block -- the consensus latency
  the paper plots.
- *Time series* bucket committed transactions per second, used for the
  reconfiguration plots (Figure 12).
- Every window is **half-open**, ``[lo, hi)``: an event landing exactly on
  a window edge belongs to the window that *starts* there. Adjacent
  windows (warm-up + measurement, consecutive time-series buckets)
  therefore partition the event stream -- nothing is counted twice and
  nothing is dropped, which is what lets a report split a run's totals
  exactly.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.consensus.block import Block
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class CommitRecord:
    """First commit of one height."""

    height: int
    block_hash: str
    time: float
    latency: float
    num_txs: int
    payload_size: int
    first_committer: int


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of pre-sorted values (p in [0, 100])."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile out of range: {p}")
    rank = max(1, math.ceil(p / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


class Metrics:
    """Collector shared by every node of one deployment."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.first_commits: Dict[int, CommitRecord] = {}
        self.commits_per_node: Counter = Counter()
        self.view_changes: List[Tuple[float, int, int]] = []  # (time, node, view)
        self.commit_events: List[Tuple[float, int]] = []  # (time, num_txs)
        #: Callbacks fired on each height's *first* commit: f(record, block).
        self.commit_listeners: List = []

    # ------------------------------------------------------------------
    # Recording (called by protocol nodes)
    # ------------------------------------------------------------------
    def on_commit(self, node_id: int, block: Block, time: float) -> None:
        """Record a replica committing a block (first commit per height
        defines the global record and fires the listeners)."""
        self.commits_per_node[node_id] += 1
        if block.height in self.first_commits:
            return
        record = CommitRecord(
            height=block.height,
            block_hash=block.hash,
            time=time,
            latency=time - block.created_at,
            num_txs=block.num_txs,
            payload_size=block.payload_size,
            first_committer=node_id,
        )
        self.first_commits[block.height] = record
        self.commit_events.append((time, block.num_txs))
        for listener in self.commit_listeners:
            listener(record, block)

    def on_view_change(self, node_id: int, view: int, time: float) -> None:
        """Record one replica advancing to ``view``."""
        self.view_changes.append((time, node_id, view))

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def committed_blocks(self) -> int:
        return len(self.first_commits)

    @property
    def max_view(self) -> int:
        if not self.view_changes:
            return 0
        return max(view for _, _, view in self.view_changes)

    def records(self) -> List[CommitRecord]:
        return [self.first_commits[h] for h in sorted(self.first_commits)]

    def _window(
        self, start: Optional[float], end: Optional[float]
    ) -> Tuple[float, float]:
        lo = 0.0 if start is None else start
        hi = self.sim.now if end is None else end
        return lo, hi

    def throughput_txs(self, start: Optional[float] = None, end: Optional[float] = None) -> float:
        """Committed transactions per second over the half-open ``[start, end)``.

        A commit landing exactly at ``end`` belongs to the *next* window, so
        splitting a run at any instant partitions its transactions exactly
        (nothing double-counted by adjacent warm-up/measurement windows).
        """
        lo, hi = self._window(start, end)
        if hi <= lo:
            return 0.0
        txs = sum(n for t, n in self.commit_events if lo <= t < hi)
        return txs / (hi - lo)

    def throughput_blocks(self, start: Optional[float] = None, end: Optional[float] = None) -> float:
        lo, hi = self._window(start, end)
        if hi <= lo:
            return 0.0
        blocks = sum(1 for t, _ in self.commit_events if lo <= t < hi)
        return blocks / (hi - lo)

    def latencies(self, start: Optional[float] = None, end: Optional[float] = None) -> List[float]:
        lo, hi = self._window(start, end)
        return sorted(
            rec.latency for rec in self.first_commits.values() if lo <= rec.time < hi
        )

    def latency_stats(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> Dict[str, float]:
        """mean / p50 / p95 / max latency over a window (empty -> zeros)."""
        values = self.latencies(start, end)
        if not values:
            return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0, "count": 0}
        # fsum + clamp: float rounding must not push the mean outside
        # [min, max] (e.g. three identical latencies summed naively).
        mean = min(max(math.fsum(values) / len(values), values[0]), values[-1])
        return {
            "mean": mean,
            "p50": percentile(values, 50),
            "p95": percentile(values, 95),
            "max": values[-1],
            "count": len(values),
        }

    def timeseries_txs(
        self, bucket: float = 1.0, end: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """(bucket_start, txs/s) series for recovery plots (Figure 12).

        Buckets are half-open ``[i*bucket, (i+1)*bucket)``. An event landing
        exactly on the horizon opens a new bucket -- the series grows instead
        of clamping the event into the last in-range bucket, which would
        inflate that bucket's rate.
        """
        if bucket <= 0:
            raise ValueError(f"non-positive bucket: {bucket}")
        horizon = self.sim.now if end is None else end
        buckets = int(math.ceil(horizon / bucket)) if horizon > 0 else 0
        series = [0.0] * buckets
        for time, txs in self.commit_events:
            index = int(time / bucket)
            while index >= len(series):
                series.append(0.0)
            series[index] += txs
        return [(i * bucket, total / bucket) for i, total in enumerate(series)]

    def commit_gap_after(self, time: float) -> Optional[float]:
        """Time from ``time`` to the next commit -- recovery time (§7.10)."""
        later = [t for t, _ in self.commit_events if t >= time]
        if not later:
            return None
        return min(later) - time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Metrics(blocks={self.committed_blocks}, "
            f"view_changes={len(self.view_changes)})"
        )
