"""Kudzu fast path: quorum arithmetic, fast commits, and the fallback."""

import pytest

from repro.config import max_faults, quorum_size
from repro.consensus.kudzu import KudzuProtocol, fast_quorum_size
from repro.consensus.safety import SafetyRules
from repro.consensus.block import BlockStore
from repro.consensus.vote import Phase, QuorumCert
from repro.runtime.cluster import Cluster
from repro.runtime.experiment import run_experiment


# ---------------------------------------------------------------------------
# Fast-quorum arithmetic
# ---------------------------------------------------------------------------
def test_fast_quorum_known_values():
    # ⌈(n + f + 1) / 2⌉ with f = ⌊(n - 1) / 3⌋
    assert fast_quorum_size(4) == 3
    assert fast_quorum_size(7) == 5
    assert fast_quorum_size(9) == 6
    assert fast_quorum_size(10) == 7
    assert fast_quorum_size(13) == 9
    assert fast_quorum_size(31) == 21
    assert fast_quorum_size(100) == 67


@pytest.mark.parametrize("n", range(4, 200))
def test_fast_quorum_invariants(n: int):
    f = max_faults(n)
    fq = fast_quorum_size(n)
    # Definition: the ceiling of (n + f + 1) / 2.
    assert fq == -((n + f + 1) // -2)
    # Never larger than the regular quorum (n - f), so a regular quorum
    # always contains a fast quorum.
    assert fq <= quorum_size(n)
    # Two fast quorums intersect in >= f+1 processes: at least one honest
    # process is in both, so conflicting fast certificates cannot form.
    assert 2 * fq - n >= f + 1
    # A fast quorum and a regular quorum intersect in >= 1 honest process,
    # so the slow path cannot contradict a fast commit.
    assert fq + quorum_size(n) - n >= f + 1


# ---------------------------------------------------------------------------
# Safety bookkeeping for fast certificates
# ---------------------------------------------------------------------------
def test_fast_qc_subsumes_prepare_and_lock():
    rules = SafetyRules(BlockStore())
    # The collection is irrelevant to observe_qc -- any non-None stand-in
    # makes the certificate non-genesis.
    fast = QuorumCert(Phase.FAST, 3, 7, "deadbeef", object())
    rules.observe_qc(fast)
    assert rules.high_prepare_qc is fast
    assert rules.locked_qc is fast
    # Older fast certificates do not regress the state.
    older = QuorumCert(Phase.FAST, 2, 5, "cafe", object())
    rules.observe_qc(older)
    assert rules.high_prepare_qc is fast
    assert rules.locked_qc is fast


def test_kudzu_verify_justify_accepts_fast_and_prepare():
    class FakeQc:
        def __init__(self, phase, ok_at):
            self.phase = phase
            self._ok_at = ok_at

        def verify(self, threshold):
            return threshold == self._ok_at

    class FakeNode:
        n = 9
        quorum = quorum_size(9)

    protocol = KudzuProtocol()
    node = FakeNode()
    assert protocol.verify_justify(node, FakeQc(Phase.FAST, fast_quorum_size(9)))
    assert protocol.verify_justify(node, FakeQc(Phase.PREPARE, quorum_size(9)))
    assert not protocol.verify_justify(node, FakeQc(Phase.COMMIT, quorum_size(9)))


# ---------------------------------------------------------------------------
# End-to-end: the fast path commits, agreement holds
# ---------------------------------------------------------------------------
def test_kudzu_commits_on_fast_path():
    result = run_experiment(
        mode="kudzu", scenario="national", n=7, duration=10.0,
        max_commits=20, seed=0,
    )
    assert result.committed_blocks >= 20
    assert result.view_changes == 0
    assert result.instance_failures == 0
    # Every commit at every node went through the single-round fast path.
    assert result.fast_commits > 0
    assert result.fast_fallbacks == 0


def test_kudzu_determinism():
    runs = [
        run_experiment(mode="kudzu", scenario="national", n=7,
                       duration=5.0, max_commits=10, seed=0)
        for _ in range(2)
    ]
    assert runs[0].committed_blocks == runs[1].committed_blocks
    assert runs[0].fast_commits == runs[1].fast_commits
    assert runs[0].throughput_txs == runs[1].throughput_txs


# ---------------------------------------------------------------------------
# Fallback transition: fast quorum unreachable -> chained slow path
# ---------------------------------------------------------------------------
class _NeverFast(KudzuProtocol):
    """Kudzu with an unreachable fast quorum: every instance must fall
    back to the chained slow path."""

    def fast_quorum(self, node) -> int:
        return node.n + 1


def test_kudzu_falls_back_to_slow_path_and_still_commits():
    cluster = Cluster(n=7, mode="kudzu", scenario="national", seed=0)
    for node in cluster.nodes:
        node.protocol = _NeverFast()
    cluster.start()
    cluster.run(duration=10.0, max_commits=10)
    cluster.check_agreement()
    fast = sum(node.fast_commits for node in cluster.nodes)
    fallbacks = sum(node.fast_fallbacks for node in cluster.nodes)
    assert fast == 0
    assert fallbacks > 0
    # The slow path still commits and keeps agreement.
    assert max(node.committed_height for node in cluster.nodes) >= 10


def test_kudzu_report_has_fast_path_section_and_classics_do_not():
    kudzu = run_experiment(
        mode="kudzu", scenario="national", n=7, duration=5.0,
        max_commits=10, seed=0, observability=True,
    )
    assert kudzu.report["fast_path"]["fast_commits"] == kudzu.fast_commits
    assert kudzu.report["fast_path"]["fast_fallbacks"] == kudzu.fast_fallbacks
    kauri = run_experiment(
        mode="kauri", scenario="national", n=7, duration=5.0,
        max_commits=10, seed=0, observability=True,
    )
    assert "fast_path" not in kauri.report
    assert kauri.fast_commits == 0
