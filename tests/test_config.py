"""Unit tests for scenario and deployment configuration."""

import pytest

from repro.config import (
    GLOBAL,
    HOTSTUFF_TIMEOUT,
    KAURI_TIMEOUT,
    KB,
    NATIONAL,
    REGIONAL,
    SCENARIOS,
    ClusterParams,
    NetworkParams,
    ProtocolConfig,
    default_root_fanout,
    max_faults,
    mbps,
    ms,
    quorum_size,
    resilientdb_clusters,
)
from repro.errors import ConfigError


def test_paper_scenarios_match_section_7_1():
    assert GLOBAL.rtt == pytest.approx(0.200)
    assert GLOBAL.bandwidth_bps == pytest.approx(25e6)
    assert REGIONAL.rtt == pytest.approx(0.100)
    assert REGIONAL.bandwidth_bps == pytest.approx(100e6)
    assert NATIONAL.rtt == pytest.approx(0.010)
    assert NATIONAL.bandwidth_bps == pytest.approx(1000e6)
    assert set(SCENARIOS) == {"global", "regional", "national"}


def test_propagation_delay_is_half_rtt():
    assert GLOBAL.propagation_delay == pytest.approx(0.100)


def test_network_params_validation():
    with pytest.raises(ConfigError):
        NetworkParams("bad", rtt=-1.0, bandwidth_bps=1.0)
    with pytest.raises(ConfigError):
        NetworkParams("bad", rtt=1.0, bandwidth_bps=0.0)


def test_with_rtt_and_bandwidth_builders():
    tweaked = GLOBAL.with_rtt(ms(400)).with_bandwidth_bps(mbps(50))
    assert tweaked.rtt == pytest.approx(0.4)
    assert tweaked.bandwidth_bps == pytest.approx(50e6)
    assert GLOBAL.rtt == pytest.approx(0.2)  # original untouched


@pytest.mark.parametrize(
    "n,f", [(4, 1), (7, 2), (100, 33), (200, 66), (400, 133), (60, 19)]
)
def test_max_faults_classical_bft(n, f):
    assert max_faults(n) == f
    assert n >= 3 * f + 1
    assert quorum_size(n) == n - f


def test_max_faults_rejects_empty_system():
    with pytest.raises(ConfigError):
        max_faults(0)


@pytest.mark.parametrize(
    "n,height,fanout",
    [(100, 2, 10), (200, 2, 14), (400, 2, 20), (100, 3, 5)],
)
def test_default_root_fanout_matches_paper(n, height, fanout):
    # §7.1: N=100 -> 10, N=200 -> 14, N=400 -> 20 (h=2); §7.8: N=100, h=3 -> 5
    assert default_root_fanout(n, height) == fanout


def test_default_root_fanout_validation():
    with pytest.raises(ConfigError):
        default_root_fanout(100, 0)
    with pytest.raises(ConfigError):
        default_root_fanout(1, 2)


def test_protocol_config_defaults():
    cfg = ProtocolConfig()
    assert cfg.block_size == 250 * KB
    assert cfg.txs_per_block == (250 * KB) // 512
    assert cfg.stretch is None


def test_protocol_config_builders():
    cfg = ProtocolConfig().with_stretch(5.0).with_block_size(32 * KB)
    assert cfg.stretch == 5.0
    assert cfg.block_size == 32 * KB


def test_protocol_config_validation():
    with pytest.raises(ConfigError):
        ProtocolConfig(block_size=0)
    with pytest.raises(ConfigError):
        ProtocolConfig(stretch=-1.0)
    with pytest.raises(ConfigError):
        ProtocolConfig(base_timeout=0.0)


def test_paper_timeout_calibration():
    # §7.10: 0.35 s for Kauri, 1.7 s for HotStuff-secp
    assert KAURI_TIMEOUT == pytest.approx(0.35)
    assert HOTSTUFF_TIMEOUT == pytest.approx(1.7)


class TestClusterParams:
    def test_resilientdb_deployment_shape(self):
        clusters = resilientdb_clusters()
        assert clusters.n == 60  # §7.9: N = 60
        assert len(clusters.cluster_sizes) == 6

    def test_cluster_assignment_contiguous(self):
        clusters = resilientdb_clusters(per_cluster=10)
        assert clusters.cluster_of(0) == 0
        assert clusters.cluster_of(9) == 0
        assert clusters.cluster_of(10) == 1
        assert clusters.cluster_of(59) == 5
        with pytest.raises(ConfigError):
            clusters.cluster_of(60)

    def test_intra_vs_inter_params(self):
        clusters = resilientdb_clusters()
        intra = clusters.params_between(0, 5)
        inter = clusters.params_between(0, 15)
        assert intra.rtt < inter.rtt
        assert intra.bandwidth_bps > inter.bandwidth_bps

    def test_inter_lookup_is_symmetric(self):
        clusters = resilientdb_clusters()
        assert clusters.params_between(3, 23) == clusters.params_between(23, 3)

    def test_oregon_is_best_connected(self):
        # §7.9 places the leader in the cluster with lowest RTT to others.
        clusters = resilientdb_clusters()
        mean_rtt = []
        for c in range(6):
            a = next(iter(clusters.members(c)))
            rtts = [
                clusters.params_between(a, next(iter(clusters.members(o)))).rtt
                for o in range(6)
                if o != c
            ]
            mean_rtt.append(sum(rtts) / len(rtts))
        assert mean_rtt[0] == min(mean_rtt)

    def test_members_ranges(self):
        clusters = resilientdb_clusters(per_cluster=10)
        assert list(clusters.members(0)) == list(range(10))
        assert list(clusters.members(5)) == list(range(50, 60))

    def test_missing_inter_params_raise(self):
        params = NetworkParams("x", rtt=0.01, bandwidth_bps=1e6)
        clusters = ClusterParams("broken", (2, 2), params, inter={})
        with pytest.raises(ConfigError):
            clusters.params_between(0, 3)
