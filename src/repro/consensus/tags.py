"""Wire-tag vocabulary shared by every protocol implementation.

Consensus traffic is addressed by hashable *tags* on the simulated
endpoints. All protocols -- the tree/star strategies driven by
:class:`~repro.core.smr.SmrNode`, the Kudzu fast path, and the PBFT clique
baseline -- share one namespace so view-scoped inbox hygiene
(:func:`is_stale_tag`) works uniformly:

- ``("prop", view)``                 -- proposal dissemination;
- ``("vote", view, height, phase)``  -- vote aggregation (``phase`` is the
  :class:`~repro.consensus.vote.Phase` name, a string on the wire);
- ``("qc", view, height, phase)``    -- quorum-certificate dissemination;
- ``("newview", view)``              -- view-change messages to the next
  leader.

Purging by :func:`is_stale_tag` on view entry drops every protocol message
of strictly older views while leaving client traffic and future-view
messages untouched.
"""

from __future__ import annotations

from typing import Any, Tuple, Union

from repro.consensus.vote import Phase

#: First elements of every protocol-owned tag (the purge namespace).
PROTOCOL_TAG_KINDS = ("prop", "vote", "qc", "newview")


def _phase_name(phase: Union[Phase, str]) -> str:
    return phase.name if isinstance(phase, Phase) else phase


def prop_tag(view: int) -> Tuple:
    """Round-1 proposal dissemination for ``view``."""
    return ("prop", view)


def vote_tag(view: int, height: int, phase: Union[Phase, str]) -> Tuple:
    """Vote aggregation for one (view, height, phase)."""
    return ("vote", view, height, _phase_name(phase))


def qc_tag(view: int, height: int, phase: Union[Phase, str]) -> Tuple:
    """QC dissemination for one (view, height, phase)."""
    return ("qc", view, height, _phase_name(phase))


def newview_tag(view: int) -> Tuple:
    """New-view message addressed to the leader of ``view``."""
    return ("newview", view)


def is_stale_tag(tag: Any, view: int) -> bool:
    """Purge predicate: protocol tags of strictly older views."""
    return (
        isinstance(tag, tuple)
        and len(tag) >= 2
        and tag[0] in PROTOCOL_TAG_KINDS
        and isinstance(tag[1], int)
        and tag[1] < view
    )
