"""Every example script must run to completion (scaled-down where heavy)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, args=(), timeout=600):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Committed blocks" in out
    assert "Throughput" in out
    assert "height=  1" in out


def test_capacity_planner():
    out = run_example("capacity_planner.py", ["100", "200", "25"])
    assert "Recommended" in out
    assert "tree h=2" in out


def test_capacity_planner_defaults():
    out = run_example("capacity_planner.py")
    assert "N=400" in out


def test_fault_recovery():
    out = run_example("fault_recovery.py")
    assert "Recovery time" in out
    assert "Reconfigurations: 1" in out
    assert "tree" in out  # Kauri keeps the tree


def test_replicated_kvstore():
    out = run_example("replicated_kvstore.py")
    assert "Distinct state digests at the common height: 1" in out
    assert "verified" in out


def test_client_workload():
    out = run_example("client_workload.py")
    assert "end-to-end latency" in out
    assert "committed" in out


@pytest.mark.slow
def test_adaptive_pipelining():
    out = run_example("adaptive_pipelining.py", timeout=900)
    assert "adaptive" in out
    assert "Final stretch" in out


@pytest.mark.slow
def test_scenario_comparison():
    out = run_example("scenario_comparison.py", timeout=900)
    assert "Kauri / HotStuff-secp" in out


@pytest.mark.slow
def test_heterogeneous_deployment():
    out = run_example("heterogeneous_deployment.py", timeout=900)
    assert "Oregon" in out
    assert "kauri" in out
