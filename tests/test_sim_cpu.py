"""Unit tests for the FIFO CPU resource."""

import pytest

from repro.errors import SimulationError, TaskCancelled
from repro.sim import Cpu, Simulator, Sleep
from repro.sim.process import spawn


def run_jobs(sim, cpu, jobs):
    """Spawn one task per (delay, cost, tag); return completion log."""
    log = []

    def job(delay, cost, tag):
        yield Sleep(delay)
        yield from cpu.consume(cost)
        log.append((tag, sim.now))

    for delay, cost, tag in jobs:
        spawn(sim, job(delay, cost, tag))
    return log


def test_single_job_takes_its_cost():
    sim = Simulator()
    cpu = Cpu(sim)
    log = run_jobs(sim, cpu, [(0.0, 2.0, "a")])
    sim.run()
    assert log == [("a", 2.0)]


def test_concurrent_jobs_serialize_fifo():
    sim = Simulator()
    cpu = Cpu(sim)
    log = run_jobs(sim, cpu, [(0.0, 2.0, "a"), (0.0, 3.0, "b"), (0.0, 1.0, "c")])
    sim.run()
    assert log == [("a", 2.0), ("b", 5.0), ("c", 6.0)]


def test_idle_gap_then_new_job():
    sim = Simulator()
    cpu = Cpu(sim)
    log = run_jobs(sim, cpu, [(0.0, 1.0, "a"), (10.0, 1.0, "b")])
    sim.run()
    assert log == [("a", 1.0), ("b", 11.0)]


def test_arrival_mid_job_queues():
    sim = Simulator()
    cpu = Cpu(sim)
    log = run_jobs(sim, cpu, [(0.0, 5.0, "long"), (2.0, 1.0, "late")])
    sim.run()
    assert log == [("long", 5.0), ("late", 6.0)]


def test_zero_cost_is_free_and_unqueued():
    sim = Simulator()
    cpu = Cpu(sim)
    log = run_jobs(sim, cpu, [(0.0, 10.0, "busy"), (1.0, 0.0, "free")])
    sim.run()
    assert ("free", 1.0) in log


def test_negative_cost_rejected():
    sim = Simulator()
    cpu = Cpu(sim)

    def bad():
        yield from cpu.consume(-1.0)

    spawn(sim, bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_busy_time_and_utilization():
    sim = Simulator()
    cpu = Cpu(sim)
    run_jobs(sim, cpu, [(0.0, 2.0, "a"), (0.0, 2.0, "b")])
    sim.run(until=8.0)
    assert cpu.busy_time == pytest.approx(4.0)
    assert cpu.utilization() == pytest.approx(0.5)
    assert cpu.jobs_completed == 2


def test_queue_length_observable():
    sim = Simulator()
    cpu = Cpu(sim)
    run_jobs(sim, cpu, [(0.0, 5.0, "a"), (1.0, 5.0, "b"), (1.0, 5.0, "c")])
    sim.run(until=2.0)
    assert cpu.busy
    assert cpu.queue_length == 2
    sim.run()
    assert not cpu.busy
    assert cpu.queue_length == 0


def test_cancelled_queued_waiter_does_not_stall_cpu():
    sim = Simulator()
    cpu = Cpu(sim)
    log = []

    def job(delay, cost, tag):
        yield Sleep(delay)
        yield from cpu.consume(cost)
        log.append((tag, sim.now))

    spawn(sim, job(0.0, 5.0, "first"))
    victim = spawn(sim, job(1.0, 5.0, "victim"))
    spawn(sim, job(2.0, 1.0, "survivor"))
    sim.schedule(3.0, victim.cancel)
    sim.run()
    assert ("first", 5.0) in log
    assert ("survivor", 6.0) in log
    assert all(tag != "victim" for tag, _ in log)


def test_cancelled_running_job_releases_cpu():
    sim = Simulator()
    cpu = Cpu(sim)
    log = []

    def job(delay, cost, tag):
        yield Sleep(delay)
        try:
            yield from cpu.consume(cost)
            log.append((tag, sim.now))
        except TaskCancelled:
            raise

    runner = spawn(sim, job(0.0, 100.0, "runner"))
    spawn(sim, job(1.0, 1.0, "next"))
    sim.schedule(2.0, runner.cancel)
    sim.run()
    assert log == [("next", 3.0)]
    assert not cpu.busy
