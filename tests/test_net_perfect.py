"""Unit tests for perfect channels built from retransmission + dedup (§2)."""

import pytest

from repro.config import NetworkParams
from repro.net import HomogeneousNetem, Network, ReliableLink
from repro.sim import Simulator

PARAMS = NetworkParams("test", rtt=0.020, bandwidth_bps=1e9)


def make_link(loss_pattern=None, seed=0):
    """loss_pattern: function(msg) -> bool, applied to data+ack traffic."""
    sim = Simulator(seed=seed)
    net = Network(sim, HomogeneousNetem(PARAMS))
    net.register(0)
    net.register(1)
    if loss_pattern is not None:
        net.faults.set_drop_predicate(loss_pattern)
    link = ReliableLink(net, src=0, dst=1, resend_interval=0.1)
    return sim, net, link


def test_lossless_delivery():
    sim, net, link = make_link()
    link.send("hello", 100)
    sim.run(until=1.0)
    assert link.delivered == ["hello"]
    assert link.pending == 0
    assert link.retransmissions == 0
    link.close()


def test_termination_under_finite_loss():
    """Drop the first 3 transmissions; the 4th succeeds."""
    drops = {"count": 0}

    def lossy(msg):
        if msg.tag[0] == "__rl_data__" and drops["count"] < 3:
            drops["count"] += 1
            return True
        return False

    sim, net, link = make_link(loss_pattern=lossy)
    link.send("persistent", 100)
    sim.run(until=2.0)
    assert link.delivered == ["persistent"]
    assert link.retransmissions >= 3
    assert link.pending == 0
    link.close()


def test_duplicate_suppression_on_lost_acks():
    """Losing acks forces resends; the receiver must deliver exactly once."""
    drops = {"count": 0}

    def lossy(msg):
        if msg.tag[0] == "__rl_ack__" and drops["count"] < 2:
            drops["count"] += 1
            return True
        return False

    sim, net, link = make_link(loss_pattern=lossy)
    link.send("once", 100)
    sim.run(until=2.0)
    assert link.delivered == ["once"]  # exactly once despite resends
    assert link.pending == 0
    link.close()


def test_in_order_delivery_despite_reordered_success():
    """First message lost twice, second sails through: order preserved."""
    state = {"first_drops": 0}

    def lossy(msg):
        if msg.tag[0] == "__rl_data__" and msg.payload[0] == 0 and state["first_drops"] < 2:
            state["first_drops"] += 1
            return True
        return False

    sim, net, link = make_link(loss_pattern=lossy)
    link.send("first", 100)
    link.send("second", 100)
    sim.run(until=2.0)
    assert link.delivered == ["first", "second"]
    link.close()


def test_many_messages_all_delivered():
    sim, net, link = make_link()
    for i in range(50):
        link.send(i, 10)
    sim.run(until=5.0)
    assert link.delivered == list(range(50))
    link.close()


def test_on_deliver_callback():
    sim = Simulator()
    net = Network(sim, HomogeneousNetem(PARAMS))
    net.register(0)
    net.register(1)
    seen = []
    link = ReliableLink(net, 0, 1, resend_interval=0.1, on_deliver=seen.append)
    link.send("cb", 10)
    sim.run(until=1.0)
    assert seen == ["cb"]
    link.close()


def test_random_loss_eventually_delivers():
    """Probabilistic loss on both directions; perfect-channel termination."""
    sim = Simulator(seed=7)
    net = Network(sim, HomogeneousNetem(PARAMS))
    net.register(0)
    net.register(1)
    rng = sim.rng
    net.faults.set_drop_predicate(lambda msg: rng.random() < 0.4)
    link = ReliableLink(net, 0, 1, resend_interval=0.05)
    for i in range(20):
        link.send(i, 10)
    sim.run(until=30.0)
    assert link.delivered == list(range(20))
    assert link.pending == 0
    link.close()
