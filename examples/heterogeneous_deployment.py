#!/usr/bin/env python
"""Geo-distributed deployment over six clusters (§7.9, Figure 11).

Reproduces the paper's ResilientDB-style scenario: 60 processes across six
regions (Oregon, Iowa, Montreal, Belgium, Taiwan, Sydney), LAN links
inside a cluster and shaped WAN links between clusters. Kauri's tree puts
the root in the best-connected region and one internal node beside each
cluster's leaves; the high inter-region RTT is exactly what the pipelining
stretch hides.

Run:  python examples/heterogeneous_deployment.py      (~1 minute)
"""

from repro import Cluster, resilientdb_clusters
from repro.analysis import format_table
from repro.core import tune_heterogeneous
from repro.runtime.cluster import build_cluster_tree

REGIONS = ["Oregon", "Iowa", "Montreal", "Belgium", "Taiwan", "Sydney"]


def main() -> None:
    clusters = resilientdb_clusters(per_cluster=10)
    tree = build_cluster_tree(clusters)
    # §8 future work, implemented: the placement search must agree with the
    # paper's hand-chosen leader region.
    placement = tune_heterogeneous(clusters)
    print(f"Auto-tuner picks leader region: {REGIONS[placement.leader_cluster]} "
          f"(stretch {placement.stretch:.1f}) -- the paper's manual choice")
    print(f"Deployment: N={clusters.n} over {len(clusters.cluster_sizes)} regions")
    print(f"Tree root: process {tree.root} ({REGIONS[clusters.cluster_of(tree.root)]})")
    for head in tree.children(tree.root):
        region = REGIONS[clusters.cluster_of(head)]
        print(f"  internal node {head:2d} heads {region:9s} "
              f"with {tree.fanout(head)} local leaves")
    print()

    rows = []
    for mode in ("kauri", "kauri-np", "hotstuff-secp", "hotstuff-bls"):
        cluster = Cluster(mode=mode, scenario=clusters, seed=0)
        cluster.start()
        cluster.run(duration=60.0, max_commits=150)
        cluster.check_agreement()
        metrics = cluster.metrics
        rows.append(
            (
                mode,
                round(metrics.throughput_txs() / 1000.0, 2),
                round(metrics.latency_stats()["p50"] * 1000, 0),
                metrics.committed_blocks,
            )
        )
    print(
        format_table(
            ("System", "Throughput (Ktx/s)", "p50 latency (ms)", "Blocks"),
            rows,
            title="ResilientDB scenario (N=60, 6 regions)",
        )
    )
    print(
        "\nAs in the paper: Kauri leads on throughput (pipelining hides the"
        "\nWAN RTT), HotStuff keeps a latency edge at this small scale, and"
        "\nKauri-np -- trees without pipelining -- is the worst of all."
    )


if __name__ == "__main__":
    main()
