"""Single-core CPU resource with FIFO queueing.

Each replica owns one :class:`Cpu`. Cryptographic work (signing, verifying,
aggregating) is charged to the CPU via :meth:`Cpu.consume`, so concurrent
pipelined consensus instances on the same node contend for compute exactly
as they would on one core of the paper's testbed machines. Utilization is
tracked so experiments can flag CPU-saturated data points (the paper marks
these with red circles).

Busy time is checkpointed as a sorted list of coalesced ``[start, end)``
intervals, so :meth:`busy_in` -- and therefore :meth:`utilization` over an
arbitrary measurement window -- is exact: a job straddling the window edge
contributes only its in-window part, a job cancelled mid-``Sleep`` still
contributes the compute it performed before dying, and the job running
right now contributes up to the current instant. Back-to-back jobs merge
into one interval, so a saturated CPU costs O(1) memory however many jobs
it serves.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from typing import Deque, Generator, List, Optional

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import Signal, Sleep, WaitSignal


class Cpu:
    """FIFO busy-server: one unit of work at a time, queued arrivals.

    Coroutine usage::

        yield from node.cpu.consume(cost_model.bls_verify)
    """

    __slots__ = (
        "sim", "name", "_busy", "_busy_since", "_queue",
        "_interval_starts", "_interval_ends", "busy_time",
        "jobs_completed", "jobs_cancelled", "_created_at",
    )

    def __init__(self, sim: Simulator, name: str = "cpu"):
        self.sim = sim
        self.name = name
        self._busy = False
        self._busy_since: Optional[float] = None
        self._queue: Deque[Signal] = deque()
        #: Coalesced, time-sorted busy intervals; parallel lists so window
        #: queries can bisect the end times directly.
        self._interval_starts: List[float] = []
        self._interval_ends: List[float] = []
        self.busy_time = 0.0
        self.jobs_completed = 0
        self.jobs_cancelled = 0
        self._created_at = sim.now

    def consume(self, seconds: float) -> Generator:
        """Occupy the CPU for ``seconds`` of simulated compute time.

        Zero-cost work returns immediately without queueing, so disabled
        cost models add no events.
        """
        if seconds < 0:
            raise SimulationError(f"negative CPU time: {seconds}")
        if seconds == 0.0:
            return
        # Acquire: loop because wakeups are broadcast and a same-instant
        # arrival may win the race; losers simply re-queue. The broadcast
        # (rather than hand-off) makes the queue robust to waiters that
        # were cancelled while waiting.
        while self._busy:
            turn = Signal()
            self._queue.append(turn)
            yield WaitSignal(turn)
        self._busy = True
        self._busy_since = self.sim.now
        completed = False
        try:
            yield Sleep(seconds)
            completed = True
            self.jobs_completed += 1
        finally:
            # Checkpoint the busy span up to *now*: the full cost on normal
            # completion, the partial cost when cancelled mid-Sleep.
            self._record_busy(self._busy_since, self.sim.now)
            if not completed:
                self.jobs_cancelled += 1
            self._busy = False
            self._busy_since = None
            waiters, self._queue = self._queue, deque()
            for turn in waiters:
                turn.fire_if_unfired()

    def _record_busy(self, start: float, end: float) -> None:
        if end <= start:
            return
        self.busy_time += end - start
        ends = self._interval_ends
        # Jobs start in nondecreasing time order; a job starting exactly
        # when its predecessor finished extends that interval in place.
        if ends and start <= ends[-1]:
            if end > ends[-1]:
                ends[-1] = end
        else:
            self._interval_starts.append(start)
            ends.append(end)

    @property
    def queue_length(self) -> int:
        """Number of jobs waiting (excludes the one running)."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        return self._busy

    def busy_in(self, start: float, end: float) -> float:
        """Exact busy seconds inside the half-open window ``[start, end)``.

        Includes completed jobs, the partial work of jobs cancelled
        mid-execution, and the in-progress job up to ``min(end, now)``.
        """
        if end <= start:
            return 0.0
        total = 0.0
        # Skip intervals that finished at or before the window start.
        index = bisect_right(self._interval_ends, start)
        starts, ends = self._interval_starts, self._interval_ends
        for i in range(index, len(ends)):
            s = starts[i]
            if s >= end:
                break
            total += min(ends[i], end) - max(s, start)
        if self._busy_since is not None:
            s = max(self._busy_since, start)
            e = min(self.sim.now, end)
            if e > s:
                total += e - s
        return total

    def utilization(self, since: float = 0.0, until: Optional[float] = None) -> float:
        """Fraction of wall (simulated) time spent computing over the
        half-open window ``[since, until)`` (``until`` defaults to now).

        Exact by construction: the numerator is the checkpointed busy time
        *inside* the window, never lifetime busy time divided by a shorter
        window -- so no clamp is needed (or wanted: a clamp would mask
        exactly that overstatement bug).
        """
        hi = self.sim.now if until is None else until
        lo = max(since, self._created_at)
        elapsed = hi - lo
        if elapsed <= 0:
            return 0.0
        return self.busy_in(lo, hi) / elapsed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cpu({self.name!r}, busy={self._busy}, queued={len(self._queue)})"
