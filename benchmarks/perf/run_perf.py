#!/usr/bin/env python
"""Standalone runner for the hot-path microbenchmarks.

Thin wrapper over ``repro perf`` for use outside the CLI (editors,
profilers, cron). Not a pytest file on purpose: the benches measure wall
clock and must not run inside the tier-1 suite.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py [--quick] \
        [--out BENCH_core.json] [--check BENCH_core.json]

Profiling one bench (the intended workflow when chasing a regression)::

    PYTHONPATH=src python -m cProfile -s cumulative \
        benchmarks/perf/run_perf.py --quick 2>&1 | head -40
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["perf", *sys.argv[1:]]))
