"""BLS-style non-interactive multisignatures (Kauri and HotStuff-bls, §6).

Each internal node aggregates its children's shares into a single
aggregated vote (§3.3.2): O(m) aggregation work per node, O(1) aggregate
size and verification. The wire representation is modeled as one 48-byte
aggregate plus a signer bitmap per distinct value; the in-memory object
additionally carries per-signer tags so that ⊕ is idempotent under
arbitrary overlaps and forged tags are detectable -- exactly the behaviour
of real BLS multisignatures with rogue-key protection (§2 cites the
proof-of-possession requirement).

Performance model of ⊕ (the simulator's hottest crypto path): collections
are immutable, so ``combine`` is copy-on-write. Per-value signer maps are
shared by reference between parent and child collections whenever one side
already holds the union; only genuinely mutated slots are copied, and the
copy duplicates the *larger* side C-level while the Python merge loop runs
over the *smaller* side. Folding a fresh share into a growing aggregate --
the Algorithm 3 pattern -- therefore does O(1) Python-level work per ⊕
instead of O(total shares), and validity sets computed by an ancestor are
inherited instead of re-verified (see :data:`MERGE_STATS` and
``tests/test_perf_hotpaths.py``). The invariant that makes sharing safe:
``_byvalue`` and its slot dicts are never mutated after construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Mapping, Optional, Tuple

from repro.crypto.collection import Collection
from repro.crypto.costs import CryptoCostModel, bitmap_size
from repro.crypto.keys import KeyPair, Pki, canonical_digest
from repro.crypto.signature import SignatureScheme
from repro.errors import CryptoError


class MergeStats:
    """Counters of Python-level ⊕ work; reset/read by perf tests.

    ``entries_examined`` counts signer entries walked by the Python merge
    loop (always the smaller side of a slot merge), ``slot_copies`` the
    per-value signer maps actually duplicated, ``slots_shared`` the maps
    passed between collections by reference.
    """

    __slots__ = ("entries_examined", "slot_copies", "slots_shared")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.entries_examined = 0
        self.slot_copies = 0
        self.slots_shared = 0


MERGE_STATS = MergeStats()


@dataclass(frozen=True)
class BlsShare:
    """One process's multisignature share over one value."""

    signer: int
    value: Any
    tag: bytes


class BlsCollection(Collection):
    """Per-value aggregates: value -> {signer: tag}; ⊕ merges signer maps."""

    __slots__ = (
        "_pki", "_costs", "_byvalue", "_valid_cache", "_frozen_cache",
        "_hash_cache", "_card_cache",
    )

    def __init__(
        self,
        pki: Pki,
        costs: CryptoCostModel,
        byvalue: Mapping[Any, Mapping[int, bytes]] = None,
    ):
        self._pki = pki
        self._costs = costs
        # The public constructor defensively copies; internal construction
        # goes through _adopt, which shares maps copy-on-write.
        self._byvalue: Dict[Any, Dict[int, bytes]] = {
            value: dict(signers) for value, signers in (byvalue or {}).items()
        }
        self._valid_cache: Dict[Any, FrozenSet[int]] = {}
        self._frozen_cache: Optional[FrozenSet[Tuple[Any, int, bytes]]] = None
        self._hash_cache: Optional[int] = None
        self._card_cache: Optional[int] = None

    @classmethod
    def _adopt(
        cls,
        pki: Pki,
        costs: CryptoCostModel,
        byvalue: Dict[Any, Dict[int, bytes]],
        valid_cache: Optional[Dict[Any, FrozenSet[int]]] = None,
    ) -> "BlsCollection":
        """Build a collection taking ownership of ``byvalue`` uncopied.

        Callers must guarantee the maps are never mutated afterwards --
        they may be shared with other collections.
        """
        self = cls.__new__(cls)
        self._pki = pki
        self._costs = costs
        self._byvalue = byvalue
        self._valid_cache = valid_cache if valid_cache is not None else {}
        self._frozen_cache = None
        self._hash_cache = None
        self._card_cache = None
        return self

    # ------------------------------------------------------------------
    def combine(self, other: Collection) -> "BlsCollection":
        if not isinstance(other, BlsCollection):
            raise CryptoError(
                f"cannot combine bls collection with {type(other).__name__}"
            )
        if other._pki is not self._pki:
            raise CryptoError("cannot combine collections from different PKIs")
        # ⊕ identities: nothing to merge, nothing to copy.
        if other is self or not other._byvalue:
            return self
        if not self._byvalue and other._costs is self._costs:
            return other
        stats = MERGE_STATS
        pki = self._pki
        theirs_cache = other._valid_cache
        merged = dict(self._byvalue)  # shallow: slot dicts shared until written
        valid_cache = dict(self._valid_cache) if self._valid_cache else {}
        changed = False
        for value, theirs in other._byvalue.items():
            ours = merged.get(value)
            if ours is None:
                merged[value] = theirs  # share the whole slot by reference
                stats.slots_shared += 1
                cached = theirs_cache.get(value)
                if cached is not None:
                    valid_cache[value] = cached
                else:
                    valid_cache.pop(value, None)
                changed = True
                continue
            if ours is theirs:
                stats.slots_shared += 1
                continue
            # Walk the smaller side; the larger is duplicated C-level only
            # if the union actually differs from it.
            small, big = (
                (ours, theirs) if len(ours) <= len(theirs) else (theirs, ours)
            )
            stats.entries_examined += len(small)
            delta = None
            for signer, tag in small.items():
                btag = big.get(signer)
                if btag is None or btag != tag:
                    if delta is None:
                        delta = []
                    delta.append((signer, tag, btag))
            if delta is None:
                # small ⊆ big with identical tags: big already is the union.
                stats.slots_shared += 1
                if big is not ours:
                    merged[value] = big
                    cached = theirs_cache.get(value)
                    if cached is not None:
                        valid_cache[value] = cached
                    else:
                        valid_cache.pop(value, None)
                    changed = True
                continue
            slot = dict(big)
            stats.slot_copies += 1
            digest = None
            small_is_theirs = small is theirs
            for signer, tag, btag in delta:
                if btag is None:
                    slot[signer] = tag
                    continue
                # Conflicting tags for the same (signer, value): keep the
                # valid one if any; a bad tag must never shadow a good one.
                if digest is None:
                    digest = canonical_digest(value)
                theirs_tag = tag if small_is_theirs else btag
                ours_tag = btag if small_is_theirs else tag
                slot[signer] = (
                    theirs_tag
                    if pki.verify_mac(signer, digest, theirs_tag)
                    else ours_tag
                )
            merged[value] = slot
            # Validity of the union is the union of validities: the merge
            # above keeps a valid tag whenever either side had one.
            ours_valid = self._valid_cache.get(value)
            theirs_valid = theirs_cache.get(value)
            if ours_valid is not None and theirs_valid is not None:
                valid_cache[value] = ours_valid | theirs_valid
            else:
                valid_cache.pop(value, None)
            changed = True
        if not changed:
            return self  # other ⊆ self: ⊕ is idempotent
        return BlsCollection._adopt(self._pki, self._costs, merged, valid_cache)

    def has(self, value: Any, threshold: int) -> bool:
        return len(self.signers_for(value)) >= threshold

    def signers_for(self, value: Any) -> FrozenSet[int]:
        cached = self._valid_cache.get(value)
        if cached is not None:
            return cached
        signers = self._byvalue.get(value, {})
        digest = canonical_digest(value)
        valid = frozenset(
            signer
            for signer, tag in signers.items()
            if self._pki.verify_mac(signer, digest, tag)
        )
        self._valid_cache[value] = valid
        return valid

    def cardinality(self) -> int:
        card = self._card_cache
        if card is None:
            card = sum(len(signers) for signers in self._byvalue.values())
            self._card_cache = card
        return card

    def values(self) -> FrozenSet[Any]:
        return frozenset(self._byvalue)

    def wire_size(self) -> int:
        """One constant-size aggregate + signer bitmap per distinct value."""
        per_value = self._costs.aggregate_base_size + bitmap_size(self._pki.n)
        return 8 + per_value * len(self._byvalue)

    # ------------------------------------------------------------------
    def _frozen(self) -> FrozenSet[Tuple[Any, int, bytes]]:
        frozen = self._frozen_cache
        if frozen is None:
            frozen = frozenset(
                (value, signer, tag)
                for value, signers in self._byvalue.items()
                for signer, tag in signers.items()
            )
            self._frozen_cache = frozen
        return frozen

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, BlsCollection):
            return False
        if self._byvalue is other._byvalue:
            return True
        h1, h2 = self._hash_cache, other._hash_cache
        if h1 is not None and h2 is not None and h1 != h2:
            return False
        # Nested dict equality is exactly same-(value, signer, tag) multiset.
        return self._byvalue == other._byvalue

    def __hash__(self) -> int:
        h = self._hash_cache
        if h is None:
            h = hash(self._frozen())
            self._hash_cache = h
        return h

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlsCollection({self.cardinality()} shares, {len(self._byvalue)} values)"


class BlsScheme(SignatureScheme):
    """Scheme factory for BLS-style multisignature collections."""

    def new(self, keypair: KeyPair, value: Any) -> BlsCollection:
        tag = keypair.mac(canonical_digest(value))
        # A tag we just produced with the signer's own key is valid by
        # construction: seed the validity memo so folding fresh shares
        # (Algorithm 3) chains cached unions instead of re-verifying.
        return BlsCollection._adopt(
            self.pki,
            self.costs,
            {value: {keypair.node_id: tag}},
            valid_cache={value: frozenset((keypair.node_id,))},
        )

    def empty(self) -> BlsCollection:
        return BlsCollection._adopt(self.pki, self.costs, {})
