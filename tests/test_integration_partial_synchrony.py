"""Partial synchrony (§2): safety always, liveness after GST.

The model allows an unstable period in which messages between correct
processes are arbitrarily delayed; after an unknown Global Stabilization
Time the known bound Δ holds. These tests inject pre-GST chaos (large or
random delays, transient loss) and verify that agreement is never violated
and that progress resumes once the network stabilises.
"""

import pytest

from repro import Cluster


def gst_cluster(delay_fn, gst, n=13, mode="kauri", seed=0):
    """A cluster whose network misbehaves per ``delay_fn`` until ``gst``."""
    cluster = Cluster(n=n, mode=mode, scenario="national", seed=seed)

    def bounded(msg):
        if cluster.sim.now < gst:
            return delay_fn(msg)
        return 0.0

    cluster.faults.set_delay_fn(bounded)
    return cluster


class TestPreGstDelays:
    def test_uniform_large_delay_then_recovery(self):
        """Every message delayed far beyond Δ until GST=20s."""
        cluster = gst_cluster(lambda msg: 5.0, gst=20.0)
        cluster.start()
        cluster.run(duration=60.0)
        cluster.check_agreement()
        # liveness after GST: steady commits in the stable suffix
        assert cluster.metrics.throughput_txs(start=40.0) > 0
        # the unstable period triggered reconfigurations but never unsafety
        assert cluster.metrics.max_view >= 0

    @pytest.mark.parametrize("seed", range(4))
    def test_random_delays_preserve_agreement(self, seed):
        import random

        rng = random.Random(seed)
        cluster = gst_cluster(
            lambda msg: rng.uniform(0.0, 3.0), gst=15.0, seed=seed
        )
        cluster.start()
        cluster.run(duration=50.0)
        cluster.check_agreement()
        assert cluster.metrics.throughput_txs(start=35.0) > 0

    def test_asymmetric_delays_partition_like(self):
        """Half the processes see slow links until GST (partition-ish)."""
        cluster = Cluster(n=13, mode="kauri", scenario="national", seed=3)
        slow = set(range(7, 13))

        def delay(msg):
            if cluster.sim.now < 15.0 and (msg.src in slow or msg.dst in slow):
                return 4.0
            return 0.0

        cluster.faults.set_delay_fn(delay)
        cluster.start()
        cluster.run(duration=50.0)
        cluster.check_agreement()
        assert cluster.metrics.throughput_txs(start=35.0) > 0

    def test_hotstuff_under_pre_gst_delays(self):
        cluster = gst_cluster(lambda msg: 3.0, gst=15.0, mode="hotstuff-bls")
        cluster.start()
        cluster.run(duration=80.0)
        cluster.check_agreement()
        assert cluster.metrics.throughput_txs(start=50.0) > 0

    def test_pbft_under_pre_gst_delays(self):
        cluster = gst_cluster(lambda msg: 2.0, gst=15.0, mode="pbft")
        cluster.start()
        cluster.run(duration=60.0)
        cluster.check_agreement()
        assert cluster.metrics.throughput_txs(start=40.0) > 0


class TestTransientLoss:
    def test_loss_until_gst_then_recovery(self):
        """Random message loss (omission) until GST; recovery after.

        Note: the experiment fast path uses lossless links (perfect
        channels are proven over lossy links separately in
        tests/test_net_perfect.py); injected loss here stands in for the
        pre-GST period where 'messages may be arbitrarily delayed'."""
        cluster = Cluster(n=13, mode="kauri", scenario="national", seed=9)
        rng = cluster.sim.rng

        def drop(msg):
            return cluster.sim.now < 10.0 and rng.random() < 0.3

        cluster.faults.set_drop_predicate(drop)
        cluster.start()
        cluster.run(duration=40.0)
        cluster.check_agreement()
        assert cluster.metrics.throughput_txs(start=25.0) > 0
