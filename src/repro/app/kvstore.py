"""A replicated key-value store driven by committed blocks.

Clients submit ``set``/``delete`` operations through the normal client
path (:class:`~repro.runtime.clients.ClientHarness`); operations ride
inside the blocks' modeled payload bytes. Since the simulator accounts
payload *sizes* rather than payload *bytes*, the operation contents live
in an :class:`OpRegistry` shared by construction (the stand-in for block
-body deserialization -- the bytes were charged to every link the block
traversed).

Each replica owns a :class:`KvStateMachine` fed by its node's commit path;
determinism is checked by comparing state digests across replicas after a
run (see ``tests/test_app_kvstore.py``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.consensus.block import Block
from repro.errors import ConfigError
from repro.runtime.clients import ClientHarness, Tx


@dataclass(frozen=True)
class KvOp:
    """One state-machine operation."""

    kind: str  # "set" | "delete"
    key: str
    value: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("set", "delete"):
            raise ConfigError(f"unknown op kind {self.kind!r}")
        if self.kind == "set" and self.value is None:
            raise ConfigError("set requires a value")


class OpRegistry:
    """tx_id -> operation; the modeled block body."""

    def __init__(self):
        self._ops: Dict[Tuple[int, int], KvOp] = {}

    def record(self, tx_id: Tuple[int, int], op: KvOp) -> None:
        self._ops[tx_id] = op

    def get(self, tx_id: Tuple[int, int]) -> Optional[KvOp]:
        return self._ops.get(tx_id)

    def __len__(self) -> int:
        return len(self._ops)


class KvStateMachine:
    """Deterministic KV state, advanced one committed block at a time."""

    def __init__(self, registry: OpRegistry):
        self.registry = registry
        self.state: Dict[str, str] = {}
        self.applied_height = 0
        self.ops_applied = 0
        self.unknown_txs = 0

    def apply_block(self, block: Block) -> None:
        if block.height != self.applied_height + 1:
            raise ConfigError(
                f"out-of-order apply: {block.height} after {self.applied_height}"
            )
        for tx_id in block.tx_ids:
            op = self.registry.get(tx_id)
            if op is None:
                self.unknown_txs += 1
                continue
            if op.kind == "set":
                self.state[op.key] = op.value
            else:
                self.state.pop(op.key, None)
            self.ops_applied += 1
        self.applied_height = block.height

    def replay(self, commit_log: List[Block]) -> None:
        for block in commit_log:
            self.apply_block(block)

    def get(self, key: str) -> Optional[str]:
        return self.state.get(key)

    def digest(self) -> str:
        """Canonical digest of the full state (cross-replica comparison)."""
        canonical = "|".join(
            f"{key}={self.state[key]}" for key in sorted(self.state)
        )
        payload = f"h{self.applied_height}:{canonical}".encode()
        return hashlib.sha256(payload).hexdigest()[:16]


class KvClientHarness(ClientHarness):
    """Clients issuing KV writes: round-robin keys, monotone values."""

    def __init__(self, cluster, registry: OpRegistry, keyspace: int = 64, **kwargs):
        super().__init__(cluster, **kwargs)
        self.registry = registry
        self.keyspace = keyspace

    def _make_tx(self, client_id: int, seq: int, now: float) -> Tx:
        tx = super()._make_tx(client_id, seq, now)
        op = KvOp(
            kind="set",
            key=f"k{(client_id * 7 + seq) % self.keyspace}",
            value=f"c{client_id}s{seq}",
        )
        self.registry.record(tx.tx_id, op)
        return tx


def attach_kv_application(cluster, registry: OpRegistry) -> Dict[int, KvStateMachine]:
    """Give every node a live state machine fed by its own commit path.

    Must be called before ``cluster.start()``. Returns the per-node
    machines (keyed by node id).
    """
    machines: Dict[int, KvStateMachine] = {}
    for node in cluster.nodes:
        machine = KvStateMachine(registry)
        machines[node.node_id] = machine
        node.app = machine
    return machines
