"""Scenario-pack loader and compiler: validation errors and expansion rules."""

import json

import pytest

from repro.errors import ConfigError
from repro.scenarios import (
    PackError,
    catalog,
    compile_pack,
    load_pack,
    load_pack_file,
    pack_names,
    parse_pack,
    validate_pack,
)
from repro.scenarios.loader import parse_pack_text


def make_pack(defaults=None, axes=None, name="t", set_=None):
    grid = {}
    if set_:
        grid["set"] = set_
    if axes:
        grid["axes"] = axes
    return {
        "pack": {"name": name, "title": "t", "schema": 1},
        "defaults": defaults or {},
        "grid": [grid],
    }


# ---------------------------------------------------------------------------
# structural validation
# ---------------------------------------------------------------------------
def test_pack_error_is_config_error():
    assert issubclass(PackError, ConfigError)


def test_missing_header_rejected():
    with pytest.raises(PackError, match=r"missing \[pack\] header"):
        parse_pack({"defaults": {}})


def test_unknown_top_level_key_rejected():
    with pytest.raises(PackError, match="unknown key 'grids'"):
        parse_pack({"pack": {"name": "t"}, "grids": []})


def test_unknown_defaults_key_suggests_close_match():
    data = make_pack(defaults={"blok_kb": 250})
    with pytest.raises(PackError, match="did you mean 'block_kb'"):
        parse_pack(data)


def test_schema_version_mismatch_rejected():
    data = make_pack()
    data["pack"]["schema"] = 99
    with pytest.raises(PackError, match="unsupported schema version 99"):
        parse_pack(data)


def test_empty_axis_rejected():
    with pytest.raises(PackError, match="non-empty list"):
        parse_pack(make_pack(axes={"mode": []}))


def test_composite_axis_requires_tables():
    # "system" is not a cell field, so scalar values make no sense there.
    with pytest.raises(PackError, match="composite axis"):
        parse_pack(make_pack(axes={"system": ["kauri"]}))


def test_composite_axis_entries_checked_against_cell_fields():
    axes = {"system": [{"label": "a", "moed": "kauri"}]}
    with pytest.raises(PackError, match="did you mean 'mode'"):
        parse_pack(make_pack(axes=axes))


def test_scenario_axis_accepts_netem_tables():
    # An axis named after a cell field binds that field whatever the value
    # shape -- here scenario tables (the Figure 7/8 idiom).
    axes = {
        "scenario": [{"base": "regional", "rtt_ms": 50}],
        "mode": ["kauri"],
    }
    pack = parse_pack(make_pack(defaults={"n": 31, "duration": 10.0}, axes=axes))
    grid = compile_pack(pack)
    assert len(grid.cells) == 1
    assert grid.specs[0].scenario.rtt == pytest.approx(0.050)


def test_json_packs_parse_identically():
    data = make_pack(defaults={"n": 7, "duration": 5.0, "scenario": "national"},
                     axes={"mode": ["kauri"]})
    pack = parse_pack_text(json.dumps(data), fmt="json")
    assert pack.name == "t"
    assert compile_pack(pack).specs == compile_pack(parse_pack(data)).specs


def test_pack_file_name_must_match_stem(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps(make_pack(name="t")))
    with pytest.raises(PackError, match="does not match the file stem"):
        load_pack_file(path)


# ---------------------------------------------------------------------------
# value validation (compile time)
# ---------------------------------------------------------------------------
def test_unknown_mode_lists_registry():
    pack = parse_pack(make_pack(defaults={"n": 7, "duration": 5.0, "scenario": "national"},
                                axes={"mode": ["hotstuf-secp"]}))
    with pytest.raises(PackError, match="unknown mode 'hotstuf-secp'"):
        compile_pack(pack)


def test_unknown_scenario_name_rejected():
    pack = parse_pack(make_pack(
        defaults={"n": 7, "duration": 5.0, "mode": "kauri",
                  "scenario": "intergalactic"}))
    with pytest.raises(PackError, match="unknown scenario 'intergalactic'"):
        compile_pack(pack)


def test_impossible_quorum_rejected():
    # N=7 tolerates f=2; crashing three nodes can never commit again.
    pack = parse_pack(make_pack(defaults={
        "n": 7, "duration": 5.0, "mode": "kauri", "scenario": "national",
        "faults": [[1, 1.0], [2, 2.0], [3, 3.0]],
    }))
    with pytest.raises(PackError, match="impossible quorum"):
        compile_pack(pack)


def test_adaptive_duration_rejected_for_cluster_scenarios():
    pack = parse_pack(make_pack(defaults={
        "mode": "kauri", "duration": "adaptive",
        "scenario": {"clusters": "resilientdb", "per_cluster": 2},
    }))
    with pytest.raises(PackError, match="adaptive"):
        compile_pack(pack)


def test_unknown_config_key_rejected():
    pack = parse_pack(make_pack(defaults={
        "n": 7, "duration": 5.0, "mode": "kauri", "scenario": "national",
        "config": {"base_timeot": 5.0},
    }))
    with pytest.raises(PackError, match="did you mean 'base_timeout'"):
        compile_pack(pack)


def test_fault_times_scale_with_compile_scale():
    pack = parse_pack(make_pack(defaults={
        "n": 7, "duration": 40.0, "mode": "kauri", "scenario": "national",
        "faults": [[1, 20.0]],
    }))
    grid = compile_pack(pack, scale=0.5)
    assert grid.specs[0].crashes == ((1, 10.0),)
    assert grid.specs[0].duration == pytest.approx(20.0)


# ---------------------------------------------------------------------------
# grid expansion
# ---------------------------------------------------------------------------
def test_expansion_order_first_axis_outermost():
    pack = parse_pack(make_pack(
        defaults={"duration": 5.0, "scenario": "national"},
        axes={"n": [7, 10], "mode": ["kauri", "pbft"]},
    ))
    grid = compile_pack(pack)
    assert [(s.n, s.mode) for s in grid.specs] == [
        (7, "kauri"), (7, "pbft"), (10, "kauri"), (10, "pbft"),
    ]


def test_axis_override_substitutes_values():
    pack = parse_pack(make_pack(
        defaults={"duration": 5.0, "n": 7, "scenario": "national"},
        axes={"mode": ["kauri", "pbft"]},
    ))
    grid = compile_pack(pack, axes={"mode": ["hotstuff-bls"]})
    assert [s.mode for s in grid.specs] == ["hotstuff-bls"]


def test_unknown_axis_override_rejected():
    pack = parse_pack(make_pack(defaults={"duration": 5.0, "n": 7, "scenario": "national"},
                                axes={"mode": ["kauri"]}))
    with pytest.raises(PackError, match="matches no declared axis"):
        compile_pack(pack, axes={"modes": ["kauri"]})


def test_overrides_overlay_cell_fields():
    pack = parse_pack(make_pack(defaults={"duration": 5.0, "n": 7, "scenario": "national"},
                                axes={"mode": ["kauri"]}))
    grid = compile_pack(pack, overrides={"n": 10})
    assert grid.specs[0].n == 10


def test_composite_axis_binds_label_and_fields():
    pack = parse_pack(make_pack(
        defaults={"duration": 5.0, "n": 7, "scenario": "national",
                  "mode": "kauri"},
        axes={"system": [
            {"label": "kauri-h2", "mode": "kauri", "height": 2},
            {"label": "kauri-h3", "mode": "kauri", "height": 3},
        ]},
    ))
    grid = compile_pack(pack)
    assert grid.labels() == ["kauri-h2", "kauri-h3"]
    assert [(c.label, c.spec.height) for c in grid.cells] == [
        ("kauri-h2", 2), ("kauri-h3", 3),
    ]


# ---------------------------------------------------------------------------
# catalog
# ---------------------------------------------------------------------------
def test_catalog_lists_shipped_packs():
    names = pack_names()
    for expected in ("fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                     "depth", "wan-geo", "flash-crowd", "cascading-faults",
                     "churn", "scenario-comparison", "smoke"):
        assert expected in names, expected


def test_unknown_pack_name_error_names_the_catalog():
    with pytest.raises(PackError, match="unknown scenario pack 'no-such-pack'"):
        load_pack("no-such-pack")


def test_every_shipped_pack_validates():
    for name, path in catalog().items():
        grid = validate_pack(load_pack_file(path))
        assert grid.cells, name
