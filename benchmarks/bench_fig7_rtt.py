"""Figure 7: effect of RTT on throughput (§7.5).

Regional bandwidth (100 Mb/s), N=100, RTT swept 50-400 ms. Shape: HotStuff
throughput decays as RTT grows; Kauri holds nearly constant because the
model raises the pipelining stretch with the RTT (7 -> 33 in the paper).
"""

from conftest import CACHE, JOBS, SCALE, run_once

from repro.analysis import fig7_rtt_sweep, format_table


def test_fig7_rtt_sweep(benchmark, save_table):
    data = run_once(benchmark, lambda: fig7_rtt_sweep(scale=SCALE, jobs=JOBS, use_cache=CACHE))
    rows = []
    for mode, series in data.items():
        for rtt, ktx, stretch in series:
            rows.append((mode, rtt, ktx, stretch))
    save_table(
        "fig7",
        format_table(
            ("System", "RTT (ms)", "Ktx/s", "Model stretch"),
            rows,
            title="Figure 7: regional bandwidth, N=100, varying RTT",
        ),
    )

    kauri = {rtt: ktx for rtt, ktx, _ in data["kauri"]}
    hotstuff = {rtt: ktx for rtt, ktx, _ in data["hotstuff-secp"]}
    # Kauri's throughput stays within a modest band across an 8x RTT range
    assert kauri[400] > 0.6 * kauri[50]
    # ... and beats HotStuff at every RTT
    for rtt in kauri:
        assert kauri[rtt] > hotstuff[rtt]
    # the model's stretch grows with the RTT (paper: 7 -> 33)
    stretches = [s for _, _, s in data["kauri"]]
    assert stretches == sorted(stretches)
    assert stretches[-1] > 2 * stretches[0]
