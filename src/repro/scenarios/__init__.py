"""Declarative scenario packs: experiments as data files, not code.

A *scenario pack* is a small TOML (or JSON) file declaring the axes of an
experiment grid -- topology, network emulation, protocol mode, fault
schedule, client load -- plus fixed defaults. The loader validates packs
with precise error messages, and the compiler lowers a pack onto the
existing frozen :class:`~repro.runtime.sweep.ExperimentSpec` grids consumed
by :class:`~repro.runtime.sweep.SweepRunner`, so every pack cell hits the
same on-disk result cache as a hand-built spec.

Layers:

- :mod:`repro.scenarios.loader`   -- parse + structural validation;
- :mod:`repro.scenarios.compiler` -- lower a pack to ``ExperimentSpec``s;
- :mod:`repro.scenarios.catalog`  -- the checked-in packs under
  ``<repo>/scenarios/``;
- :mod:`repro.scenarios.runner`   -- one-call compile-and-run.
"""

from repro.scenarios.compiler import (
    CompiledCell,
    CompiledGrid,
    compile_pack,
    validate_pack,
)
from repro.scenarios.catalog import catalog, load_pack, pack_dir, pack_names
from repro.scenarios.loader import (
    PackError,
    ScenarioPack,
    load_pack_file,
    parse_pack,
)
from repro.scenarios.runner import run_pack

__all__ = [
    "CompiledCell",
    "CompiledGrid",
    "PackError",
    "ScenarioPack",
    "catalog",
    "compile_pack",
    "load_pack",
    "load_pack_file",
    "pack_dir",
    "pack_names",
    "parse_pack",
    "run_pack",
    "validate_pack",
]
