"""Property-based tests for the cryptographic-collection laws (§3.3.2).

The paper requires commutativity, associativity, idempotency and integrity
of the ⊕ operator. We verify them with hypothesis over random signer/value
multisets for both schemes, plus adversarial integrity tests with forged
and replayed entries.
"""

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import Pki, make_scheme
from repro.crypto.bls import BlsCollection
from repro.crypto.keys import canonical_digest
from repro.crypto.secp import SecpCollection, SecpSignature

N = 8
PKI = Pki(n=N)
SCHEMES = {kind: make_scheme(kind, PKI) for kind in ("secp", "bls")}

# A "tuple spec" is (signer, value); collections are built from lists of them.
tuple_specs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=N - 1), st.sampled_from("abc")),
    max_size=10,
)
scheme_kinds = st.sampled_from(["secp", "bls"])


def build(kind, specs):
    scheme = SCHEMES[kind]
    coll = scheme.empty()
    for signer, value in specs:
        coll = coll | scheme.new(PKI.keypair(signer), value)
    return coll


@settings(max_examples=60, deadline=None)
@given(scheme_kinds, tuple_specs, tuple_specs)
def test_commutativity(kind, specs_a, specs_b):
    a, b = build(kind, specs_a), build(kind, specs_b)
    assert a | b == b | a


@settings(max_examples=60, deadline=None)
@given(scheme_kinds, tuple_specs, tuple_specs, tuple_specs)
def test_associativity(kind, specs_a, specs_b, specs_c):
    a, b, c = build(kind, specs_a), build(kind, specs_b), build(kind, specs_c)
    assert (a | b) | c == a | (b | c)


@settings(max_examples=60, deadline=None)
@given(scheme_kinds, tuple_specs)
def test_idempotency(kind, specs):
    a = build(kind, specs)
    assert a | a == a


@settings(max_examples=60, deadline=None)
@given(scheme_kinds, tuple_specs)
def test_cardinality_counts_distinct_tuples(kind, specs):
    coll = build(kind, specs)
    assert coll.cardinality() == len(set(specs))


@settings(max_examples=60, deadline=None)
@given(scheme_kinds, tuple_specs, st.sampled_from("abc"), st.integers(1, N))
def test_integrity_has_implies_enough_real_signers(kind, specs, value, threshold):
    """has(c, v, t) => at least t distinct processes executed new((p, v))."""
    coll = build(kind, specs)
    real_signers = {signer for signer, v in specs if v == value}
    if coll.has(value, threshold):
        assert len(real_signers) >= threshold
    # and the converse: everyone who signed is counted
    assert coll.signers_for(value) == frozenset(real_signers)


@settings(max_examples=60, deadline=None)
@given(scheme_kinds, tuple_specs)
def test_empty_is_identity(kind, specs):
    scheme = SCHEMES[kind]
    a = build(kind, specs)
    assert a | scheme.empty() == a
    assert scheme.empty() | a == a
    assert scheme.empty().cardinality() == 0


@settings(max_examples=40, deadline=None)
@given(scheme_kinds, tuple_specs)
def test_combine_order_never_changes_quorum_decisions(kind, specs):
    """Fold order over singleton collections is irrelevant (tree shapes!)."""
    scheme = SCHEMES[kind]
    singles = [scheme.new(PKI.keypair(s), v) for s, v in specs]
    left = functools.reduce(lambda x, y: x | y, singles, scheme.empty())
    right = functools.reduce(lambda x, y: y | x, singles, scheme.empty())
    assert left == right
    for value in "abc":
        assert left.signers_for(value) == right.signers_for(value)


class TestForgeryResistance:
    """Integrity against adversarial entries injected without the keys."""

    def test_secp_forged_mac_does_not_count(self):
        scheme = SCHEMES["secp"]
        forged = SecpCollection(
            PKI,
            scheme.costs,
            frozenset(
                SecpSignature(signer, "block", b"\x00" * 32) for signer in range(6)
            ),
        )
        assert forged.signers_for("block") == frozenset()
        assert not forged.has("block", 1)

    def test_bls_forged_tags_do_not_count(self):
        scheme = SCHEMES["bls"]
        forged = BlsCollection(
            PKI, scheme.costs, {"block": {signer: b"\x00" * 32 for signer in range(6)}}
        )
        assert forged.signers_for("block") == frozenset()
        assert not forged.has("block", 1)

    def test_replayed_mac_for_other_value_does_not_count(self):
        """A valid signature over v must not vouch for v'."""
        scheme = SCHEMES["secp"]
        kp = PKI.keypair(0)
        good_mac = kp.mac(canonical_digest("v"))
        replayed = SecpCollection(
            PKI, scheme.costs, frozenset([SecpSignature(0, "other", good_mac)])
        )
        assert not replayed.has("other", 1)

    def test_bls_bad_tag_cannot_shadow_good_one(self):
        """Combining a forged share after a real one must keep the quorum."""
        scheme = SCHEMES["bls"]
        good = scheme.new(PKI.keypair(0), "v")
        bad = BlsCollection(PKI, scheme.costs, {"v": {0: b"\xff" * 32}})
        assert (good | bad).has("v", 1)
        assert (bad | good).has("v", 1)

    def test_forged_entries_mixed_with_real_quorum(self):
        for kind in ("secp", "bls"):
            scheme = SCHEMES[kind]
            real = build(kind, [(s, "v") for s in range(3)])
            if kind == "secp":
                fake = SecpCollection(
                    PKI,
                    scheme.costs,
                    frozenset(
                        SecpSignature(s, "v", b"\x01" * 32) for s in range(3, 8)
                    ),
                )
            else:
                fake = BlsCollection(
                    PKI, scheme.costs, {"v": {s: b"\x01" * 32 for s in range(3, 8)}}
                )
            merged = real | fake
            assert merged.signers_for("v") == frozenset(range(3))
            assert merged.has("v", 3)
            assert not merged.has("v", 4)
