"""Unit tests for blocks and the block store."""

import pytest

from repro.consensus import Block, BlockStore, GENESIS_HASH, make_genesis
from repro.errors import ConsensusError


def chain(store, length, view=0, start_parent=GENESIS_HASH, start_height=1, salt=0):
    """Build and add a chain of blocks; returns the list."""
    blocks = []
    parent = start_parent
    for offset in range(length):
        block = Block.create(
            height=start_height + offset,
            view=view,
            parent=parent,
            proposer=0,
            payload_size=1000,
            num_txs=2,
            created_at=float(offset),
            salt=salt,
        )
        store.add(block)
        blocks.append(block)
        parent = block.hash
    return blocks


def test_genesis_pre_committed():
    store = BlockStore()
    assert store.committed_height == 0
    assert store.is_committed(GENESIS_HASH)
    assert store.get(GENESIS_HASH) == make_genesis()


def test_block_hash_deterministic_and_distinct():
    a = Block.create(1, 0, GENESIS_HASH, 0, 100, 1, 0.0, salt=1)
    b = Block.create(1, 0, GENESIS_HASH, 0, 100, 1, 0.0, salt=1)
    c = Block.create(1, 0, GENESIS_HASH, 0, 100, 1, 0.0, salt=2)
    assert a.hash == b.hash
    assert a.hash != c.hash


def test_commit_single_block():
    store = BlockStore()
    (block,) = chain(store, 1)
    newly = store.commit(block)
    assert newly == [block]
    assert store.committed_height == 1
    assert store.is_committed(block.hash)


def test_commit_descendant_commits_ancestors():
    store = BlockStore()
    blocks = chain(store, 5)
    newly = store.commit(blocks[-1])
    assert [b.height for b in newly] == [1, 2, 3, 4, 5]
    assert store.committed_height == 5
    assert store.commit_log == blocks


def test_commit_idempotent_prefix():
    store = BlockStore()
    blocks = chain(store, 3)
    store.commit(blocks[1])
    newly = store.commit(blocks[2])
    assert newly == [blocks[2]]
    assert store.commit(blocks[2]) == []


def test_conflicting_commit_raises():
    store = BlockStore()
    blocks = chain(store, 2)
    store.commit(blocks[1])
    fork = Block.create(2, 1, blocks[0].hash, 1, 100, 1, 0.0, salt=99)
    store.add(fork)
    with pytest.raises(ConsensusError, match="conflicting commit"):
        store.commit(fork)


def test_commit_with_missing_ancestor_raises():
    store = BlockStore()
    orphan = Block.create(5, 0, "unknown-parent", 0, 100, 1, 0.0)
    store.add(orphan)
    with pytest.raises(ConsensusError):
        store.commit(orphan)


def test_knows_chain():
    store = BlockStore()
    blocks = chain(store, 3)
    assert store.knows_chain(blocks[2])
    orphan = Block.create(9, 0, "nowhere", 0, 100, 1, 0.0)
    assert not store.knows_chain(orphan)


def test_extends_through_chain():
    store = BlockStore()
    blocks = chain(store, 4)
    assert store.extends(blocks[3], blocks[0].hash)
    assert store.extends(blocks[3], GENESIS_HASH)
    assert store.extends(blocks[0], blocks[0].hash)
    fork = Block.create(2, 1, blocks[0].hash, 1, 100, 1, 0.0, salt=7)
    store.add(fork)
    assert not store.extends(blocks[3], fork.hash)


def test_extends_with_unknown_direct_parent():
    """A block naming an unknown ancestor as parent still extends it."""
    store = BlockStore()
    block = Block.create(10, 2, "some-unknown-qc-block", 0, 100, 1, 0.0)
    assert store.extends(block, "some-unknown-qc-block")
    assert not store.extends(block, "other")


def test_commit_fork_below_committed_height_raises():
    store = BlockStore()
    main = chain(store, 3)
    store.commit(main[2])
    # a fork off height 1 reaching height 4: its height-2 ancestor conflicts
    side2 = Block.create(2, 1, main[0].hash, 1, 100, 1, 0.0, salt=50)
    store.add(side2)
    side3 = Block.create(3, 1, side2.hash, 1, 100, 1, 0.0, salt=51)
    store.add(side3)
    side4 = Block.create(4, 1, side3.hash, 1, 100, 1, 0.0, salt=52)
    store.add(side4)
    with pytest.raises(ConsensusError):
        store.commit(side4)


def test_hash_collision_detection():
    store = BlockStore()
    block = Block.create(1, 0, GENESIS_HASH, 0, 100, 1, 0.0)
    store.add(block)
    impostor = Block(
        height=2, view=0, parent=GENESIS_HASH, proposer=1, payload_size=1,
        num_txs=1, created_at=0.0, hash=block.hash,
    )
    with pytest.raises(ConsensusError):
        store.add(impostor)


def test_committed_block_lookup():
    store = BlockStore()
    blocks = chain(store, 2)
    store.commit(blocks[1])
    assert store.committed_block(1) == blocks[0]
    assert store.committed_block(99) is None
