"""Unit tests for impatient channels (Algorithm 1 and its properties)."""

import pytest

from repro.config import NetworkParams
from repro.net import BOTTOM, FaultInjector, HomogeneousNetem, ImpatientChannel, Network
from repro.sim import Simulator
from repro.sim.process import spawn

PARAMS = NetworkParams("test", rtt=0.100, bandwidth_bps=1e9)
DELTA = 1.0


def make_channel(n=2, delta=DELTA):
    sim = Simulator()
    net = Network(sim, HomogeneousNetem(PARAMS))
    for node in range(n):
        net.register(node)
    # channel at node 1 receiving from node 0
    return sim, net, ImpatientChannel(net, local=1, peer=0, delta=delta)


def test_receive_returns_sent_value():
    """Conditional Accuracy: correct sender + receiver => value delivered."""
    sim, net, ic = make_channel()
    got = []

    def receiver():
        got.append((yield from ic.receive("r1")))

    spawn(sim, receiver())
    sender = ImpatientChannel(net, local=0, peer=1, delta=DELTA)
    sender.send("r1", "value", 100)
    sim.run()
    assert got == ["value"]


def test_receive_times_out_to_bottom():
    """Termination: receive always returns, ⊥ if the sender is silent."""
    sim, net, ic = make_channel()
    got = []

    def receiver():
        got.append(((yield from ic.receive("r1")), sim.now))

    spawn(sim, receiver())
    sim.run()
    assert got == [(BOTTOM, DELTA)]
    assert not BOTTOM  # ⊥ is falsy


def test_receive_ignores_other_senders():
    """Validity: a non-⊥ value was sent by the channel's peer."""
    sim, net, ic = make_channel(n=3)
    got = []

    def receiver():
        got.append((yield from ic.receive("r1")))

    spawn(sim, receiver())
    net.send(2, 1, "r1", "imposter", 100)  # wrong peer, same tag
    sim.run()
    assert got == [BOTTOM]


def test_receive_ignores_stale_tags():
    """Single-use: tags isolate instances; old-instance traffic is invisible."""
    sim, net, ic = make_channel()
    got = []

    def receiver():
        got.append((yield from ic.receive(("inst", 2))))

    spawn(sim, receiver())
    net.send(0, 1, ("inst", 1), "stale", 100)
    sim.run()
    assert got == [BOTTOM]


def test_crashed_sender_yields_bottom():
    sim, net, ic = make_channel()
    net.faults.crash(0)
    got = []

    def receiver():
        got.append((yield from ic.receive("r1")))

    spawn(sim, receiver())
    net.send(0, 1, "r1", "never", 100)
    sim.run()
    assert got == [BOTTOM]


def test_value_arriving_before_receive_is_kept():
    sim, net, ic = make_channel()
    net.send(0, 1, "r1", "early", 100)
    sim.run()
    got = []

    def receiver():
        got.append((yield from ic.receive("r1")))

    spawn(sim, receiver())
    sim.run()
    assert got == ["early"]


def test_value_slower_than_delta_becomes_bottom():
    """Pre-GST behaviour: late messages are indistinguishable from faults."""
    sim, net, ic = make_channel()
    net.faults.set_delay_fn(lambda m: 5.0)  # way beyond delta
    got = []

    def receiver():
        got.append(((yield from ic.receive("r1")), sim.now))

    spawn(sim, receiver())
    net.send(0, 1, "r1", "late", 100)
    sim.run()
    assert got == [(BOTTOM, DELTA)]


def test_invalid_delta_rejected():
    sim = Simulator()
    net = Network(sim, HomogeneousNetem(PARAMS))
    net.register(0)
    net.register(1)
    with pytest.raises(ValueError):
        ImpatientChannel(net, local=1, peer=0, delta=0.0)
