"""Timed microbenchmarks over the simulator's hot paths.

Three benches, chosen to cover the cost centres the paper makes
structurally central (§3.3.2, §7):

- ``event_loop``: raw heap throughput (events fired per second of wall
  clock) over many interleaved self-rescheduling timer chains -- every
  NIC serialization, propagation hop, and pacemaker timer in a run is
  one such event.
- ``aggregation_nX``: BLS share aggregation throughput (shares ⊕-merged
  per second) folding one share per process up a Kauri-shaped tree, at
  N = 100 and N = 400. The timed region is Algorithm 3's per-node work:
  validate each incoming partial aggregate, then ⊕-merge it.
- ``multicast_fanout``: messages delivered per second of wall clock for
  a single sender batch-fanning a proposal to 399 children through
  ``Network.multicast`` -- the fabric fast path that replaces one
  closure-per-child serialization chaining with a single batched pass
  over the sender's NIC.
- ``end_to_end_kauri``: committed blocks per second of *wall* clock for
  one complete Kauri deployment (N = 31, global scenario), plus
  ``end_to_end_kauri_n100`` / ``end_to_end_kauri_n400`` at the paper's
  large scales -- the headline numbers for the scale-out fast path
  (fabric multicast + timer-wheel timeouts + direct delivery in
  fault-free runs) -- and ``end_to_end_kauri_n1000`` beyond them: the
  barrier the bitmap signer sets, flyweight replica state, and batched
  event dispatch exist to break. The large-N end-to-end benches also
  record peak heap memory (``peak_mb``) from a separate *untimed*
  ``tracemalloc`` pass, because allocation tracing slows the traced run
  several-fold and must never contaminate the throughput number.

Each bench reports the best of ``repeats`` passes -- the standard
microbench discipline: the minimum-interference pass is the one that
measures the code rather than the machine.

Results are written as ``BENCH_core.json`` in a stable schema::

    {bench_name: {"value": float, "unit": str, "n": int, "seed": int,
                  "peak_mb": float | null}}

so the trajectory accumulates across PRs; ``compare_to_baseline`` is
the CI hook that fails a run whose event-loop throughput regressed --
or whose guarded peak memory grew past its own tolerance.
Wall-clock numbers are machine-dependent -- only compare within one
machine/runner generation. Peak memory is far more stable across
machines (it counts bytes, not cycles), so its tolerance can be tighter.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

BENCH_SCHEMA_NOTE = "{bench_name: {value, unit, n, seed, peak_mb}}"


@dataclass(frozen=True)
class BenchResult:
    """One bench's outcome; ``value`` is a throughput (higher is better).

    ``peak_mb`` -- peak traced heap (MiB) over one untimed pass of the
    same workload -- is recorded only by benches where the footprint is
    the point (the large-N end-to-end runs); ``None`` elsewhere.
    """

    value: float
    unit: str
    n: int
    seed: int
    peak_mb: Optional[float] = None


# ---------------------------------------------------------------------------
# Benches
# ---------------------------------------------------------------------------
def bench_event_loop(
    n_events: int = 200_000, chains: int = 64, seed: int = 0, repeats: int = 3
) -> BenchResult:
    """Events fired per wall-clock second with ``chains`` interleaved timers.

    Each chain reschedules itself with a small random delay, so the heap
    constantly reorders -- the access pattern of a real run, where NIC
    completions, propagation arrivals, and pacemaker timers interleave.
    """
    from repro.sim.engine import Simulator

    best = 0.0
    for rep in range(repeats):
        sim = Simulator(seed=seed + rep)
        fired = 0

        def tick() -> None:
            nonlocal fired
            fired += 1
            if fired + chains <= n_events:
                sim.schedule(sim.rng.random() * 1e-3, tick)

        for _ in range(chains):
            sim.schedule(sim.rng.random() * 1e-3, tick)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        best = max(best, fired / elapsed)
    return BenchResult(best, "events/s", n_events, seed)


def bench_aggregation(
    n: int = 100,
    rounds: int = 8,
    fanout: Optional[int] = None,
    seed: int = 0,
    repeats: int = 3,
) -> BenchResult:
    """Shares ⊕-merged per wall-clock second up a Kauri-shaped tree.

    Per round every process signs a fresh value (signing is outside the
    timed region), leaf shares are folded into per-internal-node partial
    aggregates, and the partials are folded at the root. The timed region
    is exactly an internal node's Algorithm 3 work: *validate* each
    incoming contribution (``signers_for``), ⊕-merge it, and check the
    final aggregate reaches the full quorum (``has``). Values are fresh
    every round, so nothing is amortised across rounds.
    """
    from repro.crypto.bls import BlsScheme
    from repro.crypto.costs import BLS_COSTS
    from repro.crypto.keys import Pki

    if fanout is None:
        fanout = max(2, int(round(n ** 0.5)))
    pki = Pki(n, seed=seed)
    scheme = BlsScheme(pki, BLS_COSTS)
    keypairs = [pki.keypair(i) for i in range(n)]

    best = 0.0
    for rep in range(repeats):
        shares_merged = 0
        elapsed = 0.0
        for rnd in range(rounds):
            value = ("bench-round", rep, rnd, seed)
            singles = [scheme.new(kp, value) for kp in keypairs]
            start = time.perf_counter()
            partials = []
            for base in range(0, n, fanout):
                acc = scheme.empty()
                for single in singles[base : base + fanout]:
                    if not single.signers_for(value):
                        raise AssertionError("invalid share in bench")
                    shares_merged += len(single)
                    acc = acc.combine(single)
                partials.append(acc)
            root = scheme.empty()
            for partial in partials:
                if not partial.signers_for(value):
                    raise AssertionError("invalid partial in bench")
                shares_merged += len(partial)
                root = root.combine(partial)
            if not root.has(value, n):
                raise AssertionError("aggregation bench lost shares")
            elapsed += time.perf_counter() - start
        best = max(best, shares_merged / elapsed)
    return BenchResult(best, "shares/s", n, seed)


def bench_multicast_fanout(
    fanout: int = 399,
    rounds: int = 200,
    size: int = 1000,
    seed: int = 0,
    repeats: int = 3,
) -> BenchResult:
    """Messages delivered per wall-clock second through the fabric fast path.

    One sender repeatedly fans a proposal-sized payload out to ``fanout``
    destinations -- the exact shape of a Kauri internal node's
    ``send_to_children`` at N = 400 (and of the HotStuff leader broadcast).
    The timed region is the whole simulation: batched serialization on the
    sender's NIC, propagation, and delivery bookkeeping for every message.
    """
    from repro.config import NetworkParams
    from repro.net.netem import HomogeneousNetem
    from repro.net.network import Network
    from repro.sim.engine import Simulator

    params = NetworkParams(name="bench", rtt=0.004, bandwidth_bps=1e9)
    best = 0.0
    for rep in range(repeats):
        sim = Simulator(seed=seed + rep)
        net = Network(sim, HomogeneousNetem(params))
        for node in range(fanout + 1):
            net.register(node)
        dsts = tuple(range(1, fanout + 1))

        def blast(round_no: int = 0) -> None:
            net.multicast(0, dsts, ("blk", round_no), None, size)
            if round_no + 1 < rounds:
                sim.schedule_call(2e-3, blast, round_no + 1)

        blast()
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        if net.messages_delivered != fanout * rounds:
            raise AssertionError("multicast bench lost messages")
        best = max(best, net.messages_delivered / elapsed)
    return BenchResult(best, "msgs/s", fanout, seed)


def bench_end_to_end(
    n: int = 31,
    max_commits: int = 30,
    duration: float = 120.0,
    seed: int = 0,
    repeats: int = 3,
    measure_memory: bool = False,
) -> BenchResult:
    """Committed blocks per second of wall clock for one Kauri deployment.

    Times only the simulation itself: cluster construction (PKI key
    generation, topology build -- O(n) Python work the fast path does
    not touch) stays outside the timed region, so quick CI workloads
    with few commits measure the same steady-state number as the full
    suite instead of amortising setup differently.

    With ``measure_memory``, one additional *untimed* pass runs under
    ``tracemalloc`` and the peak traced heap (construction included --
    per-node state is exactly what the flyweight work bounds) is reported
    as ``peak_mb``. The pass is separate because tracing slows execution
    several-fold, which would corrupt the throughput number.
    """
    from repro.runtime.cluster import Cluster

    def one_pass() -> tuple:
        cluster = Cluster(n=n, mode="kauri", scenario="global", seed=seed)
        start = time.perf_counter()
        cluster.start()
        cluster.run(duration=duration, max_commits=max_commits)
        elapsed = time.perf_counter() - start
        committed = cluster.metrics.committed_blocks
        if committed == 0:
            raise AssertionError("end-to-end bench committed nothing")
        return committed, elapsed

    best = 0.0
    for _ in range(repeats):
        committed, elapsed = one_pass()
        best = max(best, committed / elapsed)
    peak_mb = None
    if measure_memory:
        was_tracing = tracemalloc.is_tracing()
        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            one_pass()
            _current, peak = tracemalloc.get_traced_memory()
            peak_mb = round(peak / (1024.0 * 1024.0), 2)
        finally:
            if not was_tracing:
                tracemalloc.stop()
    return BenchResult(best, "blocks/s-wall", n, seed, peak_mb=peak_mb)


def bench_capacity_ingest(
    rate_txs: float = 2_000_000.0,
    duration: float = 2.0,
    capacity_txs: int = 5_000,
    batch_interval: float = 0.01,
    seed: int = 0,
    repeats: int = 2,
    measure_memory: bool = False,
) -> BenchResult:
    """Offered client transactions ingested per second of wall clock.

    One aggregate client class (40M users at 0.05 tx/s each by default --
    the flash-crowd regime the ROADMAP's "millions of users" north star
    names) offers ``rate_txs`` transactions/second with jitter off, so the
    offered count is deterministic, against a bounded leader mempool --
    the ``repro capacity`` hot path at a rate where the client layers
    (arrival synthesis, admission control, latency accounting) dominate
    wall clock, not consensus. The 10 ms tick keeps each client batch
    small enough to serialise onto its uplink in well under a second, so
    commits flow within the run. The timed region includes
    :meth:`WorkloadHarness.summary` because report generation is part of
    what a capacity sweep pays per cell.

    ``n`` reports the total offered transaction count. With
    ``measure_memory``, an untimed ``tracemalloc`` pass records
    ``peak_mb`` -- the number that pins the O(buckets) histogram claim:
    latency-accounting state must not scale with the offered count.
    """
    from repro.config import ProtocolConfig
    from repro.runtime.cluster import Cluster
    from repro.runtime.workload import (
        ClientClassSpec,
        WorkloadHarness,
        WorkloadSpec,
        make_workload_factory,
    )

    spec = WorkloadSpec(
        classes=(
            ClientClassSpec(
                name="ingest",
                population=int(rate_txs / 0.05),
                rate_per_user=0.05,
                slo_ms=2000.0,
            ),
        ),
        capacity_txs=capacity_txs,
        policy="drop",
        batch_interval=batch_interval,
        jitter=False,
    )
    offered = int(rate_txs * duration)

    def one_pass() -> tuple:
        config = ProtocolConfig()
        cluster = Cluster(
            n=7, mode="kauri", scenario="national", config=config, seed=seed,
            workload_factory=make_workload_factory(spec, config),
        )
        harness = WorkloadHarness(cluster, spec, seed=seed)
        cluster.start()
        harness.start()
        start = time.perf_counter()
        cluster.run(duration=duration)
        summary = harness.summary()
        elapsed = time.perf_counter() - start
        totals = summary["totals"]
        if totals["committed"] == 0:
            raise AssertionError("capacity-ingest bench committed nothing")
        if totals["generated"] < 0.9 * offered:
            raise AssertionError(
                f"capacity-ingest bench under-generated: "
                f"{totals['generated']} of {offered}"
            )
        return totals["generated"], elapsed

    best = 0.0
    for _ in range(repeats):
        generated, elapsed = one_pass()
        best = max(best, generated / elapsed)
    peak_mb = None
    if measure_memory:
        was_tracing = tracemalloc.is_tracing()
        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            one_pass()
            _current, peak = tracemalloc.get_traced_memory()
            peak_mb = round(peak / (1024.0 * 1024.0), 2)
        finally:
            if not was_tracing:
                tracemalloc.stop()
    return BenchResult(best, "txs/s-wall", offered, seed, peak_mb=peak_mb)


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------
def run_benches(
    quick: bool = False,
    seed: int = 0,
    only: Optional[Sequence[str]] = None,
) -> Dict[str, BenchResult]:
    """Run the suite; ``quick`` shrinks workloads for CI smoke runs.

    ``only`` restricts to a subset of bench names (unknown names raise
    ``KeyError``) -- the CLI's ``--bench`` flag for iterating on one
    number without paying for the whole suite.
    """
    n_events = 40_000 if quick else 200_000
    rounds_100 = 3 if quick else 8
    rounds_400 = 1 if quick else 3
    mcast_rounds = 40 if quick else 200
    commits = 10 if quick else 30
    commits_100 = 5 if quick else 15
    # Not shrunk for --quick: the first instance at N=400/N=1000 pays the
    # cold crypto-memo ramp, so short runs measure the ramp, not steady
    # state (a 3-commit N=1000 run sits ~35% below the 6-commit number).
    # These are the workloads CI gates on.
    commits_400 = 8
    commits_1000 = 6
    # 6M offered txs (the >=1M scale the ingest fast path is specified
    # at), quick mode included: the run is sub-second wall either way,
    # and shortening the simulated duration would shrink the measured
    # rate structurally (fixed cluster setup amortised over less
    # generation), making the quick CI number incomparable to the
    # committed full-mode baseline.
    ingest_duration = 3.0
    repeats = 2 if quick else 3
    suite = {
        "event_loop": lambda: bench_event_loop(
            n_events=n_events, seed=seed, repeats=repeats
        ),
        "aggregation_n100": lambda: bench_aggregation(
            n=100, rounds=rounds_100, seed=seed, repeats=repeats
        ),
        "aggregation_n400": lambda: bench_aggregation(
            n=400, rounds=rounds_400, seed=seed, repeats=repeats
        ),
        "multicast_fanout": lambda: bench_multicast_fanout(
            rounds=mcast_rounds, seed=seed, repeats=repeats
        ),
        "end_to_end_kauri": lambda: bench_end_to_end(
            max_commits=commits, seed=seed, repeats=repeats
        ),
        "end_to_end_kauri_n100": lambda: bench_end_to_end(
            n=100, max_commits=commits_100, seed=seed, repeats=repeats
        ),
        "end_to_end_kauri_n400": lambda: bench_end_to_end(
            n=400, max_commits=commits_400, seed=seed,
            repeats=max(2, repeats - 1), measure_memory=True,
        ),
        "end_to_end_kauri_n1000": lambda: bench_end_to_end(
            n=1000, max_commits=commits_1000, seed=seed,
            repeats=max(2, repeats - 1), measure_memory=True,
        ),
        "capacity_ingest": lambda: bench_capacity_ingest(
            duration=ingest_duration, seed=seed,
            repeats=max(2, repeats - 1), measure_memory=True,
        ),
    }
    if only is not None:
        unknown = set(only) - set(suite)
        if unknown:
            raise KeyError(
                f"unknown benches {sorted(unknown)}; "
                f"choose from {sorted(suite)}"
            )
        suite = {name: suite[name] for name in suite if name in set(only)}
    return {name: thunk() for name, thunk in suite.items()}


def write_results(results: Dict[str, BenchResult], path: str) -> None:
    payload = {name: asdict(result) for name, result in sorted(results.items())}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_results(path: str) -> Dict[str, BenchResult]:
    with open(path) as fh:
        payload = json.load(fh)
    return {name: BenchResult(**fields) for name, fields in payload.items()}


#: Benches CI gates on: the event loop, the fabric fast path, the
#: large-N end-to-end numbers the scale-out work exists to protect, and
#: the high-rate client ingest path (throughput and its O(buckets)
#: latency-accounting memory, both budgeted).
GUARDED_BENCHES = (
    "event_loop",
    "multicast_fanout",
    "end_to_end_kauri_n100",
    "end_to_end_kauri_n400",
    "end_to_end_kauri_n1000",
    "capacity_ingest",
)


def compare_to_baseline(
    results: Dict[str, BenchResult],
    baseline: Dict[str, BenchResult],
    keys: tuple = GUARDED_BENCHES,
    tolerance: float = 0.30,
    mem_tolerance: float = 0.15,
) -> List[str]:
    """Regressions beyond tolerance on the guarded benches.

    Two independent budgets per bench: throughput may not fall more than
    ``tolerance`` below baseline, and peak memory (where both sides
    recorded it) may not grow more than ``mem_tolerance`` above it. The
    memory tolerance is tighter than the throughput one on purpose --
    traced peak heap counts bytes, not cycles, so it barely varies across
    machines or load, and a footprint regression at N=1000 is exactly the
    failure mode that silently re-raises the scale barrier.

    Returns human-readable problem strings (empty = pass). Only benches
    present in both result sets are compared, so adding a bench never
    breaks CI retroactively.
    """
    problems = []
    for key in keys:
        if key not in results or key not in baseline:
            continue
        new, old = results[key].value, baseline[key].value
        if old > 0 and new < (1.0 - tolerance) * old:
            problems.append(
                f"{key}: {new:,.0f} {results[key].unit} is "
                f"{(1 - new / old):.0%} below baseline {old:,.0f}"
            )
        new_mem, old_mem = results[key].peak_mb, baseline[key].peak_mb
        if (
            new_mem is not None
            and old_mem is not None
            and old_mem > 0
            and new_mem > (1.0 + mem_tolerance) * old_mem
        ):
            problems.append(
                f"{key}: peak memory {new_mem:,.1f} MiB is "
                f"{(new_mem / old_mem - 1):.0%} above baseline "
                f"{old_mem:,.1f} MiB"
            )
    return problems
