#!/usr/bin/env python
"""Capacity planning with the §4.3 performance model.

The paper's Kauri requires the tree topology and the pipelining stretch to
be configured manually, "using the performance model provided in this
paper" (§8). This example is that workflow as a tool: given a deployment
(N, RTT, bandwidth, block size), it tabulates the model across candidate
tree heights, picks the configuration with the best expected throughput,
and prints the stretch to configure.

Run:  python examples/capacity_planner.py [N] [rtt_ms] [bandwidth_mbps]

With ``--measured``, the model-based plan is followed by a *measured*
offered-load sweep through the workload engine (aggregate client
populations, bounded leader mempool, end-to-end tail latency), answering
"how many users fit this topology" from simulation instead of the closed
-form model -- the same sweep ``python -m repro capacity`` runs:

      python examples/capacity_planner.py --measured [users] [rate_per_user]
"""

import sys

from repro import KB, NetworkParams, PerfModel, ProtocolConfig
from repro.analysis import format_table
from repro.config import default_root_fanout, mbps, ms
from repro.crypto.costs import BLS_COSTS, SECP_COSTS


def plan(n: int, rtt_ms: float, bandwidth_mbps: float, block_kb: int = 250):
    params = NetworkParams("target", rtt=ms(rtt_ms), bandwidth_bps=mbps(bandwidth_mbps))
    config = ProtocolConfig(block_size=block_kb * KB)
    candidates = []
    for height in (1, 2, 3, 4):
        try:
            fanout = default_root_fanout(n, height) if height > 1 else n - 1
            costs = BLS_COSTS if height > 1 else SECP_COSTS
            model = PerfModel.for_topology(
                n, height, fanout, params, config.block_size, costs
            )
        except Exception:
            continue
        candidates.append((height, fanout, model))
    return params, config, candidates


def measured_plan(users: int, rate_per_user: float) -> None:
    """Measure the saturation knee for a small Kauri deployment."""
    from repro.runtime.sweep import ExperimentSpec, SweepRunner
    from repro.runtime.workload import (
        ClientClassSpec,
        WorkloadSpec,
        saturation_knee,
    )

    slo_ms = 1000.0
    populations = [max(1, users * step // 4) for step in (1, 2, 3, 4)]
    specs = [
        ExperimentSpec(
            mode="kauri",
            scenario="national",
            n=7,
            duration=10.0,
            workload=WorkloadSpec(
                classes=(
                    ClientClassSpec(
                        name="users",
                        population=population,
                        rate_per_user=rate_per_user,
                        slo_ms=slo_ms,
                    ),
                ),
                capacity_txs=1500,
            ),
        )
        for population in populations
    ]
    results = SweepRunner().run(specs)
    points = []
    rows = []
    for population, result in zip(populations, results):
        totals = result.workload["totals"]
        generated = totals["generated"]
        goodput = totals["committed"] / generated if generated else 0.0
        latency = totals["latency"]
        points.append({
            "goodput": goodput,
            "slo_met": latency["p99"] <= slo_ms / 1000.0,
        })
        rows.append(
            (
                f"{population:,}",
                round(totals["offered_rate_txs"], 1),
                totals["committed"],
                round(latency["p50"] * 1000, 1),
                round(latency["p99"] * 1000, 1),
                round(latency["p999"] * 1000, 1),
                f"{totals['drop_rate']:.1%}",
            )
        )
    print(format_table(
        ("Users", "Offered tx/s", "Committed", "p50 ms", "p99 ms",
         "p999 ms", "Drops"),
        rows,
        title=f"Measured capacity: kauri n=7 (national), "
              f"SLO p99 <= {slo_ms:.0f} ms",
    ))
    knee = saturation_knee(points)
    if knee >= 0:
        print(f"\nMeasured knee: ~{populations[knee]:,} users fit within "
              f"the SLO")
    else:
        print("\nMeasured knee: none of the tested loads met the SLO")


def main() -> None:
    argv = sys.argv[1:]
    if argv and argv[0] == "--measured":
        users = int(argv[1]) if len(argv) > 1 else 400_000
        rate = float(argv[2]) if len(argv) > 2 else 0.002
        measured_plan(users, rate)
        return
    n = int(argv[0]) if len(argv) > 0 else 400
    rtt_ms_value = float(argv[1]) if len(argv) > 1 else 200.0
    bw = float(argv[2]) if len(argv) > 2 else 25.0

    params, config, candidates = plan(n, rtt_ms_value, bw)
    rows = []
    for height, fanout, model in candidates:
        label = "star (HotStuff)" if height == 1 else f"tree h={height}"
        rows.append(
            (
                label,
                fanout,
                round(model.sending_time * 1000, 1),
                round(model.processing_time * 1000, 1),
                round(model.remaining_time * 1000, 1),
                round(model.pipelining_stretch, 1),
                "CPU" if model.is_cpu_bound else "network",
                round(model.expected_throughput_txs(config), 0),
                round(model.instance_latency() * 1000, 0),
            )
        )
    print(
        format_table(
            (
                "Topology",
                "Fanout",
                "Sending (ms)",
                "Processing (ms)",
                "Remaining (ms)",
                "Stretch",
                "Bottleneck",
                "Expected tx/s",
                "Latency (ms)",
            ),
            rows,
            title=(
                f"Capacity plan: N={n}, RTT={rtt_ms_value:.0f} ms, "
                f"{bw:.0f} Mb/s, {config.block_size // KB} KB blocks"
            ),
        )
    )
    best = max(candidates, key=lambda c: c[2].expected_throughput_txs(config))
    height, fanout, model = best
    print(
        f"\nRecommended: height={height}, root fanout={fanout}, "
        f"pipelining stretch={model.pipelining_stretch:.1f} "
        f"(expected {model.expected_throughput_txs(config):,.0f} tx/s, "
        f"{model.max_speedup:.1f}x the star's sending capacity)"
    )


if __name__ == "__main__":
    main()
