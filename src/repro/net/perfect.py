"""Perfect point-to-point channels over lossy links (paper §2).

The paper assumes perfect channels "implemented using mechanisms for
message re-transmission and detection and suppression of duplicates"
(citing Cachin et al.). The experiment fast path uses lossless simulated
links directly (equivalent post-GST behaviour at far lower event cost);
this module provides the explicit stubborn-retransmission construction and
is exercised by the test suite against injected loss to demonstrate the
equivalence:

- **Validity**: a delivered value was previously sent.
- **Termination**: if sender and receiver are correct, every sent value is
  eventually delivered exactly once, for any finite number of losses.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional, Set, Tuple

from repro.net.network import Network
from repro.net.message import Message
from repro.sim.engine import EventHandle

_DATA = "__rl_data__"
_ACK = "__rl_ack__"


class ReliableLink:
    """Stubborn retransmission with acknowledgements and deduplication.

    One instance per directed (src, dst) pair and logical stream. Sends are
    retransmitted every ``resend_interval`` until acknowledged; receivers
    suppress duplicates by sequence number and re-ack (acks may be lost
    too). Delivery is in-order per link.
    """

    def __init__(
        self,
        network: Network,
        src: int,
        dst: int,
        resend_interval: float,
        stream: Hashable = 0,
        on_deliver: Optional[Callable[[Any], None]] = None,
    ):
        self.network = network
        self.sim = network.sim
        self.src = src
        self.dst = dst
        self.stream = stream
        self.resend_interval = resend_interval
        self.on_deliver = on_deliver
        # Sender state
        self._next_seq = 0
        self._unacked: Dict[int, Tuple[Any, int]] = {}
        self._resend_timers: Dict[int, EventHandle] = {}
        self.retransmissions = 0
        # Receiver state
        self._delivered_seqs: Set[int] = set()
        self._next_deliver = 0
        self._out_of_order: Dict[int, Any] = {}
        self.delivered: list = []
        self._install_receivers()

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def send(self, payload: Any, size: int) -> int:
        """Reliably send ``payload``; returns its sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        self._unacked[seq] = (payload, size)
        self._transmit(seq)
        return seq

    def _transmit(self, seq: int) -> None:
        if seq not in self._unacked:
            return
        payload, size = self._unacked[seq]
        self.network.send(
            self.src, self.dst, (_DATA, self.stream, self.src, self.dst),
            (seq, payload), size,
        )
        self._resend_timers[seq] = self.sim.schedule(
            self.resend_interval, self._retransmit, seq
        )

    def _retransmit(self, seq: int) -> None:
        if seq in self._unacked:
            self.retransmissions += 1
            self._transmit(seq)

    def _on_ack(self, msg: Message) -> None:
        seq = msg.payload
        self._unacked.pop(seq, None)
        timer = self._resend_timers.pop(seq, None)
        if timer is not None:
            timer.cancel()

    @property
    def pending(self) -> int:
        """Number of sends not yet acknowledged."""
        return len(self._unacked)

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def _on_data(self, msg: Message) -> None:
        seq, payload = msg.payload
        # Always (re-)ack: the previous ack may have been lost.
        self.network.send(
            self.dst, self.src, (_ACK, self.stream, self.src, self.dst), seq, 16
        )
        if seq in self._delivered_seqs:
            return  # duplicate suppression
        self._delivered_seqs.add(seq)
        self._out_of_order[seq] = payload
        while self._next_deliver in self._out_of_order:
            value = self._out_of_order.pop(self._next_deliver)
            self._next_deliver += 1
            self.delivered.append(value)
            if self.on_deliver is not None:
                self.on_deliver(value)

    # ------------------------------------------------------------------
    def _install_receivers(self) -> None:
        """Register persistent dispatchers on both endpoints."""
        from repro.sim.process import spawn

        def data_loop():
            endpoint = self.network.endpoint(self.dst)
            while True:
                msg = yield from endpoint.receive(
                    (_DATA, self.stream, self.src, self.dst)
                )
                self._on_data(msg)

        def ack_loop():
            endpoint = self.network.endpoint(self.src)
            while True:
                msg = yield from endpoint.receive(
                    (_ACK, self.stream, self.src, self.dst)
                )
                self._on_ack(msg)

        self._data_task = spawn(
            self.sim, data_loop(), name=f"rl-data-{self.src}->{self.dst}"
        )
        self._ack_task = spawn(
            self.sim, ack_loop(), name=f"rl-ack-{self.src}->{self.dst}"
        )

    def close(self) -> None:
        """Stop the dispatcher tasks (tests use this to drain the heap)."""
        self._data_task.cancel()
        self._ack_task.cancel()
        for timer in self._resend_timers.values():
            timer.cancel()
        self._resend_timers.clear()
        self._unacked.clear()
