"""Figure 11: heterogeneous networks (§7.9).

The ResilientDB-style deployment: N=60 across six geo-distributed
clusters, leader and tree root in the best-connected cluster (Oregon),
internal nodes beside their leaf nodes. Shapes: Kauri's throughput far
exceeds every other system (the high inter-cluster RTT is exactly what
pipelining hides); HotStuff's latency is lower at this small scale; and
Kauri-np is the *worst* performer -- without pipelining the high RTT
dominates the remaining time.

The grid comes from the checked-in ``scenarios/fig11.toml`` pack.
"""

from conftest import SCALE, run_grid, run_once

from repro.analysis import format_table
from repro.scenarios import compile_pack, load_pack


def test_fig11_heterogeneous(benchmark, save_table):
    grid = compile_pack(load_pack("fig11"), scale=SCALE)
    results = run_once(benchmark, lambda: run_grid(grid.specs))
    rows = [
        (
            r.mode,
            round(r.throughput_txs / 1000.0, 2),
            round(r.latency["p50"] * 1000.0, 0),
            r.committed_blocks,
        )
        for r in results
    ]
    save_table(
        "fig11",
        format_table(
            ("System", "Ktx/s", "p50 latency (ms)", "Blocks"),
            rows,
            title="Figure 11: ResilientDB scenario, N=60, 6 clusters",
        ),
    )

    by_mode = {r.mode: r for r in results}
    kauri = by_mode["kauri"].throughput_txs
    # Kauri substantially outperforms all other systems (§7.9)
    for mode in ("kauri-np", "hotstuff-secp", "hotstuff-bls"):
        assert kauri > 2 * by_mode[mode].throughput_txs, mode
    # Kauri-np sits with the HotStuff variants at the bottom: without
    # pipelining the high inter-cluster RTT wipes out the tree's advantage
    # (the paper finds it strictly worst; under our strict per-process
    # uplink model the star variants are equally RTT+bandwidth bound, so
    # the bottom three are within a small factor -- see EXPERIMENTS.md).
    bottom = sorted(r.throughput_txs for r in results)[:3]
    assert by_mode["kauri-np"].throughput_txs in bottom
    assert by_mode["kauri-np"].throughput_txs < 0.25 * kauri
    # Latency: the paper reports HotStuff ahead at this small scale with
    # Kauri within ~2x. With the refined bottleneck-fanout pacing our Kauri
    # avoids the queueing the paper's static stretch incurs and actually
    # undercuts HotStuff; assert the paper-compatible bound (within ~2.5x
    # either way), and record the direction in EXPERIMENTS.md.
    assert (
        by_mode["kauri"].latency["p50"]
        < 2.5 * by_mode["hotstuff-bls"].latency["p50"]
    )
