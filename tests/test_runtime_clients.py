"""Unit tests for client workloads."""

import random

import pytest

from repro.config import KB, ProtocolConfig
from repro.errors import ConfigError
from repro.runtime import PoissonWorkload, SaturatedWorkload


@pytest.fixture
def config():
    return ProtocolConfig(block_size=100 * KB, tx_size=512)


def test_saturated_always_full(config):
    workload = SaturatedWorkload(config)
    for now in (0.0, 1.0, 1.0, 100.0):
        fill = workload.next_fill(now)
        assert fill.payload_size == config.block_size
        assert fill.num_txs == config.txs_per_block


def test_poisson_accumulates_arrivals(config):
    workload = PoissonWorkload(config, rate_txs=100.0, jitter=False)
    fill = workload.next_fill(1.0)  # 100 txs accumulated
    assert fill.num_txs == 100
    assert fill.payload_size == 100 * config.tx_size


def test_poisson_caps_at_block_size(config):
    workload = PoissonWorkload(config, rate_txs=1000.0, jitter=False)
    fill = workload.next_fill(100.0)  # 100k txs >> block capacity
    assert fill.num_txs == config.txs_per_block
    assert workload.queued_txs > 0  # backlog retained


def test_poisson_empty_interval(config):
    workload = PoissonWorkload(config, rate_txs=100.0, jitter=False)
    workload.next_fill(1.0)
    fill = workload.next_fill(1.0)  # zero elapsed
    assert fill.num_txs == 0


def test_poisson_backlog_carries_over(config):
    workload = PoissonWorkload(config, rate_txs=10.0, jitter=False)
    a = workload.next_fill(0.05)  # 0.5 txs -> 0 taken, 0.5 queued
    b = workload.next_fill(0.15)  # +1 tx -> 1.5 -> 1 taken
    assert a.num_txs == 0
    assert b.num_txs == 1


def test_poisson_jitter_deterministic_by_rng(config):
    a = PoissonWorkload(config, rate_txs=100.0, rng=random.Random(7))
    b = PoissonWorkload(config, rate_txs=100.0, rng=random.Random(7))
    fills_a = [a.next_fill(t).num_txs for t in (1.0, 2.0, 3.0)]
    fills_b = [b.next_fill(t).num_txs for t in (1.0, 2.0, 3.0)]
    assert fills_a == fills_b


def test_poisson_validation(config):
    with pytest.raises(ConfigError):
        PoissonWorkload(config, rate_txs=-1.0)
