"""Declarative sweep engine: experiment grids as values, scheduled by a runner.

Every paper artifact (Figs. 5-12, Tables 1-2, the ablations) is a grid of
independent deterministic simulations. This module makes one grid cell a
first-class value -- :class:`ExperimentSpec`, a frozen, hashable mirror of
the :func:`~repro.runtime.experiment.run_experiment` signature -- and
provides :class:`SweepRunner`, which schedules a list of specs across
pluggable backends:

- ``serial``  -- run cells in order in the current process;
- ``process`` -- fan cells out over a ``ProcessPoolExecutor``.

Results come back **in spec order** and are byte-identical across backends:
each worker builds its own :class:`~repro.sim.engine.Simulator` from the
spec's seed, so determinism is preserved by construction and paralleling a
sweep can never change its numbers.

An optional on-disk cache (default ``benchmarks/results/.cache/``) keyed by
a *stable* spec hash (SHA-256 of the canonical spec encoding -- not
Python's salted ``hash()``) lets a re-run of a figure skip completed cells.
Invalidation rule: the key covers every spec field plus ``CACHE_SCHEMA``;
bump :data:`CACHE_SCHEMA` (or delete the cache directory) whenever the
simulator's behaviour changes in a way that alters results for an unchanged
spec.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.config import ClusterParams, NetworkParams, ProtocolConfig
from repro.errors import ConfigError
from repro.runtime.experiment import ExperimentResult, run_experiment
from repro.runtime.workload import WorkloadSpec

#: Bump whenever simulation semantics change such that an unchanged spec
#: would produce different numbers; stale cache entries are then ignored.
#: 2: half-open measurement windows + windowed (exact) leader utilization.
CACHE_SCHEMA = 2

#: Version of the *workload engine's* reported numbers, keyed into the
#: canonical form only for workload-bearing specs: bumping it invalidates
#: cached workload cells without moving a single classic cache key (those
#: are pinned byte-identical by test).
#: 2: histogram-backed e2e latency percentiles (ingest fast path).
WORKLOAD_ENGINE_VERSION = 2

#: Environment override for the default cache directory.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE_DIR"

#: Environment default for the worker count when ``jobs`` is not given.
JOBS_ENV = "REPRO_SWEEP_JOBS"

Scenario = Union[str, NetworkParams, ClusterParams]


def _encode_scenario(scenario: Scenario) -> Any:
    """Canonical, JSON-able encoding of every accepted scenario form."""
    if isinstance(scenario, str):
        return ["name", scenario]
    if isinstance(scenario, NetworkParams):
        return ["params", scenario.name, scenario.rtt, scenario.bandwidth_bps]
    if isinstance(scenario, ClusterParams):
        return [
            "clusters",
            scenario.name,
            list(scenario.cluster_sizes),
            _encode_scenario(scenario.intra),
            sorted(
                (list(pair), _encode_scenario(params))
                for pair, params in scenario.inter.items()
            ),
        ]
    raise ConfigError(f"unsupported scenario type: {type(scenario).__name__}")


@dataclass(frozen=True)
class ExperimentSpec:
    """One grid cell: the full ``run_experiment`` signature as a value.

    Frozen and hashable (``crashes`` is normalised to a tuple of tuples),
    so specs can key dictionaries, deduplicate inside grids, and address
    the on-disk result cache. :meth:`run` executes the cell.
    """

    mode: str = "kauri"
    scenario: Scenario = "global"
    n: Optional[int] = 100
    block_size: Optional[int] = None
    stretch: Optional[float] = None
    height: int = 2
    root_fanout: Optional[int] = None
    duration: float = 60.0
    warmup_fraction: float = 0.25
    max_commits: Optional[int] = None
    seed: int = 0
    config: Optional[ProtocolConfig] = None
    crashes: Tuple[Tuple[int, float], ...] = ()
    uplink_lanes: int = 1
    saturation_threshold: float = 0.95
    observability: bool = False
    #: Workload-engine spec; None keeps the classic saturated block-filler
    #: (and, crucially, the classic cache key -- see :meth:`canonical`).
    workload: Optional[WorkloadSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "crashes",
            tuple((int(node), float(when)) for node, when in self.crashes),
        )
        if self.workload is not None and not isinstance(self.workload, WorkloadSpec):
            object.__setattr__(
                self, "workload", WorkloadSpec.from_mapping(self.workload)
            )

    # ``scenario`` may be a ClusterParams (carries a dict), so the
    # field-generated hash is unusable; hash the stable key instead.
    def __hash__(self) -> int:
        return hash(self.key())

    # ------------------------------------------------------------------
    def canonical(self) -> Dict[str, Any]:
        """JSON-able encoding covering every field; the cache-key input."""
        config = (
            None
            if self.config is None
            else sorted(dataclasses.asdict(self.config).items())
        )
        canonical = {
            "schema": CACHE_SCHEMA,
            "mode": self.mode,
            "scenario": _encode_scenario(self.scenario),
            "n": self.n,
            "block_size": self.block_size,
            "stretch": self.stretch,
            "height": self.height,
            "root_fanout": self.root_fanout,
            "duration": self.duration,
            "warmup_fraction": self.warmup_fraction,
            "max_commits": self.max_commits,
            "seed": self.seed,
            "config": config,
            "crashes": [list(c) for c in self.crashes],
            "uplink_lanes": self.uplink_lanes,
            "saturation_threshold": self.saturation_threshold,
            "observability": self.observability,
        }
        # Strictly conditional: classic specs must hash exactly as they did
        # before the workload field existed (cached results stay valid).
        # The engine version key invalidates *only* workload-bearing cells
        # when the workload engine's reported numbers change (v2: the
        # histogram-backed ingest fast path); classic keys never move.
        if self.workload is not None:
            canonical["workload"] = self.workload.canonical()
            canonical["workload_engine"] = WORKLOAD_ENGINE_VERSION
        return canonical

    def key(self) -> str:
        """Stable content hash (identical across processes and sessions)."""
        blob = json.dumps(self.canonical(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()

    # ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Execute this cell in the current process."""
        return run_experiment(
            mode=self.mode,
            scenario=self.scenario,
            n=self.n,
            block_size=self.block_size,
            stretch=self.stretch,
            height=self.height,
            root_fanout=self.root_fanout,
            duration=self.duration,
            warmup_fraction=self.warmup_fraction,
            max_commits=self.max_commits,
            seed=self.seed,
            config=self.config,
            crashes=self.crashes,
            uplink_lanes=self.uplink_lanes,
            saturation_threshold=self.saturation_threshold,
            observability=self.observability,
            workload=self.workload,
        )


def _run_spec(spec: ExperimentSpec) -> ExperimentResult:
    """Module-level worker entry point (picklable for the process pool)."""
    return spec.run()


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------
def default_cache_dir() -> Path:
    """``$REPRO_SWEEP_CACHE_DIR`` or ``<repo>/benchmarks/results/.cache``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    repo_root = Path(__file__).resolve().parents[3]
    return repo_root / "benchmarks" / "results" / ".cache"


class ResultCache:
    """Directory of ``<spec-key>.json`` files, one per completed cell.

    Corrupt, unreadable, or schema-mismatched entries count as misses;
    writes are atomic (temp file + rename) so interrupted sweeps never
    leave half-written entries behind.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, spec: ExperimentSpec) -> Path:
        return self.root / f"{spec.key()}.json"

    def get(self, spec: ExperimentSpec) -> Optional[ExperimentResult]:
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != CACHE_SCHEMA:
                return None
            return ExperimentResult(**payload["result"])
        except (OSError, ValueError, TypeError, KeyError):
            return None

    def put(self, spec: ExperimentSpec, result: ExperimentResult) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "spec": spec.canonical(),
            "result": dataclasses.asdict(result),
        }
        path = self.path_for(spec)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------
@dataclass
class SweepStats:
    """What the last :meth:`SweepRunner.run` actually did."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    backend: str = "serial"
    jobs: int = 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """``jobs`` if given, else ``$REPRO_SWEEP_JOBS``, else 1."""
    if jobs is not None:
        return max(1, int(jobs))
    raw = os.environ.get(JOBS_ENV, "1") or "1"
    try:
        return max(1, int(raw))
    except ValueError:
        raise ConfigError(
            f"${JOBS_ENV} must be an integer, got {raw!r}"
        ) from None


class SweepRunner:
    """Schedule a list of :class:`ExperimentSpec` across a backend.

    Parameters
    ----------
    jobs:
        Worker count; ``None`` reads ``$REPRO_SWEEP_JOBS`` (default 1).
    backend:
        ``"serial"`` or ``"process"``; ``None`` picks ``"process"`` when
        ``jobs > 1`` and ``"serial"`` otherwise.
    cache:
        Enable the on-disk result cache.
    cache_dir:
        Cache location; defaults to :func:`default_cache_dir`.
    """

    BACKENDS = ("serial", "process")

    def __init__(
        self,
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
        cache: bool = False,
        cache_dir: Optional[Union[str, Path]] = None,
    ):
        self.jobs = resolve_jobs(jobs)
        if backend is None:
            backend = "process" if self.jobs > 1 else "serial"
        if backend not in self.BACKENDS:
            raise ConfigError(
                f"unknown sweep backend {backend!r}; expected one of {self.BACKENDS}"
            )
        self.backend = backend
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if cache else None
        )
        self.last_stats = SweepStats(backend=self.backend, jobs=self.jobs)

    # ------------------------------------------------------------------
    def run(self, specs: Iterable[ExperimentSpec]) -> List[ExperimentResult]:
        """Run every spec; results align index-for-index with the input.

        Identical specs inside one grid are simulated once (determinism
        makes duplicates redundant); cached cells are never re-simulated.
        """
        ordered: List[ExperimentSpec] = list(specs)
        results: List[Optional[ExperimentResult]] = [None] * len(ordered)
        stats = SweepStats(
            total=len(ordered), backend=self.backend, jobs=self.jobs
        )

        # Deduplicate by stable key, preserving first-seen order.
        slots: Dict[str, List[int]] = {}
        unique: List[ExperimentSpec] = []
        for index, spec in enumerate(ordered):
            key = spec.key()
            if key not in slots:
                slots[key] = []
                unique.append(spec)
            slots[key].append(index)

        pending: List[ExperimentSpec] = []
        for spec in unique:
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                stats.cache_hits += 1
                for index in slots[spec.key()]:
                    results[index] = cached
            else:
                pending.append(spec)

        for spec, result in zip(pending, self._execute(pending)):
            stats.executed += 1
            if self.cache is not None:
                self.cache.put(spec, result)
            for index in slots[spec.key()]:
                results[index] = result

        self.last_stats = stats
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _execute(
        self, specs: Sequence[ExperimentSpec]
    ) -> Iterable[ExperimentResult]:
        if not specs:
            return []
        if self.backend == "serial" or len(specs) == 1 or self.jobs == 1:
            return [spec.run() for spec in specs]
        workers = min(self.jobs, len(specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_run_spec, specs))


def run_specs(
    specs: Iterable[ExperimentSpec],
    jobs: Optional[int] = None,
    cache: bool = False,
    cache_dir: Optional[Union[str, Path]] = None,
) -> List[ExperimentResult]:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(jobs=jobs, cache=cache, cache_dir=cache_dir).run(specs)


# ---------------------------------------------------------------------------
# Cache maintenance
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class CacheStats:
    """One inventory pass over a result-cache directory."""

    root: str
    entries: int = 0
    size_bytes: int = 0
    #: Entries whose recorded schema differs from the current CACHE_SCHEMA
    #: (dead weight: ``ResultCache.get`` already treats them as misses).
    stale: int = 0
    #: Unreadable/corrupt entry files (also dead weight).
    corrupt: int = 0
    #: Leftover ``.tmp`` files from interrupted atomic writes.
    tmp_files: int = 0
    oldest_age_s: float = 0.0
    newest_age_s: float = 0.0


@dataclasses.dataclass
class PruneResult:
    """What one :func:`prune_cache` pass removed."""

    removed: int = 0
    freed_bytes: int = 0
    kept: int = 0


def _cache_entries(root: Path) -> List[Tuple[Path, "os.stat_result"]]:
    """(path, stat) for every entry file, oldest first (mtime, then name,
    so prune order is deterministic even with equal timestamps)."""
    entries = []
    for path in root.glob("*.json"):
        try:
            entries.append((path, path.stat()))
        except OSError:
            continue
    entries.sort(key=lambda item: (item[1].st_mtime, item[0].name))
    return entries


def _entry_schema(path: Path) -> Optional[int]:
    try:
        return json.loads(path.read_text()).get("schema")
    except (OSError, ValueError):
        return None


def cache_stats(
    root: Optional[Union[str, Path]] = None, now: Optional[float] = None
) -> CacheStats:
    """Inventory the on-disk sweep cache (never modifies it)."""
    root_path = Path(root) if root is not None else default_cache_dir()
    stats = CacheStats(root=str(root_path))
    if not root_path.is_dir():
        return stats
    reference = time.time() if now is None else now
    ages = []
    for path, stat in _cache_entries(root_path):
        stats.entries += 1
        stats.size_bytes += stat.st_size
        ages.append(max(0.0, reference - stat.st_mtime))
        schema = _entry_schema(path)
        if schema is None:
            stats.corrupt += 1
        elif schema != CACHE_SCHEMA:
            stats.stale += 1
    for tmp in root_path.glob("*.tmp"):
        stats.tmp_files += 1
        try:
            stats.size_bytes += tmp.stat().st_size
        except OSError:
            continue
    if ages:
        stats.oldest_age_s = max(ages)
        stats.newest_age_s = min(ages)
    return stats


def prune_cache(
    root: Optional[Union[str, Path]] = None,
    max_age_days: Optional[float] = None,
    max_size_mb: Optional[float] = None,
    drop_stale: bool = True,
    dry_run: bool = False,
    now: Optional[float] = None,
) -> PruneResult:
    """Bound the sweep cache by age and total size.

    Removal passes, in order: leftover ``.tmp`` files from interrupted
    writes; entries that are corrupt or carry a non-current schema (when
    ``drop_stale``, the default -- ``ResultCache.get`` never returns them
    anyway); entries older than ``max_age_days``; then, if the directory
    still exceeds ``max_size_mb``, the oldest surviving entries until it
    fits. ``dry_run`` counts without deleting.
    """
    root_path = Path(root) if root is not None else default_cache_dir()
    result = PruneResult()
    if not root_path.is_dir():
        return result
    reference = time.time() if now is None else now

    def remove(path: Path, size: int) -> None:
        if not dry_run:
            try:
                path.unlink()
            except OSError:
                return
        result.removed += 1
        result.freed_bytes += size

    for tmp in root_path.glob("*.tmp"):
        try:
            size = tmp.stat().st_size
        except OSError:
            size = 0
        remove(tmp, size)

    survivors = []
    for path, stat in _cache_entries(root_path):
        schema = _entry_schema(path)
        if drop_stale and schema != CACHE_SCHEMA:
            remove(path, stat.st_size)
            continue
        if (
            max_age_days is not None
            and reference - stat.st_mtime > max_age_days * 86400.0
        ):
            remove(path, stat.st_size)
            continue
        survivors.append((path, stat))

    if max_size_mb is not None:
        budget = max_size_mb * 1_000_000.0
        total = sum(stat.st_size for _, stat in survivors)
        index = 0
        while total > budget and index < len(survivors):
            path, stat = survivors[index]  # oldest first
            remove(path, stat.st_size)
            total -= stat.st_size
            index += 1
        survivors = survivors[index:]

    result.kept = len(survivors)
    return result
