#!/usr/bin/env python
"""Fault injection and reconfiguration, in the style of Figure 12 (§7.10).

Crashes the consensus leader mid-run and plots (in ASCII) the throughput
dip and recovery. Kauri's bin-based reconfiguration (Algorithm 4) moves to
a fresh tree whose internal nodes come from an untouched bin, so the
system recovers without falling back to a star.

Run:  python examples/fault_recovery.py
"""

from repro import Cluster

DURATION = 60.0
FAULT_TIME = 20.0
BUCKET = 2.0


def ascii_series(series, width=50):
    peak = max(value for _, value in series) or 1.0
    lines = []
    for time, value in series:
        bar = "#" * int(width * value / peak)
        lines.append(f"  t={time:5.0f}s | {bar:<{width}} {value:8.0f} tx/s")
    return "\n".join(lines)


def main() -> None:
    cluster = Cluster(n=31, mode="kauri", scenario="national", seed=3)
    leader = cluster.policy.leader_of(0)
    print(f"Crashing the view-0 leader (process {leader}) at t={FAULT_TIME:.0f}s\n")
    cluster.crash_at(leader, FAULT_TIME)

    cluster.start()
    cluster.run(duration=DURATION)
    cluster.check_agreement()

    metrics = cluster.metrics
    print(ascii_series(metrics.timeseries_txs(bucket=BUCKET)))
    print()
    gap = metrics.commit_gap_after(FAULT_TIME)
    print(f"Recovery time (first commit after the fault): {gap:.2f}s")
    print(f"Reconfigurations: {metrics.max_view}")
    next_tree = cluster.policy.configuration(metrics.max_view)
    kind = "star" if next_tree.is_star else f"tree (height {next_tree.height})"
    print(f"Post-fault topology: {kind}, new leader = {next_tree.root}")
    before = metrics.throughput_txs(start=5.0, end=FAULT_TIME)
    after = metrics.throughput_txs(start=FAULT_TIME + (gap or 0), end=DURATION)
    print(f"Throughput before fault: {before:8.0f} tx/s")
    print(f"Throughput after fault : {after:8.0f} tx/s")


if __name__ == "__main__":
    main()
