#!/usr/bin/env python
"""Capacity planning with the §4.3 performance model.

The paper's Kauri requires the tree topology and the pipelining stretch to
be configured manually, "using the performance model provided in this
paper" (§8). This example is that workflow as a tool: given a deployment
(N, RTT, bandwidth, block size), it tabulates the model across candidate
tree heights, picks the configuration with the best expected throughput,
and prints the stretch to configure.

Run:  python examples/capacity_planner.py [N] [rtt_ms] [bandwidth_mbps]
"""

import sys

from repro import KB, NetworkParams, PerfModel, ProtocolConfig
from repro.analysis import format_table
from repro.config import default_root_fanout, mbps, ms
from repro.crypto.costs import BLS_COSTS, SECP_COSTS


def plan(n: int, rtt_ms: float, bandwidth_mbps: float, block_kb: int = 250):
    params = NetworkParams("target", rtt=ms(rtt_ms), bandwidth_bps=mbps(bandwidth_mbps))
    config = ProtocolConfig(block_size=block_kb * KB)
    candidates = []
    for height in (1, 2, 3, 4):
        try:
            fanout = default_root_fanout(n, height) if height > 1 else n - 1
            costs = BLS_COSTS if height > 1 else SECP_COSTS
            model = PerfModel.for_topology(
                n, height, fanout, params, config.block_size, costs
            )
        except Exception:
            continue
        candidates.append((height, fanout, model))
    return params, config, candidates


def main() -> None:
    argv = sys.argv[1:]
    n = int(argv[0]) if len(argv) > 0 else 400
    rtt_ms_value = float(argv[1]) if len(argv) > 1 else 200.0
    bw = float(argv[2]) if len(argv) > 2 else 25.0

    params, config, candidates = plan(n, rtt_ms_value, bw)
    rows = []
    for height, fanout, model in candidates:
        label = "star (HotStuff)" if height == 1 else f"tree h={height}"
        rows.append(
            (
                label,
                fanout,
                round(model.sending_time * 1000, 1),
                round(model.processing_time * 1000, 1),
                round(model.remaining_time * 1000, 1),
                round(model.pipelining_stretch, 1),
                "CPU" if model.is_cpu_bound else "network",
                round(model.expected_throughput_txs(config), 0),
                round(model.instance_latency() * 1000, 0),
            )
        )
    print(
        format_table(
            (
                "Topology",
                "Fanout",
                "Sending (ms)",
                "Processing (ms)",
                "Remaining (ms)",
                "Stretch",
                "Bottleneck",
                "Expected tx/s",
                "Latency (ms)",
            ),
            rows,
            title=(
                f"Capacity plan: N={n}, RTT={rtt_ms_value:.0f} ms, "
                f"{bw:.0f} Mb/s, {config.block_size // KB} KB blocks"
            ),
        )
    )
    best = max(candidates, key=lambda c: c[2].expected_throughput_txs(config))
    height, fanout, model = best
    print(
        f"\nRecommended: height={height}, root fanout={fanout}, "
        f"pipelining stretch={model.pipelining_stretch:.1f} "
        f"(expected {model.expected_throughput_txs(config):,.0f} tx/s, "
        f"{model.max_speedup:.1f}x the star's sending capacity)"
    )


if __name__ == "__main__":
    main()
