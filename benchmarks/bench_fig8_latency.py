"""Figure 8: effect of bandwidth on latency (§7.6).

RTT fixed at 100 ms, N=100, bandwidth swept 25-1000 Mb/s. Shape: HotStuff's
latency is dominated by the leader's sending time at low bandwidth, so
Kauri's tree wins below a crossover bandwidth; at high bandwidth HotStuff's
two communication steps beat Kauri's 2h steps. The analytical
infinite-bandwidth floors (HotStuff at best half of Kauri) are included.

The grid comes from the checked-in ``scenarios/fig8.toml`` pack; the floors
stay analytical (the §4.3 model at infinite bandwidth has no pack cell).
"""

import math

from conftest import SCALE, run_grid, run_once

from repro.analysis import format_table
from repro.config import KB, NetworkParams, ms
from repro.runtime.horizon import model_for
from repro.scenarios import compile_pack, load_pack


def test_fig8_latency_vs_bandwidth(benchmark, save_table):
    grid = compile_pack(load_pack("fig8"), scale=SCALE)
    results = run_once(benchmark, lambda: run_grid(grid.specs))
    data = {}
    for cell, r in zip(grid.cells, results):
        data.setdefault(cell.spec.mode, []).append(
            (cell.bindings["scenario"]["bandwidth_mbps"],
             r.latency["p50"] * 1000.0)
        )
    inf_params = NetworkParams("inf", rtt=ms(100), bandwidth_bps=math.inf)
    for mode in list(data):
        model = model_for(mode, 100, inf_params, 250 * KB)
        data[f"{mode}-infinite"] = [(math.inf, model.instance_latency() * 1000.0)]

    rows = []
    for mode, series in sorted(data.items()):
        for bw, latency_ms in series:
            rows.append((mode, bw, latency_ms))
    save_table(
        "fig8",
        format_table(
            ("System", "Bandwidth (Mb/s)", "p50 latency (ms)"),
            rows,
            title="Figure 8: RTT=100ms, N=100, varying bandwidth",
        ),
    )

    kauri = dict(data["kauri"])
    secp = dict(data["hotstuff-secp"])
    # bandwidth hits HotStuff much harder than Kauri (§7.6)
    assert secp[25] / secp[1000] > 3 * (kauri[25] / kauri[1000])
    # crossover: Kauri wins at 25 Mb/s, HotStuff wins at 1000 Mb/s
    assert kauri[25] < secp[25]
    assert secp[1000] < kauri[1000]
    # analytical floor: with infinite bandwidth HotStuff's latency is at
    # best half of Kauri's (one hop vs h=2 hops per sweep)
    kauri_floor = data["kauri-infinite"][0][1]
    secp_floor = data["hotstuff-secp-infinite"][0][1]
    assert secp_floor < kauri_floor
    assert secp_floor > 0.25 * kauri_floor
