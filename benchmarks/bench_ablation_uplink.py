"""Ablation A4: sensitivity of the headline speedup to the uplink model.

DESIGN.md's main substitution is a *strict per-process uplink*: one
message serializes at a time at the scenario's link rate. The paper's
physical testbed shapes each pair with NetEm but machines carry several
such streams concurrently, which mainly helps the star's leader (its
(N-1)·b/c sending time divides by the parallelism). This bench sweeps the
lane count and reports the Kauri-vs-HotStuff throughput ratio, showing the
qualitative conclusion (trees win, more with scale) is robust to the
substitution while the absolute ratio depends on it.
"""

from conftest import SCALE, run_grid, run_once

from repro.analysis import adaptive_duration, format_table
from repro.config import GLOBAL, KB
from repro.runtime import ExperimentSpec


def sweep():
    cells, specs = [], []
    for lanes in (1, 4, 16):
        for mode in ("kauri", "hotstuff-bls"):
            duration = adaptive_duration(mode, 100, GLOBAL, 250 * KB, scale=SCALE)
            if mode.startswith("hotstuff"):
                duration = max(duration / lanes, 60.0)  # lanes shrink rounds
            cells.append((lanes, mode))
            specs.append(
                ExperimentSpec(
                    mode=mode,
                    scenario="global",
                    n=100,
                    duration=duration,
                    max_commits=int(120 * SCALE) or 12,
                    uplink_lanes=lanes,
                )
            )
    return dict(zip(cells, run_grid(specs)))


def test_ablation_uplink_parallelism(benchmark, save_table):
    results = run_once(benchmark, sweep)
    rows = []
    for lanes in (1, 4, 16):
        kauri = results[(lanes, "kauri")].throughput_txs
        hotstuff = results[(lanes, "hotstuff-bls")].throughput_txs
        rows.append(
            (
                lanes,
                round(kauri / 1000.0, 3),
                round(hotstuff / 1000.0, 3),
                round(kauri / max(hotstuff, 1e-9), 1),
            )
        )
    save_table(
        "ablation_uplink",
        format_table(
            ("Uplink lanes", "Kauri Ktx/s", "HotStuff-bls Ktx/s", "Speedup"),
            rows,
            title="Ablation: uplink model (N=100, global)",
        ),
    )

    speedups = {row[0]: row[3] for row in rows}
    # Kauri wins under every uplink model ...
    assert all(s > 1.0 for s in speedups.values())
    # ... and the strict model gives the largest ratio (the substitution
    # inflates the star's sending time the most)
    assert speedups[1] >= speedups[4] >= speedups[16] * 0.8
