"""Consensus substrate: HotStuff's 4-round protocol state (paper §3.1, §6).

Kauri is deliberately *not* a new consensus algorithm: it replaces
HotStuff's star-based ``broadcastMsg``/``waitFor`` with tree-based
implementations. This package holds everything both share: blocks and the
block store, quorum certificates, the replica safety rules (vote-once,
locking), and the pacemaker driving view changes (§6, §7.10) -- plus the
pluggable :class:`~repro.consensus.protocol.Protocol` strategies consumed
by :class:`~repro.core.smr.SmrNode` (the chained Kauri/HotStuff rules and
the Kudzu optimistic fast path) and the shared wire-tag vocabulary
(:mod:`repro.consensus.tags`).

``Protocol`` subclasses are intentionally *not* re-exported here: they are
resolved lazily through the ``PROTOCOLS`` registry in
:mod:`repro.core.modes`, and importing them eagerly would drag the whole
simulation stack into every ``repro.consensus`` import.
"""

from repro.consensus.block import Block, BlockStore, GENESIS_HASH, make_genesis
from repro.consensus.vote import Phase, QuorumCert, genesis_qc, vote_value
from repro.consensus.safety import SafetyRules
from repro.consensus.pacemaker import Pacemaker

__all__ = [
    "Block",
    "BlockStore",
    "GENESIS_HASH",
    "make_genesis",
    "Phase",
    "QuorumCert",
    "genesis_qc",
    "vote_value",
    "SafetyRules",
    "Pacemaker",
]
