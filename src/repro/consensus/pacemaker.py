"""The pacemaker: fault-detection timeouts and view advancement (§6, §7.10).

Each replica arms a timer per view. Observing round progress (a new quorum
certificate or a commit) restarts it; expiry triggers a view change. The
timeout schedule follows §7.10: the base value doubles after each of the
first two consecutive reconfigurations and is then capped.

The paper calibrates the base empirically (0.35 s for Kauri vs 1.7 s for
HotStuff -- Kauri's pipelined dissemination is more regular, so its
detector can be more aggressive). In this reproduction the experiment
runner derives the base from the performance model's estimated instance
latency for the same reason; the §7.10 constants remain available via
:mod:`repro.config`.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.sim.engine import Simulator
from repro.sim.timers import Timer


class Pacemaker:
    """Progress watchdog for one replica.

    The restart pattern is extreme: under steady pipelining every committed
    block re-arms the watchdog, so virtually every armed deadline is
    cancelled and the timeout fires only on genuine stalls. The underlying
    :class:`~repro.sim.timers.Timer` therefore parks on the simulator's
    timer wheel (:meth:`Simulator.schedule_timeout`), making each
    arm/cancel cycle O(1) instead of leaving a lazily-cancelled entry on
    the event heap per round.
    """

    def __init__(
        self,
        sim: Simulator,
        base_timeout: float,
        on_timeout: Callable[[], None],
        cap: float = 10.0,
        doublings: int = 2,
    ):
        if base_timeout <= 0:
            raise ConfigError(f"non-positive pacemaker timeout: {base_timeout}")
        self.sim = sim
        self.base_timeout = base_timeout
        # §7.10: doubled after each of the first `doublings` reconfigurations,
        # subsequently capped. The cap never undercuts the base.
        self.cap = max(cap, base_timeout)
        self.doublings = doublings
        self.consecutive_failures = 0
        self.timeouts_fired = 0
        self._timer = Timer(sim, self._fire, name="pacemaker")
        self._on_timeout = on_timeout

    # ------------------------------------------------------------------
    def current_timeout(self) -> float:
        """The §7.10 schedule: base · 2^min(failures, doublings), capped."""
        exponent = min(self.consecutive_failures, self.doublings)
        return min(self.base_timeout * (2 ** exponent), self.cap)

    def start_view(self) -> None:
        """Arm the watchdog for a newly entered view."""
        self._timer.start(self.current_timeout())

    def record_progress(self) -> None:
        """Round progress observed: reset failures and re-arm."""
        self.consecutive_failures = 0
        self._timer.start(self.current_timeout())

    def _fire(self) -> None:
        self.timeouts_fired += 1
        self.consecutive_failures += 1
        self._on_timeout()

    def stop(self) -> None:
        self._timer.cancel()

    @property
    def armed(self) -> bool:
        return self._timer.armed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Pacemaker(timeout={self.current_timeout():.3f}s, "
            f"failures={self.consecutive_failures})"
        )
