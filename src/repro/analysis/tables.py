"""Table 1 (system comparison) and Table 2 (model parameters).

Table 1 is the paper's qualitative comparison of BFT systems; the Kauri
row is *derived from this implementation* (resilience from
:func:`~repro.config.max_faults`, reconfiguration bound from the policy,
load balancing from the tree fanout), while the other systems carry the
properties the paper attributes to them (§1).

Table 2 evaluates the §4.3 performance model per scenario -- processing,
sending and remaining time, the ideal pipelining stretch, and the expected
speedup over HotStuff-secp -- exactly the quantities the paper tabulates.
:func:`table2_measured_rows` re-runs the same grid through the sweep
engine (:mod:`repro.runtime.sweep`) and reports measured throughput and
the measured speedup next to the model's expectation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import (
    GLOBAL,
    KB,
    NATIONAL,
    REGIONAL,
    NetworkParams,
    default_root_fanout,
    max_faults,
)
from repro.core.perfmodel import PerfModel
from repro.crypto.costs import BLS_COSTS, SECP_COSTS
from repro.topology.reconfig import ReconfigurationPolicy

TABLE1_HEADERS = (
    "System",
    "Topology",
    "Load balancing",
    "Resilience",
    "Deterministic finality",
    "Reconfiguration bound",
)


def table1_rows(n: int = 100) -> List[Tuple]:
    """The paper's Table 1, with Kauri's row computed from the library."""
    f = max_faults(n)
    policy = ReconfigurationPolicy(range(n), height=2)
    star_policy = ReconfigurationPolicy.star_policy(range(n))
    return [
        ("PBFT", "clique", "no (all-to-all)", f"f={f} (n/3)", "yes", f"{f + 1}"),
        (
            "HotStuff",
            "star",
            "no (leader-centric)",
            f"f={f} (n/3)",
            "yes",
            f"{star_policy.worst_case_reconfigurations(f)}",
        ),
        (
            "Algorand/SCP (committee)",
            "committee",
            "partial",
            "committee-bound (< n/3)",
            "no (probabilistic)",
            "n/a",
        ),
        (
            "Steward/ResilientDB (hierarchical)",
            "groups",
            "yes",
            "min-group-bound (< n/3)",
            "yes",
            "group-local",
        ),
        (
            "ByzCoin/Motor/Omniledger (tree)",
            "tree",
            "yes",
            f"f={f} (n/3)",
            "yes",
            "falls back to star (h<=2)",
        ),
        (
            "Kauri",
            "tree (any height)",
            f"yes (fanout {policy.configuration(0).fanout(policy.leader_of(0))})",
            f"f={f} (n/3)",
            "yes",
            f"m+f+1 = {policy.worst_case_reconfigurations(f)}"
            f" (m+1 = {policy.num_bins + 1} when f < m)",
        ),
    ]


TABLE2_HEADERS = (
    "Scenario",
    "System",
    "N",
    "Processing (ms)",
    "Sending (ms)",
    "Remaining (ms)",
    "Stretch",
    "Max speedup",
    "Expected speedup vs HotStuff-secp",
)


def _model(
    system: str, n: int, params: NetworkParams, block_size: int
) -> PerfModel:
    if system == "kauri":
        fanout = default_root_fanout(n, 2)
        return PerfModel.for_topology(n, 2, fanout, params, block_size, BLS_COSTS)
    if system == "hotstuff-secp":
        return PerfModel.for_star(n, params, block_size, SECP_COSTS)
    if system == "hotstuff-bls":
        return PerfModel.for_star(n, params, block_size, BLS_COSTS)
    raise ValueError(f"unknown system {system!r}")


def table2_rows(
    block_size: int = 250 * KB,
    configs: Optional[List[Tuple[str, NetworkParams, int]]] = None,
) -> List[Tuple]:
    """Model parameters per (scenario, system, n), following §7.2.

    The default grid mirrors the paper's table: the three §7.1 scenarios at
    N=100 plus the global scenario at N=200 and N=400.
    """
    if configs is None:
        configs = [
            ("national", NATIONAL, 100),
            ("regional", REGIONAL, 100),
            ("global", GLOBAL, 100),
            ("global", GLOBAL, 200),
            ("global", GLOBAL, 400),
        ]
    rows = []
    for name, params, n in configs:
        hotstuff = _model("hotstuff-secp", n, params, block_size)
        for system in ("hotstuff-secp", "kauri"):
            model = _model(system, n, params, block_size)
            expected_speedup = (
                hotstuff.bottleneck_time / model.bottleneck_time
                if system == "kauri"
                else 1.0
            )
            rows.append(
                (
                    name,
                    system,
                    n,
                    model.processing_time * 1000,
                    model.sending_time * 1000,
                    model.remaining_time * 1000,
                    round(model.pipelining_stretch, 1),
                    round(model.max_speedup, 2),
                    round(expected_speedup, 1),
                )
            )
    return rows


TABLE2_MEASURED_HEADERS = (
    "Scenario",
    "System",
    "N",
    "Stretch",
    "Expected speedup",
    "Measured Ktx/s",
    "Measured speedup",
)


def table2_measured_rows(
    block_size: int = 250 * KB,
    configs: Optional[List[Tuple[str, NetworkParams, int]]] = None,
    scale: float = 0.3,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
) -> List[Tuple]:
    """Table 2's grid, simulated: model expectation vs measured speedup.

    Builds one :class:`~repro.runtime.sweep.ExperimentSpec` per
    (scenario, system, N) cell and runs the grid through a
    :class:`~repro.runtime.sweep.SweepRunner` (``jobs`` workers, optional
    result cache), mirroring the paper's predicted-vs-observed comparison.
    """
    from repro.analysis.figures import adaptive_duration
    from repro.runtime.sweep import ExperimentSpec, SweepRunner

    if configs is None:
        configs = [
            ("national", NATIONAL, 100),
            ("regional", REGIONAL, 100),
            ("global", GLOBAL, 100),
            ("global", GLOBAL, 200),
        ]
    cells = [
        (name, params, n, system)
        for name, params, n in configs
        for system in ("hotstuff-secp", "kauri")
    ]
    specs = [
        ExperimentSpec(
            mode=system,
            scenario=params,
            n=n,
            block_size=block_size,
            duration=adaptive_duration(system, n, params, block_size, scale=scale),
            max_commits=int(150 * scale) or 15,
            seed=seed,
        )
        for name, params, n, system in cells
    ]
    results = SweepRunner(jobs=jobs, cache=use_cache).run(specs)
    measured = {
        (name, n, system): result.throughput_txs
        for (name, params, n, system), result in zip(cells, results)
    }
    rows = []
    for (name, params, n, system), result in zip(cells, results):
        model = _model(system, n, params, block_size)
        hotstuff = _model("hotstuff-secp", n, params, block_size)
        expected = (
            hotstuff.bottleneck_time / model.bottleneck_time
            if system == "kauri"
            else 1.0
        )
        baseline = measured[(name, n, "hotstuff-secp")]
        rows.append(
            (
                name,
                system,
                n,
                round(model.pipelining_stretch, 1),
                round(expected, 1),
                round(result.throughput_txs / 1000.0, 3),
                round(result.throughput_txs / max(baseline, 1e-9), 1),
            )
        )
    return rows
