"""Adaptive simulation horizons, shared by figures, packs, and the CLI.

Every grid-shaped artifact (the paper figures, the scenario packs, the
``sweep`` command) sizes each cell's simulated horizon from the §4.3
performance model: slow configurations need longer windows to commit a
meaningful number of blocks, fast ones are capped by ``max_commits``.
This module is the single home of that rule so the scenario-pack compiler
and the figure generators lower to *byte-identical*
:class:`~repro.runtime.sweep.ExperimentSpec` durations.
"""

from __future__ import annotations

from repro.config import NetworkParams, default_root_fanout
from repro.core.modes import mode_spec
from repro.core.perfmodel import PerfModel
from repro.crypto.costs import BLS_COSTS, SECP_COSTS

_COSTS = {"bls": BLS_COSTS, "secp": SECP_COSTS}


def model_for(
    mode: str,
    n: int,
    params: NetworkParams,
    block_size: int,
    height: int = 2,
) -> PerfModel:
    """The §4.3 performance model for one deployment configuration."""
    spec = mode_spec(mode)
    costs = _COSTS[spec.scheme]
    if spec.uses_tree:
        fanout = default_root_fanout(n, height)
        return PerfModel.for_tree_shape(n, height, fanout, params, block_size, costs)
    return PerfModel.for_star(n, params, block_size, costs)


def adaptive_duration(
    mode: str,
    n: int,
    params: NetworkParams,
    block_size: int,
    height: int = 2,
    min_duration: float = 30.0,
    instances: float = 8.0,
    scale: float = 1.0,
) -> float:
    """Simulated horizon long enough for ``instances`` full instances."""
    model = model_for(mode, n, params, block_size, height)
    return scale * max(min_duration, instances * model.instance_latency())
