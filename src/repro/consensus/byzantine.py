"""Byzantine replica behaviours for adversarial testing (paper §2).

The fault model allows up to f < N/3 processes to "produce arbitrary
values, delay or omit messages, and collude", without breaking the
cryptographic primitives. These subclasses exercise the attack surface the
safety argument depends on:

- :class:`EquivocatingLeaderNode` -- as root, sends *different* blocks for
  the same height to different subtrees. Safety must hold because correct
  replicas vote at most once per (view, height, phase), so conflicting
  quorums cannot both form.
- :class:`VoteWithholdingNode` -- an internal node that forwards proposals
  (so its subtree stays live) but neither votes nor relays its children's
  aggregates: the omission attack Theorem 2's impatient channels defend
  the *root* against, and the §5 reconfiguration defends liveness against.
- :class:`VoteForgingNode` -- injects aggregates carrying fabricated tags
  for other processes; collection Integrity (§3.3.2) must keep them out of
  every quorum.
- :class:`SilentNode` -- participates in nothing at all (fail-stop from
  boot, but counted Byzantine).

All subclasses reuse the honest code path for everything they do not
attack, so runs stay comparable.
"""

from __future__ import annotations

from repro.consensus.block import Block
from repro.consensus.vote import QuorumCert, vote_value
from repro.core.comm import TreeComm
from repro.core.node import PROPOSAL_OVERHEAD, ProtocolNode, _prop_tag
from repro.crypto.bls import BlsCollection, BlsScheme
from repro.crypto.secp import SecpCollection, SecpSignature
from repro.topology.tree import Tree


class EquivocatingLeaderNode(ProtocolNode):
    """Sends conflicting same-height blocks to the two halves of its
    children whenever it is the root, and signs votes for *both* twins
    (hoping to certify either) -- the double-vote that evidence collection
    (:mod:`repro.consensus.evidence`) convicts."""

    __slots__ = ("_twins",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._twins = {}

    def _make_vote(self, view, height, phase, block, can_vote):
        own = yield from super()._make_vote(view, height, phase, block, can_vote)
        twin = self._twins.get(height)
        if own is None or twin is None:
            return own
        yield from self.cpu.consume(self.scheme.cost_sign())
        twin_vote = self.scheme.new(
            self.keypair, vote_value(phase, view, height, twin.hash)
        )
        return own | twin_vote

    def _disseminate_proposal(self, view: int, block: Block, justify: QuorumCert) -> None:
        twin = Block.create(
            height=block.height,
            view=block.view,
            parent=block.parent,
            proposer=self.node_id,
            payload_size=block.payload_size,
            num_txs=block.num_txs,
            created_at=block.created_at,
            justify_view=block.justify_view,
            salt=10_000_000 + self._salt,  # distinct hash, same height
        )
        self.store.add(twin)
        self._twins[block.height] = twin
        parent_meta = self.store.get(block.parent)
        size = block.payload_size + justify.wire_size() + PROPOSAL_OVERHEAD
        # Equivocation is two honest-looking multicasts: one block per
        # half. (It cannot be a single multicast -- payloads differ -- but
        # each half still charges the uplink as one §4.3 batch.)
        kids = self.comm.children
        half = len(kids) // 2
        tag = _prop_tag(view)
        self.network.multicast(
            self.node_id, kids[:half], tag, (block, justify, parent_meta), size
        )
        self.network.multicast(
            self.node_id, kids[half:], tag, (twin, justify, parent_meta), size
        )


class _VoteDroppingComm(TreeComm):
    """A communication layer that swallows upward vote aggregates."""

    def send_to_parent(self, tag, payload, size):
        if isinstance(tag, tuple) and tag and tag[0] == "vote":
            return  # omission: the parent will hit its impatient bound Δ
        super().send_to_parent(tag, payload, size)


class VoteWithholdingNode(ProtocolNode):
    """Forwards proposals and QCs but never contributes or relays votes."""

    __slots__ = ()

    def _build_comm(self, tree: Tree) -> TreeComm:
        assert self.model is not None
        return _VoteDroppingComm(
            self.sim,
            self.network,
            self.node_id,
            tree,
            delta=self.config.delta or self.model.suggested_delta(),
        )

    def _make_vote(self, view, height, phase, block, can_vote):
        return None
        yield  # pragma: no cover - keeps this a generator


class VoteForgingNode(ProtocolNode):
    """Votes with fabricated signatures claiming *other* processes signed.

    A correct parent must verify and discard them (collection Integrity);
    quorums must never count the forged signers.
    """

    __slots__ = ()

    def _make_vote(self, view, height, phase, block, can_vote):
        value = vote_value(phase, view, height, block.hash)
        victims = [p for p in range(self.n) if p != self.node_id][: self.quorum]
        if isinstance(self.scheme, BlsScheme):
            forged = BlsCollection(
                self.scheme.pki,
                self.scheme.costs,
                {value: {victim: b"\x66" * 32 for victim in victims}},
            )
        else:
            forged = SecpCollection(
                self.scheme.pki,
                self.scheme.costs,
                frozenset(
                    SecpSignature(victim, value, b"\x66" * 32) for victim in victims
                ),
            )
        return forged
        yield  # pragma: no cover - keeps this a generator


class SilentNode(ProtocolNode):
    """Never participates (fail-stop from boot, counted as Byzantine)."""

    __slots__ = ()

    def start(self) -> None:
        self.stopped = True


class _QcDroppingComm(TreeComm):
    """Disseminates proposals but swallows downward QC traffic."""

    def send_to_children(self, tag, payload, size):
        if isinstance(tag, tuple) and tag and tag[0] == "qc":
            return
        super().send_to_children(tag, payload, size)


class QcWithholdingLeaderNode(ProtocolNode):
    """A liveness attacker: proposes blocks and collects votes but never
    disseminates the resulting quorum certificates.

    Replicas see steady proposals but no round progress; because the
    pacemaker only resets on verified QCs/commits, the starvation is
    detected and the leader voted out -- the reason progress, not traffic,
    must drive the fault detector.
    """

    __slots__ = ()

    def _build_comm(self, tree: Tree) -> TreeComm:
        assert self.model is not None
        return _QcDroppingComm(
            self.sim,
            self.network,
            self.node_id,
            tree,
            delta=self.config.delta or self.model.suggested_delta(),
        )


class _QcTamperingComm(TreeComm):
    """Forwards QCs with their certified value swapped for a fork."""

    def send_to_children(self, tag, payload, size):
        if (
            isinstance(tag, tuple)
            and tag
            and tag[0] == "qc"
            and isinstance(payload, QuorumCert)
            and not payload.is_genesis
        ):
            payload = QuorumCert(
                phase=payload.phase,
                view=payload.view,
                height=payload.height,
                block_hash="forged-" + payload.block_hash[:8],
                collection=payload.collection,
            )
        super().send_to_children(tag, payload, size)


class QcTamperingNode(ProtocolNode):
    """An internal node that rewrites quorum certificates in flight.

    The tampered QC claims the quorum certified a different block; since
    the embedded collection's signatures bind the original value, every
    correct descendant's verification fails and the subtree abstains --
    integrity degrades the attack to omission.
    """

    __slots__ = ()

    def _build_comm(self, tree: Tree) -> TreeComm:
        assert self.model is not None
        return _QcTamperingComm(
            self.sim,
            self.network,
            self.node_id,
            tree,
            delta=self.config.delta or self.model.suggested_delta(),
        )
