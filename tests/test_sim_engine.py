"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_fifo():
    sim = Simulator()
    order = []
    for tag in range(10):
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == list(range(10))


def test_nested_scheduling_from_callback():
    sim = Simulator()
    seen = []

    def outer():
        seen.append(("outer", sim.now))
        sim.schedule(0.5, inner)

    def inner():
        seen.append(("inner", sim.now))

    sim.schedule(1.0, outer)
    sim.run()
    assert seen == [("outer", 1.0), ("inner", 1.5)]


def test_zero_delay_event_fires_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(2.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [2.0]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(5.0, fired.append, True)
    sim.run()
    assert fired == [True]
    assert sim.now == 5.0


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert sim.pending_events == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_run_until_advances_clock_without_events():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_leaves_later_events_pending():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(20.0, fired.append, "late")
    sim.run(until=10.0)
    assert fired == ["early"]
    assert sim.now == 10.0
    assert sim.pending_events == 1
    sim.run()
    assert fired == ["early", "late"]


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, 3)
    sim.run()
    assert fired == [1]
    assert sim.pending_events == 1


def test_step_returns_false_when_drained():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_strict_mode_raises_callback_errors():
    sim = Simulator(strict=True)
    sim.schedule(1.0, lambda: 1 / 0)
    with pytest.raises(ZeroDivisionError):
        sim.run()


def test_lenient_mode_records_failures_and_continues():
    sim = Simulator(strict=False)
    fired = []
    sim.schedule(1.0, lambda: 1 / 0)
    sim.schedule(2.0, fired.append, "after")
    sim.run()
    assert fired == ["after"]
    assert len(sim.failures) == 1
    assert isinstance(sim.failures[0], ZeroDivisionError)


def test_deterministic_rng_from_seed():
    a = [Simulator(seed=42).rng.random() for _ in range(3)]
    b = [Simulator(seed=42).rng.random() for _ in range(3)]
    assert a == b
    assert Simulator(seed=1).rng.random() != Simulator(seed=2).rng.random()


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_max_events_bound():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_run_is_not_reentrant():
    sim = Simulator()

    def recurse():
        sim.run()

    sim.schedule(1.0, recurse)
    with pytest.raises(SimulationError):
        sim.run()
