"""Impatient channels (paper §3.3.1, Algorithm 1).

An impatient channel wraps a perfect point-to-point channel with a blocking
``receive`` that *always* returns: either the value sent by the peer, or the
special value ⊥ (:data:`BOTTOM`) if nothing arrives within the known bound
Δ on worst-case network latency.

Properties (verified in ``tests/test_impatient.py``):

- **Validity**: a delivered value ``v ≠ ⊥`` was sent by the peer.
- **Termination**: a correct receiver's ``receive`` always returns.
- **Conditional Accuracy**: after GST, with correct sender and receiver,
  ``receive`` returns the value actually sent.

Single-use semantics come from tagging: each consensus (instance, round)
uses a fresh tag, so a receive never observes stale values from earlier
instances.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.net.message import Message
from repro.net.network import Endpoint, Network
from repro.sim.process import TIMEOUT


class _Bottom:
    """Singleton ⊥ returned when the sender is faulty or the net unstable."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "BOTTOM"

    def __bool__(self) -> bool:
        return False


BOTTOM = _Bottom()


class ImpatientChannel:
    """Directed channel from ``peer`` to the local endpoint, with bound Δ.

    One instance per tree edge and direction; ``receive(tag)`` and
    ``send(tag, ...)`` implement the ``ic.receive``/``ic.send`` primitives
    of Algorithms 1-3.
    """

    def __init__(self, network: Network, local: int, peer: int, delta: float):
        if delta <= 0:
            raise ValueError(f"impatient-channel bound must be positive: {delta}")
        self.network = network
        self.local = local
        self.peer = peer
        self.delta = delta
        self._endpoint: Endpoint = network.endpoint(local)

    def receive(self, tag: Hashable):
        """Coroutine (Algorithm 1): the peer's value, or ⊥ after Δ."""
        result = yield from self._endpoint.receive(
            tag, timeout=self.delta, match=self._from_peer
        )
        if result is TIMEOUT:
            return BOTTOM
        return result.payload

    def send(self, tag: Hashable, payload: Any, size: int) -> None:
        """Send ``payload`` to the peer over the underlying perfect channel."""
        self.network.send(self.local, self.peer, tag, payload, size)

    def _from_peer(self, msg: Message) -> bool:
        return msg.src == self.peer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ImpatientChannel({self.peer}->{self.local}, delta={self.delta})"
