"""Figure 9: throughput vs latency under varying load (§7.7).

Global scenario, N=100, block sizes 32 KB - 1 MB (the paper's load knob).
Shapes: Kauri's throughput dominates at every block size; latency grows
with block size for everyone but much faster for the HotStuff variants,
whose latency overtakes Kauri's beyond ~125 KB blocks.

The grid comes from the checked-in ``scenarios/fig9.toml`` pack.
"""

from conftest import SCALE, run_grid, run_once

from repro.analysis import format_table
from repro.scenarios import compile_pack, load_pack


def test_fig9_throughput_vs_latency(benchmark, save_table):
    grid = compile_pack(load_pack("fig9"), scale=SCALE)
    results = run_once(benchmark, lambda: run_grid(grid.specs))
    data = {}
    for cell, r in zip(grid.cells, results):
        data.setdefault(cell.spec.mode, []).append(
            (cell.bindings["block_kb"],
             r.throughput_txs / 1000.0,
             r.latency["p50"] * 1000.0)
        )
    rows = []
    for mode, series in data.items():
        for kb, ktx, lat_ms in series:
            rows.append((mode, kb, ktx, lat_ms))
    save_table(
        "fig9",
        format_table(
            ("System", "Block (KB)", "Ktx/s", "p50 latency (ms)"),
            rows,
            title="Figure 9: global, N=100, varying block size",
        ),
    )

    kauri = {kb: (ktx, lat) for kb, ktx, lat in data["kauri"]}
    secp = {kb: (ktx, lat) for kb, ktx, lat in data["hotstuff-secp"]}
    for kb in kauri:
        # Kauri's throughput substantially higher at every load (§7.7)
        assert kauri[kb][0] > secp[kb][0]
    # latency grows with block size for HotStuff ...
    assert secp[1024][1] > secp[32][1]
    # ... and overtakes Kauri for large blocks (paper: beyond ~125 KB)
    assert secp[1024][1] > kauri[1024][1]
    assert secp[500][1] > kauri[500][1]
