"""Tests for state machine replication: the KV store application."""

import pytest

from repro import Cluster, ProtocolConfig
from repro.app import (
    KvClientHarness,
    KvOp,
    KvStateMachine,
    OpRegistry,
    attach_kv_application,
)
from repro.config import KB
from repro.consensus.block import GENESIS_HASH, Block
from repro.errors import ConfigError
from repro.runtime import MempoolWorkload


def kv_cluster(mode="kauri", n=7, rate=2000.0, seed=0):
    config = ProtocolConfig(block_size=64 * KB)
    cluster = Cluster(
        n=n,
        mode=mode,
        scenario="national",
        config=config,
        seed=seed,
        workload_factory=lambda node_id: MempoolWorkload(config),
    )
    registry = OpRegistry()
    harness = KvClientHarness(cluster, registry, num_clients=3, rate_txs=rate)
    machines = attach_kv_application(cluster, registry)
    return cluster, harness, machines, registry


class TestStateMachineUnit:
    def test_apply_set_and_delete(self):
        registry = OpRegistry()
        registry.record((0, 0), KvOp("set", "a", "1"))
        registry.record((0, 1), KvOp("set", "b", "2"))
        registry.record((0, 2), KvOp("delete", "a"))
        machine = KvStateMachine(registry)
        block1 = Block.create(1, 0, GENESIS_HASH, 0, 100, 2, 0.0,
                              tx_ids=((0, 0), (0, 1)))
        block2 = Block.create(2, 0, block1.hash, 0, 100, 1, 0.0,
                              tx_ids=((0, 2),))
        machine.apply_block(block1)
        assert machine.get("a") == "1"
        machine.apply_block(block2)
        assert machine.get("a") is None
        assert machine.get("b") == "2"
        assert machine.ops_applied == 3

    def test_out_of_order_apply_rejected(self):
        machine = KvStateMachine(OpRegistry())
        late = Block.create(5, 0, GENESIS_HASH, 0, 100, 0, 0.0)
        with pytest.raises(ConfigError):
            machine.apply_block(late)

    def test_digest_depends_on_state_and_height(self):
        registry = OpRegistry()
        registry.record((0, 0), KvOp("set", "x", "1"))
        a, b = KvStateMachine(registry), KvStateMachine(registry)
        block = Block.create(1, 0, GENESIS_HASH, 0, 100, 1, 0.0, tx_ids=((0, 0),))
        a.apply_block(block)
        assert a.digest() != b.digest()
        b.apply_block(block)
        assert a.digest() == b.digest()

    def test_unknown_tx_counted_not_fatal(self):
        machine = KvStateMachine(OpRegistry())
        block = Block.create(1, 0, GENESIS_HASH, 0, 100, 1, 0.0, tx_ids=((9, 9),))
        machine.apply_block(block)
        assert machine.unknown_txs == 1

    def test_op_validation(self):
        with pytest.raises(ConfigError):
            KvOp("increment", "a")
        with pytest.raises(ConfigError):
            KvOp("set", "a")


class TestReplication:
    def test_all_replicas_reach_identical_state(self):
        cluster, harness, machines, _ = kv_cluster()
        cluster.start()
        harness.start()
        cluster.run(duration=15.0)
        cluster.check_agreement()
        applied = [m for m in machines.values() if m.ops_applied > 0]
        assert len(applied) == 7  # every replica applied operations
        # replicas at the same height have byte-identical state
        by_height = {}
        for machine in machines.values():
            by_height.setdefault(machine.applied_height, set()).add(machine.digest())
        for height, digests in by_height.items():
            assert len(digests) == 1, f"state divergence at height {height}"
        assert any(m.ops_applied > 100 for m in machines.values())
        assert all(m.unknown_txs == 0 for m in machines.values())

    def test_replay_matches_live_application(self):
        cluster, harness, machines, registry = kv_cluster(seed=3)
        cluster.start()
        harness.start()
        cluster.run(duration=10.0)
        node = cluster.nodes[2]
        replayed = KvStateMachine(registry)
        replayed.replay(node.store.commit_log)
        assert replayed.digest() == machines[2].digest()

    def test_replication_survives_leader_crash(self):
        cluster, harness, machines, _ = kv_cluster(seed=5)
        cluster.crash_at(cluster.policy.leader_of(0), 5.0)
        cluster.start()
        harness.start()
        cluster.run(duration=25.0)
        cluster.check_agreement()
        correct = [
            machines[n.node_id]
            for n in cluster.nodes
            if not n.stopped
        ]
        heights = {m.applied_height for m in correct}
        reference = {}
        for machine in correct:
            reference.setdefault(machine.applied_height, machine.digest())
            assert reference[machine.applied_height] == machine.digest()
        assert max(heights) > 0

    def test_pbft_replication(self):
        cluster, harness, machines, _ = kv_cluster(mode="pbft")
        cluster.start()
        harness.start()
        cluster.run(duration=10.0)
        cluster.check_agreement()
        digests = {
            (m.applied_height, m.digest()) for m in machines.values()
        }
        heights = {h for h, _ in digests}
        assert len(digests) == len(heights)  # one digest per height
        assert any(m.ops_applied > 0 for m in machines.values())
