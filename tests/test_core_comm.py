"""Unit tests for broadcastMsg/waitFor on trees (Algorithms 2 and 3).

Includes executable versions of the Theorem 1 (Reliable Dissemination) and
Theorem 2 (Fulfillment) scenarios.
"""

import pytest

from repro.config import NetworkParams, quorum_size
from repro.core.comm import TreeComm
from repro.crypto import Pki, make_scheme
from repro.net import BOTTOM, HomogeneousNetem, Network
from repro.sim import Cpu, Simulator
from repro.sim.process import spawn, wait_all
from repro.topology import Tree, build_star, build_tree

PARAMS = NetworkParams("test", rtt=0.020, bandwidth_bps=1e9)
DELTA = 1.0


class Deployment:
    """Tiny harness: one TreeComm + Cpu per process over one tree."""

    def __init__(self, tree, scheme_kind="bls", seed=0):
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim, HomogeneousNetem(PARAMS))
        self.tree = tree
        self.pki = Pki(n=max(tree.nodes) + 1, seed=seed)
        self.scheme = make_scheme(scheme_kind, self.pki)
        self.comms = {}
        self.cpus = {}
        for node in tree.nodes:
            self.network.register(node)
            self.comms[node] = TreeComm(self.sim, self.network, node, tree, DELTA)
            self.cpus[node] = Cpu(self.sim)

    def broadcast_all(self, tag, data, size=100, exclude=()):
        """Run Algorithm 2 at every process; return {node: delivered}."""
        results = {}

        def runner(node):
            if node == self.tree.root:
                value = yield from self.comms[node].broadcast(tag, data, size)
            else:
                value = yield from self.comms[node].broadcast(tag, timeout=DELTA)
            results[node] = value

        for node in self.tree.nodes:
            if node not in exclude:
                spawn(self.sim, runner(node))
        self.sim.run()
        return results

    def wait_for_all(self, tag, value, non_voters=(), exclude=()):
        """Run Algorithm 3 at every process; return the root's collection."""
        out = {}

        def runner(node):
            own = None
            if node not in non_voters:
                own = self.scheme.new(self.pki.keypair(node), value)
            coll = yield from self.comms[node].wait_for(
                tag, own, self.scheme, self.cpus[node]
            )
            out[node] = coll

        for node in self.tree.nodes:
            if node not in exclude:
                spawn(self.sim, runner(node))
        self.sim.run()
        return out


@pytest.fixture
def tree7():
    return Tree(0, {0: [1, 2], 1: [3, 4], 2: [5, 6]})


class TestBroadcast:
    def test_reliable_dissemination_fault_free(self, tree7):
        """Theorem 1 in a robust tree: every correct process delivers."""
        deployment = Deployment(tree7)
        results = deployment.broadcast_all("t", "blockdata")
        assert results == {node: "blockdata" for node in range(7)}

    def test_faulty_internal_cuts_subtree(self, tree7):
        """Non-robust tree: the faulty internal node's subtree gets ⊥ but
        every receive still terminates (impatient channels)."""
        deployment = Deployment(tree7)
        deployment.network.faults.crash(1)
        results = deployment.broadcast_all("t", "blockdata", exclude=(1,))
        assert results[2] == "blockdata"
        assert results[5] == "blockdata"
        assert results[3] is BOTTOM
        assert results[4] is BOTTOM

    def test_faulty_root_yields_bottom_everywhere(self, tree7):
        deployment = Deployment(tree7)
        deployment.network.faults.crash(0)
        results = deployment.broadcast_all("t", "blockdata", exclude=(0,))
        assert all(value is BOTTOM for value in results.values())

    def test_broadcast_on_star_matches_hotstuff_pattern(self):
        star = build_star(range(5))
        deployment = Deployment(star)
        results = deployment.broadcast_all("t", "x")
        assert results == {node: "x" for node in range(5)}
        # only the leader transmits; replicas never forward
        for node in range(1, 5):
            assert deployment.network.nics[node].messages_sent == 0

    def test_dissemination_latency_scales_with_height(self):
        """Each tree level adds (at least) one propagation delay."""
        flat = Deployment(build_star(range(8)))
        deep = Deployment(build_tree(range(8), height=3, root_fanout=2))
        flat.broadcast_all("t", "x")
        t_flat = flat.sim.now
        deep.broadcast_all("t", "x")
        t_deep = deep.sim.now
        assert t_deep > t_flat


class TestWaitFor:
    def test_fulfillment_fault_free(self, tree7):
        """Theorem 2 in a robust tree: the root aggregates all N votes."""
        deployment = Deployment(tree7)
        out = deployment.wait_for_all("v", "value")
        root_coll = out[0]
        assert root_coll.signers_for("value") == frozenset(range(7))
        assert root_coll.has("value", quorum_size(7))

    def test_fulfillment_with_faulty_leaves(self, tree7):
        """f = 2 faulty leaves: the quorum of N - f = 5 is still reached."""
        deployment = Deployment(tree7)
        deployment.network.faults.crash(3)
        deployment.network.faults.crash(6)
        out = deployment.wait_for_all("v", "value", exclude=(3, 6))
        root_coll = out[0]
        assert root_coll.signers_for("value") == frozenset({0, 1, 2, 4, 5})
        assert root_coll.has("value", quorum_size(7))

    def test_faulty_internal_loses_subtree_votes(self, tree7):
        """A crashed internal node silences its whole subtree; the root
        still terminates with a partial aggregate (Theorem 2's liveness
        comes from impatient channels)."""
        deployment = Deployment(tree7)
        deployment.network.faults.crash(1)
        out = deployment.wait_for_all("v", "value", exclude=(1,))
        root_coll = out[0]
        assert root_coll.signers_for("value") == frozenset({0, 2, 5, 6})
        assert not root_coll.has("value", quorum_size(7))

    def test_non_voter_still_relays_children(self, tree7):
        """A process without a vote of its own aggregates its subtree
        (Algorithm 3 with an empty initial collection)."""
        deployment = Deployment(tree7)
        out = deployment.wait_for_all("v", "value", non_voters=(1,))
        assert out[0].signers_for("value") == frozenset({0, 2, 3, 4, 5, 6})

    def test_secp_scheme_aggregates_as_lists(self, tree7):
        deployment = Deployment(tree7, scheme_kind="secp")
        out = deployment.wait_for_all("v", "value")
        assert out[0].signers_for("value") == frozenset(range(7))

    def test_aggregate_sizes_constant_up_the_tree_with_bls(self):
        """§3.3.2: each internal node sends one constant-size aggregate."""
        tree = build_tree(range(13), height=2, root_fanout=3)
        deployment = Deployment(tree)
        deployment.wait_for_all("v", "value")
        sizes = set()
        for node in tree.internal_nodes:
            if node == tree.root:
                continue
            nic = deployment.network.nics[node]
            sizes.add(nic.bytes_sent)
        assert len(sizes) == 1  # identical aggregate size regardless of subtree

    def test_wait_for_terminates_with_all_children_faulty(self, tree7):
        deployment = Deployment(tree7)
        for child in (1, 2):
            deployment.network.faults.crash(child)
        out = deployment.wait_for_all("v", "value", exclude=(1, 2))
        assert out[0].signers_for("value") == frozenset({0})
        assert deployment.sim.now >= DELTA  # waited out the impatient bound


class TestGarbageTolerance:
    def test_non_collection_payload_ignored(self, tree7):
        """Byzantine child sends garbage instead of a collection."""
        deployment = Deployment(tree7)
        results = {}

        def root():
            own = deployment.scheme.new(deployment.pki.keypair(0), "v")
            coll = yield from deployment.comms[0].wait_for(
                "v", own, deployment.scheme, deployment.cpus[0]
            )
            results[0] = coll

        spawn(deployment.sim, root())
        deployment.network.send(1, 0, "v", "not-a-collection", 100)
        deployment.network.send(2, 0, "v", 12345, 100)
        deployment.sim.run()
        assert results[0].signers_for("v") == frozenset({0})
