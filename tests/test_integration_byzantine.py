"""Byzantine integration tests: safety must hold under arbitrary behaviour
by up to f processes (paper §2 fault model)."""

import pytest

from repro import Cluster
from repro.consensus.byzantine import (
    EquivocatingLeaderNode,
    SilentNode,
    VoteForgingNode,
    VoteWithholdingNode,
)


def run_byzantine(byzantine, n=13, mode="kauri", duration=40.0, seed=0, **kwargs):
    cluster = Cluster(
        n=n,
        mode=mode,
        scenario="national",
        seed=seed,
        byzantine=byzantine,
        strict=True,
        **kwargs,
    )
    cluster.start()
    cluster.run(duration=duration)
    cluster.check_agreement()  # raises on any conflicting commit
    return cluster


class TestEquivocatingLeader:
    def test_no_conflicting_commits(self):
        """The root proposes different blocks per subtree; vote-once keeps
        conflicting quorums from forming, and reconfiguration restores
        liveness."""
        cluster = Cluster(n=13, mode="kauri", scenario="national")
        leader0 = cluster.policy.leader_of(0)
        cluster2 = run_byzantine({leader0: EquivocatingLeaderNode})
        assert cluster2.metrics.max_view >= 1  # the equivocator was evicted
        assert cluster2.metrics.committed_blocks > 0

    def test_equivocating_hotstuff_leader(self):
        cluster = run_byzantine({0: EquivocatingLeaderNode}, mode="hotstuff-bls")
        assert cluster.metrics.committed_blocks > 0

    def test_equivocating_non_leader_is_harmless(self):
        """An equivocator that never becomes root behaves like an honest
        replica (the hook only fires at the root)."""
        cluster = Cluster(n=13, mode="kauri", scenario="national")
        leaf = cluster.policy.configuration(0).leaves[0]
        result = run_byzantine({leaf: EquivocatingLeaderNode}, duration=15.0)
        assert result.metrics.committed_blocks > 0


class TestVoteWithholding:
    def test_withholding_internal_node_stalls_then_recovers(self):
        """An internal node that forwards but never relays votes denies the
        root its subtree's signatures; Δ bounds the damage per round and
        the pacemaker eventually rotates it out (§5)."""
        cluster = Cluster(n=13, mode="kauri", scenario="national")
        tree0 = cluster.policy.configuration(0)
        internal = next(n for n in tree0.internal_nodes if n != tree0.root)
        result = run_byzantine({internal: VoteWithholdingNode}, duration=60.0)
        assert result.metrics.committed_blocks > 0

    def test_withholding_leaf_is_tolerated_in_place(self):
        """A leaf withholding its vote costs one signature: quorum still
        reached without reconfiguration."""
        cluster = Cluster(n=13, mode="kauri", scenario="national")
        leaf = cluster.policy.configuration(0).leaves[0]
        result = run_byzantine({leaf: VoteWithholdingNode}, duration=15.0)
        assert result.metrics.committed_blocks > 0
        assert result.metrics.max_view == 0


class TestVoteForging:
    @pytest.mark.parametrize("mode", ["kauri", "hotstuff-secp"])
    def test_forged_votes_never_enter_quorums(self, mode):
        """Integrity (§3.3.2): fabricated signatures for other processes
        must not count. The run must stay safe and the forged signers must
        not appear in any commit quorum implicitly (agreement would break
        if forged quorums certified conflicting blocks)."""
        cluster = Cluster(n=13, mode=mode, scenario="national")
        tree0 = cluster.policy.configuration(0)
        forger = tree0.leaves[0]
        result = run_byzantine({forger: VoteForgingNode}, mode=mode, duration=20.0)
        assert result.metrics.committed_blocks > 0

    def test_forging_internal_node(self):
        cluster = Cluster(n=13, mode="kauri", scenario="national")
        tree0 = cluster.policy.configuration(0)
        internal = next(n for n in tree0.internal_nodes if n != tree0.root)
        result = run_byzantine({internal: VoteForgingNode}, duration=40.0)
        assert result.metrics.committed_blocks > 0


class TestSilentNodes:
    def test_f_silent_nodes_tolerated(self):
        """n=13 tolerates f=4 silent processes placed as leaves."""
        cluster = Cluster(n=13, mode="kauri", scenario="national")
        leaves = cluster.policy.configuration(0).leaves[:4]
        result = run_byzantine({leaf: SilentNode for leaf in leaves}, duration=20.0)
        assert result.metrics.committed_blocks > 0

    def test_silent_root_triggers_view_change(self):
        cluster = Cluster(n=13, mode="kauri", scenario="national")
        root = cluster.policy.leader_of(0)
        result = run_byzantine({root: SilentNode}, duration=40.0)
        assert result.metrics.max_view >= 1
        assert result.metrics.committed_blocks > 0


class TestMixedAdversary:
    def test_combined_attack_stays_safe_and_live(self):
        """f=4 Byzantine processes with mixed behaviours: agreement must
        hold and the correct majority must keep committing."""
        cluster = Cluster(n=13, mode="kauri", scenario="national")
        tree0 = cluster.policy.configuration(0)
        root = tree0.root
        internal = next(n for n in tree0.internal_nodes if n != root)
        leaves = [l for l in tree0.leaves if l != root][:2]
        byz = {
            root: EquivocatingLeaderNode,
            internal: VoteWithholdingNode,
            leaves[0]: VoteForgingNode,
            leaves[1]: SilentNode,
        }
        result = run_byzantine(byz, duration=120.0)
        assert result.metrics.committed_blocks > 0

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_randomized_byzantine_placement_preserves_agreement(self, seed):
        """Randomly place f Byzantine nodes with random behaviours; safety
        must hold for every seed."""
        import random

        rng = random.Random(seed)
        behaviours = [
            EquivocatingLeaderNode,
            VoteWithholdingNode,
            VoteForgingNode,
            SilentNode,
        ]
        victims = rng.sample(range(13), 4)
        byz = {v: rng.choice(behaviours) for v in victims}
        result = run_byzantine(byz, duration=60.0, seed=seed)
        correct = [
            node
            for node in result.nodes
            if node.node_id not in byz
        ]
        # agreement checked in run_byzantine; correct nodes made progress
        assert max(node.committed_height for node in correct) > 0
