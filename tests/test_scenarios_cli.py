"""`repro scenarios` subcommand group: list / show / validate / run."""

import json

import pytest

from repro.cli import FIG_CHOICES, build_parser, main


def run_cli(args):
    import contextlib
    import io

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(args)
    return code, buffer.getvalue()


def test_fig_choices_derive_from_registry():
    from repro.analysis import FIGURES

    assert FIG_CHOICES == list(FIGURES)
    assert "depth" in FIG_CHOICES


def test_scenarios_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["scenarios"])


def test_scenarios_list_shows_every_pack():
    code, out = run_cli(["scenarios", "list"])
    assert code == 0
    for name in ("fig5", "fig6", "smoke", "wan-geo", "flash-crowd",
                 "cascading-faults", "churn"):
        assert name in out, name


def test_scenarios_show_smoke():
    code, out = run_cli(["scenarios", "show", "smoke"])
    assert code == 0
    assert "smoke" in out
    assert "hotstuff-secp" in out
    assert "cells at scale 1.0" in out


def test_scenarios_validate_all():
    code, out = run_cli(["scenarios", "validate"])
    assert code == 0
    assert "all" in out and "packs validate" in out


def test_scenarios_validate_one():
    code, out = run_cli(["scenarios", "validate", "fig6"])
    assert code == 0
    assert "ok   fig6 (36 cells)" in out


def test_scenarios_run_smoke_table():
    code, out = run_cli(["scenarios", "run", "smoke", "--scale", "0.5"])
    assert code == 0
    assert "kauri" in out and "hotstuff-secp" in out
    assert "simulated" in out  # engine stats line


def test_scenarios_run_smoke_json():
    code, out = run_cli(
        ["scenarios", "run", "smoke", "--scale", "0.5", "--json"]
    )
    assert code == 0
    payload = json.loads(out)
    assert len(payload) == 2
    assert {entry["mode"] for entry in payload} == {"kauri", "hotstuff-secp"}


def test_scenarios_run_report_validates(tmp_path):
    out_path = tmp_path / "run_report.json"
    code, out = run_cli(
        ["scenarios", "run", "smoke", "--scale", "0.5",
         "--report", str(out_path)]
    )
    assert code == 0
    assert out_path.exists()
    report = json.loads(out_path.read_text())
    assert report  # non-empty RunReport JSON
