"""Hierarchical timer wheel for overwhelmingly-cancelled timeouts.

Pacemaker watchdogs and impatient-receive deadlines share one fate: almost
every one of them is cancelled long before it would fire (progress restarts
the watchdog; the expected message arrives before Δ). Parking them on the
main event heap makes each cancellation a lazy tombstone that the heap must
later pop (or a compaction sweep must filter), so a pacemaker-heavy run
pays O(log n) heap traffic per timer that never fires.

The :class:`TimerWheel` keeps such timers off the heap entirely. Timers
hash into fixed-width time slots (plain dicts keyed by sequence number), so

- ``cancel`` while parked is one dict delete -- O(1), no tombstone;
- only timers that *survive* until their slot comes due ever touch the
  event heap, carrying their original ``(time, seq)`` so the simulator's
  firing order is bit-identical to heap-only scheduling.

Slots are hierarchical (widths grow by 64x per level): a 10 s pacemaker
timeout first parks in a coarse slot and only cascades into a fine slot --
or the heap -- if it is still alive when its coarse slot comes due, which
for watchdogs is almost never. Slot widths are powers of two, so computing
a slot index from a float time is exact (no rounding drift).

The wheel is an implementation detail of
:meth:`repro.sim.engine.Simulator.schedule_timeout`; the simulator flushes
due slots into its heap before selecting the next event, which is what
keeps the merged order exact.
"""

from __future__ import annotations

import heapq
import math
from operator import attrgetter
from typing import Any, Callable, Dict, List, Tuple

_TIME_SEQ = attrgetter("time", "seq")

#: Slot widths per level, seconds. Powers of two keep ``time / width``
#: exact in binary floating point; consecutive levels differ by 64x, so a
#: timer cascades through at most ``len(_WIDTHS) - 1`` slots in its life.
_WIDTHS = (2.0 ** -8, 2.0 ** -2, 2.0 ** 4, 2.0 ** 10)
_INVERSE = tuple(1.0 / w for w in _WIDTHS)
#: Upper (exclusive) delay bound for parking at each level: one full span
#: of the next-coarser level.
_BOUNDS = (_WIDTHS[1], _WIDTHS[2], _WIDTHS[3])


class TimeoutHandle:
    """Cancellation handle for a wheel-scheduled timeout.

    Same introspection surface as :class:`repro.sim.engine.EventHandle`
    (``time``/``seq``/``cancelled``/``fired``/``cancel()``), so callers can
    hold either interchangeably. While the timer is parked in a wheel slot,
    ``cancel`` removes it outright (one dict delete); once the slot has
    been flushed into the simulator's heap, cancellation falls back to the
    heap's lazy-tombstone protocol.
    """

    __slots__ = (
        "time", "seq", "fn", "args", "cancelled", "fired", "_wheel", "_slot",
        "_in_runq",
    )

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        wheel: "TimerWheel",
    ):
        self.time = time
        self.seq = seq
        self.fn: Any = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._wheel = wheel
        self._slot: Any = None  # owning slot dict while parked in the wheel
        self._in_runq = False  # flushed into the run queue (not the heap)

    def cancel(self) -> None:
        """Prevent the callback from running; idempotent, no-op if fired."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        self.fn = None  # break reference cycles early
        self.args = ()
        slot = self._slot
        if slot is not None:
            # Parked: remove from the wheel, never reaches any store.
            del slot[self.seq]
            self._slot = None
            wheel = self._wheel
            wheel._count -= 1
            wheel._sim._pending -= 1
        elif self._in_runq:
            # Flushed into the run queue: the entry is skipped on pop;
            # only the live counter needs adjusting (no heap tombstone).
            self._wheel._sim._pending -= 1
        else:
            # Already flushed into the main heap: lazy-cancel there.
            self._wheel._sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        where = "wheel" if self._slot is not None else "heap"
        return f"TimeoutHandle(t={self.time:.6f}, seq={self.seq}, {state}, {where})"


class TimerWheel:
    """Sparse hierarchical timer wheel feeding one simulator's event heap."""

    __slots__ = ("_sim", "_levels", "_due", "_next_due", "_count")

    def __init__(self, sim: Any):
        self._sim = sim
        #: Per level: {slot index: {seq: handle}}. Slot dicts are created on
        #: first use; a slot dict existing implies exactly one entry for it
        #: in :attr:`_due` (cancellations may leave it empty, never absent).
        self._levels: List[Dict[int, Dict[int, TimeoutHandle]]] = [
            {} for _ in _WIDTHS
        ]
        #: Heap of (slot start, level, slot index) for every live slot.
        self._due: List[Tuple[float, int, int]] = []
        #: Cached ``self._due[0][0]`` (or +inf) -- the simulator polls this
        #: before every event, so it must be one attribute load.
        self._next_due = math.inf
        #: Timers currently parked (not yet flushed, not cancelled).
        self._count = 0

    @staticmethod
    def _level_for(delay: float) -> int:
        if delay < _BOUNDS[0]:
            return 0
        if delay < _BOUNDS[1]:
            return 1
        if delay < _BOUNDS[2]:
            return 2
        return 3

    def insert(self, handle: TimeoutHandle) -> None:
        """Park ``handle`` in the slot covering its deadline."""
        self._put(self._level_for(handle.time - self._sim.now), handle)
        self._count += 1

    def _put(self, level: int, handle: TimeoutHandle) -> None:
        index = int(handle.time * _INVERSE[level])
        slots = self._levels[level]
        slot = slots.get(index)
        if slot is None:
            slot = slots[index] = {}
            start = index * _WIDTHS[level]
            heapq.heappush(self._due, (start, level, index))
            if start < self._next_due:
                self._next_due = start
        slot[handle.seq] = handle
        handle._slot = slot

    def flush_due(self, limit: float) -> None:
        """Empty every slot starting at or before ``limit``.

        Survivors keep their original ``(time, seq)`` firing key, so merged
        pop order is unchanged. A whole flush is handed to the simulator as
        one ``(time, seq)``-sorted batch (:meth:`Simulator._absorb_timeouts`):
        survivors extend the sorted run queue with O(1) appends and only
        fall back to heap pushes when the run queue's tail is already past
        them. Survivors in a coarser due slot cascade to a strictly finer
        level when their remaining delay allows (which also bounds the work
        when the simulator jumps far ahead in one step).
        """
        sim = self._sim
        due = self._due
        survivors: List[TimeoutHandle] = []
        while due and due[0][0] <= limit:
            _start, level, index = heapq.heappop(due)
            slot = self._levels[level].pop(index)
            if not slot:
                continue  # fully cancelled while parked
            now = sim.now
            for handle in slot.values():
                if level:
                    new_level = self._level_for(handle.time - now)
                    if new_level < level:
                        self._put(new_level, handle)
                        continue
                handle._slot = None
                survivors.append(handle)
                self._count -= 1
        self._next_due = due[0][0] if due else math.inf
        if survivors:
            # Slot dicts iterate in insertion (seq) order, not time order,
            # and coarse slots can emit later times than finer ones: sort
            # the batch once so the absorb step sees a monotone run.
            if len(survivors) > 1:
                survivors.sort(key=_TIME_SEQ)
            sim._absorb_timeouts(survivors)

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimerWheel(parked={self._count}, next_due={self._next_due})"
