"""Per-process network interface: FIFO serialization at link bandwidth.

This is where the paper's *sending time* (§4.3) physically happens: a node
sending a block to its ``m`` children occupies its uplink for
``m * block_size / bandwidth`` seconds, which is why a tree's root finishes
its dissemination phase ``(N-1)/m`` times sooner than a star's leader.

Messages are serialized strictly in enqueue order. Queueing delay (time a
message waits behind earlier traffic) is tracked so experiments can observe
over-pipelining: a proposal interval shorter than the sending time makes
the backlog grow without bound.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import NetworkError
from repro.sim.engine import Simulator


class Nic:
    """Outgoing interface of one process.

    Bandwidth is supplied per transmit call (heterogeneous deployments have
    different rates per destination cluster); serialization is FIFO over
    ``lanes`` parallel queues. ``lanes=1`` (the default) is the strict
    per-process-uplink model the §4.3 formulas assume: one message at a
    time at the scenario's link rate. Higher lane counts approximate the
    paper's physical testbed, where NetEm shapes each *pair* to the link
    rate but a machine's NIC carries several such streams concurrently --
    the knob the uplink-model ablation bench sweeps.
    """

    def __init__(self, sim: Simulator, name: str = "nic", lanes: int = 1):
        if lanes < 1:
            raise NetworkError(f"need at least one lane, got {lanes}")
        self.sim = sim
        self.name = name
        self.lanes = lanes
        self._lane_busy_until = [0.0] * lanes
        self.bytes_sent = 0
        self.messages_sent = 0
        self.total_queueing_delay = 0.0
        self.total_tx_time = 0.0
        self.max_backlog = 0.0

    def transmit(
        self,
        size_bytes: int,
        bandwidth_bps: float,
        on_serialized: Callable[[], None],
    ) -> float:
        """Enqueue ``size_bytes`` for serialization; returns completion time.

        ``on_serialized`` fires when the last bit leaves the interface
        (propagation is the caller's concern). Infinite bandwidth
        (``math.inf``) serializes instantly -- used for the paper's
        "idealized infinite bandwidth" latency floor (§7.6).
        """
        if size_bytes < 0:
            raise NetworkError(f"negative transmit size: {size_bytes}")
        if bandwidth_bps <= 0:
            raise NetworkError(f"non-positive bandwidth: {bandwidth_bps}")
        now = self.sim.now
        tx_time = 0.0 if math.isinf(bandwidth_bps) else size_bytes * 8.0 / bandwidth_bps
        lane = min(range(self.lanes), key=self._lane_busy_until.__getitem__)
        start = max(now, self._lane_busy_until[lane])
        queueing = start - now
        done = start + tx_time
        self._lane_busy_until[lane] = done
        self.bytes_sent += size_bytes
        self.messages_sent += 1
        self.total_queueing_delay += queueing
        self.total_tx_time += tx_time
        self.max_backlog = max(self.max_backlog, done - now)
        self.sim.schedule_at(done, on_serialized)
        return done

    @property
    def backlog(self) -> float:
        """Seconds until a newly enqueued message could start serializing."""
        return max(0.0, min(self._lane_busy_until) - self.sim.now)

    @property
    def busy(self) -> bool:
        return any(t > self.sim.now for t in self._lane_busy_until)

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of aggregate capacity spent serializing since ``since``."""
        elapsed = (self.sim.now - since) * self.lanes
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.total_tx_time / elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Nic({self.name!r}, backlog={self.backlog:.4f}s)"
