"""The checked-in pack catalog under ``<repo>/scenarios/``.

Pack files are data, versioned next to the code that consumes them; the
catalog is just the directory listing, so adding a scenario is adding a
file (the CLI's ``repro scenarios`` choices follow automatically).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.scenarios.loader import PackError, ScenarioPack, load_pack_file

#: Environment override for the pack directory (tests, external catalogs).
PACK_DIR_ENV = "REPRO_SCENARIO_DIR"

#: Pack file suffixes, in preference order when both exist for one name.
PACK_SUFFIXES = (".toml", ".json")


def pack_dir() -> Path:
    """``$REPRO_SCENARIO_DIR`` or ``<repo>/scenarios``."""
    override = os.environ.get(PACK_DIR_ENV)
    if override:
        return Path(override)
    repo_root = Path(__file__).resolve().parents[3]
    return repo_root / "scenarios"


def catalog(root: Optional[Union[str, Path]] = None) -> Dict[str, Path]:
    """Pack name -> file path, sorted by name; missing directory = empty."""
    directory = Path(root) if root is not None else pack_dir()
    if not directory.is_dir():
        return {}
    found: Dict[str, Path] = {}
    for suffix in PACK_SUFFIXES:
        for path in sorted(directory.glob(f"*{suffix}")):
            found.setdefault(path.stem, path)
    return dict(sorted(found.items()))


def pack_names(root: Optional[Union[str, Path]] = None) -> List[str]:
    """The catalog's pack names (CLI choice lists derive from this)."""
    return list(catalog(root))


def load_pack(
    name: str, root: Optional[Union[str, Path]] = None
) -> ScenarioPack:
    """Load a catalog pack by name, with a precise unknown-name message."""
    packs = catalog(root)
    path = packs.get(name)
    if path is None:
        known = ", ".join(packs) or "none found"
        raise PackError(
            f"unknown scenario pack {name!r} (catalog under "
            f"{Path(root) if root is not None else pack_dir()}: {known})"
        )
    return load_pack_file(path)
