#!/usr/bin/env python
"""Compare Kauri against HotStuff across the paper's deployment scenarios.

A miniature of Figure 6 (§7.4): all four systems in the national, regional
and global scenarios at N=31, printing throughput and latency side by
side. Expect Kauri on top everywhere, with the gap widening as bandwidth
shrinks; expect Kauri-np (trees without pipelining) to beat HotStuff only
when bandwidth is scarce.

The whole grid is the checked-in ``scenarios/scenario-comparison.toml``
pack -- this script just compiles it at half scale and prints the rows
(``python -m repro scenarios run scenario-comparison`` does the same from
the command line).

Run:  python examples/scenario_comparison.py      (~1 minute)
"""

from repro.analysis import format_table
from repro.scenarios import run_pack


def main() -> None:
    grid, results = run_pack("scenario-comparison", scale=0.5)
    rows = [
        (
            r.scenario,
            r.mode,
            round(r.throughput_txs, 0),
            round(r.latency["p50"] * 1000, 0),
            "yes" if r.cpu_saturated else "",
        )
        for r in results
    ]
    print(
        format_table(
            ("Scenario", "System", "Throughput (tx/s)", "p50 latency (ms)", "CPU-bound"),
            rows,
            title="Scenario comparison, N=31, 250 KB blocks",
        )
    )
    kauri_global = next(r[2] for r in rows if r[:2] == ("global", "kauri"))
    hotstuff_global = next(r[2] for r in rows if r[:2] == ("global", "hotstuff-secp"))
    print(
        f"\nKauri / HotStuff-secp throughput in the global scenario: "
        f"{kauri_global / hotstuff_global:.1f}x"
    )


if __name__ == "__main__":
    main()
