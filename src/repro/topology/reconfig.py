"""Deterministic view-to-configuration mapping (paper §5.2-§5.3, §6).

Every process derives the communication topology for view ``v`` locally and
deterministically, so no agreement on the topology itself is needed:

- *Tree phase* (positions ``0 .. m-1`` of each cycle): tree ``j`` draws its
  internal nodes from disjoint bin ``j`` (Algorithm 4). With ``f < m``
  faults, some bin is all-correct, so a robust tree appears within ``m``
  steps -- and since any leader-based protocol needs up to ``f + 1``
  reconfigurations, this is optimal when ``f < m`` (§1).
- *Star phase* (positions ``m ..``): after ``m`` consecutive failed tree
  configurations Kauri falls back to a star whose leader rotates round
  robin (§5.3), recovering within ``f + 1`` further steps. Worst case:
  ``m + f + 1`` reconfigurations.

Views only advance on timeout (§6), so consecutive views correspond exactly
to consecutive failed configurations. The mapping cycles with period
``m + n`` so that a system that stabilised in the star phase simply keeps
its star (matching Figure 12c, where post-recovery Kauri performs like
HotStuff).

A ``star`` policy (HotStuff itself) rotates the star leader every view.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from repro.errors import TopologyError
from repro.topology.bins import BinPartition
from repro.topology.builder import build_star, build_tree, tree_level_sizes
from repro.topology.tree import Tree


def swap_scenario(network: Any, netem: Any) -> int:
    """Install a new network shaper mid-run (environment reconfiguration).

    The §7.10 experiments change *topology* per view, which needs no fabric
    cooperation -- but harnesses that change the *environment* (e.g. a WAN
    scenario degrading mid-run) must go through here: the fabric memoises
    per-pair link params on the assumption that its shaper is static, so
    swapping ``network.netem`` directly would leave every already-priced
    pair on the old scenario's bandwidth and propagation values.

    If the current shaper knows how to carry state over to a replacement
    (duck-typed ``rewrap``, e.g. the client-id mapping installed by
    ``runtime.clients.ClientHarness``), the new shaper is threaded through
    it so the swap does not silently strip that layer.

    Returns the number of evicted pairs (see
    :meth:`repro.net.network.Network.invalidate_links`).
    """
    rewrap = getattr(network.netem, "rewrap", None)
    network.netem = netem if rewrap is None else rewrap(netem)
    return network.invalidate_links()


class ReconfigurationPolicy:
    """Maps view numbers to topologies for one deployment."""

    def __init__(
        self,
        processes: Sequence[int],
        height: int = 2,
        root_fanout: Optional[int] = None,
        num_bins: Optional[int] = None,
    ):
        self.processes: Tuple[int, ...] = tuple(processes)
        self.n = len(self.processes)
        if self.n < 2:
            raise TopologyError("need at least two processes")
        self.height = height
        self.root_fanout = root_fanout
        self._cache: dict = {}
        if height == 1:
            # Pure star (HotStuff): one internal node, no bins needed.
            self.internal_count = 1
            self.partition: Optional[BinPartition] = None
            self.num_bins = 0
        else:
            sizes = tree_level_sizes(self.n, height, root_fanout)
            self.internal_count = sum(sizes[:-1])
            self.partition = BinPartition(
                self.processes, self.internal_count, num_bins
            )
            self.num_bins = self.partition.num_bins

    @classmethod
    def star_policy(cls, processes: Sequence[int]) -> "ReconfigurationPolicy":
        """HotStuff's rotation: a star whose leader advances each view."""
        return cls(processes, height=1)

    # ------------------------------------------------------------------
    @property
    def cycle_length(self) -> int:
        if self.height == 1:
            return self.n
        return self.num_bins + self.n

    def is_tree_view(self, view: int) -> bool:
        """True if ``view`` uses a tree (not the star fallback)."""
        if self.height == 1:
            return False
        return view % self.cycle_length < self.num_bins

    def configuration(self, view: int) -> Tree:
        """The topology every correct process uses in ``view``."""
        if view < 0:
            raise TopologyError(f"negative view: {view}")
        position = view % self.cycle_length
        tree = self._cache.get(position)
        if tree is not None:
            return tree
        if self.height == 1:
            tree = build_star(self.processes, leader=self.processes[position])
        elif position < self.num_bins:
            assert self.partition is not None
            tree = build_tree(
                self.processes,
                self.height,
                self.root_fanout,
                internals_first=self.partition.bin(position),
            )
        else:
            leader = self.processes[(position - self.num_bins) % self.n]
            tree = build_star(self.processes, leader=leader)
        self._cache[position] = tree
        return tree

    def leader_of(self, view: int) -> int:
        """The root process of ``view``'s configuration."""
        return self.configuration(view).root

    def worst_case_reconfigurations(self, f: int) -> int:
        """§5.3: ``m + f + 1`` for trees, ``f + 1`` for a star policy."""
        if self.height == 1:
            return f + 1
        return self.num_bins + f + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "star" if self.height == 1 else f"tree(h={self.height})"
        return (
            f"ReconfigurationPolicy({kind}, n={self.n}, bins={self.num_bins}, "
            f"internals={self.internal_count})"
        )


class FixedTopologyPolicy:
    """A hand-placed topology, with a star fallback for faulty runs.

    Used for the heterogeneous deployment (§7.9), where the paper manually
    places the leader in the best-connected cluster and internal nodes next
    to their leaf nodes -- automatic placement is handled by
    :func:`repro.core.autotune.tune_heterogeneous`. View 0 uses the
    hand-placed tree; the §7.9 experiments are fault-free so it is the only
    configuration ever used there. If the tree does fail, later views fall
    back to rotating stars (§5.3's degradation) so liveness is preserved
    even though no alternative hand-placed trees exist. The cycle wraps
    after every process has led a star, giving the fixed tree another
    chance post-recovery.
    """

    def __init__(self, tree: Tree):
        self.tree = tree
        self.processes: Tuple[int, ...] = tree.nodes
        self.n = tree.n
        self.height = tree.height
        self.num_bins = 1
        self.internal_count = len(tree.internal_nodes)
        self._cache: dict = {}

    @property
    def cycle_length(self) -> int:
        return 1 + self.n

    def configuration(self, view: int) -> Tree:
        if view < 0:
            raise TopologyError(f"negative view: {view}")
        position = view % self.cycle_length
        if position == 0:
            return self.tree
        star = self._cache.get(position)
        if star is None:
            star = build_star(self.processes, leader=self.processes[position - 1])
            self._cache[position] = star
        return star

    def leader_of(self, view: int) -> int:
        return self.configuration(view).root

    def is_tree_view(self, view: int) -> bool:
        return view % self.cycle_length == 0 and not self.tree.is_star

    def worst_case_reconfigurations(self, f: int) -> int:
        return f + 2  # the fixed tree, then at most f+1 star leaders
