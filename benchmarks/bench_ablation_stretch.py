"""Ablation A1: model-chosen stretch vs naive fixed choices (§4.3, §7.2).

DESIGN.md calls out the pipelining stretch as the central design choice:
"using arbitrary pipeline values results in poor performance" (§1). This
bench quantifies that: the model-derived stretch must beat both
under-pipelining (stretch ~ HotStuff's implicit 0.25-per-round) and heavy
over-pipelining, across two scenarios.
"""

from conftest import SCALE, run_grid, run_once

from repro.analysis import adaptive_duration, format_table
from repro.config import KB, SCENARIOS
from repro.runtime import ExperimentSpec


def sweep():
    from repro.analysis.figures import _model_for

    cells, specs = [], []
    for scenario in ("global", "regional"):
        params = SCENARIOS[scenario]
        duration = adaptive_duration("kauri", 100, params, 250 * KB, scale=SCALE)
        for label, stretch in (
            ("under (0.25)", 0.25),
            ("model", None),
            ("over (x8)", None),
        ):
            if label.startswith("over"):
                stretch = 8.0 * max(
                    0.5, _model_for("kauri", 100, params, 250 * KB).pipelining_stretch
                )
            cells.append((scenario, label))
            specs.append(
                ExperimentSpec(
                    mode="kauri",
                    scenario=scenario,
                    n=100,
                    stretch=stretch,
                    duration=duration,
                    max_commits=int(150 * SCALE) or 15,
                )
            )
    rows = []
    for (scenario, label), result in zip(cells, run_grid(specs)):
        rows.append(
            (
                scenario,
                label,
                round(result.stretch, 2) if result.stretch is not None else "auto",
                round(result.throughput_txs / 1000.0, 3),
                round(result.latency["p50"], 2),
                result.instance_failures,
            )
        )
    return rows


def test_ablation_model_vs_fixed_stretch(benchmark, save_table):
    rows = run_once(benchmark, sweep)
    save_table(
        "ablation_stretch",
        format_table(
            ("Scenario", "Stretch choice", "Value", "Ktx/s", "p50 lat (s)", "Failed instances"),
            rows,
            title="Ablation: pipelining stretch selection (N=100)",
        ),
    )

    def cell(scenario, label, col):
        return next(r[col] for r in rows if r[0] == scenario and r[1] == label)

    for scenario in ("global", "regional"):
        model_tput = cell(scenario, "model", 3)
        # the model beats under-pipelining on throughput
        assert model_tput > cell(scenario, "under (0.25)", 3)
        # heavy over-pipelining either collapses outright (zero commits,
        # instance failures piling up) or pays in latency
        over_tput = cell(scenario, "over (x8)", 3)
        over_lat = cell(scenario, "over (x8)", 4)
        over_failures = cell(scenario, "over (x8)", 5)
        assert model_tput > 0.7 * over_tput
        assert over_failures > 0 or over_lat >= cell(scenario, "model", 4)
