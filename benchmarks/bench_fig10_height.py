"""Figure 10: impact of tree height on throughput and latency (§7.8).

N=100, RTT=100 ms, bandwidth swept. Kauri with h=3 (fanout 5) roughly
doubles the h=2 (fanout 10) throughput in bandwidth-bound regimes -- the
root's sending time halves -- at a modest latency cost; HotStuff latency
swings with bandwidth while Kauri's barely moves.

The grid comes from the checked-in ``scenarios/fig10.toml`` pack; the
system list (label/mode/height) is the pack's composite ``system`` axis.
"""

from conftest import SCALE, run_grid, run_once

from repro.analysis import format_table
from repro.scenarios import compile_pack, load_pack


def test_fig10_tree_height(benchmark, save_table):
    grid = compile_pack(load_pack("fig10"), scale=SCALE)
    results = run_once(benchmark, lambda: run_grid(grid.specs))
    data = {label: [] for label in grid.labels()}
    for cell, r in zip(grid.cells, results):
        data[cell.label].append(
            (cell.bindings["scenario"]["bandwidth_mbps"],
             r.throughput_txs / 1000.0,
             r.latency["p50"] * 1000.0,
             r.cpu_saturated)
        )
    rows = []
    for label, series in data.items():
        for bw, ktx, lat_ms, saturated in series:
            rows.append((label, bw, ktx, lat_ms, "SAT" if saturated else ""))
    save_table(
        "fig10",
        format_table(
            ("System", "Bandwidth (Mb/s)", "Ktx/s", "p50 latency (ms)", "CPU"),
            rows,
            title="Figure 10: N=100, RTT=100ms, tree heights",
        ),
    )

    h2 = {bw: ktx for bw, ktx, _, _ in data["kauri-h2"]}
    h3 = {bw: ktx for bw, ktx, _, _ in data["kauri-h3"]}
    secp = {bw: ktx for bw, ktx, _, _ in data["hotstuff-secp"]}
    lat_h2 = {bw: lat for bw, _, lat, _ in data["kauri-h2"]}
    lat_h3 = {bw: lat for bw, _, lat, _ in data["kauri-h3"]}
    lat_secp = {bw: lat for bw, _, lat, _ in data["hotstuff-secp"]}

    # deeper trees raise throughput substantially in bandwidth-bound regimes
    assert h3[25] > 1.4 * h2[25]
    assert h3[50] > 1.4 * h2[50]
    # at a modest latency cost (the paper: "only a modest impact")
    assert lat_h3[25] < 2.5 * lat_h2[25]
    # both tree heights beat HotStuff at low bandwidth
    assert min(h2[25], h3[25]) > secp[25]
    # HotStuff's latency varies with bandwidth far more than Kauri's (§7.8)
    assert (lat_secp[25] / lat_secp[1000]) > 2 * (lat_h2[25] / lat_h2[1000])
