"""End-to-end client path: submission over the network, mempools,
commit notifications, submit-to-commit latency (§2's client processes)."""

import pytest

from repro import Cluster, ProtocolConfig
from repro.config import KB
from repro.errors import ConfigError
from repro.runtime import ClientHarness, MempoolWorkload, Tx


def make_client_cluster(n=7, rate=2000.0, clients=4, block_kb=64, seed=0):
    config = ProtocolConfig(block_size=block_kb * KB)
    cluster = Cluster(
        n=n,
        mode="kauri",
        scenario="national",
        config=config,
        seed=seed,
        workload_factory=lambda node_id: MempoolWorkload(config),
    )
    harness = ClientHarness(cluster, num_clients=clients, rate_txs=rate)
    return cluster, harness


class TestMempoolWorkload:
    def test_fill_capped_by_txs_per_block_not_just_bytes(self):
        """Tiny txs must not overfill a block past config.txs_per_block.

        With 4 KB blocks and 1 KB nominal txs the protocol caps blocks at
        4 txs; 100-byte txs would fit 40 by the byte budget alone."""
        config = ProtocolConfig(block_size=4096, tx_size=1024)
        assert config.txs_per_block == 4
        pool = MempoolWorkload(config)
        pool.ingest([Tx((0, k), 100, 0.0) for k in range(20)])
        fill = pool.next_fill(1.0)
        assert fill.num_txs == 4
        assert pool.queued_txs == 16

    def test_drains_oldest_first_up_to_block_size(self):
        config = ProtocolConfig(block_size=1024, tx_size=512)
        pool = MempoolWorkload(config)
        txs = [Tx((0, k), 400, 0.0) for k in range(5)]
        pool.ingest(txs)
        fill = pool.next_fill(1.0)
        assert fill.num_txs == 2  # 2 * 400 <= 1024 < 3 * 400
        assert fill.payload_size == 800
        assert fill.tx_ids == ((0, 0), (0, 1))
        assert pool.queued_txs == 3

    def test_empty_mempool_gives_empty_block(self):
        pool = MempoolWorkload(ProtocolConfig())
        fill = pool.next_fill(0.0)
        assert fill.num_txs == 0
        assert fill.tx_ids == ()

    def test_non_tx_garbage_ignored(self):
        pool = MempoolWorkload(ProtocolConfig())
        pool.ingest(["junk", 42])
        assert pool.queued_txs == 0


class TestClientHarness:
    def test_end_to_end_latency_measured(self):
        cluster, harness = make_client_cluster()
        cluster.start()
        harness.start()
        cluster.run(duration=15.0)
        cluster.check_agreement()
        stats = harness.e2e_latency_stats()
        assert stats["count"] > 100
        # e2e latency includes submission + consensus: above consensus-only
        consensus_p50 = cluster.metrics.latency_stats()["p50"]
        assert stats["p50"] > consensus_p50 * 0.9
        assert stats["p95"] >= stats["p50"]

    def test_committed_txs_bounded_by_offered_load(self):
        cluster, harness = make_client_cluster(rate=1000.0)
        cluster.start()
        harness.start()
        cluster.run(duration=10.0)
        assert harness.committed_txs <= 1000.0 * 10.0 * 1.01

    def test_blocks_carry_real_tx_ids(self):
        cluster, harness = make_client_cluster()
        cluster.start()
        harness.start()
        cluster.run(duration=10.0)
        committed_with_txs = [
            r for r in cluster.metrics.records() if r.num_txs > 0
        ]
        assert committed_with_txs
        leader = cluster.nodes[cluster.policy.leader_of(0)]
        block = next(
            b for b in leader.store.commit_log if b.tx_ids
        )
        assert all(isinstance(tx_id, tuple) for tx_id in block.tx_ids)

    def test_clients_survive_leader_change(self):
        cluster, harness = make_client_cluster(seed=2)
        cluster.crash_at(cluster.policy.leader_of(0), 5.0)
        cluster.start()
        harness.start()
        cluster.run(duration=30.0)
        cluster.check_agreement()
        # commits resumed with client load after the view change
        post_fault = [
            lat for lat in harness.e2e_latencies
        ]
        assert harness.committed_txs > 0
        assert cluster.metrics.commit_gap_after(6.0) is not None

    def test_validation(self):
        cluster, _ = make_client_cluster()
        with pytest.raises(ConfigError):
            ClientHarness(cluster, num_clients=0)
        with pytest.raises(ConfigError):
            ClientHarness(cluster, rate_txs=0)

    def test_empty_harness_reports_full_e2e_stat_shape(self):
        """e2e_latency_stats shares latency_summary's key set, including
        the tail percentiles, even before any commit is observed."""
        cluster, harness = make_client_cluster()
        stats = harness.e2e_latency_stats()
        assert set(stats) == {"count", "mean", "max", "p50", "p95", "p99", "p999"}
        assert stats["count"] == 0
        assert stats["p999"] == 0.0

    def test_wrap_is_idempotent_across_harnesses(self):
        """A second harness on the same cluster must not stack a second
        client-aware wrapper around the netem (the double-wrap bug)."""
        from repro.runtime.clients import _ClientAwareNetem

        cluster, _ = make_client_cluster()
        ClientHarness(cluster, num_clients=2, rate_txs=100.0)
        netem = cluster.network.netem
        assert isinstance(netem, _ClientAwareNetem)
        assert not isinstance(netem._base, _ClientAwareNetem)

    def test_netem_swap_preserves_client_mapping(self):
        """swap_scenario must rebind the client wrapper onto the new base
        shaper: client ids still resolve, and they price on the new params."""
        from repro.config import NetworkParams
        from repro.net.netem import HomogeneousNetem
        from repro.runtime.clients import _ClientAwareNetem
        from repro.topology.reconfig import swap_scenario

        cluster, _ = make_client_cluster()
        fast = NetworkParams("fast", rtt=0.002, bandwidth_bps=1e9)
        swap_scenario(cluster.network, HomogeneousNetem(fast))
        netem = cluster.network.netem
        assert isinstance(netem, _ClientAwareNetem)
        assert not isinstance(netem._base, _ClientAwareNetem)
        # client id n maps onto node 0 and inherits the *new* link params
        assert netem.params_between(cluster.n, 0) == fast

    def test_heterogeneous_clients_inherit_host_links(self):
        """Client ids map onto node link parameters under cluster netem."""
        from repro import resilientdb_clusters

        clusters = resilientdb_clusters(per_cluster=2)
        config = ProtocolConfig(block_size=64 * KB)
        cluster = Cluster(
            mode="kauri",
            scenario=clusters,
            config=config,
            workload_factory=lambda node_id: MempoolWorkload(config),
        )
        harness = ClientHarness(cluster, num_clients=2, rate_txs=500.0)
        cluster.start()
        harness.start()
        cluster.run(duration=20.0)
        cluster.check_agreement()
        assert harness.committed_txs > 0
