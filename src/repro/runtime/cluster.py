"""Deployment builder: one object wiring simulator, network, crypto,
topology policy, protocol nodes and fault plan together.

Mirrors the paper's experimental setup (§7.1): pick a scenario (global /
regional / national / heterogeneous), a system size, a protocol mode, a
block size, and run for a simulated duration or block budget.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import (
    ClusterParams,
    NetworkParams,
    ProtocolConfig,
    SCENARIOS,
    max_faults,
)
from repro.core.modes import ModeSpec, mode_spec, protocol_class, protocol_kind
from repro.core.node import ProtocolNode
from repro.core.smr import ReplicaShared, SmrNode
from repro.core.perfmodel import PerfModel
from repro.crypto.keys import Pki
from repro.crypto.signature import make_scheme
from repro.errors import ConfigError, ConsensusError
from repro.net.faults import FaultInjector
from repro.net.netem import ClusterNetem, HomogeneousNetem, Netem
from repro.net.network import Network
from repro.runtime.metrics import Metrics
from repro.sim.engine import Simulator
from repro.topology.reconfig import FixedTopologyPolicy, ReconfigurationPolicy
from repro.topology.tree import Tree


def build_cluster_tree(clusters: ClusterParams) -> Tree:
    """The §7.9 hand-placed heterogeneous tree.

    The root goes to the best-connected cluster (cluster 0 / Oregon); one
    internal node heads each cluster, with its cluster's remaining members
    as its leaves ("internal nodes are located closely to their leaf
    nodes").
    """
    root = next(iter(clusters.members(0)))
    children: Dict[int, List[int]] = {root: []}
    for cluster_index in range(len(clusters.cluster_sizes)):
        members = [p for p in clusters.members(cluster_index) if p != root]
        if not members:
            continue
        head = members[0]
        children[root].append(head)
        if len(members) > 1:
            children[head] = members[1:]
    return Tree(root, children)


def representative_params(clusters: ClusterParams) -> NetworkParams:
    """A single (RTT, bandwidth) summarising the leader's inter-cluster
    links, for the performance model in heterogeneous deployments."""
    root = next(iter(clusters.members(0)))
    links = [
        clusters.params_between(root, next(iter(clusters.members(c))))
        for c in range(1, len(clusters.cluster_sizes))
    ]
    mean_rtt = sum(link.rtt for link in links) / len(links)
    min_bw = min(link.bandwidth_bps for link in links)
    return NetworkParams("representative", rtt=mean_rtt, bandwidth_bps=min_bw)


class Cluster:
    """A fully wired deployment, ready to run."""

    def __init__(
        self,
        n: int = None,
        mode: Union[str, ModeSpec] = "kauri",
        scenario: Union[str, NetworkParams, ClusterParams] = "global",
        config: Optional[ProtocolConfig] = None,
        height: int = 2,
        root_fanout: Optional[int] = None,
        seed: int = 0,
        crashes: Sequence[Tuple[int, float]] = (),
        byzantine: Optional[Dict[int, Callable[..., ProtocolNode]]] = None,
        workload_factory: Optional[Callable[[int], Any]] = None,
        uplink_lanes: int = 1,
        strict: bool = True,
        observability: bool = False,
    ):
        self.mode = mode_spec(mode) if isinstance(mode, str) else mode
        self.config = config if config is not None else ProtocolConfig()
        self.scenario, self.netem, self._model_params = self._resolve_scenario(scenario)
        if isinstance(self.scenario, ClusterParams):
            if n is not None and n != self.scenario.n:
                raise ConfigError(
                    f"n={n} conflicts with cluster deployment of {self.scenario.n}"
                )
            n = self.scenario.n
        if n is None:
            raise ConfigError("system size n is required")
        if n < 4:
            raise ConfigError(f"BFT needs n >= 4, got {n}")
        self.n = n
        self.f = max_faults(n)

        self.sim = Simulator(seed=seed, strict=strict)
        self.faults = FaultInjector(self.sim)
        self.network = Network(
            self.sim, self.netem, faults=self.faults, uplink_lanes=uplink_lanes
        )
        self.pki = Pki(n, seed=seed)
        self.scheme = make_scheme(self.mode.scheme, self.pki)
        self.metrics = Metrics(self.sim)
        self.policy = self._build_policy(height, root_fanout)
        self._model_cache: Dict[Tuple[int, int], PerfModel] = {}

        byzantine = byzantine or {}
        # Strategy protocols all run on the shared SmrNode base; standalone
        # node classes (PBFT's clique flow) come from the registry directly.
        default_factory: Callable[..., ProtocolNode] = ProtocolNode
        if protocol_kind(self.mode.protocol) == "node":
            default_factory = protocol_class(self.mode.protocol)
        #: One flyweight of deployment-wide immutable replica config,
        #: shared by every SmrNode (built lazily: a pure-PBFT deployment
        #: never resolves an SmrNode strategy).
        self.shared: Optional[ReplicaShared] = None
        self.nodes: List[ProtocolNode] = []
        for node_id in range(n):
            factory = byzantine.get(node_id, default_factory)
            workload = workload_factory(node_id) if workload_factory else None
            if isinstance(factory, type) and issubclass(factory, SmrNode):
                if self.shared is None:
                    self.shared = ReplicaShared.build(
                        scheme=self.scheme,
                        policy=self.policy,
                        config=self.config,
                        mode=self.mode,
                        model_factory=self.model_for,
                        metrics=self.metrics,
                    )
                node = factory(
                    node_id=node_id,
                    sim=self.sim,
                    network=self.network,
                    workload=workload,
                    shared=self.shared,
                )
            else:
                node = factory(
                    node_id=node_id,
                    sim=self.sim,
                    network=self.network,
                    scheme=self.scheme,
                    policy=self.policy,
                    config=self.config,
                    mode=self.mode,
                    model_factory=self.model_for,
                    metrics=self.metrics,
                    workload=workload,
                )
            self.nodes.append(node)
            if node_id in byzantine:
                self.faults.mark_byzantine(node_id)

        #: node_id -> PhaseRecorder when observability is on (else empty).
        self.recorders: Dict[int, Any] = {}
        if observability:
            from repro.obs.recorder import PhaseRecorder

            for node in self.nodes:
                recorder = PhaseRecorder()
                node.obs = recorder
                self.recorders[node.node_id] = recorder

        for node_id, when in crashes:
            self.crash_at(node_id, when)

    # ------------------------------------------------------------------
    # Wiring helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_scenario(scenario) -> Tuple[Any, Netem, NetworkParams]:
        if isinstance(scenario, str):
            try:
                scenario = SCENARIOS[scenario]
            except KeyError:
                raise ConfigError(
                    f"unknown scenario {scenario!r}; available: {sorted(SCENARIOS)}"
                ) from None
        if isinstance(scenario, NetworkParams):
            return scenario, HomogeneousNetem(scenario), scenario
        if isinstance(scenario, ClusterParams):
            return scenario, ClusterNetem(scenario), representative_params(scenario)
        raise ConfigError(f"unsupported scenario object: {scenario!r}")

    def _build_policy(self, height: int, root_fanout: Optional[int]):
        if isinstance(self.scenario, ClusterParams) and self.mode.uses_tree:
            return FixedTopologyPolicy(build_cluster_tree(self.scenario))
        if self.mode.uses_tree:
            return ReconfigurationPolicy(
                range(self.n), height=height, root_fanout=root_fanout
            )
        return ReconfigurationPolicy.star_policy(range(self.n))

    def model_for(self, tree: Tree) -> PerfModel:
        """The §4.3 model for ``tree``, cached per (height, root fanout)."""
        key = (tree.height, tree.fanout(tree.root))
        model = self._model_cache.get(key)
        if model is None:
            widest = max(tree.fanout(node) for node in tree.nodes)
            model = PerfModel.for_topology(
                n=self.n,
                height=max(1, tree.height),
                root_fanout=max(1, tree.fanout(tree.root)),
                params=self._model_params,
                block_size=self.config.block_size,
                costs=self.scheme.costs,
                bottleneck_fanout=max(1, widest),
                uplink_lanes=self.network.uplink_lanes,
            )
            self._model_cache[key] = model
        return model

    # ------------------------------------------------------------------
    # Fault plan
    # ------------------------------------------------------------------
    def crash_at(self, node_id: int, when: float) -> None:
        """Crash ``node_id`` at simulated ``when``: drop its traffic and
        halt its protocol tasks."""
        self.faults.crash_at(node_id, when)
        self.sim.schedule_at(when, self.nodes[node_id].stop)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot every replica (crashed-at-0 nodes stop immediately)."""
        for node in self.nodes:
            node.start()

    def run(
        self,
        duration: Optional[float] = None,
        max_commits: Optional[int] = None,
    ) -> None:
        """Run until ``duration`` simulated seconds or ``max_commits``
        committed blocks, whichever comes first."""
        if duration is None and max_commits is None:
            raise ConfigError("need a stop condition (duration or max_commits)")
        if max_commits is not None:
            check_interval = 0.25

            def watchdog() -> None:
                if self.metrics.committed_blocks >= max_commits:
                    self.sim.stop()
                else:
                    self.sim.schedule(check_interval, watchdog)

            self.sim.schedule(check_interval, watchdog)
        self.sim.run(until=duration)

    # ------------------------------------------------------------------
    # Invariant checks
    # ------------------------------------------------------------------
    def check_agreement(self) -> None:
        """Cross-replica safety: no two correct replicas committed different
        blocks at the same height. Raises on violation."""
        chains: Dict[int, str] = {}
        for node in self.nodes:
            if self.faults.is_byzantine(node.node_id):
                continue
            for block in node.store.commit_log:
                seen = chains.get(block.height)
                if seen is None:
                    chains[block.height] = block.hash
                elif seen != block.hash:
                    raise ConsensusError(
                        f"AGREEMENT VIOLATION at height {block.height}: "
                        f"{seen} vs {block.hash}"
                    )

    def correct_nodes(self) -> List[ProtocolNode]:
        """Nodes that are neither crashed nor designated Byzantine."""
        return [
            node
            for node in self.nodes
            if node.node_id not in self.faults.faulty
        ]

    @property
    def leader_cpu_utilization(self) -> float:
        """CPU utilization of the current view-0 root -- saturation flag."""
        root = self.policy.leader_of(0)
        return self.nodes[root].cpu.utilization()

    def stats_summary(self) -> Dict[str, Any]:
        """Aggregate observability snapshot for debugging and reports."""
        nics = [self.network.nic(node.node_id) for node in self.nodes]
        cpus = [node.cpu for node in self.nodes]
        root = self.policy.leader_of(0)
        return {
            "now": self.sim.now,
            "events_processed": self.sim.events_processed,
            "messages_sent": self.network.messages_sent,
            "messages_delivered": self.network.messages_delivered,
            "messages_dropped": self.faults.dropped_messages,
            "bytes_sent_total": sum(nic.bytes_sent for nic in nics),
            "bytes_sent_leader": self.network.nic(root).bytes_sent,
            "max_nic_backlog": max(nic.max_backlog for nic in nics),
            "cpu_busy_total": sum(cpu.busy_time for cpu in cpus),
            "leader_cpu_utilization": self.leader_cpu_utilization,
            "committed_blocks": self.metrics.committed_blocks,
            "view_changes": len(self.metrics.view_changes),
            "max_view": self.metrics.max_view,
            "instance_failures": sum(n.instance_failures for n in self.nodes),
            "queued_messages": sum(
                self.network.endpoint(n.node_id).queued_messages for n in self.nodes
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(n={self.n}, mode={self.mode.name}, "
            f"scenario={getattr(self.scenario, 'name', self.scenario)})"
        )
