"""Abstract signature scheme: collection factory plus CPU-cost accessors.

A scheme binds a PKI to a :class:`~repro.crypto.costs.CryptoCostModel` and
produces :class:`~repro.crypto.collection.Collection` objects. Protocol
code charges CPUs via the ``cost_*`` accessors so that the *same* protocol
logic exhibits each scheme's characteristic bottleneck (§6, §7.4):
per-signature costs and O(N) quorum verification for secp, pairing costs
and O(1) aggregate verification for BLS.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.crypto.collection import Collection
from repro.crypto.costs import BLS_COSTS, SECP_COSTS, CryptoCostModel
from repro.crypto.keys import KeyPair, Pki
from repro.errors import CryptoError


class SignatureScheme(ABC):
    """Factory and cost oracle for one scheme over one deployment."""

    def __init__(self, pki: Pki, costs: CryptoCostModel):
        self.pki = pki
        self.costs = costs

    @property
    def name(self) -> str:
        return self.costs.name

    # ------------------------------------------------------------------
    # Collection construction
    # ------------------------------------------------------------------
    @abstractmethod
    def new(self, keypair: KeyPair, value: Any) -> Collection:
        """``new((p, v))``: sign ``value`` with ``keypair`` (§3.3.2)."""

    @abstractmethod
    def empty(self) -> Collection:
        """The ⊕-identity collection."""

    # ------------------------------------------------------------------
    # CPU cost accessors (seconds of simulated compute)
    # ------------------------------------------------------------------
    def cost_sign(self) -> float:
        """Produce one share."""
        return self.costs.sign_time

    def cost_combine(self, n_inputs: int) -> float:
        """Merge ``n_inputs`` contributions into an aggregate."""
        return self.costs.combine_per_input_time * max(0, n_inputs)

    def cost_verify_collection(self, collection: Collection) -> float:
        """Validate every tuple in a received collection.

        O(cardinality) individual verifications without aggregation; one
        aggregate check per distinct value with it.
        """
        if self.costs.supports_aggregation:
            return self.costs.aggregate_verify_time * max(1, len(collection.values()))
        return self.costs.verify_time * collection.cardinality()

    def cost_verify_share(self) -> float:
        """Validate a single incoming share (e.g. one child's vote)."""
        if self.costs.supports_aggregation:
            return self.costs.aggregate_verify_time
        return self.costs.verify_time


def make_scheme(kind: str, pki: Pki, costs: CryptoCostModel = None) -> SignatureScheme:
    """Build a scheme by name: ``"secp"`` or ``"bls"``."""
    from repro.crypto.bls import BlsScheme
    from repro.crypto.secp import SecpScheme

    if kind == "secp":
        return SecpScheme(pki, costs if costs is not None else SECP_COSTS)
    if kind == "bls":
        return BlsScheme(pki, costs if costs is not None else BLS_COSTS)
    raise CryptoError(f"unknown signature scheme: {kind!r}")
