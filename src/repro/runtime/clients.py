"""Client workloads: how blocks get filled (paper §2's client processes).

The evaluation drives the system with saturating load and varies the block
size (§7.7: "vary the load in the system by manipulating the block size,
i.e. the number of transactions offered by the client"). Accordingly:

- :class:`SaturatedWorkload` always fills blocks to the configured size --
  the benchmark default.
- :class:`PoissonWorkload` models an open-loop client population with a
  finite transaction arrival rate; blocks carry whatever accumulated since
  the previous proposal (capped at the block size), exercising the partial
  -block path used in examples and tests.
"""

from __future__ import annotations

import random
from collections import Counter, deque
from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Tuple

from repro.config import ProtocolConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class BlockFill:
    """What the leader packs into one proposal."""

    payload_size: int
    num_txs: int
    tx_ids: Tuple = ()


@dataclass(frozen=True)
class Tx:
    """One client transaction (identity + accounting only)."""

    tx_id: Tuple[int, int]  # (client id, sequence number)
    size: int
    submitted_at: float


class TxChunk(NamedTuple):
    """A contiguous run of same-class transactions, represented lazily.

    The workload engine synthesises arrivals in bulk: one tick of one
    client class yields transactions ``(client_id, start_seq) ..
    (client_id, start_seq + count - 1)``, all the same size, all submitted
    at the same instant. Shipping that run as one flyweight instead of
    ``count`` ``Tx`` objects makes synthesis and admission O(1) per tick;
    individual tx ids are only materialised when a block drains them
    (commit-rate bounded, not offered-rate bounded). Network timing is
    unchanged because link costs are driven by the explicit ``size=``
    argument of ``Network.send``, never by payload object shape.
    """

    client_id: int
    start_seq: int
    count: int
    size: int  # per-transaction bytes
    submitted_at: float

    def split(self, k: int) -> Tuple["TxChunk", "TxChunk"]:
        """(head of k txs, tail of the rest); 0 < k < count."""
        return (
            self._replace(count=k),
            self._replace(start_seq=self.start_seq + k, count=self.count - k),
        )

    def tx_ids(self) -> List[Tuple[int, int]]:
        client_id = self.client_id
        return [
            (client_id, seq)
            for seq in range(self.start_seq, self.start_seq + self.count)
        ]

    def materialize(self) -> List[Tx]:
        """Expand into per-transaction ``Tx`` objects (tests, plain
        harnesses, and differential oracles -- never the fast path)."""
        client_id, size, submitted_at = self.client_id, self.size, self.submitted_at
        return [
            Tx((client_id, seq), size, submitted_at)
            for seq in range(self.start_seq, self.start_seq + self.count)
        ]


class SaturatedWorkload:
    """Clients always have a full block's worth of transactions queued."""

    def __init__(self, config: ProtocolConfig):
        self.config = config

    def next_fill(self, now: float) -> BlockFill:
        return BlockFill(self.config.block_size, self.config.txs_per_block)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SaturatedWorkload(block={self.config.block_size}B)"


#: Admission policies for a bounded mempool. ``drop`` discards overflow
#: (load shedding: clients see the loss in their drop counters); ``defer``
#: parks overflow in an unbounded side queue that re-enters the mempool as
#: proposals free space (modelling client-side retry buffers).
MEMPOOL_POLICIES = ("drop", "defer")


class MempoolWorkload:
    """A leader-side mempool fed by real client submissions (§2's client
    processes).

    Client batches arrive over the network (see :class:`ClientHarness`);
    the node's client pump calls :meth:`admit`, and each proposal drains
    the oldest transactions up to the block budget -- both the payload-byte
    cap *and* ``config.txs_per_block`` (the per-block transaction count the
    CPU/crypto cost model assumes). Carries transaction ids into blocks so
    end-to-end (submit-to-commit) latency is measurable.

    ``capacity_txs`` bounds the mempool (admission control / leader
    backpressure): beyond it, ``policy`` decides whether overflow is
    dropped or deferred. Offered/admitted/dropped counters make the
    conservation law checkable: ``offered == admitted + dropped +
    deferred_txs`` at any instant.
    """

    def __init__(
        self,
        config: ProtocolConfig,
        capacity_txs: Optional[int] = None,
        policy: str = "drop",
    ):
        if capacity_txs is not None and capacity_txs < 1:
            raise ConfigError(f"mempool capacity must be >= 1, got {capacity_txs}")
        if policy not in MEMPOOL_POLICIES:
            raise ConfigError(
                f"unknown mempool policy {policy!r}; expected one of "
                f"{MEMPOOL_POLICIES}"
            )
        self.config = config
        self.capacity_txs = capacity_txs
        self.policy = policy
        # Queues hold Tx | TxChunk; the paired counters track the summed
        # transaction counts so ``queued_txs``/``_has_room`` stay O(1)
        # with chunked entries (len(deque) would undercount them).
        self._pending: deque = deque()
        self._pending_txs = 0
        self._deferred: deque = deque()
        self._deferred_txs = 0
        self.ingested = 0  # admitted into the mempool (back-compat name)
        self.offered = 0
        self.dropped = 0
        #: Per-client admission accounting (client id -> count), letting a
        #: workload harness attribute backpressure to client classes.
        self.admitted_by_client: Counter = Counter()
        self.dropped_by_client: Counter = Counter()

    # ------------------------------------------------------------------
    def _admit_one(self, tx: Tx) -> None:
        self._pending.append(tx)
        self._pending_txs += 1
        self.ingested += 1
        self.admitted_by_client[tx.tx_id[0]] += 1

    def _has_room(self) -> bool:
        return self.capacity_txs is None or self._pending_txs < self.capacity_txs

    def _headroom(self, want: int) -> int:
        if self.capacity_txs is None:
            return want
        return min(want, max(0, self.capacity_txs - self._pending_txs))

    def admit(self, txs, now: Optional[float] = None) -> int:
        """Admission control: accept transactions up to capacity.

        Returns the number admitted; overflow is dropped or deferred per
        the policy. ``now`` is accepted for symmetry with the client pump
        (admission is instantaneous in the model, so it is unused).

        This is the per-item reference path (and the oracle the bulk path
        is differentially tested against); hot callers go through
        :meth:`admit_batch`.
        """
        admitted = 0
        for tx in txs:
            if isinstance(tx, TxChunk):
                admitted += self._admit_chunk(tx)
                continue
            if not isinstance(tx, Tx):
                continue
            self.offered += 1
            if self._has_room():
                self._admit_one(tx)
                admitted += 1
            elif self.policy == "defer":
                self._deferred.append(tx)
                self._deferred_txs += 1
            else:
                self.dropped += 1
                self.dropped_by_client[tx.tx_id[0]] += 1
        return admitted

    def _admit_chunk(self, chunk: TxChunk) -> int:
        """Admit one lazy run: capacity headroom computed once, overflow
        split off with O(1) arithmetic instead of a per-tx loop."""
        count = chunk.count
        if count <= 0:
            return 0
        self.offered += count
        take = self._headroom(count)
        if take:
            head = chunk if take == count else chunk.split(take)[0]
            self._pending.append(head)
            self._pending_txs += take
            self.ingested += take
            self.admitted_by_client[chunk.client_id] += take
        overflow = count - take
        if overflow:
            rest = chunk if take == 0 else chunk.split(take)[1]
            if self.policy == "defer":
                self._deferred.append(rest)
                self._deferred_txs += overflow
            else:
                self.dropped += overflow
                self.dropped_by_client[chunk.client_id] += overflow
        return take

    def _admit_tx_run(self, txs: List[Tx]) -> int:
        """Bulk-admit materialised transactions: one headroom computation,
        one deque extend, one Counter update per outcome."""
        count = len(txs)
        self.offered += count
        take = self._headroom(count)
        if take:
            accepted = txs if take == count else txs[:take]
            self._pending.extend(accepted)
            self._pending_txs += take
            self.ingested += take
            self.admitted_by_client.update(tx.tx_id[0] for tx in accepted)
        if take < count:
            overflow = txs[take:]
            if self.policy == "defer":
                self._deferred.extend(overflow)
                self._deferred_txs += count - take
            else:
                self.dropped += count - take
                self.dropped_by_client.update(tx.tx_id[0] for tx in overflow)
        return take

    def admit_batch(self, items, now: Optional[float] = None) -> int:
        """Bulk admission: same outcome as :meth:`admit`, amortised cost.

        ``items`` may mix ``TxChunk`` runs (the workload fast path) with
        plain ``Tx`` objects; consecutive ``Tx`` runs are admitted with
        slice arithmetic. Because headroom is consumed strictly in arrival
        order, the admit/drop/defer outcome is invariant to how a batch is
        partitioned into chunks (pinned by test).
        """
        admitted = 0
        run: List[Tx] = []
        for item in items:
            if isinstance(item, TxChunk):
                if run:
                    admitted += self._admit_tx_run(run)
                    run = []
                admitted += self._admit_chunk(item)
            elif isinstance(item, Tx):
                run.append(item)
        if run:
            admitted += self._admit_tx_run(run)
        return admitted

    def ingest(self, txs) -> None:
        self.admit(txs)

    def next_fill(self, now: float) -> BlockFill:
        taken_ids: List[Tuple[int, int]] = []
        payload = 0
        pending = self._pending
        budget = self.config.txs_per_block
        block_size = self.config.block_size
        while pending and len(taken_ids) < budget:
            head = pending[0]
            if isinstance(head, TxChunk):
                size = head.size
                room = budget - len(taken_ids)
                if size > 0:
                    room = min(room, (block_size - payload) // size)
                take = min(room, head.count)
                if take <= 0:
                    break
                client_id = head.client_id
                start = head.start_seq
                taken_ids.extend(
                    (client_id, seq) for seq in range(start, start + take)
                )
                payload += take * size
                self._pending_txs -= take
                if take == head.count:
                    pending.popleft()
                else:
                    pending[0] = head.split(take)[1]
            else:
                if payload + head.size > block_size:
                    break
                pending.popleft()
                self._pending_txs -= 1
                payload += head.size
                taken_ids.append(head.tx_id)
        # Backpressure release: space freed by the proposal re-admits
        # deferred transactions in arrival order. Deferred entries were
        # already counted as offered at arrival, so release must bypass
        # the offered counter (the conservation law
        # ``offered == admitted + dropped + deferred_txs`` is pinned by
        # test across defer -> release cycles).
        deferred = self._deferred
        while deferred and self._has_room():
            head = deferred[0]
            if isinstance(head, TxChunk):
                take = self._headroom(head.count)
                if take == head.count:
                    deferred.popleft()
                    chunk = head
                else:
                    chunk, deferred[0] = head.split(take)
                self._deferred_txs -= take
                self._pending.append(chunk)
                self._pending_txs += take
                self.ingested += take
                self.admitted_by_client[chunk.client_id] += take
            else:
                deferred.popleft()
                self._deferred_txs -= 1
                self._admit_one(head)
        return BlockFill(payload, len(taken_ids), tuple(taken_ids))

    @property
    def queued_txs(self) -> int:
        return self._pending_txs

    @property
    def deferred_txs(self) -> int:
        return self._deferred_txs

    @property
    def admitted(self) -> int:
        """Transactions accepted into the mempool (alias of ``ingested``)."""
        return self.ingested


class _ClientAwareNetem:
    """Netem wrapper mapping client process ids onto host-node parameters.

    Clients get ids ``n, n+1, ...``; cluster-based shapers only know
    processes ``0..n-1``, so a client inherits the link characteristics of
    the node ``id mod n`` (its "access point")."""

    def __init__(self, base, n: int):
        self._base = base
        self._n = n
        self._base_link_key = getattr(base, "link_key", None)

    def _map(self, process: int) -> int:
        return process if process < self._n else process % self._n

    def params_between(self, src: int, dst: int):
        return self._base.params_between(self._map(src), self._map(dst))

    def link_key(self, src: int, dst: int):
        """A client shares its access point's link class by construction,
        so mapped ids delegate to the base shaper's classes (or stand in
        as the pair key when the base has none)."""
        base_key = self._base_link_key
        if base_key is None:
            return (self._map(src), self._map(dst))
        return base_key(self._map(src), self._map(dst))

    def rewrap(self, new_base) -> "_ClientAwareNetem":
        """Carry the client mapping over to a replacement base shaper.

        Netem swappers (e.g. ``topology.reconfig.swap_scenario``) call this
        duck-typed hook so installing a new shaper preserves the client ->
        access-point mapping instead of silently discarding it."""
        if isinstance(new_base, _ClientAwareNetem):
            new_base = new_base._base
        return _ClientAwareNetem(new_base, self._n)


class ClientHarness:
    """Real client processes (§2) submitting transactions over the network.

    Each client batches transactions every ``batch_interval`` seconds and
    sends them to the replica it currently believes is the leader; replica
    mempools (:class:`MempoolWorkload`) drain them into blocks; commit
    notifications close the loop, yielding end-to-end (submit-to-commit)
    latency. Transactions addressed to a deposed leader are simply lost --
    clients here do not retransmit (tracked in :attr:`lost_estimate`).

    Usage::

        cluster = Cluster(n=7, ..., workload_factory=MempoolWorkload factory)
        harness = ClientHarness(cluster, num_clients=4, rate_txs=500.0)
        harness.start()
        cluster.run(duration=20.0)
        print(harness.e2e_latency_stats())
    """

    def __init__(
        self,
        cluster,
        num_clients: int = 4,
        rate_txs: float = 500.0,
        batch_interval: float = 0.2,
    ):
        if num_clients < 1:
            raise ConfigError(f"need at least one client, got {num_clients}")
        if rate_txs <= 0 or batch_interval <= 0:
            raise ConfigError("rate and batch interval must be positive")
        self.cluster = cluster
        self.num_clients = num_clients
        self.rate_txs = rate_txs
        self.batch_interval = batch_interval
        self.tx_size = cluster.config.tx_size
        self.submitted: dict = {}
        self.e2e_latencies: List[float] = []
        self._client_ids = [cluster.n + k for k in range(num_clients)]
        # Idempotent: a second harness (or a workload harness layered on a
        # plain one) must not re-map already-mapped client ids.
        if not isinstance(cluster.network.netem, _ClientAwareNetem):
            cluster.network.netem = _ClientAwareNetem(
                cluster.network.netem, cluster.n
            )
        for client_id in self._client_ids:
            cluster.network.register(client_id)
        cluster.metrics.commit_listeners.append(self._on_commit)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn one submission loop per client (call after wiring)."""
        from repro.core.node import CLIENT_TX_TAG
        from repro.sim.process import Sleep, spawn

        per_client_rate = self.rate_txs / self.num_clients

        def client_loop(client_id):
            seq = 0
            backlog = 0.0
            while True:
                yield Sleep(self.batch_interval)
                backlog += per_client_rate * self.batch_interval
                count = int(backlog)
                backlog -= count
                if count == 0:
                    continue
                now = self.cluster.sim.now
                batch = []
                for _ in range(count):
                    tx = self._make_tx(client_id, seq, now)
                    self.submitted[tx.tx_id] = now
                    batch.append(tx)
                    seq += 1
                leader = self._current_leader()
                self.cluster.network.send(
                    client_id, leader, CLIENT_TX_TAG, batch,
                    size=count * self.tx_size,
                )

        for client_id in self._client_ids:
            spawn(self.cluster.sim, client_loop(client_id), name=f"client-{client_id}")

    def _make_tx(self, client_id: int, seq: int, now: float) -> Tx:
        """Hook: build one transaction (overridden by application-level
        harnesses that attach operation payloads, e.g. the KV store)."""
        return Tx((client_id, seq), self.tx_size, now)

    def _current_leader(self) -> int:
        views = [
            node.view for node in self.cluster.nodes if not node.stopped
        ] or [0]
        return self.cluster.policy.leader_of(max(max(views), 0))

    def _on_commit(self, record, block) -> None:
        for tx_id in block.tx_ids:
            submitted_at = self.submitted.pop(tx_id, None)
            if submitted_at is not None:
                self.e2e_latencies.append(record.time - submitted_at)

    # ------------------------------------------------------------------
    @property
    def committed_txs(self) -> int:
        return len(self.e2e_latencies)

    @property
    def lost_estimate(self) -> int:
        """Submitted transactions not (yet) committed."""
        return len(self.submitted)

    def e2e_latency_stats(self) -> dict:
        """End-to-end (submit-to-commit) latency summary with tail
        percentiles -- same shape as :meth:`Metrics.latency_stats`, plus
        p99/p999 (tail latency is the product under overload)."""
        from repro.runtime.metrics import E2E_PERCENTILES, latency_summary

        return latency_summary(sorted(self.e2e_latencies), E2E_PERCENTILES)


class PoissonWorkload:
    """Open-loop arrivals at ``rate_txs`` transactions per second.

    Deterministic given the RNG: arrivals are accounted in continuous time
    (expected counts, with optional jitter), so the workload composes with
    the deterministic simulator.
    """

    def __init__(
        self,
        config: ProtocolConfig,
        rate_txs: float,
        rng: random.Random = None,
        jitter: bool = True,
    ):
        if rate_txs < 0:
            raise ConfigError(f"negative arrival rate: {rate_txs}")
        self.config = config
        self.rate_txs = rate_txs
        self.rng = rng if rng is not None else random.Random(0)
        self.jitter = jitter
        self._last_drain = 0.0
        self._backlog = 0.0  # fractional queued transactions

    def next_fill(self, now: float) -> BlockFill:
        elapsed = max(0.0, now - self._last_drain)
        self._last_drain = now
        arrivals = self.rate_txs * elapsed
        if self.jitter and arrivals > 0:
            arrivals = max(0.0, self.rng.gauss(arrivals, arrivals ** 0.5))
        self._backlog += arrivals
        take = min(int(self._backlog), self.config.txs_per_block)
        self._backlog -= take
        return BlockFill(take * self.config.tx_size, take)

    @property
    def queued_txs(self) -> int:
        return int(self._backlog)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PoissonWorkload(rate={self.rate_txs}/s)"
