"""Tests for the PBFT baseline (clique, all-to-all, §1 / Table 1)."""

import pytest

from repro import Cluster
from repro.core import mode_spec


def run_pbft(n=7, duration=10.0, seed=0, crashes=(), scenario="national"):
    cluster = Cluster(n=n, mode="pbft", scenario=scenario, seed=seed, crashes=crashes)
    cluster.start()
    cluster.run(duration=duration)
    cluster.check_agreement()
    return cluster


class TestPbftBasics:
    def test_mode_registered(self):
        spec = mode_spec("pbft")
        assert spec.topology == "clique"
        assert spec.scheme == "secp"

    def test_commits_and_agreement(self):
        cluster = run_pbft()
        assert cluster.metrics.committed_blocks > 0
        assert cluster.metrics.max_view == 0

    def test_commit_heights_contiguous(self):
        cluster = run_pbft()
        records = cluster.metrics.records()
        assert [r.height for r in records] == list(range(1, len(records) + 1))

    def test_deterministic(self):
        a = run_pbft(seed=5)
        b = run_pbft(seed=5)
        assert [r.block_hash for r in a.metrics.records()] == [
            r.block_hash for r in b.metrics.records()
        ]

    def test_every_replica_commits_same_chain(self):
        cluster = run_pbft(n=10)
        reference = {}
        for node in cluster.nodes:
            for block in node.store.commit_log:
                reference.setdefault(block.height, block.hash)
                assert reference[block.height] == block.hash


class TestPbftComplexity:
    def test_quadratic_message_complexity(self):
        """§1: PBFT's all-to-all pattern is O(n²) per instance; HotStuff's
        star is O(n)."""

        def msgs_per_block(mode, n):
            cluster = Cluster(n=n, mode=mode, scenario="national")
            cluster.start()
            cluster.run(duration=8.0, max_commits=40)
            cluster.check_agreement()
            return cluster.network.messages_sent / max(
                1, cluster.metrics.committed_blocks
            )

        pbft_small, pbft_large = msgs_per_block("pbft", 7), msgs_per_block("pbft", 16)
        hs_small, hs_large = (
            msgs_per_block("hotstuff-secp", 7),
            msgs_per_block("hotstuff-secp", 16),
        )
        scale = 16 / 7
        # PBFT grows super-linearly (towards quadratic), HotStuff linearly
        assert pbft_large / pbft_small > 1.5 * scale
        assert hs_large / hs_small < 1.5 * scale

    def test_pbft_fast_at_small_n_slow_at_scale(self):
        """The motivation for trees: all-to-all collapses as n grows while
        the per-link budget stays fixed."""

        def tput(mode, n, scenario):
            cluster = Cluster(n=n, mode=mode, scenario=scenario)
            cluster.start()
            cluster.run(duration=60.0, max_commits=40)
            cluster.check_agreement()
            return cluster.metrics.throughput_txs(start=cluster.sim.now * 0.25)

        # §1: "can offer high throughput in small sized systems": one round
        # trip and ample bandwidth let the clique win at n=7 ...
        assert tput("pbft", 7, "national") > tput("kauri", 7, "national")
        # ... but all-to-all collapses as n grows (quadratic traffic), and
        # in bandwidth-constrained settings trees win at every tested size
        assert tput("kauri", 31, "national") > tput("pbft", 31, "national")
        assert tput("kauri", 16, "regional") > tput("pbft", 16, "regional")


class TestPbftFaults:
    def test_crashed_primary_rotates(self):
        cluster = Cluster(n=7, mode="pbft", scenario="national", seed=3)
        cluster.crash_at(cluster.policy.leader_of(0), 3.0)
        cluster.start()
        cluster.run(duration=30.0)
        cluster.check_agreement()
        assert cluster.metrics.max_view == 1
        assert cluster.metrics.commit_gap_after(3.0) is not None

    def test_two_consecutive_crashed_primaries(self):
        cluster = Cluster(n=13, mode="pbft", scenario="national", seed=4)
        for view in range(2):
            cluster.crash_at(cluster.policy.leader_of(view), 3.0)
        cluster.start()
        cluster.run(duration=60.0)
        cluster.check_agreement()
        assert cluster.metrics.max_view == 2
        assert cluster.metrics.commit_gap_after(3.0) is not None

    def test_f_crashed_replicas_tolerated(self):
        cluster = Cluster(n=7, mode="pbft", scenario="national", seed=6)
        primary = cluster.policy.leader_of(0)
        victims = [p for p in range(7) if p != primary][:2]
        for victim in victims:
            cluster.crash_at(victim, 2.0)
        cluster.start()
        cluster.run(duration=20.0)
        cluster.check_agreement()
        assert cluster.metrics.commit_gap_after(2.5) is not None
        assert cluster.metrics.max_view == 0  # quorum intact, no rotation

    @pytest.mark.parametrize("seed", range(4))
    def test_random_crash_schedules_preserve_agreement(self, seed):
        import random

        rng = random.Random(seed)
        cluster = Cluster(n=10, mode="pbft", scenario="national", seed=seed)
        victims = rng.sample(range(10), rng.randint(1, 3))
        for victim in victims:
            cluster.crash_at(victim, rng.uniform(1.0, 8.0))
        cluster.start()
        cluster.run(duration=60.0)
        cluster.check_agreement()
        survivors = [x for x in cluster.nodes if x.node_id not in victims]
        assert max(node.committed_height for node in survivors) > 0
