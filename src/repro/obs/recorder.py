"""Per-node phase recorder: where does one consensus instance's time go?

§4.3 decomposes instance latency into sending, processing and remaining
time analytically; the recorder captures the *measured* analogue per
instance at each replica:

- ``disseminate`` -- round-1 proposal handling: at the root, the uplink
  serialization of the proposal to its children (the measured ``t_s``); at
  other nodes, receipt + forwarding + validation of the proposal.
- ``aggregate``   -- Algorithm 3 time: waiting for children's partial vote
  aggregates and ⊕-merging them, summed over the three vote phases.
- ``wait``        -- remaining round-trip time: waiting for (and verifying)
  each phase's quorum certificate from the parent.

One :class:`PhaseRecorder` per node, installed by the cluster builder when
observability is enabled; protocol code checks ``recorder is not None``
once per hook, so a disabled run pays a single attribute load per span.
All times are simulated seconds, so recordings are deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

SPAN_KINDS = ("disseminate", "aggregate", "wait")


class PhaseRecorder:
    """Accumulates per-instance phase spans for one replica."""

    __slots__ = ("_instances",)

    def __init__(self) -> None:
        self._instances: Dict[int, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Recording hooks (called from repro.core)
    # ------------------------------------------------------------------
    def _record(self, height: int) -> Dict[str, float]:
        rec = self._instances.get(height)
        if rec is None:
            rec = self._instances[height] = {
                "height": height,
                "start": 0.0,
                "end": None,
                "decided": False,
                "disseminate": 0.0,
                "aggregate": 0.0,
                "wait": 0.0,
                "contributions": 0,
            }
        return rec

    def start(self, height: int, time: float) -> None:
        """Instance handler entered (proposal made or received)."""
        self._record(height)["start"] = time

    def disseminate(self, height: int, seconds: float) -> None:
        self._record(height)["disseminate"] += seconds

    def aggregate(self, height: int, seconds: float, contributions: int = 0) -> None:
        rec = self._record(height)
        rec["aggregate"] += seconds
        rec["contributions"] += contributions

    def wait(self, height: int, seconds: float) -> None:
        self._record(height)["wait"] += seconds

    def finish(self, height: int, time: float, decided: bool) -> None:
        rec = self._record(height)
        rec["end"] = time
        rec["decided"] = decided

    # ------------------------------------------------------------------
    # Queries (used by repro.obs.report)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instances)

    def instances(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> List[Dict[str, float]]:
        """Per-instance records whose handler *started* inside the half-open
        window ``[start, end)``, sorted by height."""
        records = []
        for height in sorted(self._instances):
            rec = self._instances[height]
            if start is not None and rec["start"] < start:
                continue
            if end is not None and rec["start"] >= end:
                continue
            records.append(rec)
        return records

    def summary(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> Dict[str, float]:
        """Aggregate span statistics over a window: count, decided count,
        and total/mean per span kind."""
        records = self.instances(start, end)
        out: Dict[str, float] = {
            "instances": len(records),
            "decided": sum(1 for r in records if r["decided"]),
        }
        for kind in SPAN_KINDS:
            total = sum(r[kind] for r in records)
            out[f"{kind}_total"] = total
            out[f"{kind}_mean"] = total / len(records) if records else 0.0
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhaseRecorder(instances={len(self._instances)})"
