"""Balanced-tree construction matching the paper's experimental shapes.

§7.1: system sizes rarely give perfect m-ary trees, so processes are
assigned to tree positions "such that it approximates a balanced tree".
Interior levels use the root fanout; the final (leaf) level distributes the
remaining processes as evenly as possible over the last interior level.
This reproduces the published shapes exactly:

- N=100, h=2: root fanout 10, internal fanouts 8-9
- N=200, h=2: root fanout 14, internal fanouts 13-14
- N=400, h=2: root fanout 20, internal fanouts 18-19
- N=100, h=3: fanout 5 (§7.8)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config import default_root_fanout
from repro.errors import TopologyError
from repro.topology.tree import Tree


def tree_level_sizes(n: int, height: int, root_fanout: Optional[int] = None) -> List[int]:
    """Number of nodes at each depth for a balanced tree of ``height``.

    Interior levels are full (``root_fanout ** depth``); the last level
    holds the remainder. Raises if ``n`` is too small to populate every
    interior level (the tree would not reach ``height``).
    """
    if height < 1:
        raise TopologyError(f"height must be >= 1, got {height}")
    if n < 2:
        raise TopologyError(f"a tree needs at least 2 processes, got {n}")
    fanout = root_fanout if root_fanout is not None else default_root_fanout(n, height)
    if fanout < 1:
        raise TopologyError(f"fanout must be >= 1, got {fanout}")
    if height == 1:
        return [1, n - 1]
    sizes = [1]
    for _ in range(height - 1):
        sizes.append(sizes[-1] * fanout)
    interior = sum(sizes)
    leaves = n - interior
    if leaves < 1:
        raise TopologyError(
            f"n={n} cannot fill a height-{height} tree with fanout {fanout} "
            f"(needs more than {interior} processes)"
        )
    sizes.append(leaves)
    return sizes


def build_tree(
    processes: Sequence[int],
    height: int,
    root_fanout: Optional[int] = None,
    internals_first: Optional[Sequence[int]] = None,
) -> Tree:
    """Build a balanced tree over ``processes``.

    ``internals_first`` optionally names the processes (in order: root,
    then interior levels breadth-first) to place in internal positions --
    this is how the reconfiguration policy draws internal nodes from a bin
    (Algorithm 4). Remaining processes become leaves, in their given order.
    """
    processes = list(processes)
    n = len(processes)
    sizes = tree_level_sizes(n, height, root_fanout)
    internal_count = sum(sizes[:-1])

    if internals_first is not None:
        internals = list(internals_first)[:internal_count]
        if len(internals) < internal_count:
            raise TopologyError(
                f"need {internal_count} internal nodes, got {len(internals)}"
            )
        if len(set(internals)) != len(internals):
            raise TopologyError("duplicate internal nodes")
        missing = set(internals) - set(processes)
        if missing:
            raise TopologyError(f"internal nodes not in process set: {sorted(missing)}")
        internal_set = set(internals)
        ordering = internals + [p for p in processes if p not in internal_set]
    else:
        ordering = processes

    # Slice the ordering into levels.
    levels: List[List[int]] = []
    cursor = 0
    for size in sizes:
        levels.append(ordering[cursor : cursor + size])
        cursor += size

    children: Dict[int, List[int]] = {}
    # Interior levels: parent at level k, children at level k+1, split evenly.
    for depth in range(len(levels) - 1):
        parents = levels[depth]
        kids = levels[depth + 1]
        children.update(_distribute(parents, kids))
    return Tree(levels[0][0], children)


def build_star(processes: Sequence[int], leader: Optional[int] = None) -> Tree:
    """HotStuff's topology: the leader connected directly to everyone."""
    processes = list(processes)
    if len(processes) < 2:
        raise TopologyError("a star needs at least 2 processes")
    head = processes[0] if leader is None else leader
    if head not in processes:
        raise TopologyError(f"leader {head} not in process set")
    return Tree(head, {head: [p for p in processes if p != head]})


def _distribute(parents: Sequence[int], kids: Sequence[int]) -> Dict[int, List[int]]:
    """Assign ``kids`` to ``parents`` as evenly as possible, in order.

    The first ``len(kids) % len(parents)`` parents get one extra child, so
    fanouts differ by at most one -- the 8-9 / 13-14 / 18-19 shapes of §7.1.
    """
    per_parent, extra = divmod(len(kids), len(parents))
    out: Dict[int, List[int]] = {}
    cursor = 0
    for index, parent in enumerate(parents):
        take = per_parent + (1 if index < extra else 0)
        if take:
            out[parent] = list(kids[cursor : cursor + take])
        cursor += take
    return out
