"""Event-heap simulator core.

The :class:`Simulator` owns a virtual clock and a heap of scheduled
callbacks. Everything else in the library (network links, CPUs, protocol
state machines) is built on top of :meth:`Simulator.schedule`.

The simulator is single-threaded and deterministic: events scheduled for the
same instant fire in scheduling order (FIFO), enforced by a sequence counter.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError


class EventHandle:
    """Handle for a scheduled callback; supports O(1) cancellation.

    Cancellation is lazy: the heap entry stays in place and is skipped when
    popped. ``cancelled`` and ``fired`` are exposed for introspection.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired")

    def __init__(self, time: float, seq: int, fn: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., None]] = fn
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from running; idempotent, no-op if fired."""
        self.cancelled = True
        self.fn = None  # break reference cycles early
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`. All stochastic
        behaviour in the library draws from :attr:`rng`, so a seed fully
        determines a run.
    strict:
        When ``True`` (default) an exception escaping a task or callback
        aborts :meth:`run` immediately. When ``False`` failures are recorded
        in :attr:`failures` and the run continues (useful for fault-injection
        experiments that expect tasks to die).
    """

    def __init__(self, seed: int = 0, strict: bool = True):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self.strict = strict
        self.failures: List[BaseException] = []
        self._heap: List[EventHandle] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        self._seq += 1
        handle = EventHandle(time, self._seq, fn, args)
        heapq.heappush(self._heap, handle)
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event. Returns ``False`` if the heap is empty."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            if handle.time < self.now:
                raise SimulationError("event heap went backwards in time")
            self.now = handle.time
            handle.fired = True
            fn, args = handle.fn, handle.args
            handle.fn, handle.args = None, ()
            self._events_processed += 1
            try:
                fn(*args)  # type: ignore[misc]
            except Exception as exc:
                if self.strict:
                    raise
                self.failures.append(exc)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or stopped.

        ``until`` advances the clock to exactly ``until`` even if no event
        fires there, matching the common "simulate T seconds" usage.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._heap and not self._stopped:
                nxt = self._heap[0]
                if nxt.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and nxt.time > until:
                    break
                self.step()
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop :meth:`run` after the current event completes."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of non-cancelled events still scheduled."""
        return sum(1 for h in self._heap if not h.cancelled)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.6f}, pending={self.pending_events})"
