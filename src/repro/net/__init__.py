"""Network substrate: links, NICs, channels, shaping, and fault injection.

The fabric models what the paper's Grid'5000 + NetEm testbed provides:

- per-pair propagation delay (RTT/2) and per-process uplink bandwidth
  (:mod:`repro.net.netem`, :mod:`repro.net.nic`);
- perfect point-to-point channels (§2), including an explicit
  retransmission/deduplication implementation over lossy links
  (:mod:`repro.net.perfect`);
- impatient channels (Algorithm 1) offering a blocking ``receive`` that
  returns either the sender's value or ⊥ after the known bound Δ
  (:mod:`repro.net.impatient`);
- crash/omission/delay fault injection (:mod:`repro.net.faults`).
"""

from repro.net.message import Message
from repro.net.netem import ClusterNetem, HomogeneousNetem, Netem
from repro.net.nic import Nic
from repro.net.network import Endpoint, Network
from repro.net.impatient import BOTTOM, ImpatientChannel
from repro.net.perfect import ReliableLink
from repro.net.faults import FaultInjector
from repro.net.trace import MessageTrace, TraceEvent

__all__ = [
    "MessageTrace",
    "TraceEvent",
    "Message",
    "Netem",
    "HomogeneousNetem",
    "ClusterNetem",
    "Nic",
    "Network",
    "Endpoint",
    "ImpatientChannel",
    "BOTTOM",
    "ReliableLink",
    "FaultInjector",
]
