"""Event-heap simulator core.

The :class:`Simulator` owns a virtual clock and a heap of scheduled
callbacks. Everything else in the library (network links, CPUs, protocol
state machines) is built on top of :meth:`Simulator.schedule`.

The simulator is single-threaded and deterministic: events scheduled for the
same instant fire in scheduling order (FIFO), enforced by a sequence counter.

Heap entries are ``(time, seq, handle)`` tuples, not handles: ``heapq``
then compares plain tuples C-level instead of dispatching to
``EventHandle.__lt__`` on every sift, which dominates the event-loop
profile at sweep scale (see ``repro perf``). ``(time, seq)`` is unique per
entry, so the handle itself is never compared.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError


class EventHandle:
    """Handle for a scheduled callback; supports O(1) cancellation.

    Cancellation is lazy: the heap entry stays in place and is skipped when
    popped. ``cancelled`` and ``fired`` are exposed for introspection. The
    owning simulator is notified on cancellation so it can keep its live
    pending-event counter exact and compact the heap when cancelled entries
    dominate it.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., None]] = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running; idempotent, no-op if fired."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        self.fn = None  # break reference cycles early
        self.args = ()
        if self._sim is not None:
            self._sim._note_cancelled()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`. All stochastic
        behaviour in the library draws from :attr:`rng`, so a seed fully
        determines a run.
    strict:
        When ``True`` (default) an exception escaping a task or callback
        aborts :meth:`run` immediately. When ``False`` failures are recorded
        in :attr:`failures` and the run continues (useful for fault-injection
        experiments that expect tasks to die).
    """

    def __init__(self, seed: int = 0, strict: bool = True):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self.strict = strict
        self.failures: List[BaseException] = []
        self._heap: List[tuple] = []  # (time, seq, EventHandle)
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self._pending = 0  # live (non-cancelled, non-fired) events
        self._cancelled_in_heap = 0  # lazily-cancelled entries awaiting pop

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        # Inlined schedule_at: this is the hottest allocation site in a run.
        time = self.now + delay
        self._seq += 1
        handle = EventHandle(time, self._seq, fn, args, sim=self)
        heapq.heappush(self._heap, (time, self._seq, handle))
        self._pending += 1
        return handle

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        self._seq += 1
        handle = EventHandle(time, self._seq, fn, args, sim=self)
        heapq.heappush(self._heap, (time, self._seq, handle))
        self._pending += 1
        return handle

    def _note_cancelled(self) -> None:
        """Bookkeeping hook for :meth:`EventHandle.cancel`.

        Keeps :attr:`pending_events` O(1) and compacts the heap when
        cancelled entries exceed half of it -- lazy-cancellation hygiene for
        long pacemaker-heavy runs, where timers are overwhelmingly cancelled
        rather than fired.
        """
        self._pending -= 1
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap > len(self._heap) // 2
            and len(self._heap) >= 64
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (pop order is unchanged:
        entries are strictly ordered by (time, seq))."""
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event. Returns ``False`` if none fired
        (the heap was empty or held only cancelled entries)."""
        heap = self._heap
        while heap:
            time, _seq, handle = heapq.heappop(heap)
            if handle.cancelled:
                self._cancelled_in_heap -= 1
                continue
            if time < self.now:
                raise SimulationError("event heap went backwards in time")
            self.now = time
            handle.fired = True
            self._pending -= 1
            fn, args = handle.fn, handle.args
            handle.fn, handle.args = None, ()
            self._events_processed += 1
            try:
                fn(*args)  # type: ignore[misc]
            except Exception as exc:
                if self.strict:
                    raise
                self.failures.append(exc)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or stopped.

        ``until`` advances the clock to exactly ``until`` even if no event
        fires there, matching the common "simulate T seconds" usage.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._heap and not self._stopped:
                time, _seq, handle = self._heap[0]
                if handle.cancelled:
                    heapq.heappop(self._heap)
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and time > until:
                    break
                # Count only events that actually fired: draining lazily
                # cancelled entries must not consume the max_events budget.
                if self.step():
                    processed += 1
                if max_events is not None and processed >= max_events:
                    break
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop :meth:`run` after the current event completes."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of non-cancelled events still scheduled (O(1): maintained
        as a live counter instead of scanning the heap)."""
        return self._pending

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.6f}, pending={self.pending_events})"
