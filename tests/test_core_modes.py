"""Unit tests for the mode registry (§6-§7 system variants)."""

import pytest

from repro.core import MODES, mode_spec
from repro.errors import ConfigError


def test_paper_systems_present():
    assert set(MODES) >= {"kauri", "kauri-np", "hotstuff-secp", "hotstuff-bls"}


def test_kauri_is_tree_bls_stretch():
    spec = mode_spec("kauri")
    assert spec.uses_tree
    assert spec.scheme == "bls"
    assert spec.pacing == "stretch"
    assert spec.pipelined


def test_kauri_np_is_sequential():
    spec = mode_spec("kauri-np")
    assert spec.uses_tree
    assert not spec.pipelined


def test_hotstuff_variants_are_star_chained():
    for name in ("hotstuff-secp", "hotstuff-bls"):
        spec = mode_spec(name)
        assert not spec.uses_tree
        assert spec.pacing == "chained"
        assert spec.pipelined
    assert mode_spec("hotstuff-secp").scheme == "secp"
    assert mode_spec("hotstuff-bls").scheme == "bls"


def test_ablation_mode():
    spec = mode_spec("kauri-secp")
    assert spec.uses_tree
    assert spec.scheme == "secp"


def test_pbft_mode():
    spec = mode_spec("pbft")
    assert spec.topology == "clique"
    assert not spec.uses_tree


def test_unknown_mode_rejected():
    with pytest.raises(ConfigError):
        mode_spec("raft")


def test_invalid_spec_fields_rejected():
    from repro.core.modes import ModeSpec

    with pytest.raises(ConfigError):
        ModeSpec("x", "ring", "bls", "stretch")
    with pytest.raises(ConfigError):
        ModeSpec("x", "tree", "rsa", "stretch")
    with pytest.raises(ConfigError):
        ModeSpec("x", "tree", "bls", "bursty")
