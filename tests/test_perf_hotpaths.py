"""Guard rails for the hot-path performance work.

Two kinds of protection:

- **Golden metrics**: the memo caches (digest, expected-MAC, validity
  sets) and the copy-on-write ⊕ trade wall-clock work for memory, but
  *simulated* results must be bit-for-bit what the seed code produced.
  Two sweep cells -- one Kauri/BLS, one HotStuff/secp -- are pinned to
  the exact metric values captured before the optimisation landed.
  These comparisons are ``==`` on floats on purpose.
- **Scaling**: folding N fresh shares into a growing aggregate (the
  Algorithm 3 pattern) must do O(1) Python-level merge work per ⊕, not
  O(shares so far). :data:`repro.crypto.bls.MERGE_STATS` counts the
  entries the Python merge loop actually walks.
"""

import pytest

from repro.config import KB
from repro.crypto.bls import MERGE_STATS, BlsScheme
from repro.crypto.costs import BLS_COSTS
from repro.crypto.keys import Pki
from repro.runtime.experiment import run_experiment


def _kauri_cell():
    return run_experiment(
        mode="kauri",
        scenario="global",
        n=100,
        block_size=100 * KB,
        stretch=2.0,
        duration=9.0,
        max_commits=20,
        seed=0,
    )


# ---------------------------------------------------------------------------
# Golden metrics: wall-clock caches must not leak into simulated results
# ---------------------------------------------------------------------------
def test_golden_kauri_cell_metrics_unchanged():
    """Fig. 5 cell (Kauri, global, N=100, 100KB, stretch 2): every metric
    equals the values captured on the pre-optimisation seed code."""
    result = _kauri_cell()
    assert result.throughput_txs == 474.0740740740741
    assert result.throughput_blocks == 2.3703703703703702
    assert result.latency["count"] == 16
    # Mean recaptured (last-ulp shift) when latency_stats moved from naive
    # sum to math.fsum; every other golden value is untouched.
    assert result.latency["mean"] == 3.4062286799999937
    assert result.latency["p50"] == 3.406282319999992
    assert result.latency["p95"] == 3.406282319999995
    assert result.latency["max"] == 3.406282319999995
    assert result.committed_blocks == 16
    assert result.view_changes == 0
    assert result.max_view == 0
    assert result.duration == 9.0


def test_golden_secp_cell_metrics_unchanged():
    """HotStuff-secp cell (global, N=31, 250KB): the non-aggregating
    scheme takes the SecpCollection fast paths; metrics are pinned to the
    seed-code capture as well."""
    result = run_experiment(
        mode="hotstuff-secp",
        scenario="global",
        n=31,
        block_size=250 * KB,
        duration=30.0,
        max_commits=12,
        seed=7,
    )
    assert result.throughput_txs == 200.0
    assert result.throughput_blocks == 0.4
    assert result.latency["mean"] == 5.446049439999896
    assert result.latency["p50"] == 5.446049439999891
    assert result.committed_blocks == 10
    assert result.view_changes == 0
    assert result.duration == 30.0


def test_same_seed_same_metrics():
    """Two runs of the same cell in one process agree exactly -- warm
    memo caches from the first run cannot perturb the second."""
    first = _kauri_cell()
    second = _kauri_cell()
    assert first.throughput_txs == second.throughput_txs
    assert first.latency == second.latency
    assert first.committed_blocks == second.committed_blocks
    assert first.view_changes == second.view_changes


# ---------------------------------------------------------------------------
# Scaling: ⊕ is copy-on-write, not copy-everything
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("n", [64, 256])
def test_fold_merge_work_is_linear(n):
    """Folding N singleton shares does O(N) total Python-level merge work.

    Each ⊕ walks only the smaller side (the incoming singleton), so
    entries_examined stays ~N after folding N shares; the quadratic
    pre-optimisation behaviour would examine ~N^2/2 entries.
    """
    pki = Pki(n)
    scheme = BlsScheme(pki, BLS_COSTS)
    value = ("scaling", n)
    singles = [scheme.new(pki.keypair(i), value) for i in range(n)]
    MERGE_STATS.reset()
    acc = scheme.empty()
    for single in singles:
        acc = acc.combine(single)
    assert len(acc.signers_for(value)) == n
    # 2x headroom over strictly-one-entry-per-merge; far below N^2/2.
    assert MERGE_STATS.entries_examined <= 2 * n


def test_fold_shares_slots_with_sources():
    """The growing aggregate inherits whole signer maps by reference when
    one side already holds the union (here: the first share folded into
    the empty aggregate)."""
    pki = Pki(8)
    scheme = BlsScheme(pki, BLS_COSTS)
    value = "slot-sharing"
    first = scheme.new(pki.keypair(0), value)
    MERGE_STATS.reset()
    acc = scheme.empty().combine(first)
    assert MERGE_STATS.slot_copies == 0
    assert acc.signers_for(value) == frozenset({0})


def test_combine_leaves_operands_untouched():
    """⊕ is copy-on-write: operands still answer queries identically
    after being merged into something larger."""
    pki = Pki(8)
    scheme = BlsScheme(pki, BLS_COSTS)
    value = "immutability"
    a = scheme.new(pki.keypair(1), value)
    b = scheme.new(pki.keypair(2), value)
    merged = a.combine(b)
    assert merged.signers_for(value) == frozenset({1, 2})
    assert a.signers_for(value) == frozenset({1})
    assert b.signers_for(value) == frozenset({2})
    assert a.cardinality() == 1 and b.cardinality() == 1
