"""Kauri core: communication abstraction, pipelining, and protocol nodes.

This is the paper's primary contribution (§3-§5):

- :mod:`repro.core.comm` -- ``broadcastMsg``/``waitFor`` on arbitrary
  rooted trees (Algorithms 2 and 3); a star is the height-1 special case,
  which is exactly HotStuff's pattern.
- :mod:`repro.core.perfmodel` -- the §4.3 performance model: sending /
  processing / remaining time, the pipelining stretch, and the expected
  speedup (generates Table 2).
- :mod:`repro.core.node` -- the full protocol node: HotStuff's four rounds
  over a pluggable topology, Kauri's stretch-paced pipelining, and the
  §5/§6 reconfiguration machinery.
- :mod:`repro.core.modes` -- the four evaluated systems: Kauri, Kauri-np,
  HotStuff-secp, HotStuff-bls (§7).
"""

from repro.core.comm import TreeComm
from repro.core.perfmodel import PerfModel
from repro.core.node import ProtocolNode
from repro.core.modes import MODES, ModeSpec, mode_spec
from repro.core.pipeline import AdaptivePacer
from repro.core.autotune import (
    PlacementResult,
    TuningResult,
    tune_heterogeneous,
    tune_homogeneous,
)

__all__ = [
    "TreeComm",
    "PerfModel",
    "ProtocolNode",
    "MODES",
    "ModeSpec",
    "mode_spec",
    "AdaptivePacer",
    "TuningResult",
    "PlacementResult",
    "tune_homogeneous",
    "tune_heterogeneous",
]
