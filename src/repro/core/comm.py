"""``broadcastMsg`` and ``waitFor`` on trees (paper Algorithms 2 and 3).

One :class:`TreeComm` is instantiated per process per view, bound to that
view's topology. The same code serves every role: the root injects data and
collects the final aggregate; internal nodes forward down and aggregate up;
leaves receive and vote. A star (height-1 tree) degenerates to HotStuff's
pattern with zero forwarding hops.

Timeout discipline: vote receives (Algorithm 3) always use the impatient
bound Δ, so a faulty child can never block aggregation -- the liveness
mechanism Theorem 2 relies on. Dissemination receives (Algorithm 2) accept
an optional timeout; the protocol passes ``None`` for rounds whose arrival
time depends on pipelining depth and lets the pacemaker bound the wait
instead (a documented deviation from Algorithm 1's fixed Δ that preserves
its guarantees: the receive still always terminates, via view change).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional, Tuple

from repro.crypto.collection import Collection
from repro.crypto.signature import SignatureScheme
from repro.errors import CryptoError
from repro.net.impatient import BOTTOM
from repro.net.network import Network
from repro.sim.cpu import Cpu
from repro.sim.engine import Simulator
from repro.sim.process import TIMEOUT
from repro.topology.tree import Tree


class TreeComm:
    """Tree-scoped communication primitives for one process."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: int,
        tree: Tree,
        delta: float,
    ):
        if node_id not in tree:
            raise ValueError(f"process {node_id} not in topology")
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.tree = tree
        self.delta = delta
        self.parent: Optional[int] = tree.parent(node_id)
        self.children: Tuple[int, ...] = tree.children(node_id)
        self._endpoint = network.endpoint(node_id)
        # A child heading a deeper subtree may legitimately take longer to
        # reply: its own aggregation waits up to Δ per level below it. The
        # per-child bound is therefore (1 + subtree height) · Δ, keeping
        # the worst case known, as Algorithm 1 requires.
        self._child_depth_factor: dict = {
            child: 1 + self._subtree_height(child) for child in self.children
        }

    def _subtree_height(self, node: int) -> int:
        base = self.tree.depth(node)
        return max(self.tree.depth(member) for member in self.tree.subtree(node)) - base

    @property
    def is_root(self) -> bool:
        return self.parent is None

    # ------------------------------------------------------------------
    # Raw edges
    # ------------------------------------------------------------------
    def send_to_children(self, tag: Hashable, payload: Any, size: int) -> None:
        """Forward ``payload`` down one level (Algorithm 2, lines 7-9).

        Routed through the fabric's batched :meth:`Network.multicast`: the
        §4.3 back-to-back child serializations are charged to the uplink in
        one pass instead of ``fanout`` independent sends. On a star
        topology the root's children are all other processes, so this is
        also HotStuff's leader broadcast.
        """
        if self.children:
            self.network.multicast(self.node_id, self.children, tag, payload, size)

    def send_to_parent(self, tag: Hashable, payload: Any, size: int) -> None:
        if self.parent is None:
            raise ValueError("the root has no parent")
        self.network.send(self.node_id, self.parent, tag, payload, size)

    def receive_from_parent(self, tag: Hashable, timeout: Optional[float]):
        """Coroutine: next message with ``tag`` from the parent, or ⊥."""
        if self.parent is None:
            raise ValueError("the root has no parent")
        parent = self.parent
        msg = yield from self._endpoint.receive(
            tag, timeout=timeout, match=lambda m: m.src == parent
        )
        if msg is TIMEOUT:
            return BOTTOM
        return msg

    # ------------------------------------------------------------------
    # Algorithm 2: broadcastMsg
    # ------------------------------------------------------------------
    def broadcast(
        self,
        tag: Hashable,
        data: Any = None,
        size: int = 0,
        timeout: Optional[float] = None,
    ):
        """Coroutine implementing Algorithm 2 at this process.

        At the root, ``data``/``size`` are the value to disseminate; at
        other processes they are ignored and the value is received from
        the parent (⊥ on timeout, in which case nothing is forwarded and
        ⊥ is returned). Returns the disseminated value.
        """
        if self.parent is not None:
            msg = yield from self.receive_from_parent(tag, timeout)
            if msg is BOTTOM:
                return BOTTOM
            data, size = msg.payload, msg.size
        self.send_to_children(tag, data, size)
        return data

    # ------------------------------------------------------------------
    # Algorithm 3: waitFor
    # ------------------------------------------------------------------
    def wait_for(
        self,
        tag: Hashable,
        own: Optional[Collection],
        scheme: SignatureScheme,
        cpu: Cpu,
        timeout: Optional[float] = None,
        observer: Optional[Callable[[float, int], None]] = None,
    ):
        """Coroutine implementing Algorithm 3 at this process.

        ``own`` is this process's vote as a singleton collection (``None``
        if it cannot vote, e.g. it never received the proposal); children's
        partial aggregates are received impatiently (bound ``timeout``,
        default Δ), validated (charged to ``cpu``), merged, and the result
        is relayed to the parent. Returns the final collection (meaningful
        at the root; at other nodes it is what was relayed).

        All per-child impatient timers start at phase entry, as if the
        receives ran concurrently: a faulty child costs at most its own Δ
        of *wall* time, never Δ per faulty sibling (crucial when many
        children are crashed -- the star-fallback recovery of §5.3 would
        otherwise stall behind f sequential timeouts).

        ``observer``, when given, is called once with ``(elapsed_seconds,
        partials_merged)`` when aggregation completes -- the phase timer the
        observability layer uses to attribute this node's aggregation span
        per consensus instance (§4.3's processing-time analogue).
        """
        base_bound = self.delta if timeout is None else timeout
        start = self.sim.now
        collection: Collection = own if own is not None else scheme.empty()
        merged = 0
        for child in self.children:
            deadline = start + base_bound * self._child_depth_factor[child]
            bound = max(0.0, deadline - self.sim.now)
            msg = yield from self._endpoint.receive(
                tag, timeout=bound, match=lambda m, c=child: m.src == c
            )
            if msg is TIMEOUT:
                continue  # ⊥: faulty or slow child; aggregate what we have
            partial = msg.payload
            if not isinstance(partial, Collection):
                continue  # Byzantine garbage in place of a collection
            yield from cpu.consume(scheme.cost_verify_share())
            yield from cpu.consume(scheme.cost_combine(1))
            try:
                collection = collection.combine(partial)
            except CryptoError:
                continue  # incompatible/forged partial: contributes nothing
            merged += 1
        if observer is not None:
            observer(self.sim.now - start, merged)
        if self.parent is not None:
            self.send_to_parent(tag, collection, collection.wire_size())
        return collection

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "root" if self.is_root else ("internal" if self.children else "leaf")
        return f"TreeComm(node={self.node_id}, {role}, fanout={len(self.children)})"
