"""Figure 12: reconfiguration under faults (§7.10).

Global scenario, N=100, fault injected mid-run:

- (a) one faulty leader: one reconfiguration, throughput recovers to the
  pre-fault level, Kauri keeps a tree;
- (b) three consecutive faulty leaders: three reconfigurations, still on
  trees (f < m);
- (c) f faulty processes poisoning every bin and then the first star
  leaders: Kauri degrades to a star within m + f + 1 reconfigurations and
  stabilises at star (HotStuff-level) throughput.

Timeout schedule note: our pacemaker derives its base from the estimated
instance latency (the paper calibrates 0.35 s / 1.7 s empirically on its
testbed), so absolute recovery times scale with that base; the structure
-- number of reconfigurations, tree-vs-star outcome, full recovery -- is
the reproduction target.
"""

import pytest
from conftest import SCALE, run_once

from repro.analysis import fig12_reconfiguration, format_table


def _series_preview(run, around, width=5):
    return [
        (t, round(v, 0))
        for t, v in run.timeseries
        if around - width * 2 <= t <= around + width * 6
    ]


def test_fig12a_single_faulty_leader(benchmark, save_table):
    run = run_once(
        benchmark,
        lambda: fig12_reconfiguration(
            "leader", n=100, scenario="global", fault_time=40.0, duration=100.0 * max(SCALE, 0.5)
        ),
    )
    rows = [(t, v) for t, v in run.timeseries]
    save_table(
        "fig12a",
        format_table(
            ("t (s)", "tx/s"),
            rows,
            title=f"Figure 12a: 1 faulty leader at t=40 (recovery {run.recovery_gap:.1f}s)",
        ),
    )
    assert run.max_view == 1  # exactly one reconfiguration
    assert not run.final_is_star  # Kauri keeps the tree
    assert run.recovery_gap is not None
    assert run.postfault_txs > 0.6 * run.prefault_txs  # full recovery


def test_fig12b_three_consecutive_faulty_leaders(benchmark, save_table):
    run = run_once(
        benchmark,
        lambda: fig12_reconfiguration(
            "three-leaders",
            n=100,
            scenario="global",
            fault_time=40.0,
            duration=160.0 * max(SCALE, 0.5),
        ),
    )
    save_table(
        "fig12b",
        format_table(
            ("t (s)", "tx/s"),
            run.timeseries,
            title=f"Figure 12b: 3 consecutive faulty leaders (recovery {run.recovery_gap:.1f}s)",
        ),
    )
    assert run.max_view == 3
    assert not run.final_is_star  # f=3 < m: trees throughout (§5.3)
    assert run.recovery_gap is not None
    assert run.postfault_txs > 0.5 * run.prefault_txs


def test_fig12c_internal_plus_leader_faults_star_fallback(benchmark, save_table):
    # The paper runs this in the global scenario with a 10 s timeout cap;
    # in our substrate a star's first commit in the global scenario takes
    # ~33 simulated seconds (strict per-process uplink model), so each dead
    # star view costs ~85 s and the full m+f+1 walk ~45 simulated minutes.
    # The national scenario gives the same structural walk at the paper's
    # ~10 s per view cadence (see EXPERIMENTS.md, F12 notes).
    run = run_once(
        benchmark,
        lambda: fig12_reconfiguration(
            "internal+leaders",
            n=100,
            scenario="national",
            fault_time=40.0,
            duration=700.0,
            bucket=10.0,
        ),
    )
    save_table(
        "fig12c",
        format_table(
            ("t (s)", "tx/s"),
            run.timeseries,
            title=(
                "Figure 12c: f faulty internal+leader nodes "
                f"(views={run.max_view}, faulty={len(run.faulty)})"
            ),
        ),
    )
    f = 33
    m = 9  # N=100, h=2 -> 11 internals -> 9 bins
    assert len(run.faulty) == f
    # §5.3 worst case: at most m + f + 1 reconfigurations
    assert 0 < run.max_view <= m + f + 1
    assert run.final_is_star  # degraded to a star ...
    assert run.recovery_gap is not None  # ... and recovered
    assert run.postfault_txs > 0  # stabilises at HotStuff-level throughput
