"""Unit + property tests for bins, evolving graphs, and reconfiguration
(paper §5, Algorithm 4, Theorem 3, §5.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import max_faults
from repro.errors import TopologyError
from repro.topology import (
    BinPartition,
    EvolvingGraph,
    ReconfigurationPolicy,
    all_internals_correct,
    first_robust_index,
    is_robust,
    t_bounded_conformity,
)


class TestBinPartition:
    def test_bins_are_disjoint_and_sized(self):
        partition = BinPartition(range(100), internal_count=11)
        assert partition.num_bins == 9  # floor(100/11)
        assert partition.are_disjoint()
        assert all(len(b) == 11 for b in partition.bins)

    def test_round_robin_selection(self):
        partition = BinPartition(range(100), internal_count=11)
        assert partition.bin(0) == partition.bin(9)
        assert partition.bin(1) != partition.bin(0)

    def test_pigeonhole_clean_bin(self):
        """Theorem 3: with f < m faults, some bin is all-correct."""
        partition = BinPartition(range(100), internal_count=11)
        faulty = list(range(0, 88, 11))  # one per bin would need m faults
        assert len(faulty) == 8 < partition.num_bins
        assert partition.has_clean_bin(faulty)

    def test_explicit_num_bins(self):
        partition = BinPartition(range(100), internal_count=11, num_bins=4)
        assert partition.num_bins == 4

    def test_invalid_arguments(self):
        with pytest.raises(TopologyError):
            BinPartition(range(10), internal_count=11)  # can't fill one bin
        with pytest.raises(TopologyError):
            BinPartition(range(100), internal_count=11, num_bins=10)
        with pytest.raises(TopologyError):
            BinPartition(range(100), internal_count=0)
        with pytest.raises(TopologyError):
            BinPartition([1, 1, 2], internal_count=1)


class TestReconfigurationPolicy:
    def test_n100_defaults_match_paper(self):
        """N=100, h=2: 11 internals -> m=9 bins; §7.10 uses m=10 loosely."""
        policy = ReconfigurationPolicy(range(100), height=2)
        assert policy.internal_count == 11
        assert policy.num_bins == 9

    def test_tree_views_then_star_fallback(self):
        policy = ReconfigurationPolicy(range(100), height=2)
        m = policy.num_bins
        for view in range(m):
            assert policy.is_tree_view(view)
            assert policy.configuration(view).height == 2
        assert not policy.is_tree_view(m)
        assert policy.configuration(m).is_star

    def test_consecutive_trees_use_disjoint_internals(self):
        policy = ReconfigurationPolicy(range(100), height=2)
        internals0 = set(policy.configuration(0).internal_nodes)
        internals1 = set(policy.configuration(1).internal_nodes)
        assert internals0.isdisjoint(internals1)

    def test_star_fallback_rotates_leader(self):
        policy = ReconfigurationPolicy(range(100), height=2)
        m = policy.num_bins
        leaders = [policy.leader_of(m + k) for k in range(5)]
        assert leaders == [0, 1, 2, 3, 4]

    def test_deterministic_and_cached(self):
        policy = ReconfigurationPolicy(range(100), height=2)
        assert policy.configuration(3) is policy.configuration(3)
        other = ReconfigurationPolicy(range(100), height=2)
        assert policy.configuration(3) == other.configuration(3)

    def test_cycle_wraps(self):
        policy = ReconfigurationPolicy(range(100), height=2)
        assert policy.configuration(0) == policy.configuration(policy.cycle_length)

    def test_star_policy_rotates_every_view(self):
        policy = ReconfigurationPolicy.star_policy(range(7))
        assert [policy.leader_of(v) for v in range(8)] == [0, 1, 2, 3, 4, 5, 6, 0]
        assert all(policy.configuration(v).is_star for v in range(8))
        assert not policy.is_tree_view(0)

    def test_worst_case_reconfigurations(self):
        """§5.3: m + f + 1 for trees; f + 1 for stars."""
        policy = ReconfigurationPolicy(range(100), height=2)
        f = max_faults(100)
        assert policy.worst_case_reconfigurations(f) == policy.num_bins + f + 1
        star = ReconfigurationPolicy.star_policy(range(100))
        assert star.worst_case_reconfigurations(f) == f + 1

    def test_negative_view_rejected(self):
        policy = ReconfigurationPolicy(range(100), height=2)
        with pytest.raises(TopologyError):
            policy.configuration(-1)


class TestTheorem3:
    """Algorithm 4 yields m-Bounded Conformity for f < m (Theorem 3)."""

    def test_one_faulty_leader_recovers_next_view(self):
        policy = ReconfigurationPolicy(range(100), height=2)
        root0 = policy.leader_of(0)
        graph = EvolvingGraph(policy.configuration)
        assert first_robust_index(graph, {root0}, horizon=20) == 1

    def test_f_less_than_m_recovers_within_m_steps(self):
        policy = ReconfigurationPolicy(range(100), height=2)
        m = policy.num_bins
        # poison bins 0..m-2 with one faulty internal each (f = m-1 < m)
        faulty = {policy.configuration(k).internal_nodes[3] for k in range(m - 1)}
        graph = EvolvingGraph(policy.configuration)
        index = first_robust_index(graph, faulty, horizon=m + 1)
        assert index is not None and index <= m - 1

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(0, 99), min_size=0, max_size=8))
    def test_t_bounded_conformity_random_faults(self, faulty):
        """Any f < m faults: a robust tree appears in every m-window."""
        policy = ReconfigurationPolicy(range(100), height=2)
        m = policy.num_bins
        if len(faulty) >= m:
            return
        graph = EvolvingGraph(policy.configuration)
        # Restrict to the tree phase of each cycle: check windows there.
        window = [is_robust(graph.at(v), faulty) for v in range(m)]
        assert any(window)

    def test_fallback_star_found_within_m_plus_f_plus_1(self):
        """§5.3 worst case: f >= m faults placed adversarially."""
        policy = ReconfigurationPolicy(range(100), height=2)
        m = policy.num_bins
        f = max_faults(100)
        # kill every tree (one internal per bin) and the first stars' leaders
        faulty = {policy.configuration(k).internal_nodes[0] for k in range(m)}
        star_leaders = [policy.leader_of(m + k) for k in range(f)]
        for leader in star_leaders:
            if len(faulty) >= f:
                break
            faulty.add(leader)
        graph = EvolvingGraph(policy.configuration)
        index = first_robust_index(graph, faulty, horizon=m + f + 2)
        assert index is not None
        assert index <= m + f  # i.e. at most m + f + 1 configurations tried

    def test_t_bounded_conformity_definition(self):
        policy = ReconfigurationPolicy(range(100), height=2)
        graph = EvolvingGraph(policy.configuration)
        faulty = {policy.leader_of(0)}
        m = policy.num_bins
        assert t_bounded_conformity(graph, t=m, faulty=faulty, horizon=3 * m)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=40, max_value=120),
    st.data(),
)
def test_property_bins_guarantee_robust_tree(n, data):
    """Randomized Theorem 3 check across system sizes."""
    policy = ReconfigurationPolicy(range(n), height=2)
    m = policy.num_bins
    f_cap = min(m - 1, max_faults(n))
    faulty = data.draw(
        st.sets(st.integers(0, n - 1), min_size=0, max_size=max(0, f_cap))
    )
    robust_found = any(
        all_internals_correct(policy.configuration(view), faulty)
        for view in range(m)
    )
    assert robust_found
