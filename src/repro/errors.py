"""Exception hierarchy for the Kauri reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class. Kernel-level control-flow exceptions (task
cancellation) derive from :class:`BaseException`-adjacent ``Exception`` but
are kept separate from user errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class TopologyError(ReproError):
    """A topology (tree/star) could not be built or is malformed."""


class CryptoError(ReproError):
    """A cryptographic object failed verification or was misused."""


class NetworkError(ReproError):
    """A network-level invariant was violated (unknown endpoint, bad size)."""


class ConsensusError(ReproError):
    """A consensus-level invariant was violated (conflicting commit, bad QC)."""


class SimulationError(ReproError):
    """The simulation kernel detected an internal inconsistency."""


class TaskCancelled(ReproError):
    """Raised inside a simulated task when it is cancelled.

    Protocol coroutines may catch this to run cleanup, but must re-raise
    (or simply return) promptly so the kernel can retire the task.
    """
