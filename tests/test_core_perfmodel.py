"""Unit tests for the §4.3 performance model."""

import pytest

from repro.config import GLOBAL, KB, NATIONAL, REGIONAL, ProtocolConfig
from repro.core import PerfModel
from repro.crypto.costs import BLS_COSTS, SECP_COSTS
from repro.errors import ConfigError


def kauri_model(n=100, fanout=10, height=2, params=GLOBAL, block=250 * KB):
    return PerfModel.for_topology(n, height, fanout, params, block, BLS_COSTS)


def hotstuff_model(n=100, params=GLOBAL, block=250 * KB, costs=SECP_COSTS):
    return PerfModel.for_star(n, params, block, costs)


class TestSendingTime:
    def test_formula_fanout_block_over_bandwidth(self):
        """§4.3: sending time ≈ m · b / c."""
        model = kauri_model()
        expected = 10 * model.block_wire_size() * 8 / 25e6
        assert model.sending_time == pytest.approx(expected)

    def test_star_sending_time_scales_with_n(self):
        # BLS keeps the embedded QC constant-size, isolating the (n-1) factor;
        # with secp the per-proposal QC also grows with the quorum.
        assert hotstuff_model(n=400, costs=BLS_COSTS).sending_time == pytest.approx(
            hotstuff_model(n=100, costs=BLS_COSTS).sending_time * 399 / 99, rel=0.01
        )
        assert hotstuff_model(n=400).sending_time > hotstuff_model(
            n=100
        ).sending_time * 399 / 99

    def test_tree_cuts_sending_time_by_max_speedup(self):
        tree = kauri_model(n=400, fanout=20)
        star = hotstuff_model(n=400, costs=BLS_COSTS)
        assert star.sending_time / tree.sending_time == pytest.approx(
            tree.max_speedup, rel=0.01
        )


class TestMaxSpeedup:
    def test_paper_example(self):
        """§4.3: 'in a system of 400 nodes, organized in a tree with fanout
        20, the maximum speedup we can expect Kauri to offer is 19.95'."""
        assert kauri_model(n=400, fanout=20).max_speedup == pytest.approx(19.95)


class TestProcessingTime:
    def test_bls_processing_linear_in_fanout(self):
        small = kauri_model(fanout=5)
        large = kauri_model(fanout=20)
        assert large.processing_time > small.processing_time
        # O(m): the per-unit slope matches the verify+combine cost
        slope = (large.processing_time - small.processing_time) / 15
        assert slope == pytest.approx(
            BLS_COSTS.aggregate_verify_time + BLS_COSTS.combine_per_input_time
        )

    def test_secp_processing_linear_in_quorum(self):
        """§3.3.2: classical signatures need O(N) verifications."""
        small = hotstuff_model(n=100)
        large = hotstuff_model(n=400)
        assert large.processing_time > 3 * small.processing_time


class TestStretch:
    def test_remaining_time_formula(self):
        model = kauri_model()
        # §4.3's simple form ...
        assert model.remaining_time_paper == pytest.approx(
            2 * (GLOBAL.rtt + model.processing_time)
        )
        # ... plus the store-and-forward refinement for the lower level
        assert model.remaining_time == pytest.approx(
            model.remaining_time_paper + model.sending_time
        )
        # stars reduce to the paper's formula exactly
        star = hotstuff_model()
        assert star.remaining_time == pytest.approx(star.remaining_time_paper)

    def test_stretch_is_remaining_over_bottleneck(self):
        model = kauri_model()
        assert model.pipelining_stretch == pytest.approx(
            model.remaining_time / max(model.sending_time, model.processing_time)
        )

    def test_smaller_blocks_need_larger_stretch(self):
        """§7.3: 'with smaller block sizes, higher pipelining stretch values
        are needed'."""
        assert (
            kauri_model(block=50 * KB).pipelining_stretch
            > kauri_model(block=250 * KB).pipelining_stretch
        )

    def test_stretch_grows_with_rtt(self):
        """§7.5: the model-chosen stretch grows steeply with RTT (the paper
        reports 7 -> 33 over 50 -> 400 ms; the exact values depend on the
        measured processing times, the growth does not)."""
        low = kauri_model(params=REGIONAL.with_rtt(0.050))
        high = kauri_model(params=REGIONAL.with_rtt(0.400))
        assert high.pipelining_stretch > 2.5 * low.pipelining_stretch

    def test_national_scenario_cpu_vs_bandwidth(self):
        """High bandwidth shifts the bottleneck toward the CPU."""
        national = kauri_model(params=NATIONAL)
        global_ = kauri_model(params=GLOBAL)
        assert not global_.is_cpu_bound
        assert (
            national.processing_time / national.sending_time
            > global_.processing_time / global_.sending_time
        )


class TestDerivedParameters:
    def test_proposal_interval_at_ideal_stretch_is_round_share(self):
        model = kauri_model()
        stretch = model.pipelining_stretch
        interval = model.proposal_interval(stretch)
        assert interval == pytest.approx(model.round_time / (1 + stretch))

    def test_interval_decreases_with_stretch(self):
        model = kauri_model()
        assert model.proposal_interval(10) < model.proposal_interval(2)
        with pytest.raises(ConfigError):
            model.proposal_interval(-1)

    def test_expected_throughput_pipelined_vs_not(self):
        model = kauri_model()
        config = ProtocolConfig()
        assert model.expected_throughput_txs(config) > model.expected_throughput_txs(
            config, pipelined=False
        )

    def test_instance_latency_counts_four_rounds(self):
        model = kauri_model()
        assert model.instance_latency() > model.round_time
        assert model.instance_latency() < 4 * model.round_time + 1.0

    def test_suggested_timeout_scales_with_latency(self):
        """The §7.10 calibration: Kauri's timeout << HotStuff's in the same
        scenario (they used 0.35 s vs 1.7 s)."""
        kauri = kauri_model()
        hotstuff = hotstuff_model()
        assert kauri.suggested_timeout(0.1) < hotstuff.suggested_timeout(0.1)

    def test_suggested_delta_positive(self):
        assert kauri_model().suggested_delta() > 0


class TestExpectedSpeedups:
    """The model must predict the paper's headline comparisons."""

    def test_kauri_beats_hotstuff_in_global_scenario(self):
        kauri = kauri_model(n=400, fanout=20)
        hotstuff = hotstuff_model(n=400)
        config = ProtocolConfig()
        ratio = kauri.expected_throughput_txs(config) / hotstuff.expected_throughput_txs(config)
        # §7.4: observed 28.2x at N=400 global (model predicted ~30)
        assert 15 < ratio < 45

    def test_speedup_grows_with_n(self):
        config = ProtocolConfig()

        def ratio(n, fanout):
            kauri = kauri_model(n=n, fanout=fanout)
            hotstuff = hotstuff_model(n=n)
            return kauri.expected_throughput_txs(config) / hotstuff.expected_throughput_txs(config)

        assert ratio(100, 10) < ratio(200, 14) < ratio(400, 20)


class TestTreeShapeAwareness:
    def test_balanced_paper_shapes_unchanged(self):
        """For the paper's N=100/200/400 h=2 shapes the leaves fan out
        narrower than the root, so the bottleneck stays at the root."""
        for n in (100, 200, 400):
            from repro.config import default_root_fanout

            fanout = default_root_fanout(n, 2)
            flat = PerfModel.for_topology(n, 2, fanout, GLOBAL, 250 * KB, BLS_COSTS)
            aware = PerfModel.for_tree_shape(n, 2, fanout, GLOBAL, 250 * KB, BLS_COSTS)
            assert aware.bottleneck_time == pytest.approx(flat.bottleneck_time)

    def test_skewed_shape_raises_bottleneck(self):
        """N=31, h=3, fanout 2: the last interior level fans out 6-wide;
        its forwarding time, not the root's sending time, binds."""
        aware = PerfModel.for_tree_shape(31, 3, 2, GLOBAL, 250 * KB, BLS_COSTS)
        naive = PerfModel.for_topology(31, 3, 2, GLOBAL, 250 * KB, BLS_COSTS)
        assert aware.forwarding_time > naive.sending_time
        assert aware.bottleneck_time > naive.bottleneck_time
        assert aware.pipelining_stretch < naive.pipelining_stretch

    def test_bottleneck_never_below_root_fanout(self):
        model = PerfModel.for_topology(
            100, 2, 10, GLOBAL, 250 * KB, BLS_COSTS, bottleneck_fanout=3
        )
        assert model.effective_bottleneck_fanout == 10

    def test_invalid_bottleneck_rejected(self):
        with pytest.raises(ConfigError):
            PerfModel.for_topology(
                100, 2, 10, GLOBAL, 250 * KB, BLS_COSTS, bottleneck_fanout=0
            )


class TestValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            kauri_model(n=1)
        with pytest.raises(ConfigError):
            kauri_model(fanout=0)
        with pytest.raises(ConfigError):
            kauri_model(fanout=200, n=100)
        with pytest.raises(ConfigError):
            kauri_model(height=0)
