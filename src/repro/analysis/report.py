"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Any, List, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Align ``rows`` under ``headers``; floats get sensible precision."""
    table: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in table:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
