"""Model validation: predicted vs measured throughput (§7.2-§7.3).

The paper argues its performance model, "albeit simple, can offer a good
estimate of the performance of the real system" (§7.3) and that observed
speedups track predictions within reasonable factors (§7.4: predicted ~30x,
observed 28.2x). This bench quantifies the same property for our substrate:
for every (scenario, system, N) cell, the §4.3 model's expected throughput
must be within a small factor of the measured steady state.
"""

from conftest import SCALE, run_grid, run_once

from repro.analysis import adaptive_duration, format_table
from repro.analysis.figures import _model_for
from repro.config import KB, SCENARIOS, ProtocolConfig
from repro.runtime import ExperimentSpec

GRID = [
    ("national", "kauri", 100),
    ("regional", "kauri", 100),
    ("global", "kauri", 100),
    ("global", "kauri", 200),
    ("global", "hotstuff-secp", 100),
    ("regional", "hotstuff-bls", 100),
]


def sweep():
    config = ProtocolConfig()
    specs = [
        ExperimentSpec(
            mode=mode,
            scenario=scenario,
            n=n,
            duration=adaptive_duration(
                mode, n, SCENARIOS[scenario], config.block_size, scale=SCALE
            ),
            max_commits=int(150 * SCALE) or 15,
        )
        for scenario, mode, n in GRID
    ]
    rows = []
    for (scenario, mode, n), result in zip(GRID, run_grid(specs)):
        params = SCENARIOS[scenario]
        model = _model_for(mode, n, params, config.block_size)
        pipelined = mode != "kauri-np"
        predicted = model.expected_throughput_txs(config, pipelined=pipelined)
        rows.append(
            (
                scenario,
                mode,
                n,
                round(predicted / 1000.0, 3),
                round(result.throughput_txs / 1000.0, 3),
                round(result.throughput_txs / max(predicted, 1e-9), 2),
            )
        )
    return rows


def test_model_predicts_measured_throughput(benchmark, save_table):
    rows = run_once(benchmark, sweep)
    save_table(
        "model_validation",
        format_table(
            ("Scenario", "System", "N", "Predicted Ktx/s", "Measured Ktx/s", "Ratio"),
            rows,
            title="Model validation: §4.3 prediction vs simulator",
        ),
    )
    for row in rows:
        ratio = row[5]
        # measured within [0.35, 1.3]x of predicted: the model ignores
        # warm-up, chained-pipeline depth limits and queueing, so it is an
        # upper bound more than an estimate -- same as the paper's model.
        assert 0.3 <= ratio <= 1.3, row
