#!/usr/bin/env python
"""Real client processes driving the chain (the system model's clients, §2).

Instead of the evaluation's saturated synthetic blocks, this example runs
client processes that submit transaction batches over the (simulated)
network to the leader's mempool, and measures *end-to-end* latency: from a
client handing over a transaction to the first replica committing the
block that contains it.

Run:  python examples/client_workload.py
"""

from repro import Cluster, ProtocolConfig
from repro.config import KB
from repro.runtime import ClientHarness, MempoolWorkload

N = 13
CLIENTS = 6
RATE_TXS = 3000.0  # offered load across all clients, tx/s
DURATION = 20.0


def main() -> None:
    config = ProtocolConfig(block_size=128 * KB, tx_size=512)
    cluster = Cluster(
        n=N,
        mode="kauri",
        scenario="national",
        config=config,
        seed=11,
        workload_factory=lambda node_id: MempoolWorkload(config),
    )
    harness = ClientHarness(cluster, num_clients=CLIENTS, rate_txs=RATE_TXS)

    print(f"{CLIENTS} clients offering {RATE_TXS:,.0f} tx/s to a "
          f"{N}-replica Kauri deployment\n")
    cluster.start()
    harness.start()
    cluster.run(duration=DURATION)
    cluster.check_agreement()

    metrics = cluster.metrics
    consensus = metrics.latency_stats()
    e2e = harness.e2e_latency_stats()
    committed_rate = harness.committed_txs / DURATION
    print(f"offered load        : {RATE_TXS:10,.0f} tx/s")
    print(f"committed           : {committed_rate:10,.0f} tx/s "
          f"({harness.committed_txs} transactions in {DURATION:.0f}s)")
    print(f"in flight / queued  : {harness.lost_estimate}")
    print(f"blocks committed    : {metrics.committed_blocks} "
          f"(avg {harness.committed_txs / max(1, metrics.committed_blocks):.0f} tx/block)")
    print()
    print(f"consensus latency   : p50 {consensus['p50'] * 1000:7.0f} ms "
          f"(proposal -> commit)")
    print(f"end-to-end latency  : p50 {e2e['p50'] * 1000:7.0f} ms, "
          f"p95 {e2e['p95'] * 1000:7.0f} ms (submit -> commit)")
    print()
    print("End-to-end latency exceeds consensus latency by the client's"
          "\nbatching delay plus mempool queueing at the leader.")


if __name__ == "__main__":
    main()
