"""Scaling projection -- and now measurement -- at 1000 validators (§1).

The paper opens with Diem's requirement to "initially support at least 100
validators and ... evolve over time to support 500-1,000 validators". The
simulator validates the §4.3 model up to N=400 (see
bench_model_validation.py); this bench extends the *validated model* to
N=1000 across systems and tree heights, reproducing the argument that only
pipelined trees keep usable throughput at that scale -- and showing the
paper's own remedy (§7.8: grow the tree height) kicking in.

Since the bitmap/flyweight/batch-dispatch work made N=1000 simulable in
minutes, the projection is no longer the last word: a second test *runs*
Kauri at N=1000 and pins the measured throughput against the projected
column, closing the loop the projection used to leave open.
"""

from conftest import SCALE, run_grid, run_once

from repro.analysis import adaptive_duration, format_table
from repro.config import GLOBAL, KB, ProtocolConfig, default_root_fanout
from repro.core.perfmodel import PerfModel
from repro.crypto.costs import BLS_COSTS, SECP_COSTS
from repro.runtime import ExperimentSpec

SIZES = (100, 200, 400, 700, 1000)
MEASURED_HEIGHTS = (2, 3)


def project():
    config = ProtocolConfig()
    rows = []
    for n in SIZES:
        star = PerfModel.for_star(n, GLOBAL, config.block_size, SECP_COSTS)
        entries = {
            "hotstuff-secp": star.expected_throughput_txs(config),
        }
        for height in (2, 3):
            fanout = default_root_fanout(n, height)
            model = PerfModel.for_tree_shape(
                n, height, fanout, GLOBAL, config.block_size, BLS_COSTS
            )
            entries[f"kauri-h{height}"] = model.expected_throughput_txs(config)
        rows.append(
            (
                n,
                round(entries["hotstuff-secp"], 1),
                round(entries["kauri-h2"], 1),
                round(entries["kauri-h3"], 1),
                round(entries["kauri-h3"] / max(entries["hotstuff-secp"], 1e-9), 1),
            )
        )
    return rows


def test_scaling_projection_to_1000_validators(benchmark, save_table):
    rows = run_once(benchmark, project)
    save_table(
        "scaling_projection",
        format_table(
            ("N", "HotStuff-secp tx/s", "Kauri h=2 tx/s", "Kauri h=3 tx/s",
             "h=3 speedup"),
            rows,
            title="Model projection, global scenario, 250 KB blocks",
        ),
    )
    by_n = {row[0]: row for row in rows}
    # HotStuff collapses towards zero at 1000 validators
    assert by_n[1000][1] < 0.1 * by_n[100][1]
    # deeper trees recover throughput at scale (§7.8's remedy)
    assert by_n[1000][3] > by_n[1000][2]
    # the speedup keeps growing with N
    speedups = [row[4] for row in rows]
    assert speedups == sorted(speedups)
    assert by_n[1000][4] > 50


def measure_n1000():
    """Run Kauri at N=1000 for real and compare against the projection."""
    config = ProtocolConfig()
    specs = [
        ExperimentSpec(
            mode="kauri",
            scenario="global",
            n=1000,
            height=height,
            duration=adaptive_duration(
                "kauri", 1000, GLOBAL, config.block_size,
                height=height, scale=SCALE,
            ),
            max_commits=int(40 * SCALE) or 6,
        )
        for height in MEASURED_HEIGHTS
    ]
    rows = []
    for height, result in zip(MEASURED_HEIGHTS, run_grid(specs)):
        fanout = default_root_fanout(1000, height)
        model = PerfModel.for_tree_shape(
            1000, height, fanout, GLOBAL, config.block_size, BLS_COSTS
        )
        projected = model.expected_throughput_txs(config)
        rows.append(
            (
                height,
                round(projected / 1000.0, 3),
                round(result.throughput_txs / 1000.0, 3),
                round(result.throughput_txs / max(projected, 1e-9), 2),
            )
        )
    return rows


def test_measured_n1000_tracks_projection(benchmark, save_table):
    """The projection's N=1000 column, confronted with a real run.

    The measured point keeps the projected column honest in both
    directions: within the same accuracy band bench_model_validation.py
    pins at N<=400, and reproducing the §7.8 depth ranking (h=3 beats
    h=2 at this scale) with simulated replicas, not formulas.
    """
    rows = run_once(benchmark, measure_n1000)
    save_table(
        "scaling_measured_n1000",
        format_table(
            ("Height", "Projected Ktx/s", "Measured Ktx/s", "Ratio"),
            rows,
            title="Kauri at N=1000: measured vs model projection",
        ),
    )
    by_height = {row[0]: row for row in rows}
    for row in rows:
        # Same band as model validation at N<=400: the model ignores
        # warm-up, pipeline-depth limits and queueing, so it is closer to
        # an upper bound than an estimate.
        assert 0.3 <= row[3] <= 1.3, row
    # §7.8's remedy, now observed rather than projected: the deeper tree
    # wins at N=1000.
    assert by_height[3][2] > by_height[2][2]
