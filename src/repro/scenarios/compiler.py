"""Lower scenario packs to frozen :class:`ExperimentSpec` grids.

The compiler is the proof obligation of the pack subsystem: a pack for an
existing figure must lower to **byte-identical** specs (same
``_encode_scenario`` cache keys) as the pre-pack inline grids, so the
on-disk result cache and the golden RunReports keep hitting. To that end
it reuses the exact same building blocks the figure generators always
used -- :func:`repro.runtime.horizon.adaptive_duration` for model-driven
horizons, ``int(blocks * scale) or blocks // 10`` for commit budgets,
``SCENARIOS`` / ``with_rtt`` / ``resilientdb_clusters`` for scenarios --
rather than re-deriving any of them.

Value-level validation lives here (the loader is structural): unknown
modes list the registry, unknown scenarios list the catalog, and fault
schedules that exceed the deployment's resilience are rejected as an
impossible quorum.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.config import (
    KB,
    SCENARIOS,
    ClusterParams,
    NetworkParams,
    ProtocolConfig,
    max_faults,
    mbps,
    ms,
    resilientdb_clusters,
)
from repro.core.modes import MODES
from repro.errors import ConfigError
from repro.runtime.horizon import adaptive_duration
from repro.runtime.sweep import ExperimentSpec, Scenario
from repro.runtime.workload import WorkloadSpec
from repro.scenarios.loader import (
    CELL_FIELDS,
    SCENARIO_KEYS,
    PackError,
    PackGrid,
    ScenarioPack,
    _check_keys,
    _suggest,
    _validate_axis,
)

#: Named multi-cluster deployments packs may reference via ``clusters = ...``.
CLUSTER_SCENARIOS = {"resilientdb": resilientdb_clusters}

#: Default model block size for adaptive horizons when the cell sets none
#: (matches ``ProtocolConfig().block_size``, the figures' 250 KB).
_DEFAULT_BLOCK = ProtocolConfig().block_size

_CONFIG_KEYS = tuple(f.name for f in dataclass_fields(ProtocolConfig))


def parse_scenario(raw: Any, where: str) -> Scenario:
    """Lower a pack ``scenario`` value to the sweep engine's vocabulary.

    - a string names a registered homogeneous scenario (kept as the
      string, so the cache key stays in the compact ``["name", ...]`` form);
    - ``{name=..., rtt_ms=..., bandwidth_mbps=...}`` builds a fresh
      :class:`NetworkParams`;
    - ``{base="regional", rtt_ms=50}`` derives from a registered scenario,
      keeping its name (the Figure 7 idiom);
    - ``{clusters="resilientdb", per_cluster=10}`` builds a heterogeneous
      multi-cluster deployment.
    """
    if isinstance(raw, str):
        if raw not in SCENARIOS:
            raise PackError(
                f"{where}: unknown scenario {raw!r}"
                f"{_suggest(raw, list(SCENARIOS))} "
                f"(registered: {', '.join(sorted(SCENARIOS))}; use a table "
                "for derived or cluster scenarios)"
            )
        return raw
    if not isinstance(raw, Mapping):
        raise PackError(
            f"{where}: scenario must be a name or a table, got "
            f"{type(raw).__name__}"
        )
    _check_keys(raw, SCENARIO_KEYS, where)
    forms = [key for key in ("name", "base", "clusters") if key in raw]
    if len(forms) != 1:
        raise PackError(
            f"{where}: a scenario table needs exactly one of "
            f"'name', 'base', or 'clusters' (got {forms or 'none'})"
        )
    if "clusters" in raw:
        kind = raw["clusters"]
        if kind not in CLUSTER_SCENARIOS:
            raise PackError(
                f"{where}: unknown cluster scenario {kind!r} "
                f"(registered: {', '.join(sorted(CLUSTER_SCENARIOS))})"
            )
        for key in ("rtt_ms", "bandwidth_mbps"):
            if key in raw:
                raise PackError(
                    f"{where}: {key!r} does not apply to a cluster scenario"
                )
        per_cluster = raw.get("per_cluster", 10)
        if not isinstance(per_cluster, int) or per_cluster < 1:
            raise PackError(f"{where}: per_cluster must be a positive integer")
        return CLUSTER_SCENARIOS[kind](per_cluster=per_cluster)
    if "per_cluster" in raw:
        raise PackError(f"{where}: 'per_cluster' needs a 'clusters' scenario")
    if "base" in raw:
        base = raw["base"]
        if base not in SCENARIOS:
            raise PackError(
                f"{where}: unknown base scenario {base!r}"
                f"{_suggest(str(base), list(SCENARIOS))} "
                f"(registered: {', '.join(sorted(SCENARIOS))})"
            )
        params = SCENARIOS[base]
        if "rtt_ms" in raw:
            params = params.with_rtt(ms(raw["rtt_ms"]))
        if "bandwidth_mbps" in raw:
            params = params.with_bandwidth_bps(mbps(raw["bandwidth_mbps"]))
        return params
    # name form: a fully explicit netem point
    missing = [key for key in ("rtt_ms", "bandwidth_mbps") if key not in raw]
    if missing:
        raise PackError(
            f"{where}: scenario table with 'name' needs explicit "
            f"{' and '.join(missing)}"
        )
    try:
        return NetworkParams(
            str(raw["name"]),
            rtt=ms(raw["rtt_ms"]),
            bandwidth_bps=mbps(raw["bandwidth_mbps"]),
        )
    except ConfigError as exc:
        raise PackError(f"{where}: {exc}") from None


def _model_params(scenario: Scenario) -> Optional[NetworkParams]:
    """Network parameters feeding the horizon model; None for clusters."""
    if isinstance(scenario, str):
        return SCENARIOS[scenario]
    if isinstance(scenario, NetworkParams):
        return scenario
    return None


@dataclass
class CompiledCell:
    """One lowered grid cell: the spec plus its raw pack bindings."""

    index: int
    label: Optional[str]
    #: The merged raw cell mapping (defaults + overrides + set + axis
    #: bindings) -- figure generators use this to key their output series.
    bindings: Dict[str, Any]
    spec: ExperimentSpec


@dataclass
class CompiledGrid:
    """A compiled pack: cells in deterministic expansion order."""

    pack: ScenarioPack
    scale: float
    cells: List[CompiledCell]

    @property
    def specs(self) -> List[ExperimentSpec]:
        return [cell.spec for cell in self.cells]

    def labels(self) -> List[str]:
        """Unique cell labels in first-seen order (figure series)."""
        seen: List[str] = []
        for cell in self.cells:
            if cell.label is not None and cell.label not in seen:
                seen.append(cell.label)
        return seen


def _expect(condition: bool, where: str, message: str) -> None:
    if not condition:
        raise PackError(f"{where}: {message}")


def _build_spec(
    merged: Mapping[str, Any],
    where: str,
    scale: float,
    seed: Optional[int],
    observability: Optional[bool],
) -> ExperimentSpec:
    """Validate one merged cell mapping and lower it to a spec."""
    _check_keys(merged, list(CELL_FIELDS), where)

    mode = merged.get("mode")
    _expect(mode is not None, where, "cell does not resolve a 'mode'")
    if mode not in MODES:
        raise PackError(
            f"{where}: unknown mode {mode!r}{_suggest(str(mode), list(MODES))} "
            f"(registered: {', '.join(sorted(MODES))})"
        )

    _expect("scenario" in merged, where, "cell does not resolve a 'scenario'")
    scenario = parse_scenario(merged["scenario"], where)

    n = merged.get("n")
    if isinstance(scenario, ClusterParams):
        if n is None:
            n = scenario.n
        elif n != scenario.n:
            raise PackError(
                f"{where}: n={n} contradicts the cluster scenario "
                f"({scenario.n} processes)"
            )
    _expect(n is not None, where, "cell does not resolve 'n'")
    _expect(isinstance(n, int) and n >= 1, where, f"n must be a positive integer, got {n!r}")

    faults = merged.get("faults", [])
    crashes: List[Tuple[int, float]] = []
    _expect(isinstance(faults, list), where, "'faults' must be a list")
    for entry in faults:
        if isinstance(entry, Mapping):
            _check_keys(entry, ("node", "at"), f"{where} faults")
            _expect("node" in entry and "at" in entry, where,
                    "each fault table needs 'node' and 'at'")
            node, when = entry["node"], entry["at"]
        elif isinstance(entry, (list, tuple)) and len(entry) == 2:
            node, when = entry
        else:
            raise PackError(
                f"{where}: each fault must be [node, at_seconds] or "
                f"{{node=..., at=...}}, got {entry!r}"
            )
        _expect(isinstance(node, int) and 0 <= node < n, where,
                f"fault node {node!r} outside 0..{n - 1}")
        _expect(isinstance(when, (int, float)) and when >= 0, where,
                f"fault time {when!r} must be a non-negative number")
        crashes.append((node, scale * float(when)))
    if crashes:
        f = max_faults(n)
        if len(crashes) > f:
            raise PackError(
                f"{where}: impossible quorum: {len(crashes)} crash faults "
                f"with n={n} (n >= 3f+1 tolerates at most f={f})"
            )

    block_kb = merged.get("block_kb")
    block_size: Optional[int] = None
    if block_kb is not None:
        _expect(isinstance(block_kb, (int, float)) and block_kb > 0, where,
                f"block_kb must be a positive number, got {block_kb!r}")
        block_size = int(block_kb * KB)

    config_raw = merged.get("config")
    config: Optional[ProtocolConfig] = None
    if config_raw is not None:
        _expect(isinstance(config_raw, Mapping), where, "'config' must be a table")
        _check_keys(config_raw, _CONFIG_KEYS, f"{where} [config]")
        try:
            config = ProtocolConfig(**dict(config_raw))
        except (ConfigError, TypeError) as exc:
            raise PackError(f"{where} [config]: {exc}") from None

    height = merged.get("height", 2)
    _expect(isinstance(height, int) and height >= 1, where,
            f"height must be a positive integer, got {height!r}")

    duration_raw = merged.get("duration")
    _expect(duration_raw is not None, where,
            "cell does not resolve a 'duration' ('adaptive' or seconds)")
    for key in ("instances", "min_duration"):
        if key in merged and duration_raw != "adaptive":
            raise PackError(
                f"{where}: {key!r} only applies to duration = 'adaptive'"
            )
    if duration_raw == "adaptive":
        params = _model_params(scenario)
        if params is None:
            raise PackError(
                f"{where}: duration = 'adaptive' cannot model a cluster "
                "scenario; give a numeric duration"
            )
        model_block = block_size if block_size is not None else (
            config.block_size if config is not None else _DEFAULT_BLOCK
        )
        duration = adaptive_duration(
            mode,
            n,
            params,
            model_block,
            height=height,
            min_duration=float(merged.get("min_duration", 30.0)),
            instances=float(merged.get("instances", 8.0)),
            scale=scale,
        )
    elif isinstance(duration_raw, (int, float)) and duration_raw > 0:
        duration = scale * float(duration_raw)
    else:
        raise PackError(
            f"{where}: duration must be 'adaptive' or a positive number, "
            f"got {duration_raw!r}"
        )

    blocks = merged.get("blocks")
    max_commits: Optional[int] = None
    if blocks is not None:
        _expect(isinstance(blocks, int) and blocks > 0, where,
                f"blocks must be a positive integer, got {blocks!r}")
        # The figures' commit-budget rule, verbatim: scale the budget, but
        # never let a tiny scale starve the cell below a tenth of it.
        max_commits = int(blocks * scale) or max(1, blocks // 10)

    stretch = merged.get("stretch")
    if stretch is not None:
        _expect(isinstance(stretch, (int, float)) and stretch >= 0, where,
                f"stretch must be a non-negative number, got {stretch!r}")
        stretch = float(stretch)

    kwargs: Dict[str, Any] = dict(
        mode=mode,
        scenario=scenario,
        n=n,
        block_size=block_size,
        stretch=stretch,
        height=height,
        duration=duration,
        max_commits=max_commits,
        seed=seed if seed is not None else merged.get("seed", 0),
        config=config,
        crashes=tuple(crashes),
    )
    if "root_fanout" in merged:
        kwargs["root_fanout"] = merged["root_fanout"]
    if "warmup_fraction" in merged:
        kwargs["warmup_fraction"] = float(merged["warmup_fraction"])
    if "lanes" in merged:
        lanes = merged["lanes"]
        _expect(isinstance(lanes, int) and lanes >= 1, where,
                f"lanes must be a positive integer, got {lanes!r}")
        kwargs["uplink_lanes"] = lanes
    if "saturation_threshold" in merged:
        kwargs["saturation_threshold"] = float(merged["saturation_threshold"])
    obs = observability if observability is not None else merged.get(
        "observability", False
    )
    _expect(isinstance(obs, bool), where,
            f"observability must be a boolean, got {obs!r}")
    kwargs["observability"] = obs
    workload_raw = merged.get("workload")
    if workload_raw is not None:
        _expect(isinstance(workload_raw, Mapping), where,
                "'workload' must be a table")
        try:
            kwargs["workload"] = WorkloadSpec.from_mapping(workload_raw)
        except ConfigError as exc:
            raise PackError(f"{where} [workload]: {exc}") from None
    try:
        return ExperimentSpec(**kwargs)
    except ConfigError as exc:  # e.g. NetworkParams re-validation
        raise PackError(f"{where}: {exc}") from None


def _apply_axis_overrides(
    pack: ScenarioPack, axes: Mapping[str, Sequence[Any]]
) -> List[PackGrid]:
    unused = set(axes)
    grids: List[PackGrid] = []
    for grid in pack.grids:
        declared = dict(grid.axes)
        for axis in axes:
            if axis in declared:
                declared[axis] = _validate_axis(
                    pack.name, grid.name, axis, list(axes[axis])
                )
                unused.discard(axis)
        grids.append(
            PackGrid(name=grid.name, set=grid.set, axes=tuple(declared.items()))
        )
    if unused:
        known = pack.axis_names
        missing = sorted(unused)[0]
        raise PackError(
            f"pack {pack.name!r}: axis override {missing!r} matches no "
            f"declared axis{_suggest(missing, known)} "
            f"(declared: {', '.join(known) or 'none'})"
        )
    return grids


def compile_pack(
    pack: ScenarioPack,
    scale: float = 1.0,
    seed: Optional[int] = None,
    observability: Optional[bool] = None,
    axes: Optional[Mapping[str, Sequence[Any]]] = None,
    overrides: Optional[Mapping[str, Any]] = None,
) -> CompiledGrid:
    """Expand a pack's grids into a :class:`CompiledGrid`.

    ``scale`` shrinks horizons/budgets uniformly (the figures' knob);
    ``seed`` replaces every cell's seed; ``observability`` forces the flag
    on or off; ``axes`` substitutes a declared axis's values (same raw
    vocabulary as the pack file); ``overrides`` overlays cell fields on
    top of ``[defaults]`` (but below ``[grid.set]`` and axis bindings).
    """
    if not isinstance(scale, (int, float)) or scale <= 0:
        raise PackError(f"pack {pack.name!r}: scale must be positive, got {scale!r}")
    if overrides:
        _check_keys(overrides, list(CELL_FIELDS), f"pack {pack.name!r} overrides")
    grids = _apply_axis_overrides(pack, axes) if axes else list(pack.grids)
    if not grids:
        grids = [PackGrid(name="default")]

    cells: List[CompiledCell] = []
    for grid in grids:
        base = {**pack.defaults, **(overrides or {}), **grid.set}
        combos: List[Dict[str, Any]] = [{}]
        for axis, values in grid.axes:
            composite = axis not in CELL_FIELDS
            expanded: List[Dict[str, Any]] = []
            for combo in combos:
                for value in values:
                    binding = dict(value) if composite else {axis: value}
                    expanded.append({**combo, **binding})
            combos = expanded
        for combo in combos:
            merged = {**base, **combo}
            index = len(cells)
            where = f"pack {pack.name!r}, grid {grid.name!r}, cell {index}"
            label = merged.pop("label", None)
            if label is not None and not isinstance(label, str):
                raise PackError(f"{where}: label must be a string")
            spec = _build_spec(merged, where, scale, seed, observability)
            cells.append(
                CompiledCell(index=index, label=label, bindings=merged, spec=spec)
            )
    return CompiledGrid(pack=pack, scale=scale, cells=cells)


def validate_pack(pack: ScenarioPack) -> CompiledGrid:
    """Dry-run compile at scale 1.0; raises :class:`PackError` on problems."""
    return compile_pack(pack, scale=1.0)
