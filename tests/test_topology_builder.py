"""Unit tests for balanced-tree construction (§7.1 shapes)."""

import pytest

from repro.errors import TopologyError
from repro.topology import build_star, build_tree, tree_level_sizes


class TestLevelSizes:
    @pytest.mark.parametrize(
        "n,height,expected",
        [
            (100, 2, [1, 10, 89]),
            (200, 2, [1, 14, 185]),
            (400, 2, [1, 20, 379]),
            (100, 3, [1, 5, 25, 69]),
            (7, 2, [1, 2, 4]),
        ],
    )
    def test_paper_shapes(self, n, height, expected):
        assert tree_level_sizes(n, height) == expected

    def test_star_levels(self):
        assert tree_level_sizes(100, 1) == [1, 99]

    def test_explicit_fanout(self):
        assert tree_level_sizes(100, 2, root_fanout=4) == [1, 4, 95]

    def test_too_small_system_rejected(self):
        with pytest.raises(TopologyError):
            tree_level_sizes(11, 2, root_fanout=10)  # interior needs 11 + leaves
        with pytest.raises(TopologyError):
            tree_level_sizes(1, 1)
        with pytest.raises(TopologyError):
            tree_level_sizes(10, 0)


class TestBuildTree:
    def test_n100_h2_matches_paper(self):
        """§7.1: N=100: root fanout 10, internal fanouts 8-9."""
        tree = build_tree(range(100), height=2)
        assert tree.fanout(tree.root) == 10
        internals = [node for node in tree.internal_nodes if node != tree.root]
        assert len(internals) == 10
        assert sorted({tree.fanout(node) for node in internals}) == [8, 9]
        assert tree.height == 2
        assert tree.n == 100

    def test_n200_h2_matches_paper(self):
        tree = build_tree(range(200), height=2)
        assert tree.fanout(tree.root) == 14
        fans = {tree.fanout(n) for n in tree.internal_nodes if n != tree.root}
        assert fans == {13, 14}

    def test_n400_h2_matches_paper(self):
        tree = build_tree(range(400), height=2)
        assert tree.fanout(tree.root) == 20
        fans = {tree.fanout(n) for n in tree.internal_nodes if n != tree.root}
        assert fans == {18, 19}

    def test_n100_h3_matches_paper(self):
        """§7.8: height 3 with fanout 5."""
        tree = build_tree(range(100), height=3)
        assert tree.height == 3
        assert tree.fanout(tree.root) == 5
        assert len(tree.internal_nodes) == 31  # 1 + 5 + 25

    def test_every_process_placed_once(self):
        tree = build_tree(range(100), height=2)
        assert tree.nodes == tuple(range(100))

    def test_internals_first_controls_placement(self):
        internals = [50, 51, 52, 53, 54, 55, 56, 57, 58, 59, 60]
        tree = build_tree(range(100), height=2, internals_first=internals)
        assert tree.root == 50
        assert set(tree.internal_nodes) == set(internals)

    def test_internals_first_too_short_rejected(self):
        with pytest.raises(TopologyError):
            build_tree(range(100), height=2, internals_first=[1, 2, 3])

    def test_internals_first_duplicates_rejected(self):
        with pytest.raises(TopologyError):
            build_tree(range(100), height=2, internals_first=[1] * 11)

    def test_internals_first_unknown_process_rejected(self):
        with pytest.raises(TopologyError):
            build_tree(range(100), height=2, internals_first=list(range(990, 1001)))

    def test_non_contiguous_process_ids(self):
        processes = [10, 20, 30, 40, 50, 60, 70]
        tree = build_tree(processes, height=2)
        assert set(tree.nodes) == set(processes)
        assert tree.root == 10


class TestBuildStar:
    def test_default_leader(self):
        star = build_star(range(5))
        assert star.root == 0
        assert star.children(0) == (1, 2, 3, 4)
        assert star.is_star

    def test_explicit_leader(self):
        star = build_star(range(5), leader=3)
        assert star.root == 3
        assert set(star.children(3)) == {0, 1, 2, 4}

    def test_unknown_leader_rejected(self):
        with pytest.raises(TopologyError):
            build_star(range(5), leader=99)

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            build_star([0])
