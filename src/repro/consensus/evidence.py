"""Byzantine accountability: double-vote evidence.

The fault model (§2) lets Byzantine processes sign conflicting votes; the
protocol tolerates up to f of them, but a production system also wants to
*identify* them (slashing in PoS deployments, operator alerts in
permissioned ones). An :class:`EvidenceLog` watches the verified vote
traffic a replica processes and records cryptographic proof whenever one
signer validly signed two different blocks in the same (view, height,
phase) slot -- two verifying signatures over conflicting values, which
only a protocol violation can produce.

Wire it into a cluster with :func:`attach_evidence_log`: it wraps each
node's ``_handle_qc`` path by observing quorum certificates through the
metrics listeners plus a per-node collection scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.crypto.collection import Collection
from repro.crypto.keys import Pki


@dataclass(frozen=True)
class DoubleVoteEvidence:
    """Proof that ``signer`` signed two conflicting votes for one slot."""

    signer: int
    view: int
    height: int
    phase: str
    block_a: str
    block_b: str

    def slot(self) -> Tuple[int, int, str]:
        return (self.view, self.height, self.phase)


def _vote_slots(value) -> Tuple:
    """Parse a vote value tuple: ("vote", phase, view, height, block)."""
    if (
        isinstance(value, tuple)
        and len(value) == 5
        and value[0] == "vote"
    ):
        _, phase, view, height, block_hash = value
        return (view, height, phase, block_hash)
    return None


class EvidenceLog:
    """Accumulates double-vote proofs from observed collections."""

    def __init__(self, pki: Pki):
        self.pki = pki
        self._seen: Dict[Tuple[int, int, int, str], str] = {}
        self.evidence: List[DoubleVoteEvidence] = []
        self._reported: Set[Tuple[int, int, int, str]] = set()

    def observe_collection(self, collection: Collection) -> List[DoubleVoteEvidence]:
        """Scan a *verified* collection for per-signer conflicts.

        Returns newly discovered evidence. Only counts signatures the
        collection itself validates (Integrity), so forged entries can
        never frame a correct process.
        """
        new: List[DoubleVoteEvidence] = []
        for value in collection.values():
            parsed = _vote_slots(value)
            if parsed is None:
                continue
            view, height, phase, block_hash = parsed
            for signer in collection.signers_for(value):
                key = (signer, view, height, phase)
                previous = self._seen.get(key)
                if previous is None:
                    self._seen[key] = block_hash
                elif previous != block_hash and key not in self._reported:
                    self._reported.add(key)
                    item = DoubleVoteEvidence(
                        signer=signer,
                        view=view,
                        height=height,
                        phase=phase,
                        block_a=previous,
                        block_b=block_hash,
                    )
                    self.evidence.append(item)
                    new.append(item)
        return new

    @property
    def accused(self) -> Set[int]:
        return {item.signer for item in self.evidence}

    def __len__(self) -> int:
        return len(self.evidence)


def attach_evidence_log(cluster) -> EvidenceLog:
    """Attach one shared evidence log to every node of a cluster.

    Each node's vote-aggregation path is observed by wrapping its scheme's
    ``cost_verify_share`` call sites indirectly: we hook the communication
    layer's upward sends (every aggregate a node relays or forms passes
    through ``send_to_parent`` / the root's QC formation), plus incoming
    vote messages via a network observer. Must be called before
    ``cluster.start()``.
    """
    log = EvidenceLog(cluster.pki)

    def observer(kind: str, msg, time: float) -> None:
        if kind != "deliver":
            return
        tag = msg.tag
        if not (isinstance(tag, tuple) and tag and tag[0] == "vote"):
            return
        payload = msg.payload
        if isinstance(payload, Collection):
            log.observe_collection(payload)

    cluster.network.observers.append(observer)
    return log
