#!/usr/bin/env python
"""State machine replication: a key-value store on top of Kauri.

Consensus orders blocks; this example gives the order meaning. Clients
issue ``set`` operations through the network; each replica applies its own
committed chain to a local KV state machine; at the end every replica's
state digest is identical -- the SMR contract, demonstrated end to end.

Run:  python examples/replicated_kvstore.py
"""

from repro import Cluster, ProtocolConfig
from repro.app import KvClientHarness, OpRegistry, attach_kv_application
from repro.config import KB
from repro.runtime import MempoolWorkload

N = 13
DURATION = 15.0


def main() -> None:
    config = ProtocolConfig(block_size=64 * KB)
    cluster = Cluster(
        n=N,
        mode="kauri",
        scenario="national",
        config=config,
        seed=21,
        workload_factory=lambda node_id: MempoolWorkload(config),
    )
    registry = OpRegistry()
    harness = KvClientHarness(
        cluster, registry, keyspace=32, num_clients=4, rate_txs=2000.0
    )
    machines = attach_kv_application(cluster, registry)

    cluster.start()
    harness.start()
    cluster.run(duration=DURATION)
    cluster.check_agreement()

    print(f"{N} replicas, {DURATION:.0f}s of simulated time, "
          f"{len(registry)} operations submitted\n")
    print(f"{'replica':>8} {'height':>7} {'ops applied':>12} {'state digest':>18}")
    for node_id, machine in sorted(machines.items()):
        print(f"{node_id:>8} {machine.applied_height:>7} "
              f"{machine.ops_applied:>12} {machine.digest():>18}")

    digests = {m.digest() for m in machines.values() if m.applied_height ==
               max(x.applied_height for x in machines.values())}
    print(f"\nDistinct state digests at the common height: {len(digests)}")
    assert len(digests) == 1, "state divergence!"
    sample = machines[0]
    some_key = next(iter(sorted(sample.state)))
    print(f"Example entry on every replica: {some_key} = {sample.get(some_key)}")
    print("Replicated state machine verified: all replicas agree "
          "byte-for-byte.")


if __name__ == "__main__":
    main()
