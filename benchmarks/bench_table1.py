"""Table 1: qualitative comparison of BFT systems (§1).

Kauri's row is derived from the implementation (resilience, fanout,
reconfiguration bound); the bench asserts the properties the paper's table
claims for it.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.analysis.tables import TABLE1_HEADERS, table1_rows
from repro.config import max_faults
from repro.topology import ReconfigurationPolicy


def test_table1_system_comparison(benchmark, save_table):
    rows = run_once(benchmark, lambda: table1_rows(n=100))
    save_table("table1", format_table(TABLE1_HEADERS, rows, title="Table 1 (n=100)"))

    kauri = next(r for r in rows if r[0] == "Kauri")
    # resilience: full f = (n-1)/3, unlike committee/hierarchical systems
    assert f"f={max_faults(100)}" in kauri[3]
    # deterministic finality, unlike committee-based designs
    assert kauri[4] == "yes"
    policy = ReconfigurationPolicy(range(100), height=2)
    assert str(policy.worst_case_reconfigurations(max_faults(100))) in kauri[5]
