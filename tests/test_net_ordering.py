"""FIFO-ordering properties of the fabric.

The protocol relies on per-link FIFO delivery (a child receives height-h
proposals before height-h+1: both traverse the same links and NICs are
FIFO). These property tests pin that down.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetworkParams
from repro.net import HomogeneousNetem, Network
from repro.sim import Simulator
from repro.sim.process import spawn

PARAMS = NetworkParams("t", rtt=0.02, bandwidth_bps=1e6)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(1, 5000), min_size=1, max_size=20))
def test_same_link_same_tag_fifo(sizes):
    """Messages of arbitrary sizes on one link arrive in send order."""
    sim = Simulator()
    net = Network(sim, HomogeneousNetem(PARAMS))
    net.register(0)
    net.register(1)
    got = []

    def receiver(count):
        for _ in range(count):
            msg = yield from net.endpoint(1).receive("t")
            got.append(msg.payload)

    spawn(sim, receiver(len(sizes)))
    for index, size in enumerate(sizes):
        net.send(0, 1, "t", index, size)
    sim.run()
    assert got == list(range(len(sizes)))


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(1, 5000), min_size=2, max_size=12), st.integers(0, 3))
def test_two_hop_forwarding_preserves_order(sizes, seed):
    """Store-and-forward through a relay keeps the original order -- the
    property the proposal pump depends on for parent-before-child blocks."""
    sim = Simulator(seed=seed)
    net = Network(sim, HomogeneousNetem(PARAMS))
    for node in range(3):
        net.register(node)
    got = []

    def relay(count):
        for _ in range(count):
            msg = yield from net.endpoint(1).receive("hop1")
            net.send(1, 2, "hop2", msg.payload, msg.size)

    def sink(count):
        for _ in range(count):
            msg = yield from net.endpoint(2).receive("hop2")
            got.append(msg.payload)

    spawn(sim, relay(len(sizes)))
    spawn(sim, sink(len(sizes)))
    for index, size in enumerate(sizes):
        net.send(0, 1, "hop1", index, size)
    sim.run()
    assert got == list(range(len(sizes)))


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 6), st.integers(0, 5))
def test_multi_lane_nics_may_reorder_across_sizes_but_not_equal_sizes(lanes, seed):
    """With parallel lanes, equal-size back-to-back messages still arrive
    in order (they start in lane order and finish in start order)."""
    sim = Simulator(seed=seed)
    net = Network(sim, HomogeneousNetem(PARAMS), uplink_lanes=lanes)
    net.register(0)
    net.register(1)
    got = []

    def receiver(count):
        for _ in range(count):
            msg = yield from net.endpoint(1).receive("t")
            got.append(msg.payload)

    count = 10
    spawn(sim, receiver(count))
    for index in range(count):
        net.send(0, 1, "t", index, 1000)
    sim.run()
    assert got == list(range(count))
