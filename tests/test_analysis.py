"""Tests for the analysis layer: tables, formatting, figure generators.

Figure generators run at miniature scale here; the full-scale paper
reproduction lives in benchmarks/.
"""

import math

import pytest

from repro.analysis import (
    adaptive_duration,
    fig5_stretch_sweep,
    fig8_latency_bandwidth,
    fig11_heterogeneous,
    fig12_reconfiguration,
    format_table,
    table1_rows,
    table2_rows,
)
from repro.analysis.tables import TABLE1_HEADERS, TABLE2_HEADERS
from repro.config import GLOBAL, KB, NATIONAL


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(("A", "Blong"), [(1, 2.5), ("xx", 10000.0)], title="T")
        lines = text.split("\n")
        assert lines[0] == "T"
        assert "A" in lines[1] and "Blong" in lines[1]
        assert "10,000" in text
        assert "2.500" in text

    def test_no_title(self):
        text = format_table(("A",), [(1,)])
        assert text.startswith("A")


class TestTables:
    def test_table1_structure(self):
        rows = table1_rows()
        assert len(rows) == 6
        assert all(len(row) == len(TABLE1_HEADERS) for row in rows)
        systems = [row[0] for row in rows]
        assert "Kauri" in systems and "HotStuff" in systems and "PBFT" in systems

    def test_table2_structure(self):
        rows = table2_rows()
        assert all(len(row) == len(TABLE2_HEADERS) for row in rows)
        # both systems for every configured scenario
        assert sum(1 for r in rows if r[1] == "kauri") == len(rows) // 2

    def test_table2_custom_grid(self):
        rows = table2_rows(configs=[("national", NATIONAL, 100)])
        assert len(rows) == 2


class TestAdaptiveDuration:
    def test_slow_configs_get_longer_windows(self):
        fast = adaptive_duration("kauri", 100, NATIONAL, 250 * KB)
        slow = adaptive_duration("hotstuff-secp", 400, GLOBAL, 250 * KB)
        assert slow > fast
        assert adaptive_duration("kauri", 100, NATIONAL, 250 * KB, scale=0.5) == (
            pytest.approx(fast * 0.5)
        )


class TestFigureGeneratorsSmoke:
    """Miniature runs: structure and basic sanity only."""

    def test_fig5_shape(self):
        data = fig5_stretch_sweep(
            block_sizes_kb=(250,), stretches=(1.0, 2.0), n=31, scale=0.05
        )
        assert set(data) == {250}
        assert [s for s, _ in data[250]] == [1.0, 2.0]
        assert all(tput >= 0 for _, tput in data[250])

    def test_fig8_includes_analytic_floor(self):
        data = fig8_latency_bandwidth(
            bandwidths_mbps=(1000,), modes=("kauri",), n=31, scale=0.05
        )
        assert "kauri" in data and "kauri-infinite" in data
        (bw, floor_ms) = data["kauri-infinite"][0]
        assert math.isinf(bw)
        assert floor_ms > 0

    def test_fig11_small(self):
        results = fig11_heterogeneous(
            modes=("kauri", "hotstuff-bls"), per_cluster=2, scale=0.2
        )
        assert {r.mode for r in results} == {"kauri", "hotstuff-bls"}
        assert all(r.n == 12 for r in results)

    def test_fig12_case_validation(self):
        with pytest.raises(ValueError):
            fig12_reconfiguration("meteor-strike", n=13, scenario="national")

    def test_fig12_leader_case_small(self):
        run = fig12_reconfiguration(
            "leader", n=13, scenario="national", fault_time=10.0, duration=30.0
        )
        assert run.max_view == 1
        assert len(run.faulty) == 1
        assert run.recovery_gap is not None
        assert not run.final_is_star

    def test_fig12_f_leaders_small(self):
        run = fig12_reconfiguration(
            "f-leaders", n=13, scenario="national", fault_time=10.0, duration=200.0
        )
        assert len(run.faulty) == 4  # f for n=13
        assert run.max_view > 1
        assert run.recovery_gap is not None
