"""Rooted dissemination/aggregation trees (paper §3.2).

A :class:`Tree` maps each process to its ordered children. The root is the
consensus leader; internal nodes aggregate votes; leaves only vote. A star
is the degenerate height-1 tree, which is exactly HotStuff's topology --
the protocol code is identical for both (§3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TopologyError


class Tree:
    """Immutable rooted tree over integer process ids."""

    def __init__(self, root: int, children: Dict[int, Sequence[int]]):
        self.root = root
        self._children: Dict[int, Tuple[int, ...]] = {
            node: tuple(kids) for node, kids in children.items() if kids
        }
        self._parent: Dict[int, int] = {}
        self._depth: Dict[int, int] = {}
        self._validate_and_index()

    def _validate_and_index(self) -> None:
        self._depth[self.root] = 0
        frontier: List[int] = [self.root]
        visited = {self.root}
        while frontier:
            node = frontier.pop()
            for child in self._children.get(node, ()):
                if child in visited:
                    raise TopologyError(
                        f"node {child} has two parents or forms a cycle"
                    )
                visited.add(child)
                self._parent[child] = node
                self._depth[child] = self._depth[node] + 1
                frontier.append(child)
        claimed = set(self._children) | {
            kid for kids in self._children.values() for kid in kids
        } | {self.root}
        unreachable = claimed - visited
        if unreachable:
            raise TopologyError(f"nodes not reachable from root: {sorted(unreachable)}")
        self._nodes: Tuple[int, ...] = tuple(sorted(visited))

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[int, ...]:
        return self._nodes

    @property
    def n(self) -> int:
        return len(self._nodes)

    def parent(self, node: int) -> Optional[int]:
        """The node's parent, or ``None`` for the root."""
        self._check(node)
        return self._parent.get(node)

    def children(self, node: int) -> Tuple[int, ...]:
        self._check(node)
        return self._children.get(node, ())

    def fanout(self, node: int) -> int:
        return len(self.children(node))

    def depth(self, node: int) -> int:
        self._check(node)
        return self._depth[node]

    @property
    def height(self) -> int:
        """Maximum depth of any node (a star has height 1)."""
        return max(self._depth.values()) if self.n > 1 else 0

    @property
    def internal_nodes(self) -> Tuple[int, ...]:
        """Nodes with at least one child, including the root."""
        return tuple(sorted(self._children))

    @property
    def leaves(self) -> Tuple[int, ...]:
        return tuple(node for node in self._nodes if node not in self._children)

    @property
    def is_star(self) -> bool:
        return self.height <= 1

    # ------------------------------------------------------------------
    def subtree(self, node: int) -> Tuple[int, ...]:
        """All nodes in the subtree rooted at ``node`` (inclusive)."""
        self._check(node)
        out: List[int] = []
        frontier = [node]
        while frontier:
            current = frontier.pop()
            out.append(current)
            frontier.extend(self._children.get(current, ()))
        return tuple(out)

    def path_to_root(self, node: int) -> Tuple[int, ...]:
        """Nodes from ``node`` up to and including the root."""
        self._check(node)
        path = [node]
        while path[-1] != self.root:
            path.append(self._parent[path[-1]])
        return tuple(path)

    def path_between(self, a: int, b: int) -> Tuple[int, ...]:
        """The unique tree path from ``a`` to ``b`` (inclusive)."""
        up_a = self.path_to_root(a)
        up_b = self.path_to_root(b)
        in_b = set(up_b)
        pivot = next(node for node in up_a if node in in_b)
        down = list(up_b[: up_b.index(pivot)])
        return tuple(list(up_a[: up_a.index(pivot) + 1]) + list(reversed(down)))

    def edges(self) -> Tuple[Tuple[int, int], ...]:
        """All (parent, child) edges."""
        return tuple(
            (node, child)
            for node in self._children
            for child in self._children[node]
        )

    def _check(self, node: int) -> None:
        if node not in self._depth:
            raise TopologyError(f"node {node} is not in the tree")

    # ------------------------------------------------------------------
    def __contains__(self, node: int) -> bool:
        return node in self._depth

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Tree)
            and self.root == other.root
            and self._children == other._children
            and self._nodes == other._nodes
        )

    def __hash__(self) -> int:
        return hash((self.root, tuple(sorted(self._children.items())), self._nodes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tree(root={self.root}, n={self.n}, height={self.height}, "
            f"internals={len(self.internal_nodes)})"
        )
