"""Generator-based simulated processes ("tasks").

A task is a Python generator that suspends by yielding *wait requests*:

- ``yield Sleep(duration)`` -- resume after ``duration`` simulated seconds.
- ``yield WaitSignal(signal)`` -- resume when the signal fires; evaluates to
  the value the signal was fired with.
- ``yield WaitSignal(signal, timeout=d)`` -- same, but evaluates to the
  sentinel :data:`TIMEOUT` if the signal has not fired within ``d`` seconds.
- ``yield other_task`` -- join: resume when the task finishes; evaluates to
  its return value (re-raising its exception, if any).

Sub-coroutines compose with plain ``yield from``; their ``return`` value is
the expression value, exactly like real coroutines. This lets the paper's
blocking pseudocode (Algorithms 1-3) transcribe almost verbatim.

Cancellation throws :class:`~repro.errors.TaskCancelled` inside the
generator at its current suspension point.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Union

from repro.errors import SimulationError, TaskCancelled
from repro.sim.engine import EventHandle, Simulator
from repro.sim.wheel import TimeoutHandle


class _Timeout:
    """Singleton sentinel returned by timed-out waits."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "TIMEOUT"

    def __bool__(self) -> bool:
        return False


TIMEOUT = _Timeout()


class Sleep:
    """Wait request: suspend for a fixed simulated duration."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise SimulationError(f"negative sleep: {duration}")
        self.duration = duration


class Signal:
    """One-shot broadcast event carrying an optional value.

    ``fire`` wakes every current waiter (in wait order) and makes all future
    waits complete immediately. Firing twice raises, preserving single-use
    semantics; use :meth:`fire_if_unfired` for races that are benign.
    """

    __slots__ = ("fired", "value", "_waiters")

    def __init__(self) -> None:
        self.fired = False
        self.value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        if self.fired:
            raise SimulationError("signal fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)

    def fire_if_unfired(self, value: Any = None) -> bool:
        """Fire unless already fired; returns whether this call fired it."""
        if self.fired:
            return False
        self.fire(value)
        return True

    def add_waiter(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        """Register a callback; returns an unsubscribe function."""
        if self.fired:
            raise SimulationError("cannot wait on an already-fired signal")
        self._waiters.append(callback)

        def unsubscribe() -> None:
            try:
                self._waiters.remove(callback)
            except ValueError:
                pass

        return unsubscribe


class WaitSignal:
    """Wait request: suspend until ``signal`` fires or ``timeout`` elapses."""

    __slots__ = ("signal", "timeout")

    def __init__(self, signal: Signal, timeout: Optional[float] = None):
        if timeout is not None and timeout < 0:
            raise SimulationError(f"negative timeout: {timeout}")
        self.signal = signal
        self.timeout = timeout


WaitRequest = Union[Sleep, WaitSignal, "Task"]


class Task:
    """Driver wrapping a generator into a simulated process.

    Created via :func:`spawn` (or ``Task(sim, gen)`` directly). The task
    starts on the next simulator event at the current time, never
    synchronously inside the spawner -- this keeps traces deterministic and
    independent of Python evaluation order.
    """

    __slots__ = (
        "sim",
        "name",
        "done",
        "result",
        "exception",
        "cancelled",
        "_gen",
        "_done_signal",
        "_pending_timer",
        "_pending_unsub",
        "_wait_token",
    )

    def __init__(self, sim: Simulator, gen: Generator, name: str = "task"):
        if not hasattr(gen, "send"):
            raise SimulationError(f"Task requires a generator, got {type(gen)!r}")
        self.sim = sim
        self.name = name
        self.done = False
        self.cancelled = False
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._gen = gen
        self._done_signal = Signal()
        self._pending_timer: Optional[Union[EventHandle, TimeoutHandle]] = None
        self._pending_unsub: Optional[Callable[[], None]] = None
        self._wait_token = 0
        sim.schedule_now(self._step, self._wait_token, "send", None)

    # ------------------------------------------------------------------
    def _clear_wait(self) -> None:
        if self._pending_timer is not None:
            self._pending_timer.cancel()
            self._pending_timer = None
        if self._pending_unsub is not None:
            self._pending_unsub()
            self._pending_unsub = None

    def _step(self, token: int, mode: str, payload: Any) -> None:
        """Resume the generator with a value ("send") or exception ("throw")."""
        if self.done or token != self._wait_token:
            return  # stale wakeup (race between signal and timeout)
        self._wait_token += 1
        self._clear_wait()
        try:
            if mode == "send":
                request = self._gen.send(payload)
            else:
                request = self._gen.throw(payload)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except TaskCancelled:
            self.cancelled = True
            self._finish(result=None)
            return
        except BaseException as exc:  # noqa: BLE001 - recorded and re-raised at join
            self._finish(exception=exc)
            if self.sim.strict:
                raise
            self.sim.failures.append(exc)
            return
        self._install_wait(request)

    def _install_wait(self, request: WaitRequest) -> None:
        token = self._wait_token
        if isinstance(request, Sleep):
            self._pending_timer = self.sim.schedule(
                request.duration, self._step, token, "send", None
            )
        elif isinstance(request, WaitSignal):
            self._install_signal_wait(request.signal, request.timeout, token)
        elif isinstance(request, Task):
            self._install_join(request, token)
        else:
            err = SimulationError(f"task {self.name!r} yielded {request!r}")
            self.sim.schedule_now(self._step, token, "throw", err)

    def _install_signal_wait(
        self, signal: Signal, timeout: Optional[float], token: int
    ) -> None:
        if signal.fired:
            self.sim.schedule_now(self._step, token, "send", signal.value)
            return
        self._pending_unsub = signal.add_waiter(
            lambda value: self.sim.schedule_now(self._step, token, "send", value)
        )
        if timeout is not None:
            # Receive deadlines are overwhelmingly cancelled (the signal
            # fires first), so they park in the timer wheel.
            self._pending_timer = self.sim.schedule_timeout(
                timeout, self._step, token, "send", TIMEOUT
            )

    def _install_join(self, other: "Task", token: int) -> None:
        def wake(_value: Any) -> None:
            if other.exception is not None:
                self.sim.schedule_now(self._step, token, "throw", other.exception)
            else:
                self.sim.schedule_now(self._step, token, "send", other.result)

        if other.done:
            wake(None)
        else:
            self._pending_unsub = other._done_signal.add_waiter(wake)

    def _finish(
        self, result: Any = None, exception: Optional[BaseException] = None
    ) -> None:
        self.done = True
        self.result = result
        self.exception = exception
        self._gen.close()
        self._done_signal.fire(result)

    # ------------------------------------------------------------------
    def cancel(self) -> None:
        """Cancel the task, throwing :class:`TaskCancelled` at its wait point.

        Idempotent; cancelling a finished task is a no-op. The cancellation
        is delivered as an immediate event, not synchronously.
        """
        if self.done:
            return
        self._clear_wait()
        self._wait_token += 1  # invalidate any in-flight wakeups
        self.sim.schedule_now(
            self._step, self._wait_token, "throw", TaskCancelled(self.name)
        )

    @property
    def done_signal(self) -> Signal:
        """Signal fired (with the task's result) when the task finishes."""
        return self._done_signal

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return f"Task({self.name!r}, {state})"


def spawn(sim: Simulator, gen: Generator, name: str = "task") -> Task:
    """Create and start a task from a generator."""
    return Task(sim, gen, name=name)


def wait_all(tasks: List[Task]) -> Generator:
    """Coroutine helper: join every task in ``tasks``; returns their results."""
    results = []
    for task in tasks:
        results.append((yield task))
    return results
