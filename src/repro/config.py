"""Scenario and deployment configuration.

Encodes the deployment scenarios of the paper's evaluation (§7.1):

- *global*:   200 ms RTT,   25 Mb/s links
- *regional*: 100 ms RTT,  100 Mb/s links
- *national*:  10 ms RTT, 1000 Mb/s links
- *heterogeneous*: the ResilientDB-style multi-cluster deployment (§7.9)

and the tree shapes used throughout the experiments: height-2 trees with
root fanout 10/14/20 for N = 100/200/400 and remaining processes spread
evenly below the internal nodes (internal fanouts 8-9 / 13-14 / 18-19,
matching §7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError

KB = 1024
MB = 1024 * KB


def mbps(value: float) -> float:
    """Convert megabits/second to bits/second."""
    return value * 1_000_000.0


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value / 1000.0


@dataclass(frozen=True)
class NetworkParams:
    """Homogeneous link characteristics: one RTT/bandwidth for every pair."""

    name: str
    rtt: float  # seconds, round-trip
    bandwidth_bps: float  # per-process uplink, bits/second

    def __post_init__(self) -> None:
        if self.rtt < 0:
            raise ConfigError(f"negative RTT: {self.rtt}")
        if self.bandwidth_bps <= 0:
            raise ConfigError(f"non-positive bandwidth: {self.bandwidth_bps}")

    @property
    def propagation_delay(self) -> float:
        """One-way propagation delay (half the RTT)."""
        return self.rtt / 2.0

    def with_rtt(self, rtt: float) -> "NetworkParams":
        return replace(self, rtt=rtt)

    def with_bandwidth_bps(self, bandwidth_bps: float) -> "NetworkParams":
        return replace(self, bandwidth_bps=bandwidth_bps)


#: §7.1 deployment scenarios.
GLOBAL = NetworkParams("global", rtt=ms(200), bandwidth_bps=mbps(25))
REGIONAL = NetworkParams("regional", rtt=ms(100), bandwidth_bps=mbps(100))
NATIONAL = NetworkParams("national", rtt=ms(10), bandwidth_bps=mbps(1000))

SCENARIOS: Dict[str, NetworkParams] = {
    "global": GLOBAL,
    "regional": REGIONAL,
    "national": NATIONAL,
}


@dataclass(frozen=True)
class ClusterParams:
    """Heterogeneous multi-cluster link characteristics (§7.9).

    ``cluster_of`` is derived from ``cluster_sizes``: processes are assigned
    to clusters contiguously. Intra-cluster pairs use ``intra``; a pair in
    clusters (a, b) uses ``inter[(a, b)]`` (symmetric lookups fall back to
    ``inter[(b, a)]``).
    """

    name: str
    cluster_sizes: Tuple[int, ...]
    intra: NetworkParams
    inter: Dict[Tuple[int, int], NetworkParams]

    @property
    def n(self) -> int:
        return sum(self.cluster_sizes)

    def cluster_of(self, process: int) -> int:
        if not 0 <= process < self.n:
            raise ConfigError(f"process {process} outside deployment of {self.n}")
        offset = 0
        for index, size in enumerate(self.cluster_sizes):
            offset += size
            if process < offset:
                return index
        raise ConfigError("unreachable")  # pragma: no cover

    def params_between(self, a: int, b: int) -> NetworkParams:
        ca, cb = self.cluster_of(a), self.cluster_of(b)
        if ca == cb:
            return self.intra
        link = self.inter.get((ca, cb)) or self.inter.get((cb, ca))
        if link is None:
            raise ConfigError(f"no inter-cluster params for clusters {ca},{cb}")
        return link

    def members(self, cluster: int) -> range:
        start = sum(self.cluster_sizes[:cluster])
        return range(start, start + self.cluster_sizes[cluster])


def resilientdb_clusters(per_cluster: int = 10) -> ClusterParams:
    """The §7.9 heterogeneous deployment, after ResilientDB's GeoBFT eval.

    Six clusters (Oregon, Iowa, Montreal, Belgium, Taiwan, Sydney) of
    ``per_cluster`` processes each. Cluster 0 (Oregon) has the highest
    bandwidth and lowest RTT to every other cluster, which is where the
    paper places the Kauri/HotStuff leader. RTTs approximate published
    inter-region measurements; intra-cluster links are LAN-class.
    """
    names = ["oregon", "iowa", "montreal", "belgium", "taiwan", "sydney"]
    rtts_ms = {
        (0, 1): 38, (0, 2): 65, (0, 3): 126, (0, 4): 118, (0, 5): 151,
        (1, 2): 31, (1, 3): 105, (1, 4): 155, (1, 5): 184,
        (2, 3): 82, (2, 4): 190, (2, 5): 210,
        (3, 4): 252, (3, 5): 272,
        (4, 5): 130,
    }
    inter = {}
    for (a, b), rtt in rtts_ms.items():
        # Links touching Oregon (cluster 0) get the best bandwidth, making
        # it the natural leader placement, as in the paper.
        bandwidth = mbps(200) if a == 0 else mbps(100)
        inter[(a, b)] = NetworkParams(
            f"{names[a]}-{names[b]}", rtt=ms(rtt), bandwidth_bps=bandwidth
        )
    intra = NetworkParams("intra-cluster", rtt=ms(1), bandwidth_bps=mbps(1000))
    return ClusterParams(
        name="resilientdb",
        cluster_sizes=tuple([per_cluster] * 6),
        intra=intra,
        inter=inter,
    )


def max_faults(n: int) -> int:
    """Classical BFT resilience: the largest f with n >= 3f + 1."""
    if n < 1:
        raise ConfigError(f"need at least one process, got {n}")
    return (n - 1) // 3


def quorum_size(n: int) -> int:
    """Byzantine quorum: n - f."""
    return n - max_faults(n)


def default_root_fanout(n: int, height: int) -> int:
    """Root fanout giving an approximately balanced tree of ``height``.

    Matches the paper's choices: N=100 -> 10, N=200 -> 14, N=400 -> 20 for
    height 2, and N=100 -> 5 for height 3 (§7.1, §7.8).
    """
    if height < 1:
        raise ConfigError(f"tree height must be >= 1, got {height}")
    if n < 2:
        raise ConfigError(f"need at least two processes for a tree, got {n}")
    return max(1, int((n - 1) ** (1.0 / height) + 0.5))


@dataclass(frozen=True)
class ProtocolConfig:
    """Per-run protocol parameters.

    ``stretch`` is Kauri's pipelining stretch (§4.3): the number of
    additional consensus instances started during one round. ``None`` means
    "derive from the performance model" (§7.2); 0 disables pipelining
    entirely (the Kauri-np baseline of §7.4). HotStuff ignores ``stretch``
    and uses its fixed pipeline depth of 4 (§4.1).
    """

    block_size: int = 250 * KB
    tx_size: int = 512  # bytes per transaction (payload accounting only)
    stretch: Optional[float] = None
    adaptive_stretch: bool = False  # §6 future work: adapt at runtime
    base_timeout: float = 1.7  # §7.10 HotStuff calibration; Kauri uses 0.35
    timeout_cap: float = 10.0  # §7.10: doubled twice, then capped
    delta: Optional[float] = None  # impatient-channel bound; None = derived
    max_inflight_factor: int = 4  # safety cap on outstanding instances

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ConfigError(f"non-positive block size: {self.block_size}")
        if self.tx_size <= 0:
            raise ConfigError(f"non-positive tx size: {self.tx_size}")
        if self.stretch is not None and self.stretch < 0:
            raise ConfigError(f"negative stretch: {self.stretch}")
        if self.base_timeout <= 0:
            raise ConfigError(f"non-positive timeout: {self.base_timeout}")

    @property
    def txs_per_block(self) -> int:
        return max(1, self.block_size // self.tx_size)

    def with_stretch(self, stretch: Optional[float]) -> "ProtocolConfig":
        return replace(self, stretch=stretch)

    def with_block_size(self, block_size: int) -> "ProtocolConfig":
        return replace(self, block_size=block_size)


#: §7.10 empirically calibrated fault-detection timeouts.
KAURI_TIMEOUT = 0.35
HOTSTUFF_TIMEOUT = 1.7
