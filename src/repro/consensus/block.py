"""Blocks and the replicated block store.

A block carries ``payload_size`` bytes of client transactions (the actual
transaction bytes are never materialized -- the evaluation only varies the
block size, §7.7) plus the quorum certificate justifying it. Blocks chain
by parent hash; committing a block commits its uncommitted ancestors.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConsensusError

GENESIS_HASH = "genesis"


def _block_hash(height: int, view: int, parent: str, proposer: int, salt: int) -> str:
    payload = f"{height}|{view}|{parent}|{proposer}|{salt}".encode()
    return hashlib.sha256(payload).hexdigest()[:16]


@dataclass(frozen=True)
class Block:
    """One proposal in the chain."""

    height: int
    view: int
    parent: str  # parent block hash
    proposer: int
    payload_size: int  # bytes of client transactions
    num_txs: int
    created_at: float  # simulated time of proposal
    hash: str = field(default="")
    justify_view: int = -1  # view of the QC embedded in the proposal
    #: Identifiers of the client transactions packed into this block.
    #: Empty for synthetic (saturated) workloads where transactions are
    #: accounted by count only.
    tx_ids: Tuple = ()

    @staticmethod
    def create(
        height: int,
        view: int,
        parent: str,
        proposer: int,
        payload_size: int,
        num_txs: int,
        created_at: float,
        justify_view: int = -1,
        salt: int = 0,
        tx_ids: Tuple = (),
    ) -> "Block":
        """Build a block, deriving its content hash; ``salt`` disambiguates
        otherwise-identical proposals (e.g. re-proposals, Byzantine twins)."""
        return Block(
            height=height,
            view=view,
            parent=parent,
            proposer=proposer,
            payload_size=payload_size,
            num_txs=num_txs,
            created_at=created_at,
            hash=_block_hash(height, view, parent, proposer, salt),
            justify_view=justify_view,
            tx_ids=tuple(tx_ids),
        )

    @property
    def is_genesis(self) -> bool:
        return self.hash == GENESIS_HASH


def make_genesis() -> Block:
    """The pre-agreed height-0 block."""
    return Block(
        height=0,
        view=-1,
        parent="",
        proposer=-1,
        payload_size=0,
        num_txs=0,
        created_at=0.0,
        hash=GENESIS_HASH,
    )


class BlockStore:
    """Per-replica DAG of known blocks with a committed chain prefix."""

    def __init__(self):
        genesis = make_genesis()
        self._blocks: Dict[str, Block] = {genesis.hash: genesis}
        self._committed: Dict[int, Block] = {0: genesis}
        self._committed_hashes = {genesis.hash}
        self.committed_height = 0
        self.commit_log: List[Block] = []

    # ------------------------------------------------------------------
    def add(self, block: Block) -> None:
        existing = self._blocks.get(block.hash)
        if existing is not None and existing != block:
            raise ConsensusError(f"hash collision for {block.hash}")
        self._blocks[block.hash] = block

    def get(self, block_hash: str) -> Optional[Block]:
        return self._blocks.get(block_hash)

    def __contains__(self, block_hash: str) -> bool:
        return block_hash in self._blocks

    def knows_chain(self, block: Block) -> bool:
        """True if every ancestor down to a committed block is known."""
        current = block
        while True:
            if current.is_genesis or current.hash in self._committed_hashes:
                return True
            parent = self._blocks.get(current.parent)
            if parent is None:
                return False
            current = parent

    def extends(self, block: Block, ancestor_hash: str) -> bool:
        """True if ``ancestor_hash`` is on ``block``'s ancestor chain
        (inclusive of the block itself). Works even when the ancestor block
        object itself is unknown, as long as a known descendant names it as
        parent."""
        current: Optional[Block] = block
        while current is not None:
            if current.hash == ancestor_hash or current.parent == ancestor_hash:
                return True
            current = self._blocks.get(current.parent)
        return False

    # ------------------------------------------------------------------
    def commit(self, block: Block) -> List[Block]:
        """Commit ``block`` and its uncommitted ancestors, oldest first.

        Returns the newly committed blocks. Raises
        :class:`~repro.errors.ConsensusError` on a safety violation: a
        different block already committed at one of the heights.
        """
        chain: List[Block] = []
        current: Optional[Block] = block
        while current is not None and current.height > 0:
            already = self._committed.get(current.height)
            if already is not None:
                if already.hash != current.hash:
                    raise ConsensusError(
                        f"conflicting commit at height {current.height}: "
                        f"{already.hash} vs {current.hash}"
                    )
                break
            chain.append(current)
            current = self._blocks.get(current.parent)
        if current is None:
            raise ConsensusError(
                f"cannot commit {block.hash}: ancestor chain incomplete"
            )
        # Verify the chain attaches to the committed prefix contiguously.
        chain.reverse()
        for member in chain:
            if member.height != self.committed_height + 1:
                raise ConsensusError(
                    f"commit gap: expected height {self.committed_height + 1}, "
                    f"got {member.height}"
                )
            self._committed[member.height] = member
            self._committed_hashes.add(member.hash)
            self.committed_height = member.height
            self.commit_log.append(member)
        return chain

    def committed_block(self, height: int) -> Optional[Block]:
        return self._committed.get(height)

    def is_committed(self, block_hash: str) -> bool:
        return block_hash in self._committed_hashes

    @property
    def known_blocks(self) -> int:
        return len(self._blocks)
