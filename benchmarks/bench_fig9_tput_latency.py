"""Figure 9: throughput vs latency under varying load (§7.7).

Global scenario, N=100, block sizes 32 KB - 1 MB (the paper's load knob).
Shapes: Kauri's throughput dominates at every block size; latency grows
with block size for everyone but much faster for the HotStuff variants,
whose latency overtakes Kauri's beyond ~125 KB blocks.
"""

from conftest import CACHE, JOBS, SCALE, run_once

from repro.analysis import fig9_throughput_latency, format_table


def test_fig9_throughput_vs_latency(benchmark, save_table):
    data = run_once(benchmark, lambda: fig9_throughput_latency(scale=SCALE, jobs=JOBS, use_cache=CACHE))
    rows = []
    for mode, series in data.items():
        for kb, ktx, lat_ms in series:
            rows.append((mode, kb, ktx, lat_ms))
    save_table(
        "fig9",
        format_table(
            ("System", "Block (KB)", "Ktx/s", "p50 latency (ms)"),
            rows,
            title="Figure 9: global, N=100, varying block size",
        ),
    )

    kauri = {kb: (ktx, lat) for kb, ktx, lat in data["kauri"]}
    secp = {kb: (ktx, lat) for kb, ktx, lat in data["hotstuff-secp"]}
    for kb in kauri:
        # Kauri's throughput substantially higher at every load (§7.7)
        assert kauri[kb][0] > secp[kb][0]
    # latency grows with block size for HotStuff ...
    assert secp[1024][1] > secp[32][1]
    # ... and overtakes Kauri for large blocks (paper: beyond ~125 KB)
    assert secp[1024][1] > kauri[1024][1]
    assert secp[500][1] > kauri[500][1]
