"""Workload engine: load shapes, MMPP, Zipf skew, aggregate client
classes, admission control, SLO accounting, and sweep/report plumbing."""

import json
import random

import pytest

from repro import Cluster, ProtocolConfig
from repro.errors import ConfigError
from repro.runtime import MempoolWorkload, Tx
from repro.runtime.sweep import ExperimentSpec
from repro.runtime.workload import (
    ClientClassSpec,
    LoadShape,
    MmppModulator,
    WorkloadHarness,
    WorkloadSpec,
    ZipfSampler,
    make_workload_factory,
    saturation_knee,
)


def simple_spec(**overrides):
    defaults = dict(
        classes=(
            ClientClassSpec(name="users", population=50_000, rate_per_user=0.004),
        ),
        keyspace=128,
        zipf_s=1.0,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


def run_workload(spec, seed=0, duration=10.0, n=7):
    config = ProtocolConfig()
    cluster = Cluster(
        n=n,
        mode="kauri",
        scenario="national",
        config=config,
        seed=seed,
        workload_factory=make_workload_factory(spec, config),
    )
    harness = WorkloadHarness(cluster, spec, seed=seed)
    cluster.start()
    harness.start()
    cluster.run(duration=duration)
    return cluster, harness


# ---------------------------------------------------------------------------
# Load shapes
# ---------------------------------------------------------------------------
class TestLoadShape:
    def test_steady_is_identity(self):
        shape = LoadShape()
        assert shape.multiplier(0.0) == 1.0
        assert shape.multiplier(12345.6) == 1.0

    def test_diurnal_oscillates_between_low_and_one(self):
        shape = LoadShape(kind="diurnal", period=100.0, low=0.2)
        assert shape.multiplier(0.0) == pytest.approx(0.2)  # trough at t=0
        assert shape.multiplier(50.0) == pytest.approx(1.0)  # peak mid-period
        assert shape.multiplier(100.0) == pytest.approx(0.2)
        for t in range(0, 100, 7):
            assert 0.2 <= shape.multiplier(float(t)) <= 1.0 + 1e-12

    def test_burst_is_a_square_pulse(self):
        shape = LoadShape(kind="burst", start=10.0, duration=5.0, factor=3.0)
        assert shape.multiplier(9.99) == 1.0
        assert shape.multiplier(10.0) == 3.0
        assert shape.multiplier(14.99) == 3.0
        assert shape.multiplier(15.0) == 1.0

    def test_flash_spikes_then_decays_toward_one(self):
        shape = LoadShape(kind="flash", start=5.0, factor=10.0, decay=2.0)
        assert shape.multiplier(4.9) == 1.0
        assert shape.multiplier(5.0) == pytest.approx(10.0)
        later = shape.multiplier(9.0)
        assert 1.0 < later < 10.0
        assert shape.multiplier(50.0) == pytest.approx(1.0, abs=1e-6)

    def test_shapes_compose_by_multiplication(self):
        burst = LoadShape(kind="burst", start=0.0, duration=100.0, factor=2.0)
        assert LoadShape.compose((burst, burst), 1.0) == pytest.approx(4.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            LoadShape(kind="sawtooth")

    def test_from_mapping_rejects_unknown_fields(self):
        with pytest.raises(ConfigError):
            LoadShape.from_mapping({"kind": "burst", "amplitude": 2.0})


class TestMmpp:
    def test_deterministic_given_seed(self):
        states = ((0.5, 3.0), (2.0, 1.0))
        a = MmppModulator(states, random.Random("x"))
        b = MmppModulator(states, random.Random("x"))
        ts = [i * 0.37 for i in range(200)]
        assert [a.multiplier(t) for t in ts] == [b.multiplier(t) for t in ts]

    def test_cycles_through_states(self):
        modulator = MmppModulator(((1.0, 1.0), (5.0, 1.0)), random.Random(7))
        seen = {modulator.multiplier(t * 0.25) for t in range(400)}
        assert seen == {1.0, 5.0}

    def test_rejects_empty_or_invalid_states(self):
        with pytest.raises(ConfigError):
            MmppModulator((), random.Random(0))
        with pytest.raises(ConfigError):
            MmppModulator(((1.0, 0.0),), random.Random(0))


class TestZipfSampler:
    def test_hot_keys_dominate(self):
        sampler = ZipfSampler(64, 1.0, random.Random(0))
        counts = [0] * 64
        for _ in range(20_000):
            counts[sampler.sample()] += 1
        # Rank 0 is the hottest key and the head outweighs the tail.
        assert counts[0] == max(counts)
        assert counts[0] > 4 * counts[32]
        assert sum(counts[:8]) > sum(counts[32:])

    def test_uniform_when_s_zero(self):
        sampler = ZipfSampler(16, 0.0, random.Random(1))
        counts = [0] * 16
        for _ in range(16_000):
            counts[sampler.sample()] += 1
        assert min(counts) > 700  # ~1000 each; grossly uniform

    def test_samples_stay_in_range(self):
        sampler = ZipfSampler(5, 2.0, random.Random(2))
        assert all(0 <= sampler.sample() < 5 for _ in range(1000))


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------
class TestSpecs:
    def test_steady_rate_is_population_times_rate(self):
        cls = ClientClassSpec(name="a", population=1_000_000, rate_per_user=0.001)
        assert cls.steady_rate == pytest.approx(1000.0)

    def test_from_mapping_round_trips_canonical(self):
        mapping = {
            "classes": [
                {
                    "name": "mobile",
                    "population": 1000,
                    "rate_per_user": 0.5,
                    "shapes": [{"kind": "diurnal", "period": 60.0}],
                    "mmpp": [[0.5, 4.0], [2.0, 2.0]],
                    "slo_ms": 750.0,
                },
            ],
            "capacity_txs": 100,
            "policy": "defer",
        }
        spec = WorkloadSpec.from_mapping(mapping)
        assert spec.classes[0].shapes[0].kind == "diurnal"
        assert spec.classes[0].mmpp == ((0.5, 4.0), (2.0, 2.0))
        again = WorkloadSpec.from_mapping(json.loads(json.dumps(mapping)))
        assert spec.canonical() == again.canonical()

    def test_from_mapping_rejects_unknown_keys(self):
        with pytest.raises(ConfigError):
            WorkloadSpec.from_mapping({"classes": [], "burst": True})
        with pytest.raises(ConfigError):
            WorkloadSpec.from_mapping(
                {"classes": [{"name": "a", "population": 1,
                              "rate_per_user": 1.0, "zipf": 2}]}
            )

    def test_duplicate_class_names_rejected(self):
        cls = ClientClassSpec(name="a", population=1, rate_per_user=1.0)
        with pytest.raises(ConfigError):
            WorkloadSpec(classes=(cls, cls))

    def test_invalid_policy_and_capacity_rejected(self):
        with pytest.raises(ConfigError):
            simple_spec(policy="shed")
        with pytest.raises(ConfigError):
            simple_spec(capacity_txs=0)


# ---------------------------------------------------------------------------
# Arrival determinism (the superposition engine)
# ---------------------------------------------------------------------------
class TestArrivalDeterminism:
    def test_same_seed_same_arrivals(self):
        spec = simple_spec()
        _, a = run_workload(spec, seed=3, duration=8.0)
        _, b = run_workload(spec, seed=3, duration=8.0)
        assert a.summary() == b.summary()

    def test_different_seeds_differ(self):
        spec = simple_spec()
        _, a = run_workload(spec, seed=1, duration=8.0)
        _, b = run_workload(spec, seed=2, duration=8.0)
        assert a.summary()["totals"]["generated"] != \
            b.summary()["totals"]["generated"]

    def test_expected_count_tracks_rate_without_jitter(self):
        spec = simple_spec(jitter=False)
        _, harness = run_workload(spec, duration=10.0)
        generated = harness.summary()["totals"]["generated"]
        # 200 tx/s for ~10 s of arrivals; accounting ticks make it exact
        # up to one batch of fractional backlog.
        assert abs(generated - 2000) <= 2000 * 0.05

    def test_sweep_backends_agree(self):
        spec = ExperimentSpec(
            n=7, scenario="national", duration=6.0, workload=simple_spec()
        )
        from repro.runtime.sweep import SweepRunner

        serial = SweepRunner(jobs=1, backend="serial").run([spec])[0]
        process = SweepRunner(jobs=2, backend="process").run([spec, spec])[0]
        assert serial.workload == process.workload
        assert serial.throughput_txs == process.throughput_txs


# ---------------------------------------------------------------------------
# Admission control / backpressure
# ---------------------------------------------------------------------------
class TestBackpressure:
    def test_drop_policy_conserves_offered(self):
        # Capacity below one accounting tick's batch (~20 txs), so every
        # tick must shed load no matter how fast proposals drain.
        spec = simple_spec(capacity_txs=10, policy="drop")
        cluster, harness = run_workload(spec, duration=10.0)
        offered = admitted = dropped = 0
        for node in cluster.nodes:
            offered += node.workload.offered
            admitted += node.workload.admitted
            dropped += node.workload.dropped
        assert offered == admitted + dropped
        assert dropped > 0  # 200 tx/s into a 10-tx mempool must shed load
        totals = harness.summary()["totals"]
        assert totals["offered"] == offered
        assert totals["dropped"] == dropped
        assert totals["drop_rate"] == pytest.approx(dropped / offered)

    def test_defer_policy_never_drops(self):
        spec = simple_spec(capacity_txs=10, policy="defer")
        cluster, harness = run_workload(spec, duration=10.0)
        offered = admitted = deferred = 0
        for node in cluster.nodes:
            offered += node.workload.offered
            admitted += node.workload.admitted
            deferred += node.workload.deferred_txs
            assert node.workload.dropped == 0
        assert offered == admitted + deferred
        assert harness.summary()["totals"]["dropped"] == 0

    def test_per_class_drop_attribution(self):
        spec = WorkloadSpec(
            classes=(
                ClientClassSpec(name="heavy", population=90_000,
                                rate_per_user=0.004),
                ClientClassSpec(name="light", population=2_000,
                                rate_per_user=0.004),
            ),
            capacity_txs=15,
        )
        _, harness = run_workload(spec, duration=8.0)
        by_name = {
            entry["name"]: entry for entry in harness.summary()["classes"]
        }
        assert by_name["heavy"]["dropped"] > by_name["light"]["dropped"]
        for entry in by_name.values():
            assert entry["admitted"] + entry["dropped"] <= entry["generated"]


# ---------------------------------------------------------------------------
# SLO + summary shape
# ---------------------------------------------------------------------------
class TestSummary:
    def test_summary_has_tail_percentiles_and_slo(self):
        _, harness = run_workload(simple_spec(), duration=10.0)
        summary = harness.summary()
        latency = summary["totals"]["latency"]
        for key in ("mean", "max", "count", "p50", "p95", "p99", "p999"):
            assert key in latency
        entry = summary["classes"][0]
        assert entry["committed"] == latency["count"]
        slo = entry["slo"]
        assert 0.0 <= slo["attainment"] <= 1.0
        assert slo["met"] is (slo["observed_ms"] <= slo["target_ms"])

    def test_kv_application_sees_zipf_keys(self):
        from repro.app.kvstore import OpRegistry, attach_kv_application

        spec = simple_spec(keyspace=32, zipf_s=1.2)
        config = ProtocolConfig()
        cluster = Cluster(
            n=7, mode="kauri", scenario="national", config=config, seed=0,
            workload_factory=make_workload_factory(spec, config),
        )
        registry = OpRegistry()
        machines = attach_kv_application(cluster, registry)
        harness = WorkloadHarness(cluster, spec, registry=registry, seed=0)
        cluster.start()
        harness.start()
        cluster.run(duration=8.0)
        machine = machines[0]
        assert machine.ops_applied > 0
        assert set(machine.state) <= {f"k{i}" for i in range(32)}
        # Zipf skew: the hot key must have been written.
        assert "k0" in machine.state


class TestSaturationKnee:
    def test_knee_is_last_good_point(self):
        points = [
            {"goodput": 0.99, "slo_met": True},
            {"goodput": 0.97, "slo_met": True},
            {"goodput": 0.5, "slo_met": False},
        ]
        assert saturation_knee(points) == 1

    def test_no_good_point_gives_minus_one(self):
        assert saturation_knee([{"goodput": 0.1, "slo_met": False}]) == -1


# ---------------------------------------------------------------------------
# Plumbing: spec cache keys, reports, packs
# ---------------------------------------------------------------------------
class TestPlumbing:
    def test_classic_cache_keys_unchanged(self):
        # Pinned before the workload field existed: adding it must not
        # perturb cache keys (or goldens) of non-workload specs.
        assert ExperimentSpec().key() == (
            "1da26d6a47818cd2f0005243d24cf1bbfab1b058ca57fda0aedd946623551c88"
        )
        assert ExperimentSpec(
            mode="hotstuff-bls", scenario="national", n=7, seed=1,
            observability=True,
        ).key() == (
            "a90c87cfb9c46286278b0ac28800042c884344fc8d03281012f8a3cd394e78f0"
        )

    def test_workload_changes_the_cache_key(self):
        base = ExperimentSpec(n=7, duration=5.0)
        loaded = ExperimentSpec(n=7, duration=5.0, workload=simple_spec())
        other = ExperimentSpec(
            n=7, duration=5.0, workload=simple_spec(capacity_txs=10)
        )
        assert len({base.key(), loaded.key(), other.key()}) == 3

    def test_spec_accepts_mapping_form(self):
        spec = ExperimentSpec(workload={
            "classes": [
                {"name": "a", "population": 10, "rate_per_user": 1.0}
            ],
        })
        assert isinstance(spec.workload, WorkloadSpec)

    def test_report_has_workload_section_only_for_workload_runs(self):
        from repro.obs.report import validate_report
        from repro.runtime.experiment import run_experiment

        plain = run_experiment(
            n=7, scenario="national", duration=6.0, observability=True
        )
        assert "workload" not in plain.report
        assert plain.workload is None

        loaded = run_experiment(
            n=7, scenario="national", duration=6.0, observability=True,
            workload=simple_spec(),
        )
        assert validate_report(loaded.report) == []
        section = loaded.report["workload"]
        assert section["totals"]["generated"] > 0
        assert loaded.workload["totals"]["generated"] == \
            section["totals"]["generated"]

    def test_capacity_smoke_pack_compiles_with_workload(self):
        from repro.scenarios import compile_pack, load_pack

        grid = compile_pack(load_pack("capacity-smoke"))
        assert len(grid.cells) == 2
        for cell in grid.cells:
            assert isinstance(cell.spec.workload, WorkloadSpec)
            assert cell.spec.workload.capacity_txs == 1500
        small, large = grid.cells
        assert small.spec.workload.total_population == 100_000
        assert large.spec.workload.total_population == 400_000
        # Differently sized populations must hash differently.
        assert small.spec.key() != large.spec.key()
