"""A PBFT baseline: clique topology, all-to-all quadratic traffic (§1).

The paper's Table 1 contrasts Kauri with PBFT's communication pattern:
"organizes participants in a clique and uses an all-to-all communication
pattern that incurs in a quadratic message complexity". This module
implements that pattern on the same substrate so the contrast is measured,
not asserted (see ``benchmarks/bench_message_complexity.py``):

- *pre-prepare*: the primary broadcasts the block to all replicas;
- *prepare*: every replica broadcasts its prepare vote to **all** others,
  and a replica is *prepared* once it has 2f matching prepares plus the
  pre-prepare;
- *commit*: every prepared replica broadcasts its commit vote to all, and
  commits on 2f+1 matching commits.

Per instance that is O(n²) messages versus HotStuff/Kauri's O(n); the
payoff is one communication step fewer per round.

Scope: this baseline targets the fault-free and crash-fault regimes the
benchmarks exercise. The view change carries a lightweight prepared-block
transfer (each replica reports its committed height and highest prepared
block; the new primary re-proposes the highest prepared block above the
committed prefix), which preserves agreement under crash faults: a commit
at height h implies 2f+1 prepared replicas, so any 2f+1 view-change
reports include that block. Full PBFT view-change certificates (proving
the reports themselves) are not modeled, so Byzantine replicas lying in
view changes are out of scope here -- Kauri/HotStuff remain the
adversarially-tested protocols.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Set, Tuple

from repro.config import ProtocolConfig, quorum_size
from repro.consensus.block import Block, BlockStore
from repro.consensus.pacemaker import Pacemaker
from repro.consensus.tags import is_stale_tag, newview_tag, prop_tag, vote_tag
from repro.consensus.vote import Phase, vote_value
from repro.core.modes import ModeSpec
from repro.core.perfmodel import PROPOSAL_OVERHEAD, PerfModel
from repro.crypto.signature import SignatureScheme
from repro.net.network import Network
from repro.sim.cpu import Cpu
from repro.sim.engine import Simulator
from repro.sim.process import Task, spawn
from repro.topology.reconfig import ReconfigurationPolicy
from repro.topology.tree import Tree


# PBFT reuses the shared wire-tag vocabulary (repro.consensus.tags): its
# pre-prepare is a "prop", its all-to-all votes are "vote"s, and its
# view-change report rides the "newview" tag -- so the shared stale-tag
# purge applies uniformly.
_preprepare_tag = prop_tag
_pbft_vote_tag = vote_tag
_viewchange_tag = newview_tag


class PbftNode:
    """One PBFT replica. Constructor-compatible with ProtocolNode so the
    Cluster wiring treats both uniformly."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        scheme: SignatureScheme,
        policy: ReconfigurationPolicy,
        config: ProtocolConfig,
        mode: ModeSpec,
        model_factory: Callable[[Tree], PerfModel],
        metrics: Any,
        workload: Any = None,
    ):
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.scheme = scheme
        self.policy = policy
        self.config = config
        self.mode = mode
        self.model_factory = model_factory
        self.metrics = metrics
        self.workload = workload

        self.n = policy.n
        self.quorum = quorum_size(self.n)  # 2f+1 for n = 3f+1
        self.f = (self.n - 1) // 3
        self.keypair = scheme.pki.keypair(node_id)
        self.endpoint = network.register(node_id)
        self.cpu = Cpu(sim, name=f"cpu-{node_id}")
        self.store = BlockStore()

        self.view = -1
        self.stopped = False
        self.pacemaker: Optional[Pacemaker] = None
        self.model: Optional[PerfModel] = None
        self._view_tasks: List[Task] = []
        self._persistent_tasks: List[Task] = []
        self._voted: Set[Tuple[int, int, str]] = set()
        self._salt = 0
        self.instance_failures = 0
        self.pacer = None  # interface parity with ProtocolNode
        self.app: Any = None  # optional state machine on the commit path
        #: Highest block this replica completed the prepare phase for.
        self._last_prepared: Optional[Block] = None

    # ------------------------------------------------------------------
    @property
    def committed_height(self) -> int:
        return self.store.committed_height

    def start(self) -> None:
        self.pacemaker = Pacemaker(
            self.sim,
            base_timeout=self.config.base_timeout,
            on_timeout=self._on_timeout,
            cap=self.config.timeout_cap,
        )
        if self.workload is not None and hasattr(self.workload, "ingest"):
            self._persistent_tasks.append(
                spawn(self.sim, self._client_pump(), name=f"pbft{self.node_id}-clients")
            )
        self._enter_view(0)

    def _client_pump(self):
        """Persistent ingress for client transaction batches (§2)."""
        from repro.core.node import CLIENT_TX_TAG

        while True:
            msg = yield from self.endpoint.receive(CLIENT_TX_TAG)
            if isinstance(msg.payload, list):
                self.workload.ingest(msg.payload)

    def stop(self) -> None:
        self.stopped = True
        for task in self._view_tasks:
            task.cancel()
        self._view_tasks.clear()
        for task in self._persistent_tasks:
            task.cancel()
        self._persistent_tasks.clear()
        if self.pacemaker is not None:
            self.pacemaker.stop()

    # ------------------------------------------------------------------
    def _enter_view(self, view: int) -> None:
        if self.stopped:
            return
        for task in self._view_tasks:
            task.cancel()
        self._view_tasks.clear()
        self.view = view
        self.model = self.model_factory(self.policy.configuration(view))
        self.endpoint.purge(lambda tag: is_stale_tag(tag, view))
        assert self.pacemaker is not None
        self.pacemaker.base_timeout = self.model.suggested_timeout(
            self.config.base_timeout
        )
        self.pacemaker.cap = max(self.config.timeout_cap, self.pacemaker.base_timeout)
        self.pacemaker.start_view()
        if self.policy.leader_of(view) == self.node_id:
            self._spawn(self._primary_loop(view), f"primary-v{view}")
        else:
            self._spawn(self._preprepare_pump(view), f"pump-v{view}")

    def _spawn(self, gen, name: str) -> Task:
        task = spawn(self.sim, gen, name=f"pbft{self.node_id}-{name}")
        self._view_tasks.append(task)
        return task

    def _on_timeout(self) -> None:
        if self.stopped:
            return
        next_view = self.view + 1
        self.metrics.on_view_change(self.node_id, next_view, self.sim.now)
        # View-change report: committed height + highest prepared block.
        payload = (self.store.committed_height, self._last_prepared)
        next_primary = self.policy.leader_of(next_view)
        self.network.send(
            self.node_id, next_primary, _viewchange_tag(next_view), payload,
            PROPOSAL_OVERHEAD,
        )
        self._enter_view(next_view)

    # ------------------------------------------------------------------
    # Primary
    # ------------------------------------------------------------------
    def _primary_loop(self, view: int):
        reproposals: List[Block] = []
        if view > 0:
            reproposals = yield from self._collect_view_changes(view)
        height = self.store.committed_height + 1
        parent = self.store.committed_block(self.store.committed_height).hash
        while True:
            if reproposals and reproposals[0].height == height:
                # Safety: a commit at this height may exist elsewhere;
                # re-propose the prepared block rather than a fresh one.
                block = reproposals.pop(0)
            else:
                self._salt += 1
                tx_ids = ()
                if self.workload is not None:
                    fill = self.workload.next_fill(self.sim.now)
                    payload_size, num_txs = fill.payload_size, fill.num_txs
                    tx_ids = getattr(fill, "tx_ids", ())
                else:
                    payload_size = self.config.block_size
                    num_txs = self.config.txs_per_block
                block = Block.create(
                    height=height,
                    view=view,
                    parent=parent,
                    proposer=self.node_id,
                    payload_size=payload_size,
                    num_txs=num_txs,
                    created_at=self.sim.now,
                    salt=self._salt,
                    tx_ids=tx_ids,
                )
                self.store.add(block)
            size = block.payload_size + PROPOSAL_OVERHEAD
            payload = (block, self.store.get(block.parent))
            yield from self.cpu.consume(self.scheme.cost_sign())
            for peer in range(self.n):
                if peer != self.node_id:
                    self.network.send(
                        self.node_id, peer, _preprepare_tag(view), payload, size
                    )
            done = yield from self._run_instance(view, block)
            if not done:
                self.instance_failures += 1
                return  # stall; the pacemaker rotates the primary
            height += 1
            parent = block.hash

    def _collect_view_changes(self, view: int):
        """Await 2f+1 view-change reports; return the chain of blocks to
        re-propose: the highest reported prepared block plus its
        uncommitted ancestors, oldest first.

        A commit anywhere implies 2f+1 prepared replicas, so any 2f+1
        reports name a prepared block at or above every committed height;
        re-proposing that chain (instead of fresh blocks) keeps the new
        primary's proposals consistent with possible commits.
        """
        collected = {self.node_id}
        best: Optional[Block] = self._last_prepared
        while len(collected) < self.quorum:
            msg = yield from self.endpoint.receive(_viewchange_tag(view))
            if msg.src in collected:
                continue
            payload = msg.payload
            if not (isinstance(payload, tuple) and len(payload) == 2):
                continue
            _, prepared = payload
            if isinstance(prepared, Block):
                if prepared.hash not in self.store:
                    self.store.add(prepared)
                if best is None or prepared.height > best.height:
                    best = prepared
            collected.add(msg.src)
        chain: List[Block] = []
        current = best
        while current is not None and current.height > self.store.committed_height:
            chain.append(current)
            current = self.store.get(current.parent)
        chain.reverse()
        # A gap (unknown ancestor) truncates the re-proposal chain; the
        # loop proposes fresh blocks below it. Unreachable under crash
        # faults with 2f+1 reports, since pre-prepares reached everyone
        # that prepared.
        usable = []
        expected = self.store.committed_height + 1
        for member in chain:
            if member.height == expected:
                usable.append(member)
                expected += 1
        return usable

    # ------------------------------------------------------------------
    # Replicas
    # ------------------------------------------------------------------
    def _preprepare_pump(self, view: int):
        primary = self.policy.leader_of(view)
        while True:
            msg = yield from self.endpoint.receive(
                _preprepare_tag(view), match=lambda m: m.src == primary
            )
            if not (isinstance(msg.payload, tuple) and len(msg.payload) == 2):
                continue
            block, parent_meta = msg.payload
            # Re-proposed blocks keep their original view field (the hash
            # binds it); accept proposals from this or earlier views as
            # long as they extend a known chain above our committed prefix
            # (a replica that missed one commit before a view change can
            # rejoin: committing the descendant commits the ancestor too).
            # The attached parent metadata heals a one-block gap left by a
            # primary that crashed mid-broadcast.
            if not isinstance(block, Block) or block.view > view:
                continue
            if (
                isinstance(parent_meta, Block)
                and parent_meta.hash == block.parent
                and parent_meta.hash not in self.store
            ):
                self.store.add(parent_meta)
            if block.height <= self.store.committed_height:
                continue
            if block.height != 1 and block.parent not in self.store:
                continue
            if not self.store.knows_chain(block):
                continue
            self.store.add(block)
            done = yield from self._run_instance(view, block)
            if not done:
                self.instance_failures += 1
                return

    # ------------------------------------------------------------------
    # The two all-to-all vote phases
    # ------------------------------------------------------------------
    def _run_instance(self, view: int, block: Block):
        """Pre-prepare is in hand; run prepare and commit phases."""
        prepared = yield from self._all_to_all_phase(
            view, block, "PREPARE", threshold=2 * self.f + 1
        )
        if not prepared:
            return False
        if self._last_prepared is None or block.height > self._last_prepared.height:
            self._last_prepared = block
        committed = yield from self._all_to_all_phase(
            view, block, "COMMIT", threshold=2 * self.f + 1
        )
        if not committed:
            return False
        newly = self.store.commit(block)
        for member in newly:
            self.metrics.on_commit(self.node_id, member, self.sim.now)
            if self.app is not None:
                self.app.apply_block(member)
        assert self.pacemaker is not None
        self.pacemaker.record_progress()
        # Hygiene: drop straggler votes for this height (the threshold was
        # met; the remaining n - threshold messages would otherwise sit in
        # the inbox for the rest of the view).
        done_tags = {
            _pbft_vote_tag(view, block.height, "PREPARE"),
            _pbft_vote_tag(view, block.height, "COMMIT"),
        }
        self.endpoint.purge(lambda tag: tag in done_tags)
        return True

    def _all_to_all_phase(self, view: int, block: Block, phase: str, threshold: int):
        """Broadcast own vote to everyone; await ``threshold`` distinct
        valid voters in total (own vote included, as in PBFT's "2f+1
        matching" conditions)."""
        tag = _pbft_vote_tag(view, block.height, phase)
        slot = (view, block.height, phase)
        value = vote_value(
            Phase.PREPARE if phase == "PREPARE" else Phase.COMMIT,
            view,
            block.height,
            block.hash,
        )
        if slot not in self._voted:
            self._voted.add(slot)
            yield from self.cpu.consume(self.scheme.cost_sign())
            own = self.scheme.new(self.keypair, value)
            size = own.wire_size()
            for peer in range(self.n):
                if peer != self.node_id:
                    self.network.send(self.node_id, peer, tag, own, size)
        votes: Set[int] = {self.node_id}
        bound = self.config.delta or self.model.suggested_delta()
        deadline = self.sim.now + bound
        while len(votes) < threshold:
            remaining = deadline - self.sim.now
            if remaining <= 0:
                return False
            msg = yield from self.endpoint.receive(tag, timeout=remaining)
            from repro.sim.process import TIMEOUT

            if msg is TIMEOUT:
                return False
            partial = msg.payload
            if msg.src in votes:
                continue
            try:
                yield from self.cpu.consume(self.scheme.cost_verify_share())
                if partial.has(value, 1) and msg.src in partial.signers_for(value):
                    votes.add(msg.src)
            except AttributeError:
                continue  # garbage payload
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PbftNode(id={self.node_id}, view={self.view})"
