"""Unit tests for Message and FaultInjector details not covered elsewhere."""

import pytest

from repro.net import FaultInjector, Message
from repro.sim import Simulator


class TestMessage:
    def test_latency_none_in_flight(self):
        msg = Message(src=0, dst=1, tag="t", payload=None, size=10, sent_at=1.0)
        assert msg.latency is None
        msg.delivered_at = 3.5
        assert msg.latency == pytest.approx(2.5)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(src=0, dst=1, tag="t", payload=None, size=-1)


class TestFaultInjector:
    def test_crash_and_recover(self):
        sim = Simulator()
        faults = FaultInjector(sim)
        faults.crash(3)
        assert faults.is_crashed(3)
        faults.recover(3)
        assert not faults.is_crashed(3)

    def test_crash_at_schedules(self):
        sim = Simulator()
        faults = FaultInjector(sim)
        faults.crash_at(2, 5.0)
        assert not faults.is_crashed(2)
        sim.run(until=6.0)
        assert faults.is_crashed(2)

    def test_byzantine_marking(self):
        sim = Simulator()
        faults = FaultInjector(sim)
        faults.mark_byzantine(1)
        faults.crash(2)
        assert faults.is_byzantine(1)
        assert faults.faulty == {1, 2}

    def test_omission_heal(self):
        sim = Simulator()
        faults = FaultInjector(sim)
        faults.omit_edge(0, 1)
        msg = Message(src=0, dst=1, tag="t", payload=None, size=1)
        assert faults.should_drop(msg)
        faults.heal_edge(0, 1)
        assert not faults.should_drop(msg)

    def test_drop_counts(self):
        sim = Simulator()
        faults = FaultInjector(sim)
        faults.crash(0)
        msg = Message(src=0, dst=1, tag="t", payload=None, size=1)
        faults.should_drop(msg)
        faults.should_drop(msg)
        assert faults.dropped_messages == 2

    def test_negative_injected_delay_rejected(self):
        sim = Simulator()
        faults = FaultInjector(sim)
        faults.set_delay_fn(lambda m: -1.0)
        msg = Message(src=0, dst=1, tag="t", payload=None, size=1)
        with pytest.raises(ValueError):
            faults.extra_delay(msg)

    def test_predicate_reset(self):
        sim = Simulator()
        faults = FaultInjector(sim)
        msg = Message(src=0, dst=1, tag="t", payload=None, size=1)
        faults.set_drop_predicate(lambda m: True)
        assert faults.should_drop(msg)
        faults.set_drop_predicate(None)
        assert not faults.should_drop(msg)
