"""Ablation A2: bin-based tree reconfiguration vs immediate star fallback
(§5, Table 1's "falls back to a star" row for ByzCoin-style systems).

With a small number of faults (f < m), Kauri's Algorithm 4 finds a fresh
robust *tree* and keeps tree-level throughput; a ByzCoin-style policy that
drops to a star on the first fault recovers liveness but sacrifices the
load-balancing advantage. We emulate the latter by running the same fault
schedule against the star policy (HotStuff-bls shares Kauri's crypto, so
topology is the only difference post-fallback).
"""

from conftest import SCALE, run_once

from repro.analysis import format_table
from repro.runtime import run_experiment
from repro.runtime.cluster import Cluster


def run_case(mode):
    probe = Cluster(n=100, mode=mode, scenario="global")
    crashes = [(probe.policy.leader_of(0), 40.0)]
    duration = 160.0 * max(SCALE, 0.5)
    result = run_experiment(
        mode=mode,
        scenario="global",
        n=100,
        duration=duration,
        crashes=crashes,
        warmup_fraction=0.0,
    )
    cluster_policy = probe.policy
    post_tree = cluster_policy.configuration(result.max_view)
    return result, post_tree


def test_ablation_tree_reconfig_vs_star_fallback(benchmark, save_table):
    results = run_once(
        benchmark, lambda: {mode: run_case(mode) for mode in ("kauri", "hotstuff-bls")}
    )
    rows = []
    for mode, (result, post_tree) in results.items():
        rows.append(
            (
                mode,
                result.max_view,
                "star" if post_tree.is_star else f"tree h={post_tree.height}",
                round(result.throughput_txs / 1000.0, 3),
            )
        )
    save_table(
        "ablation_reconfig",
        format_table(
            ("System", "Views", "Post-fault topology", "Ktx/s overall"),
            rows,
            title="Ablation: reconfiguration strategy under 1 leader fault (N=100, global)",
        ),
    )

    kauri_result, kauri_tree = results["kauri"]
    star_result, star_tree = results["hotstuff-bls"]
    # Kauri keeps a tree after the fault (§5: f < m), the star policy cannot
    assert not kauri_tree.is_star
    assert star_tree.is_star
    # and the preserved tree keeps the throughput advantage post-fault
    assert kauri_result.throughput_txs > 2 * star_result.throughput_txs
