"""Cryptographic substrate: PKI, signatures, and cryptographic collections.

The paper models vote aggregation as a *cryptographic collection* (§3.3.2):
a secure multiset of ``(process, value)`` tuples supporting ``new``,
``combine`` (⊕), ``has(c, v, t)`` and cardinality, with commutativity,
associativity, idempotency and integrity. Two implementations are provided,
matching the paper's two schemes (§6):

- :class:`~repro.crypto.secp.SecpScheme` -- secp256k1-style individual
  signatures; collections are signature lists (O(n) wire size and
  verification), as in the public HotStuff implementation.
- :class:`~repro.crypto.bls.BlsScheme` -- BLS-style non-interactive
  multisignatures; collections aggregate into constant wire size with O(1)
  aggregate verification, as in Kauri.

Signatures here are HMAC-style constructions over a PKI oracle: they are
**not** secure cryptography, but they preserve exactly what the evaluation
depends on -- unforgeability within the simulation (only a key holder can
produce a share the PKI validates), the collection laws, wire sizes, and
CPU costs (taken from :mod:`repro.crypto.costs` and charged to simulated
CPUs).
"""

from repro.crypto.keys import KeyPair, Pki, canonical_digest
from repro.crypto.collection import Collection
from repro.crypto.secp import SecpCollection, SecpScheme, SecpSignature
from repro.crypto.bls import BlsCollection, BlsScheme, BlsShare
from repro.crypto.costs import BLS_COSTS, SECP_COSTS, CryptoCostModel
from repro.crypto.signature import SignatureScheme, make_scheme

__all__ = [
    "Pki",
    "KeyPair",
    "canonical_digest",
    "Collection",
    "SecpScheme",
    "SecpSignature",
    "SecpCollection",
    "BlsScheme",
    "BlsShare",
    "BlsCollection",
    "CryptoCostModel",
    "SECP_COSTS",
    "BLS_COSTS",
    "SignatureScheme",
    "make_scheme",
]
