"""Unit tests for phases and quorum certificates."""

import pytest

from repro.consensus import Phase, QuorumCert, genesis_qc, vote_value
from repro.crypto import Pki, make_scheme
from repro.errors import ConsensusError


@pytest.fixture
def setup():
    pki = Pki(n=7)
    scheme = make_scheme("bls", pki)
    return pki, scheme


def build_qc(pki, scheme, phase, view, height, block_hash, signers):
    value = vote_value(phase, view, height, block_hash)
    coll = scheme.empty()
    for node in signers:
        coll = coll | scheme.new(pki.keypair(node), value)
    return QuorumCert(phase, view, height, block_hash, coll)


class TestPhase:
    def test_four_rounds_plus_fast(self):
        # The four §3.1 rounds keep their historical values; the Kudzu
        # optimistic round slots in front so that FAST.next is PREPARE.
        assert [p.value for p in Phase] == [0, 1, 2, 3, 4]
        assert Phase.PREPARE.value == 1
        assert Phase.DECIDE.value == 4

    def test_aggregation_phases(self):
        """§3.1: rounds 1-3 collect votes; round 4 only disseminates.
        The Kudzu fast round aggregates too."""
        assert Phase.FAST.has_aggregation
        assert Phase.PREPARE.has_aggregation
        assert Phase.PRECOMMIT.has_aggregation
        assert Phase.COMMIT.has_aggregation
        assert not Phase.DECIDE.has_aggregation

    def test_next(self):
        assert Phase.FAST.next is Phase.PREPARE  # fallback order
        assert Phase.PREPARE.next is Phase.PRECOMMIT
        assert Phase.COMMIT.next is Phase.DECIDE
        with pytest.raises(ConsensusError):
            Phase.DECIDE.next


class TestVoteValue:
    def test_distinct_per_dimension(self):
        base = vote_value(Phase.PREPARE, 1, 2, "h")
        assert base != vote_value(Phase.PRECOMMIT, 1, 2, "h")
        assert base != vote_value(Phase.PREPARE, 2, 2, "h")
        assert base != vote_value(Phase.PREPARE, 1, 3, "h")
        assert base != vote_value(Phase.PREPARE, 1, 2, "g")
        assert base == vote_value(Phase.PREPARE, 1, 2, "h")


class TestQuorumCert:
    def test_valid_quorum_verifies(self, setup):
        pki, scheme = setup
        qc = build_qc(pki, scheme, Phase.PREPARE, 0, 1, "blk", range(5))
        assert qc.verify(5)  # n=7 -> f=2 -> quorum=5
        assert not qc.verify(6)
        assert qc.signers() == frozenset(range(5))

    def test_wrong_value_does_not_verify(self, setup):
        pki, scheme = setup
        qc = build_qc(pki, scheme, Phase.PREPARE, 0, 1, "blk", range(5))
        mismatched = QuorumCert(Phase.PRECOMMIT, 0, 1, "blk", qc.collection)
        assert not mismatched.verify(5)

    def test_genesis_qc_always_verifies(self):
        qc = genesis_qc()
        assert qc.is_genesis
        assert qc.verify(1000)
        assert qc.signers() == frozenset()
        assert qc.wire_size() == 16

    def test_newer_than_ordering(self, setup):
        pki, scheme = setup
        old = build_qc(pki, scheme, Phase.PREPARE, 1, 5, "a", range(5))
        higher_view = build_qc(pki, scheme, Phase.PREPARE, 2, 3, "b", range(5))
        higher_height = build_qc(pki, scheme, Phase.PREPARE, 1, 6, "c", range(5))
        assert higher_view.newer_than(old)
        assert higher_height.newer_than(old)
        assert not old.newer_than(old)
        assert old.newer_than(genesis_qc())

    def test_wire_size_constant_for_bls(self, setup):
        pki, scheme = setup
        small = build_qc(pki, scheme, Phase.PREPARE, 0, 1, "b", range(3))
        large = build_qc(pki, scheme, Phase.PREPARE, 0, 1, "b", range(7))
        assert small.wire_size() == large.wire_size()

    def test_wire_size_linear_for_secp(self):
        pki = Pki(n=7)
        scheme = make_scheme("secp", pki)
        small = build_qc(pki, scheme, Phase.PREPARE, 0, 1, "b", range(3))
        large = build_qc(pki, scheme, Phase.PREPARE, 0, 1, "b", range(7))
        assert large.wire_size() > small.wire_size()
