"""Experiment harness: run one configuration and extract paper-style metrics.

Implements the measurement methodology of §7: run the deployment to a stop
condition, discard a warm-up prefix, report steady-state throughput
(transactions/second), latency percentiles, and flag CPU saturation (the
paper's red circles mark "data points obtained in a saturated testbed").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.config import ProtocolConfig
from repro.runtime.cluster import Cluster


@dataclass
class ExperimentResult:
    """Steady-state measurements of one run."""

    mode: str
    scenario: str
    n: int
    block_size: int
    stretch: Optional[float]
    duration: float
    warmup: float
    throughput_txs: float
    throughput_blocks: float
    latency: Dict[str, float]
    committed_blocks: int
    view_changes: int
    max_view: int
    cpu_saturated: bool
    leader_cpu_utilization: float
    instance_failures: int
    #: Full RunReport (repro.obs) when the run had observability enabled.
    report: Optional[Dict[str, Any]] = field(default=None, repr=False)
    #: Kudzu fast-path counters, summed over all nodes (0 for every other
    #: protocol). Defaulted so cached pre-upgrade results still load.
    fast_commits: int = 0
    fast_fallbacks: int = 0
    #: Workload-engine summary (per-class SLO attainment, admission
    #: counters, e2e tail latency) when the run drove a WorkloadHarness;
    #: None for classic runs so cached pre-upgrade results still load.
    workload: Optional[Dict[str, Any]] = field(default=None, repr=False)

    def row(self) -> Tuple:
        """Compact tuple for table printing."""
        return (
            self.mode,
            self.scenario,
            self.n,
            round(self.throughput_txs, 1),
            round(self.latency.get("p50", 0.0), 3),
            "SAT" if self.cpu_saturated else "",
        )


def run_experiment(
    mode: str = "kauri",
    scenario: Union[str, Any] = "global",
    n: int = 100,
    block_size: Optional[int] = None,
    stretch: Optional[float] = None,
    height: int = 2,
    root_fanout: Optional[int] = None,
    duration: float = 60.0,
    warmup_fraction: float = 0.25,
    max_commits: Optional[int] = None,
    seed: int = 0,
    config: Optional[ProtocolConfig] = None,
    crashes: Sequence[Tuple[int, float]] = (),
    uplink_lanes: int = 1,
    saturation_threshold: float = 0.95,
    observability: bool = False,
    workload: Optional[Any] = None,
) -> ExperimentResult:
    """Build, run, and measure one deployment.

    ``stretch=None`` lets Kauri follow the performance model (§7.2);
    explicit values reproduce the stretch sweeps (Figure 5). ``max_commits``
    bounds simulation cost for fast configurations without biasing
    throughput (the window is still wall-clock based).
    ``observability=True`` additionally records per-instance phase spans
    and attaches the full :func:`repro.obs.build_report` document as
    ``result.report`` (measured over the same steady-state window).

    ``workload`` (a :class:`~repro.runtime.workload.WorkloadSpec` or the
    mapping form it lowers from) switches the run from the saturated
    block-filler to the aggregate client-population engine: bounded
    per-node mempools, a :class:`~repro.runtime.workload.WorkloadHarness`
    submitting through the real client path into the Zipf-keyed KV
    application, and ``result.workload`` carrying the per-class summary.
    """
    cfg = config if config is not None else ProtocolConfig()
    if block_size is not None:
        cfg = cfg.with_block_size(block_size)
    if stretch is not None:
        cfg = cfg.with_stretch(stretch)
    workload_factory = None
    if workload is not None:
        from repro.runtime.workload import WorkloadSpec, make_workload_factory

        if not isinstance(workload, WorkloadSpec):
            workload = WorkloadSpec.from_mapping(workload)
        workload_factory = make_workload_factory(workload, cfg)
    cluster = Cluster(
        n=n,
        mode=mode,
        scenario=scenario,
        config=cfg,
        height=height,
        root_fanout=root_fanout,
        seed=seed,
        crashes=crashes,
        uplink_lanes=uplink_lanes,
        observability=observability,
        workload_factory=workload_factory,
    )
    harness = None
    if workload is not None:
        from repro.app.kvstore import OpRegistry, attach_kv_application
        from repro.runtime.workload import WorkloadHarness

        registry = OpRegistry()
        attach_kv_application(cluster, registry)
        harness = WorkloadHarness(cluster, workload, registry=registry, seed=seed)
    cluster.start()
    if harness is not None:
        harness.start()
    cluster.run(duration=duration, max_commits=max_commits)
    cluster.check_agreement()

    end = cluster.sim.now
    warmup = min(end * warmup_fraction, end)
    metrics = cluster.metrics
    # Saturation over the measurement window [warmup, end), not the whole
    # run -- warm-up ramp must not dilute (or inflate) the flag.
    root = cluster.policy.leader_of(0)
    utilization = (
        cluster.nodes[root].cpu.utilization(since=warmup, until=end)
        if end > warmup
        else 0.0
    )
    report: Optional[Dict[str, Any]] = None
    if observability:
        from repro.obs.report import build_report

        report = build_report(
            cluster,
            start=warmup,
            end=end,
            saturation_threshold=saturation_threshold,
        )
    return ExperimentResult(
        mode=cluster.mode.name,
        scenario=getattr(cluster.scenario, "name", str(cluster.scenario)),
        n=cluster.n,
        block_size=cfg.block_size,
        stretch=cfg.stretch,
        duration=end,
        warmup=warmup,
        throughput_txs=metrics.throughput_txs(start=warmup),
        throughput_blocks=metrics.throughput_blocks(start=warmup),
        latency=metrics.latency_stats(start=warmup),
        committed_blocks=metrics.committed_blocks,
        view_changes=len(metrics.view_changes),
        max_view=metrics.max_view,
        cpu_saturated=utilization >= saturation_threshold,
        leader_cpu_utilization=utilization,
        instance_failures=sum(node.instance_failures for node in cluster.nodes),
        report=report,
        fast_commits=sum(getattr(node, "fast_commits", 0) for node in cluster.nodes),
        fast_fallbacks=sum(
            getattr(node, "fast_fallbacks", 0) for node in cluster.nodes
        ),
        workload=harness.summary() if harness is not None else None,
    )
