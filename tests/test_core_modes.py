"""Unit tests for the mode registry (§6-§7 system variants)."""

import pytest

from repro.core import MODES, mode_spec
from repro.errors import ConfigError


def test_paper_systems_present():
    assert set(MODES) >= {"kauri", "kauri-np", "hotstuff-secp", "hotstuff-bls"}


def test_kauri_is_tree_bls_stretch():
    spec = mode_spec("kauri")
    assert spec.uses_tree
    assert spec.scheme == "bls"
    assert spec.pacing == "stretch"
    assert spec.pipelined


def test_kauri_np_is_sequential():
    spec = mode_spec("kauri-np")
    assert spec.uses_tree
    assert not spec.pipelined


def test_hotstuff_variants_are_star_chained():
    for name in ("hotstuff-secp", "hotstuff-bls"):
        spec = mode_spec(name)
        assert not spec.uses_tree
        assert spec.pacing == "chained"
        assert spec.pipelined
    assert mode_spec("hotstuff-secp").scheme == "secp"
    assert mode_spec("hotstuff-bls").scheme == "bls"


def test_ablation_mode():
    spec = mode_spec("kauri-secp")
    assert spec.uses_tree
    assert spec.scheme == "secp"


def test_pbft_mode():
    spec = mode_spec("pbft")
    assert spec.topology == "clique"
    assert not spec.uses_tree


def test_kudzu_mode():
    spec = mode_spec("kudzu")
    assert spec.topology == "star"
    assert spec.scheme == "bls"
    assert spec.pacing == "chained"
    assert spec.protocol == "kudzu"


def test_unknown_mode_rejected():
    with pytest.raises(ConfigError):
        mode_spec("raft")


def test_unknown_mode_error_lists_registered_names():
    with pytest.raises(ConfigError) as excinfo:
        mode_spec("raft")
    message = str(excinfo.value)
    assert "raft" in message
    for name in sorted(MODES):
        assert name in message


def test_invalid_spec_fields_rejected():
    from repro.core.modes import ModeSpec

    with pytest.raises(ConfigError):
        ModeSpec("x", "ring", "bls", "stretch")
    with pytest.raises(ConfigError):
        ModeSpec("x", "tree", "rsa", "stretch")
    with pytest.raises(ConfigError):
        ModeSpec("x", "tree", "bls", "bursty")
    with pytest.raises(ConfigError):
        ModeSpec("x", "tree", "bls", "stretch", protocol="paxos")


def test_protocol_registry_resolves_every_mode():
    from repro.core.modes import (
        PROTOCOLS,
        protocol_class,
        protocol_for,
        protocol_kind,
    )
    from repro.consensus.protocol import Protocol

    for spec in MODES.values():
        assert spec.protocol in PROTOCOLS
        cls = protocol_class(spec.protocol)
        if protocol_kind(spec.protocol) == "strategy":
            strategy = protocol_for(spec)
            assert isinstance(strategy, Protocol)
            assert isinstance(strategy, cls)
        else:
            with pytest.raises(ConfigError):
                protocol_for(spec)


def test_unknown_protocol_rejected():
    from repro.core.modes import protocol_class, protocol_kind

    with pytest.raises(ConfigError):
        protocol_kind("paxos")
    with pytest.raises(ConfigError):
        protocol_class("paxos")
