"""Unit tests for the PKI and canonical digests."""

import pytest

from repro.crypto import Pki, canonical_digest
from repro.errors import CryptoError


def test_canonical_digest_deterministic():
    assert canonical_digest(("view", 1, "h")) == canonical_digest(("view", 1, "h"))
    assert canonical_digest("a") != canonical_digest("b")
    assert len(canonical_digest(42)) == 32


def test_keypair_distribution():
    pki = Pki(n=4)
    for node in range(4):
        assert pki.keypair(node).node_id == node
    with pytest.raises(CryptoError):
        pki.keypair(4)


def test_mac_verifies_through_oracle():
    pki = Pki(n=4)
    kp = pki.keypair(2)
    digest = canonical_digest("value")
    mac = kp.mac(digest)
    assert pki.verify_mac(2, digest, mac)


def test_mac_rejects_wrong_signer():
    pki = Pki(n=4)
    digest = canonical_digest("value")
    mac = pki.keypair(2).mac(digest)
    assert not pki.verify_mac(3, digest, mac)


def test_mac_rejects_wrong_value():
    pki = Pki(n=4)
    kp = pki.keypair(2)
    mac = kp.mac(canonical_digest("value"))
    assert not pki.verify_mac(2, canonical_digest("other"), mac)


def test_mac_rejects_unknown_node():
    pki = Pki(n=4)
    assert not pki.verify_mac(99, canonical_digest("v"), b"\x00" * 32)


def test_distinct_nodes_have_distinct_keys():
    pki = Pki(n=10)
    digest = canonical_digest("same")
    macs = {pki.keypair(node).mac(digest) for node in range(10)}
    assert len(macs) == 10


def test_pki_deterministic_by_seed():
    digest = canonical_digest("x")
    a = Pki(n=3, seed=1).keypair(0).mac(digest)
    b = Pki(n=3, seed=1).keypair(0).mac(digest)
    c = Pki(n=3, seed=2).keypair(0).mac(digest)
    assert a == b
    assert a != c


def test_pki_requires_processes():
    with pytest.raises(CryptoError):
        Pki(n=0)
