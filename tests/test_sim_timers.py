"""Unit tests for restartable timers."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator, Timer


def test_timer_fires_after_delay():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(3.0)
    sim.run()
    assert fired == [3.0]
    assert timer.fire_count == 1


def test_timer_cancel_prevents_fire():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(3.0)
    sim.schedule(1.0, timer.cancel)
    sim.run()
    assert fired == []
    assert not timer.armed


def test_restart_supersedes_previous_deadline():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(3.0)
    sim.schedule(2.0, timer.start, 5.0)  # push deadline to t=7
    sim.run()
    assert fired == [7.0]
    assert timer.fire_count == 1


def test_timer_reusable_after_fire():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    sim.run()
    timer.start(2.0)
    sim.run()
    assert fired == [1.0, 3.0]
    assert timer.fire_count == 2


def test_deadline_and_remaining():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    assert timer.deadline is None
    assert timer.remaining is None
    timer.start(4.0)
    assert timer.deadline == 4.0
    sim.schedule(1.0, lambda: None)
    sim.run(until=1.0)
    assert timer.remaining == pytest.approx(3.0)
    sim.run()
    assert timer.deadline is None


def test_negative_delay_rejected():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    with pytest.raises(SimulationError):
        timer.start(-1.0)


def test_cancel_unarmed_timer_is_noop():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    timer.cancel()
    assert not timer.armed
