"""Fault injection for network and process failures.

Supports the failure modes exercised by the paper's evaluation (§7.10) and
by the test suite:

- *crash*: a process stops sending and receiving (optionally at a scheduled
  time);
- *omission*: messages on selected directed edges (or matching a predicate)
  are silently dropped;
- *delay*: extra latency added to selected messages (models pre-GST
  asynchrony).

Byzantine behaviour is injected at the protocol layer
(:mod:`repro.consensus.byzantine`); the injector only tracks which processes
are designated Byzantine so topology/robustness code can reason about them.
"""

from __future__ import annotations

from typing import Callable, Optional, Set, Tuple

from repro.net.message import Message
from repro.sim.engine import Simulator


class FaultInjector:
    """Mutable fault plan consulted by the network fabric on every message.

    Hot-path contract (two tiers):

    - :attr:`_armed` latches True the first time *any* fabric-visible rule
      is registered (crash, scheduled crash, omission edge, drop predicate,
      delay fn) and never resets. While unarmed, the fabric skips the
      per-message serialization-completion hook entirely -- no rule can
      exist when an in-flight message completes, so delivery is scheduled
      directly at send time (one event per message instead of two, for both
      ``send`` and ``multicast``). Register rules only through the methods
      below; mutating the rule sets directly would bypass the latch.
    - Once armed, :meth:`Network._serialized` peeks at :attr:`crashed`,
      :attr:`_omission_edges`, :attr:`_drop_predicate` and :attr:`_delay_fn`
      directly (plain attribute tests) to skip
      :meth:`should_drop`/:meth:`extra_delay` dispatch when the registered
      rules are currently inactive. Keep any new drop/delay rule reachable
      from those fields, and latch :attr:`_armed` when it is registered.

    Byzantine designation does not arm: its behaviour lives entirely in the
    protocol layer and never drops or delays fabric traffic.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.crashed: Set[int] = set()
        self.byzantine: Set[int] = set()
        self._omission_edges: Set[Tuple[int, int]] = set()
        self._drop_predicate: Optional[Callable[[Message], bool]] = None
        self._delay_fn: Optional[Callable[[Message], float]] = None
        self.dropped_messages = 0
        #: Monotonic: a fabric-visible rule has been registered at least
        #: once (including scheduled ones that have not taken effect yet).
        self._armed = False

    # ------------------------------------------------------------------
    # Crash faults
    # ------------------------------------------------------------------
    def crash(self, node: int) -> None:
        """Crash ``node`` immediately: it neither sends nor receives."""
        self._armed = True
        self.crashed.add(node)

    def crash_at(self, node: int, time: float) -> None:
        """Schedule a crash of ``node`` at absolute simulated ``time``.

        Arms the injector immediately: messages in flight when the crash
        lands must take the completion-hook path to be droppable."""
        self._armed = True
        self.sim.schedule_at(time, self.crash, node)

    def recover(self, node: int) -> None:
        """Undo a crash (used by tests; the paper does not recover nodes)."""
        self._armed = True
        self.crashed.discard(node)

    def is_crashed(self, node: int) -> bool:
        return node in self.crashed

    # ------------------------------------------------------------------
    # Byzantine designation (behaviour lives in the protocol layer)
    # ------------------------------------------------------------------
    def mark_byzantine(self, node: int) -> None:
        self.byzantine.add(node)

    def is_byzantine(self, node: int) -> bool:
        return node in self.byzantine

    @property
    def faulty(self) -> Set[int]:
        """All processes that are not correct (crashed or Byzantine)."""
        return self.crashed | self.byzantine

    # ------------------------------------------------------------------
    # Omission faults
    # ------------------------------------------------------------------
    def omit_edge(self, src: int, dst: int) -> None:
        """Silently drop every message from ``src`` to ``dst``."""
        self._armed = True
        self._omission_edges.add((src, dst))

    def heal_edge(self, src: int, dst: int) -> None:
        self._armed = True
        self._omission_edges.discard((src, dst))

    def set_drop_predicate(self, predicate: Optional[Callable[[Message], bool]]) -> None:
        """Drop any message for which ``predicate`` returns ``True``."""
        self._armed = True
        self._drop_predicate = predicate

    def should_drop(self, msg: Message) -> bool:
        """Fabric hook: decide whether ``msg`` is lost."""
        if msg.src in self.crashed or msg.dst in self.crashed:
            self.dropped_messages += 1
            return True
        if (msg.src, msg.dst) in self._omission_edges:
            self.dropped_messages += 1
            return True
        if self._drop_predicate is not None and self._drop_predicate(msg):
            self.dropped_messages += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Delay faults
    # ------------------------------------------------------------------
    def set_delay_fn(self, delay_fn: Optional[Callable[[Message], float]]) -> None:
        """Add ``delay_fn(msg)`` seconds of extra latency to each message."""
        self._armed = True
        self._delay_fn = delay_fn

    def extra_delay(self, msg: Message) -> float:
        if self._delay_fn is None:
            return 0.0
        delay = self._delay_fn(msg)
        if delay < 0:
            raise ValueError(f"negative injected delay: {delay}")
        return delay
