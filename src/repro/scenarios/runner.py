"""One-call compile-and-run for scenario packs."""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence, Tuple, Union

from repro.runtime.experiment import ExperimentResult
from repro.runtime.sweep import SweepRunner
from repro.scenarios.catalog import load_pack
from repro.scenarios.compiler import CompiledGrid, compile_pack
from repro.scenarios.loader import ScenarioPack


def run_pack(
    pack: Union[str, ScenarioPack],
    scale: float = 1.0,
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: bool = False,
    observability: Optional[bool] = None,
    axes: Optional[Mapping[str, Sequence[Any]]] = None,
    overrides: Optional[Mapping[str, Any]] = None,
    runner: Optional[SweepRunner] = None,
) -> Tuple[CompiledGrid, List[ExperimentResult]]:
    """Compile a pack (by name or value) and run it through the sweep
    engine; results align index-for-index with ``grid.cells``."""
    if isinstance(pack, str):
        pack = load_pack(pack)
    grid = compile_pack(
        pack,
        scale=scale,
        seed=seed,
        observability=observability,
        axes=axes,
        overrides=overrides,
    )
    engine = runner if runner is not None else SweepRunner(jobs=jobs, cache=cache)
    return grid, engine.run(grid.specs)
