"""Setup shim for legacy editable installs on offline hosts without `wheel`.

Use: pip install -e . --no-build-isolation --no-use-pep517
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
