"""The evaluated systems (paper §6-§7) as declarative mode specs.

- **kauri**: tree topology, BLS aggregation, stretch-paced pipelining
  (§4.2) and bin-based reconfiguration with star fallback (§5).
- **kauri-np**: Kauri without pipelining -- one instance at a time. §7.4
  uses it as a stand-in for non-pipelining tree systems (Motor,
  Omniledger).
- **hotstuff-secp**: the baseline HotStuff: star topology, secp signature
  lists, chained pipelining of depth 4 (§4.1).
- **hotstuff-bls**: the paper's HotStuff variant with BLS aggregation (§6),
  isolating the effect of the signature scheme from the topology.
- **kauri-secp**: ablation -- Kauri's tree and pipelining but without
  aggregation (not in the paper's figures; used by the ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ModeSpec:
    """One protocol configuration."""

    name: str
    topology: str  # "tree" | "star" | "clique"
    scheme: str  # "bls" | "secp"
    pacing: str  # "stretch" | "sequential" | "chained"

    def __post_init__(self) -> None:
        if self.topology not in ("tree", "star", "clique"):
            raise ConfigError(f"unknown topology {self.topology!r}")
        if self.scheme not in ("bls", "secp"):
            raise ConfigError(f"unknown scheme {self.scheme!r}")
        if self.pacing not in ("stretch", "sequential", "chained"):
            raise ConfigError(f"unknown pacing {self.pacing!r}")

    @property
    def uses_tree(self) -> bool:
        return self.topology == "tree"

    @property
    def pipelined(self) -> bool:
        return self.pacing != "sequential"


MODES = {
    "kauri": ModeSpec("kauri", "tree", "bls", "stretch"),
    "kauri-np": ModeSpec("kauri-np", "tree", "bls", "sequential"),
    "kauri-secp": ModeSpec("kauri-secp", "tree", "secp", "stretch"),
    "hotstuff-secp": ModeSpec("hotstuff-secp", "star", "secp", "chained"),
    "hotstuff-bls": ModeSpec("hotstuff-bls", "star", "bls", "chained"),
    # The §1 baseline: clique topology, all-to-all quadratic traffic.
    "pbft": ModeSpec("pbft", "clique", "secp", "sequential"),
}


def mode_spec(name: str) -> ModeSpec:
    try:
        return MODES[name]
    except KeyError:
        raise ConfigError(
            f"unknown mode {name!r}; available: {sorted(MODES)}"
        ) from None
