#!/usr/bin/env python
"""Quickstart: run Kauri consensus on a small simulated deployment.

Builds a 13-process deployment in the paper's "national" scenario (10 ms
RTT, 1 Gb/s links), runs 10 simulated seconds of consensus, and prints the
committed chain and headline metrics.

Run:  python examples/quickstart.py
"""

from repro import Cluster


def main() -> None:
    cluster = Cluster(n=13, mode="kauri", scenario="national", seed=7)

    tree = cluster.policy.configuration(0)
    print(f"Deployment: n={cluster.n} (tolerates f={cluster.f} Byzantine faults)")
    print(f"Initial tree: root={tree.root}, height={tree.height}, "
          f"root fanout={tree.fanout(tree.root)}")
    print(f"Internal nodes: {tree.internal_nodes}")
    print()

    cluster.start()
    cluster.run(duration=10.0)
    cluster.check_agreement()  # no two replicas committed different blocks

    metrics = cluster.metrics
    print(f"Committed blocks : {metrics.committed_blocks}")
    print(f"Throughput       : {metrics.throughput_txs():,.0f} tx/s")
    stats = metrics.latency_stats()
    print(f"Commit latency   : p50={stats['p50'] * 1000:.0f} ms, "
          f"p95={stats['p95'] * 1000:.0f} ms")
    print(f"View changes     : {len(metrics.view_changes)}")
    print()

    print("First five committed blocks:")
    for record in metrics.records()[:5]:
        print(f"  height={record.height:3d} hash={record.block_hash} "
              f"committed at t={record.time:.3f}s "
              f"(latency {record.latency * 1000:.0f} ms)")


if __name__ == "__main__":
    main()
