"""Timer wheel and merged-event-store semantics.

`schedule_timeout` parks timers in the wheel (`repro.sim.wheel`) instead of
the event heap, but the observable contract must stay exactly that of
`schedule`: firing at the precise requested time, global FIFO order for
same-instant events across *all* scheduling primitives, and exact
`pending_events` accounting. Cancellation is the whole point: while parked
it must be O(1) removal with no heap tombstone.
"""

import math

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.sim.wheel import _WIDTHS, TimerWheel


class TestFiringSemantics:
    def test_fires_at_exact_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_timeout(0.35, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.35]

    def test_same_instant_fifo_across_all_primitives(self):
        """schedule / schedule_timeout / schedule_call / schedule_now at one
        instant fire in scheduling order, regardless of backing store."""
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "heap-1")
        sim.schedule_timeout(1.0, order.append, "wheel-1")
        sim.schedule_call(1.0, order.append, "raw-1")
        sim.schedule_timeout(1.0, order.append, "wheel-2")
        sim.schedule(1.0, order.append, "heap-2")
        # A zero-delay continuation scheduled *from* an event at t=1.0 runs
        # after everything already scheduled for t=1.0.
        sim.schedule(1.0, lambda: sim.schedule_now(order.append, "now-1"))
        sim.run()
        assert order == ["heap-1", "wheel-1", "raw-1", "wheel-2", "heap-2", "now-1"]

    def test_timeout_before_later_heap_event(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "late")
        sim.schedule_timeout(1.0, order.append, "timeout")
        sim.run()
        assert order == ["timeout", "late"]

    def test_long_delay_cascades_and_fires_once(self):
        """A coarse-level timer cascades through finer slots and still fires
        exactly once, at exactly its deadline."""
        sim = Simulator()
        fired = []
        sim.schedule_timeout(100.0, lambda: fired.append(sim.now))
        # Periodic nearer events force slot-by-slot progression.
        def tick():
            if sim.now < 200.0:
                sim.schedule(7.0, tick)
        tick()
        sim.run()
        assert fired == [100.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_timeout(-0.1, lambda: None)

    def test_run_until_then_resume(self):
        """Timers parked past an `until` checkpoint survive into later runs."""
        sim = Simulator()
        fired = []
        sim.schedule_timeout(5.0, lambda: fired.append(sim.now))
        sim.run(until=1.0)
        assert fired == [] and sim.now == 1.0
        assert sim.pending_events == 1
        sim.run()
        assert fired == [5.0]


class TestCancellation:
    def test_cancel_while_parked_is_wheel_removal(self):
        sim = Simulator()
        handle = sim.schedule_timeout(10.0, lambda: pytest.fail("fired"))
        assert sim.pending_events == 1
        assert len(sim._wheel) == 1
        handle.cancel()
        assert handle.cancelled
        assert sim.pending_events == 0
        assert len(sim._wheel) == 0
        # No heap tombstone: the timer never existed outside the wheel.
        assert sim._cancelled_in_heap == 0 and not sim._heap
        sim.run()

    def test_cancel_after_flush_is_lazy_heap_cancel(self):
        """A same-slot earlier event flushes the timer into the heap; a
        cancellation after that point takes the tombstone path."""
        sim = Simulator()
        handle = sim.schedule_timeout(1.002, lambda: pytest.fail("fired"))
        width = _WIDTHS[0]
        assert int(1.002 / width) == int(1.0001 / width)  # same fine slot
        sim.schedule(1.0001, handle.cancel)
        sim.run()
        assert handle.cancelled and not handle.fired
        assert sim.pending_events == 0

    def test_cancel_idempotent_and_postfire_noop(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_timeout(0.5, lambda: fired.append(True))
        sim.run()
        assert fired == [True] and handle.fired
        handle.cancel()  # no-op
        assert not handle.cancelled
        gone = sim.schedule_timeout(1.0, lambda: None)
        gone.cancel()
        gone.cancel()  # idempotent
        assert sim.pending_events == 0

    def test_restart_heavy_pattern_leaves_no_debris(self):
        """The pacemaker pattern: thousands of arm/cancel cycles leave the
        wheel, heap and pending counter all empty."""
        sim = Simulator()

        def cycle(remaining):
            handle = sim.schedule_timeout(0.35, lambda: pytest.fail("stalled"))
            def progress():
                handle.cancel()
                if remaining:
                    cycle(remaining - 1)
            sim.schedule(0.01, progress)

        cycle(2000)
        sim.run()
        assert sim.pending_events == 0
        assert len(sim._wheel) == 0
        assert not sim._heap and not sim._now_queue


class TestWheelInternals:
    def test_level_placement_boundaries(self):
        assert TimerWheel._level_for(0.0) == 0
        assert TimerWheel._level_for(_WIDTHS[1] - 1e-9) == 0
        assert TimerWheel._level_for(_WIDTHS[1]) == 1
        assert TimerWheel._level_for(_WIDTHS[2]) == 2
        assert TimerWheel._level_for(_WIDTHS[3]) == 3
        assert TimerWheel._level_for(math.inf) == 3

    def test_widths_are_exact_powers_of_two(self):
        for width in _WIDTHS:
            mantissa, _ = math.frexp(width)
            assert mantissa == 0.5  # exact power of two


class TestAccounting:
    def test_events_processed_counts_wheel_fires(self):
        sim = Simulator()
        sim.schedule_timeout(0.1, lambda: None)
        sim.schedule(0.2, lambda: None)
        sim.schedule_call(0.3, lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_max_events_budget_spans_stores(self):
        sim = Simulator()
        order = []
        sim.schedule_timeout(0.1, order.append, "a")
        sim.schedule(0.2, order.append, "b")
        sim.schedule_call(0.3, order.append, "c")
        sim.run(max_events=2)
        assert order == ["a", "b"]
        assert sim.pending_events == 1
