"""Public-key infrastructure (paper §2).

The system model assumes a PKI distributing keys before the run, with keys
fixed for the execution. :class:`Pki` plays that role and doubles as the
verification oracle: verifying a signature recomputes the keyed MAC, which
only works because the PKI knows every secret. Within the simulation this
gives real unforgeability -- Byzantine protocol code has no access to other
processes' :class:`KeyPair` objects, so it cannot fabricate shares that
verify (tested in ``tests/test_crypto_*``).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict

from repro.errors import CryptoError


def canonical_digest(value: Any) -> bytes:
    """Deterministic 32-byte digest of a signable value.

    Values signed by the protocol are hashable tuples of primitives
    (view numbers, phase names, block hashes); ``repr`` is stable for
    those.
    """
    return hashlib.sha256(repr(value).encode("utf-8")).digest()


class KeyPair:
    """A process's signing key. Possession of the object *is* the secret."""

    __slots__ = ("node_id", "_secret")

    def __init__(self, node_id: int, secret: bytes):
        self.node_id = node_id
        self._secret = secret

    def mac(self, digest: bytes) -> bytes:
        """Keyed MAC over ``digest`` -- the simulated signature tag."""
        return hashlib.sha256(self._secret + digest).digest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyPair(node={self.node_id})"


class Pki:
    """Key registry and verification oracle for one deployment."""

    def __init__(self, n: int, seed: int = 0):
        if n < 1:
            raise CryptoError(f"PKI needs at least one process, got {n}")
        self.n = n
        self._keys: Dict[int, KeyPair] = {}
        root = hashlib.sha256(f"pki-seed-{seed}".encode()).digest()
        for node_id in range(n):
            secret = hashlib.sha256(root + node_id.to_bytes(8, "big")).digest()
            self._keys[node_id] = KeyPair(node_id, secret)

    def keypair(self, node_id: int) -> KeyPair:
        """Hand ``node_id`` its own keypair (deployment-time distribution)."""
        try:
            return self._keys[node_id]
        except KeyError:
            raise CryptoError(f"process {node_id} is not in the PKI") from None

    def expected_mac(self, node_id: int, digest: bytes) -> bytes:
        """Oracle: the MAC ``node_id`` would produce over ``digest``."""
        return self.keypair(node_id).mac(digest)

    def verify_mac(self, node_id: int, digest: bytes, mac: bytes) -> bool:
        """Check that ``mac`` is ``node_id``'s signature over ``digest``."""
        if not 0 <= node_id < self.n:
            return False
        return self.expected_mac(node_id, digest) == mac

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pki(n={self.n})"
