"""Microbenchmark harness for the simulator's hot paths.

``repro perf`` times the paths that dominate wall-clock in large
sweeps -- the event heap, cryptographic aggregation, the fabric
multicast fast path, and full Kauri runs up to N = 400 -- and writes
``BENCH_core.json`` so the numbers accumulate across PRs and CI can
fail on regressions (see ``benchmarks/perf/``).
"""

from repro.perf.micro import (
    BENCH_SCHEMA_NOTE,
    GUARDED_BENCHES,
    BenchResult,
    bench_aggregation,
    bench_capacity_ingest,
    bench_end_to_end,
    bench_event_loop,
    bench_multicast_fanout,
    compare_to_baseline,
    load_results,
    run_benches,
    write_results,
)

__all__ = [
    "BENCH_SCHEMA_NOTE",
    "BenchResult",
    "GUARDED_BENCHES",
    "bench_aggregation",
    "bench_capacity_ingest",
    "bench_end_to_end",
    "bench_event_loop",
    "bench_multicast_fanout",
    "compare_to_baseline",
    "load_results",
    "run_benches",
    "write_results",
]
