"""Cross-product smoke matrix: every mode in every scenario commits and
agrees. Broad behavioural coverage at small scale."""

import pytest

from repro import Cluster
from repro.core import MODES

SCENARIOS = ("national", "regional", "global")


@pytest.mark.parametrize("mode", sorted(MODES))
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_mode_scenario_matrix(mode, scenario):
    cluster = Cluster(n=7, mode=mode, scenario=scenario, seed=1)
    cluster.start()
    cluster.run(duration=30.0, max_commits=12)
    cluster.check_agreement()
    metrics = cluster.metrics
    assert metrics.committed_blocks > 0, (mode, scenario)
    assert metrics.max_view == 0, (mode, scenario)
    # throughput and latency are self-consistent
    stats = metrics.latency_stats()
    assert stats["count"] == metrics.committed_blocks
    assert 0 < stats["p50"] <= stats["max"]


@pytest.mark.parametrize("mode", sorted(MODES))
def test_mode_survives_one_leader_crash(mode):
    cluster = Cluster(n=7, mode=mode, scenario="national", seed=2)
    cluster.crash_at(cluster.policy.leader_of(0), 4.0)
    cluster.start()
    cluster.run(duration=60.0)
    cluster.check_agreement()
    assert cluster.metrics.commit_gap_after(4.0) is not None, mode
    assert cluster.metrics.max_view >= 1


@pytest.mark.parametrize("mode", sorted(MODES))
def test_mode_deterministic(mode):
    def chain(seed):
        cluster = Cluster(n=7, mode=mode, scenario="national", seed=seed)
        cluster.start()
        cluster.run(duration=5.0, max_commits=8)
        return [r.block_hash for r in cluster.metrics.records()]

    assert chain(7) == chain(7)
