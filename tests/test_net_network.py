"""Unit tests for the network fabric and endpoints."""

import pytest

from repro.config import NetworkParams
from repro.errors import NetworkError
from repro.net import FaultInjector, HomogeneousNetem, Network
from repro.net.network import HEADER_BYTES
from repro.sim import TIMEOUT, Simulator
from repro.sim.process import spawn

PARAMS = NetworkParams("test", rtt=0.100, bandwidth_bps=8_000_000.0)  # 1 MB/s


def make_network(n=4, params=PARAMS, seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim, HomogeneousNetem(params))
    for node in range(n):
        net.register(node)
    return sim, net


def test_send_delivers_with_serialization_plus_propagation():
    sim, net = make_network()
    got = []

    def receiver():
        msg = yield from net.endpoint(1).receive("tag")
        got.append((sim.now, msg.payload))

    spawn(sim, receiver())
    size = 1_000_000 - HEADER_BYTES  # wire = 1 MB exactly
    sim.schedule(0.0, net.send, 0, 1, "tag", "hello", size)
    sim.run()
    # serialization 1 s at 1 MB/s + propagation 0.05 s
    assert got == [(pytest.approx(1.05), "hello")]


def test_queued_message_received_after_arrival():
    sim, net = make_network()
    got = []
    net.send(0, 1, "tag", 123, 0)
    sim.run()  # deliver first

    def receiver():
        msg = yield from net.endpoint(1).receive("tag")
        got.append(msg.payload)

    spawn(sim, receiver())
    sim.run()
    assert got == [123]


def test_receive_timeout_returns_sentinel():
    sim, net = make_network()
    got = []

    def receiver():
        result = yield from net.endpoint(1).receive("tag", timeout=0.5)
        got.append((sim.now, result))

    spawn(sim, receiver())
    sim.run()
    assert got == [(0.5, TIMEOUT)]


def test_match_filter_selects_sender():
    sim, net = make_network()
    got = []

    def receiver():
        msg = yield from net.endpoint(2).receive("t", match=lambda m: m.src == 1)
        got.append(msg.src)

    spawn(sim, receiver())
    net.send(0, 2, "t", "from0", 10)
    net.send(1, 2, "t", "from1", 10)
    sim.run()
    assert got == [1]
    # the unmatched message remains queued
    assert net.endpoint(2).queued_messages == 1


def test_multiple_receivers_fifo_by_tag():
    sim, net = make_network()
    got = []

    def receiver(tag_order):
        msg = yield from net.endpoint(1).receive("t")
        got.append((tag_order, msg.payload))

    spawn(sim, receiver("first"))
    spawn(sim, receiver("second"))
    net.send(0, 1, "t", "A", 10)
    net.send(0, 1, "t", "B", 10)
    sim.run()
    assert got == [("first", "A"), ("second", "B")]


def test_self_send_is_immediate():
    sim, net = make_network()
    got = []

    def receiver():
        msg = yield from net.endpoint(0).receive("self")
        got.append((sim.now, msg.payload))

    spawn(sim, receiver())
    sim.schedule(1.0, net.send, 0, 0, "self", "me", 10**9)
    sim.run()
    assert got == [(1.0, "me")]
    assert net.nic(0).bytes_sent == 0  # bypasses the NIC


def test_sender_nic_shared_across_destinations():
    """The root's sends to its children serialize on one uplink (§4.3)."""
    sim, net = make_network(n=5)
    arrivals = []

    def receiver(node):
        msg = yield from net.endpoint(node).receive("blk")
        arrivals.append((node, sim.now))

    for node in range(1, 5):
        spawn(sim, receiver(node))
    size = 1_000_000 - HEADER_BYTES
    for node in range(1, 5):
        net.send(0, node, "blk", "block", size)
    sim.run()
    times = dict(arrivals)
    assert times[1] == pytest.approx(1.05)
    assert times[2] == pytest.approx(2.05)
    assert times[3] == pytest.approx(3.05)
    assert times[4] == pytest.approx(4.05)


def test_crashed_sender_messages_dropped():
    sim, net = make_network()
    net.faults.crash(0)
    net.send(0, 1, "t", "x", 10)
    sim.run()
    assert net.endpoint(1).queued_messages == 0
    assert net.faults.dropped_messages >= 1


def test_crashed_receiver_messages_dropped():
    sim, net = make_network()
    net.faults.crash_at(1, 0.0)
    sim.schedule(0.1, net.send, 0, 1, "t", "x", 10)
    sim.run()
    assert net.endpoint(1).queued_messages == 0


def test_omission_edge_drops_one_direction():
    sim, net = make_network()
    net.faults.omit_edge(0, 1)
    net.send(0, 1, "t", "lost", 10)
    net.send(1, 0, "t", "kept", 10)
    sim.run()
    assert net.endpoint(1).queued_messages == 0
    assert net.endpoint(0).queued_messages == 1


def test_injected_delay_applies():
    sim, net = make_network()
    net.faults.set_delay_fn(lambda msg: 2.0)
    got = []

    def receiver():
        msg = yield from net.endpoint(1).receive("t")
        got.append(sim.now)

    spawn(sim, receiver())
    net.send(0, 1, "t", "x", 0)
    sim.run()
    # header serialization (64B at 1MB/s = 64us) + 0.05 prop + 2.0 injected
    assert got[0] == pytest.approx(2.050064, abs=1e-6)


def test_purge_discards_stale_tags():
    sim, net = make_network()
    net.send(0, 1, ("view", 1, "x"), "a", 10)
    net.send(0, 1, ("view", 2, "x"), "b", 10)
    sim.run()
    endpoint = net.endpoint(1)
    assert endpoint.queued_messages == 2
    dropped = endpoint.purge(lambda tag: tag[1] < 2)
    assert dropped == 1
    assert endpoint.queued_messages == 1


def test_unregistered_process_rejected():
    sim, net = make_network(n=2)
    with pytest.raises(NetworkError):
        net.send(0, 99, "t", "x", 10)
    with pytest.raises(NetworkError):
        net.endpoint(99)
    with pytest.raises(NetworkError):
        net.nic(99)


def test_cancelled_receiver_does_not_consume_message():
    sim, net = make_network()

    def receiver():
        yield from net.endpoint(1).receive("t")

    task = spawn(sim, receiver())
    sim.schedule(0.01, task.cancel)
    sim.schedule(1.0, net.send, 0, 1, "t", "x", 10)
    sim.run()
    assert net.endpoint(1).queued_messages == 1  # message preserved


def test_message_latency_recorded():
    sim, net = make_network()
    msg = net.send(0, 1, "t", "x", 1000)
    sim.run()
    assert msg.delivered_at is not None
    assert msg.latency > 0.05  # at least propagation


def test_message_counters():
    sim, net = make_network()
    net.send(0, 1, "a", 1, 10)
    net.send(1, 2, "b", 2, 10)
    sim.run()
    assert net.messages_sent == 2
    assert net.messages_delivered == 2
