"""Application layer: state machine replication on top of the chain.

Consensus orders blocks; an application gives the order meaning. This
package provides a replicated key-value store
(:mod:`repro.app.kvstore`) demonstrating the classical SMR contract:
every correct replica applies the same committed operations in the same
order and therefore reaches the same state -- verified byte-for-byte in
the tests via state digests.
"""

from repro.app.kvstore import (
    KvClientHarness,
    KvOp,
    KvStateMachine,
    OpRegistry,
    attach_kv_application,
)

__all__ = [
    "KvOp",
    "OpRegistry",
    "KvStateMachine",
    "KvClientHarness",
    "attach_kv_application",
]
