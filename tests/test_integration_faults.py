"""Integration tests for crash faults and reconfiguration (§5, §7.10)."""

import pytest

from repro import Cluster
from repro.topology.robustness import all_internals_correct


def run_with_crashes(crashes, n=13, mode="kauri", duration=40.0, seed=0, **kwargs):
    cluster = Cluster(
        n=n, mode=mode, scenario="national", seed=seed, crashes=crashes, **kwargs
    )
    cluster.start()
    cluster.run(duration=duration)
    cluster.check_agreement()
    return cluster


class TestSingleLeaderFault:
    """Figure 12a: one faulty leader."""

    def test_recovers_to_next_tree(self):
        cluster = Cluster(n=13, mode="kauri", scenario="national")
        leader0 = cluster.policy.leader_of(0)
        cluster.crash_at(leader0, 5.0)
        cluster.start()
        cluster.run(duration=30.0)
        cluster.check_agreement()
        metrics = cluster.metrics
        # progress resumed after the fault
        gap = metrics.commit_gap_after(5.0)
        assert gap is not None
        # view advanced exactly once and the new configuration is a tree
        assert metrics.max_view == 1
        tree1 = cluster.policy.configuration(1)
        assert tree1.height == 2, "Kauri must keep the tree, not fall to a star"

    def test_throughput_recovers_to_prefault_level(self):
        cluster = Cluster(n=13, mode="kauri", scenario="national", seed=3)
        cluster.crash_at(cluster.policy.leader_of(0), 15.0)
        cluster.start()
        cluster.run(duration=60.0)
        cluster.check_agreement()
        before = cluster.metrics.throughput_txs(start=5.0, end=15.0)
        after = cluster.metrics.throughput_txs(start=40.0, end=60.0)
        assert after > 0.7 * before

    def test_hotstuff_also_recovers(self):
        cluster = Cluster(n=13, mode="hotstuff-bls", scenario="national")
        cluster.crash_at(cluster.policy.leader_of(0), 5.0)
        cluster.start()
        cluster.run(duration=40.0)
        cluster.check_agreement()
        assert cluster.metrics.commit_gap_after(5.0) is not None
        assert cluster.metrics.max_view == 1


class TestConsecutiveLeaderFaults:
    """Figure 12b: consecutive faulty leaders, still fewer than the bins."""

    def test_two_consecutive_roots_stay_on_trees(self):
        cluster = Cluster(n=13, mode="kauri", scenario="national")
        assert cluster.policy.num_bins == 3  # n=13, 4 internals -> 3 bins
        for view in range(2):  # f = 2 < m = 3
            cluster.crash_at(cluster.policy.leader_of(view), 5.0)
        cluster.start()
        cluster.run(duration=80.0)
        cluster.check_agreement()
        metrics = cluster.metrics
        assert metrics.max_view == 2
        assert metrics.commit_gap_after(5.0) is not None
        # f < m: Kauri stays on trees throughout (§5.3)
        for view in range(3):
            assert cluster.policy.is_tree_view(view)

    def test_exhausting_bins_falls_back_to_star(self):
        """With f >= m consecutive faulty tree roots the cycle reaches the
        star phase (the n=13 deployment has only m=3 bins)."""
        cluster = Cluster(n=13, mode="kauri", scenario="national")
        for view in range(3):
            cluster.crash_at(cluster.policy.leader_of(view), 5.0)
        cluster.start()
        cluster.run(duration=120.0)
        cluster.check_agreement()
        metrics = cluster.metrics
        assert metrics.commit_gap_after(5.0) is not None
        final = cluster.policy.configuration(metrics.max_view)
        assert final.is_star
        assert final.root not in cluster.faults.crashed


class TestInternalNodeFaults:
    def test_faulty_internal_node_triggers_reconfiguration(self):
        """A crashed internal (non-root) node breaks robustness; the bins
        rotate it out of the internal positions (Algorithm 4)."""
        cluster = Cluster(n=13, mode="kauri", scenario="national")
        tree0 = cluster.policy.configuration(0)
        internal = next(
            node for node in tree0.internal_nodes if node != tree0.root
        )
        cluster.crash_at(internal, 5.0)
        cluster.start()
        cluster.run(duration=40.0)
        cluster.check_agreement()
        metrics = cluster.metrics
        assert metrics.max_view >= 1
        final_view = metrics.max_view
        tree_after = cluster.policy.configuration(final_view)
        assert all_internals_correct(tree_after, {internal})
        assert metrics.commit_gap_after(5.0) is not None

    def test_faulty_leaf_does_not_stop_progress(self):
        """Leaves are not internal: the tree stays robust (Definition 4)."""
        cluster = Cluster(n=13, mode="kauri", scenario="national")
        tree0 = cluster.policy.configuration(0)
        leaf = tree0.leaves[0]
        cluster.crash_at(leaf, 5.0)
        cluster.start()
        cluster.run(duration=30.0)
        cluster.check_agreement()
        assert cluster.metrics.max_view == 0  # no reconfiguration needed
        assert cluster.metrics.commit_gap_after(5.1) is not None

    def test_f_crashed_leaves_still_live(self):
        """Quorum n-f reachable with f crashed leaves."""
        cluster = Cluster(n=13, mode="kauri", scenario="national")
        tree0 = cluster.policy.configuration(0)
        for leaf in tree0.leaves[:4]:  # f = 4 for n = 13
            cluster.crash_at(leaf, 5.0)
        cluster.start()
        cluster.run(duration=30.0)
        cluster.check_agreement()
        assert cluster.metrics.commit_gap_after(5.5) is not None


class TestStarFallback:
    """Figure 12c: f >= m faults force the §5.3 star fallback."""

    def test_poisoned_bins_fall_back_to_star_and_recover(self):
        cluster = Cluster(n=13, mode="kauri", scenario="national", seed=1)
        m = cluster.policy.num_bins
        f = cluster.f
        assert f >= m, "scenario requires f >= m to exhaust the bins"
        # fail one internal node of every bin's tree at t=5
        faulty = set()
        for view in range(m):
            tree = cluster.policy.configuration(view)
            victim = next(
                node
                for node in tree.internal_nodes
                if node != tree.root and node not in faulty
            )
            faulty.add(victim)
        # also fail the first star leaders that are not already faulty
        view = m
        while len(faulty) < f:
            leader = cluster.policy.leader_of(view)
            if leader not in faulty:
                faulty.add(leader)
            view += 1
        for node in faulty:
            cluster.crash_at(node, 5.0)
        cluster.start()
        cluster.run(duration=600.0)
        cluster.check_agreement()
        metrics = cluster.metrics
        # §5.3: at most m + f + 1 reconfigurations
        assert 0 < metrics.max_view <= m + f + 1
        final_config = cluster.policy.configuration(metrics.max_view)
        assert final_config.is_star, "exhausted bins must degrade to a star"
        assert final_config.root not in faulty
        assert metrics.commit_gap_after(5.0) is not None


class TestCrashSemantics:
    def test_crashed_node_stops_committing(self):
        cluster = Cluster(n=7, mode="kauri", scenario="national")
        cluster.crash_at(3, 2.0)
        cluster.start()
        cluster.run(duration=10.0)
        committed_at_crash = None
        # node 3 must not have committed anything after t=2
        node = cluster.nodes[3]
        assert node.stopped
        survivors = [x for x in cluster.nodes if x.node_id != 3]
        assert max(s.committed_height for s in survivors) > node.committed_height

    def test_fault_free_run_has_no_view_changes(self):
        cluster = run_with_crashes([], duration=20.0)
        assert cluster.metrics.max_view == 0
