"""Figures 3-4: the pipelining schedules, measured (§4.1-§4.2).

The paper's Figures 3 and 4 are schematic Gantt charts: HotStuff starts
one new instance per round (depth 4); Kauri's stretch starts several
instances during one round. This bench reconstructs the same charts from
traced runs and verifies the measured concurrency relations:

- HotStuff's peak in-flight instance count is bounded by its pipeline
  depth of 4;
- Kauri's exceeds HotStuff's whenever the model stretch is above 1
  ("a message carries information from consensus instances/rounds that
  are farther away in the pipeline");
- Kauri-np never overlaps instances at all.
"""

from conftest import run_once

from repro.analysis import extract_spans, format_table, max_concurrency, render_gantt
from repro.net.trace import MessageTrace
from repro.runtime.cluster import Cluster


def traced_run(mode, duration=60.0, n=31, scenario="regional"):
    cluster = Cluster(n=n, mode=mode, scenario=scenario)
    trace = MessageTrace(capacity=300_000)
    cluster.network.observers.append(trace)
    cluster.start()
    cluster.run(duration=duration, max_commits=40)
    cluster.check_agreement()
    leader = cluster.policy.leader_of(0)
    spans = extract_spans(trace, leader)
    return spans, cluster


def sweep():
    return {
        mode: traced_run(mode)[0]
        for mode in ("kauri", "kauri-np", "hotstuff-bls")
    }


def test_fig3_fig4_measured_pipelines(benchmark, save_table):
    data = run_once(benchmark, sweep)
    charts = []
    rows = []
    for mode, spans in data.items():
        depth = max_concurrency(spans)
        rows.append((mode, len(spans), depth))
        charts.append(f"--- {mode} (peak in-flight: {depth}) ---")
        charts.append(render_gantt(spans[4:], max_rows=8))
    save_table(
        "fig3_fig4",
        format_table(
            ("System", "Instances traced", "Peak in-flight"),
            rows,
            title="Figures 3-4: measured pipelining schedules (N=31, regional)",
        )
        + "\n\n"
        + "\n".join(charts),
    )

    depth = {mode: max_concurrency(spans) for mode, spans in data.items()}
    # Kauri-np: strictly sequential instances (Figure 4's counterfactual)
    assert depth["kauri-np"] == 1
    # HotStuff: chained pipelining, bounded by the 4-round depth (§4.1)
    assert 2 <= depth["hotstuff-bls"] <= 4
    # Kauri: the stretch multiplies the depth (§4.2)
    assert depth["kauri"] > depth["hotstuff-bls"]
