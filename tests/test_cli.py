"""CLI tests: every command runs and produces the expected surface."""

import json
import subprocess
import sys

import pytest

from repro.cli import build_parser, main


def run_cli(args):
    """Run the CLI in-process, capturing stdout."""
    import contextlib
    import io

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(args)
    return code, buffer.getvalue()


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_basic():
    code, out = run_cli(
        ["run", "--mode", "kauri", "--scenario", "national", "--n", "7",
         "--duration", "5"]
    )
    assert code == 0
    assert "throughput" in out
    assert "blocks" in out


def test_run_json_output():
    code, out = run_cli(
        ["run", "--mode", "kauri", "--scenario", "national", "--n", "7",
         "--duration", "5", "--json"]
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["mode"] == "kauri"
    assert payload["committed_blocks"] > 0


def test_run_with_crash():
    code, out = run_cli(
        ["run", "--mode", "kauri", "--scenario", "national", "--n", "7",
         "--duration", "20", "--crash-leader-at", "5", "--json"]
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["max_view"] >= 1


def test_run_with_lanes_and_stretch():
    code, out = run_cli(
        ["run", "--mode", "kauri", "--scenario", "national", "--n", "7",
         "--duration", "5", "--lanes", "4", "--stretch", "2.0", "--json"]
    )
    assert code == 0
    assert json.loads(out)["stretch"] == 2.0


def test_model_command():
    code, out = run_cli(["model", "--n", "400", "--scenario", "global"])
    assert code == 0
    assert "kauri h=2" in out
    assert "Max speedup" in out


def test_tune_command():
    code, out = run_cli(["tune", "--n", "100", "--scenario", "global"])
    assert code == 0
    assert "recommended" in out


def test_tune_heterogeneous():
    code, out = run_cli(["tune", "--scenario", "heterogeneous"])
    assert code == 0
    assert "leader cluster : 0" in out


def test_table_commands():
    code, out = run_cli(["table", "1"])
    assert code == 0
    assert "Kauri" in out
    code, out = run_cli(["table", "2"])
    assert code == 0
    assert "Stretch" in out


def test_sweep_table_output():
    code, out = run_cli(
        ["sweep", "--modes", "kauri", "--sizes", "7", "--scenario", "national",
         "--duration", "5", "--max-commits", "20"]
    )
    assert code == 0
    assert "Sweep" in out
    assert "kauri" in out


def test_sweep_json_output():
    code, out = run_cli(
        ["sweep", "--modes", "kauri,pbft", "--sizes", "7",
         "--scenario", "national", "--duration", "5", "--json"]
    )
    assert code == 0
    payload = json.loads(out)
    assert {entry["mode"] for entry in payload} == {"kauri", "pbft"}


def test_run_pbft_mode():
    code, out = run_cli(
        ["run", "--mode", "pbft", "--scenario", "national", "--n", "7",
         "--duration", "5", "--json"]
    )
    assert code == 0
    assert json.loads(out)["committed_blocks"] > 0


def test_fig_rejects_unknown():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig", "99"])


@pytest.mark.slow
def test_fig3_gantt():
    code, out = run_cli(["fig", "3", "--scale", "0.2"])
    assert code == 0
    assert "peak in-flight" in out
    assert "#" in out


@pytest.mark.slow
def test_fig7_tiny_scale():
    code, out = run_cli(["fig", "7", "--scale", "0.05"])
    assert code == 0
    assert "RTT" in out


def test_module_entrypoint():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "table", "1"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0
    assert "Kauri" in proc.stdout


def test_cache_stats_json(tmp_path):
    (tmp_path / "entry.json").write_text('{"schema": 1}')
    (tmp_path / "leftover.tmp").write_text("x")
    code, out = run_cli(["cache", "stats", "--dir", str(tmp_path), "--json"])
    assert code == 0
    stats = json.loads(out)
    assert stats["entries"] == 1
    assert stats["tmp_files"] == 1
    assert stats["root"] == str(tmp_path)


def test_cache_stats_table(tmp_path):
    code, out = run_cli(["cache", "stats", "--dir", str(tmp_path)])
    assert code == 0
    assert "entries" in out and "tmp files" in out


def test_cache_prune_dry_run_then_real(tmp_path):
    (tmp_path / "leftover.tmp").write_text("x" * 10)
    code, out = run_cli(
        ["cache", "prune", "--dir", str(tmp_path), "--dry-run"]
    )
    assert code == 0
    assert "would remove 1 files" in out
    assert (tmp_path / "leftover.tmp").exists()
    code, out = run_cli(["cache", "prune", "--dir", str(tmp_path)])
    assert code == 0
    assert "removed 1 files" in out
    assert not (tmp_path / "leftover.tmp").exists()


def test_cache_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["cache"])


def test_perf_profile_writes_hot_path_listing(tmp_path):
    """--profile drops a cProfile top-25 cumulative listing next to the
    results file, without disturbing the bench output itself."""
    out_path = tmp_path / "bench.json"
    code, out = run_cli(
        ["perf", "--quick", "--bench", "event_loop",
         "--out", str(out_path), "--profile"]
    )
    assert code == 0
    profile_path = tmp_path / "bench.profile.txt"
    assert profile_path.exists()
    text = profile_path.read_text()
    assert "cumulative" in text
    assert str(profile_path) in out
    assert "event_loop" in json.loads(out_path.read_text())
