"""Tests for the observability layer: phase recorder, RunReport, schema.

Covers the acceptance criteria of the observability PR: deterministic
(byte-identical) reports for repeated runs of the same spec, per-node CPU
utilization with a correctly-flagged saturated configuration, per-round
phase spans at the leader, and structural validation against the
checked-in schema.
"""

import json

import pytest

from repro.obs import (
    PhaseRecorder,
    REPORT_SCHEMA_VERSION,
    SCHEMA_PATH,
    build_report,
    load_schema,
    report_json,
    validate_report,
)
from repro.runtime.cluster import Cluster
from repro.runtime.experiment import run_experiment
from repro.runtime.sweep import ExperimentSpec


# ---------------------------------------------------------------------------
# PhaseRecorder
# ---------------------------------------------------------------------------
class TestPhaseRecorder:
    def test_spans_accumulate_per_instance(self):
        rec = PhaseRecorder()
        rec.start(5, 1.0)
        rec.disseminate(5, 0.2)
        rec.aggregate(5, 0.3, contributions=4)
        rec.aggregate(5, 0.1, contributions=2)  # second vote phase
        rec.wait(5, 0.05)
        rec.finish(5, 2.0, decided=True)
        (only,) = rec.instances()
        assert only["height"] == 5
        assert only["start"] == 1.0
        assert only["end"] == 2.0
        assert only["decided"] is True
        assert only["disseminate"] == pytest.approx(0.2)
        assert only["aggregate"] == pytest.approx(0.4)
        assert only["contributions"] == 6
        assert only["wait"] == pytest.approx(0.05)

    def test_window_filter_is_half_open_on_start(self):
        rec = PhaseRecorder()
        for height, start in enumerate([0.0, 1.0, 2.0, 3.0]):
            rec.start(height, start)
            rec.finish(height, start + 0.5, decided=True)
        heights = [r["height"] for r in rec.instances(1.0, 3.0)]
        assert heights == [1, 2]  # start==1.0 in, start==3.0 out

    def test_summary_totals_and_means(self):
        rec = PhaseRecorder()
        for height in (1, 2):
            rec.start(height, float(height))
            rec.aggregate(height, 0.4)
            rec.finish(height, height + 1.0, decided=(height == 1))
        summary = rec.summary(0.0, 10.0)
        assert summary["instances"] == 2
        assert summary["decided"] == 1
        assert summary["aggregate_total"] == pytest.approx(0.8)
        assert summary["aggregate_mean"] == pytest.approx(0.4)
        assert summary["wait_total"] == 0.0

    def test_empty_summary(self):
        summary = PhaseRecorder().summary()
        assert summary["instances"] == 0
        assert summary["disseminate_mean"] == 0.0


# ---------------------------------------------------------------------------
# RunReport
# ---------------------------------------------------------------------------
def small_cluster(**overrides):
    kwargs = dict(n=13, mode="kauri", scenario="global", observability=True)
    kwargs.update(overrides)
    cluster = Cluster(**kwargs)
    cluster.start()
    cluster.run(duration=8.0, max_commits=10)
    return cluster


def test_report_structure_and_schema():
    cluster = small_cluster()
    report = build_report(cluster)
    assert validate_report(report) == []
    assert report["schema"] == REPORT_SCHEMA_VERSION
    assert report["run"]["n"] == 13
    assert len(report["nodes"]) == 13
    assert report["totals"]["committed_blocks"] > 0
    assert 1 <= len(report["hot_nics"]) <= 5
    # The root disseminates and aggregates; its rounds carry spans.
    assert report["rounds"], "leader rounds missing"
    decided = [r for r in report["rounds"] if r["decided"]]
    assert decided
    assert all(r["aggregate"] > 0.0 for r in decided)
    assert all(r["disseminate"] > 0.0 for r in decided)


def test_report_is_deterministic_across_identical_runs():
    texts = []
    for _ in range(2):
        cluster = small_cluster()
        texts.append(report_json(build_report(cluster, start=2.0)))
    assert texts[0] == texts[1]


def test_report_windowing_excludes_out_of_window_activity():
    cluster = small_cluster()
    end = cluster.sim.now
    whole = build_report(cluster)
    tail = build_report(cluster, start=end * 0.5)
    assert tail["window"]["duration"] < whole["window"]["duration"]
    for node_whole, node_tail in zip(whole["nodes"], tail["nodes"]):
        assert node_tail["cpu"]["busy_in_window"] <= node_whole["cpu"]["busy_in_window"]
        assert node_tail["nic"]["bytes_in_window"] <= node_whole["nic"]["bytes_in_window"]


def test_validate_report_flags_problems():
    cluster = small_cluster()
    report = build_report(cluster)
    del report["saturation"]
    report["nodes"][0]["cpu"]["utilization"] = "high"
    problems = validate_report(report)
    assert any("saturation" in p for p in problems)
    assert any("utilization" in p for p in problems)


def test_schema_file_is_valid_json():
    schema = load_schema()
    assert schema["type"] == "object"
    assert SCHEMA_PATH.exists()


# ---------------------------------------------------------------------------
# Experiment / sweep plumbing
# ---------------------------------------------------------------------------
def test_run_experiment_attaches_report():
    result = run_experiment(
        mode="kauri", scenario="global", n=13, duration=8.0, max_commits=10,
        observability=True,
    )
    assert result.report is not None
    assert validate_report(result.report) == []
    # The report's window is the same steady-state window as the result's.
    assert result.report["window"]["start"] == pytest.approx(result.warmup)
    assert result.report["saturation"]["cpu_saturated"] == result.cpu_saturated


def test_observability_disabled_is_default_and_free():
    result = run_experiment(
        mode="kauri", scenario="global", n=13, duration=8.0, max_commits=10,
    )
    assert result.report is None
    cluster = Cluster(n=13, mode="kauri", scenario="global")
    assert cluster.recorders == {}
    assert all(node.obs is None for node in cluster.nodes)


def test_saturated_configuration_is_flagged():
    """CPU-bound deployment (BLS verification on a fast network): the leader
    must be flagged saturated -- the paper's red-circle convention."""
    result = run_experiment(
        mode="hotstuff-bls", scenario="national", n=40,
        duration=5.0, max_commits=10, observability=True,
    )
    assert result.cpu_saturated
    assert result.leader_cpu_utilization >= 0.95
    saturation = result.report["saturation"]
    assert saturation["cpu_saturated"] is True
    assert saturation["leader"] in saturation["saturated_nodes"]
    leader_row = result.report["nodes"][saturation["leader"]]
    assert leader_row["cpu"]["saturated"] is True
    # Utilization is exact: never above 1 even at full saturation.
    assert all(n["cpu"]["utilization"] <= 1.0 for n in result.report["nodes"])


def test_unsaturated_configuration_is_not_flagged():
    result = run_experiment(
        mode="kauri", scenario="global", n=13, duration=8.0, max_commits=10,
        observability=True,
    )
    assert not result.cpu_saturated
    assert result.report["saturation"]["cpu_saturated"] is False


def test_spec_observability_roundtrip(tmp_path):
    spec = ExperimentSpec(
        n=13, duration=8.0, max_commits=10, observability=True
    )
    assert spec.canonical()["observability"] is True
    assert spec.key() != ExperimentSpec(
        n=13, duration=8.0, max_commits=10
    ).key()
    result = spec.run()
    assert result.report is not None
    # Reports survive the on-disk result cache.
    from repro.runtime.sweep import ResultCache

    cache = ResultCache(tmp_path)
    cache.put(spec, result)
    cached = cache.get(spec)
    assert cached is not None
    assert cached.report == result.report


def test_cli_report_command(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "report.json"
    code = main([
        "report", "--n", "13", "--duration", "8", "--max-commits", "10",
        "--out", str(out), "--validate",
    ])
    assert code == 0
    report = json.loads(out.read_text())
    assert validate_report(report) == []
    assert report["run"]["mode"] == "kauri"
