"""Wire messages.

A :class:`Message` is the unit carried by the network fabric. ``size`` is
the payload's wire size in bytes (the sender computes it from the crypto
cost model and block size); the fabric adds a fixed per-message header when
charging the NIC. ``tag`` routes the message to the right receive call on
the destination endpoint -- the paper's "unique identifier per instance"
that gives impatient channels their single-use semantics (§3.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Optional


@dataclass(slots=True)
class Message:
    """A point-to-point message in flight or delivered.

    Slotted: millions of instances are allocated per run, and dropping the
    per-instance ``__dict__`` cuts both memory and attribute-access cost on
    the network hot path.
    """

    src: int
    dst: int
    tag: Hashable
    payload: Any
    size: int  # payload wire bytes, excluding the fabric header
    sent_at: float = 0.0
    delivered_at: Optional[float] = None
    #: Monotone per-network id, for tracing and deduplication.
    uid: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative message size: {self.size}")

    @property
    def latency(self) -> Optional[float]:
        """Send-to-delivery latency, or ``None`` while in flight."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.src}->{self.dst}, tag={self.tag!r}, "
            f"size={self.size}, sent={self.sent_at:.4f})"
        )
