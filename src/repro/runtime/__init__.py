"""Deployment runtime: clusters, workloads, metrics, and experiments.

:class:`~repro.runtime.cluster.Cluster` wires a full deployment together
(simulator, PKI, network shaping, reconfiguration policy, protocol nodes,
fault plan) and runs it to a stop condition. The experiment helpers on top
reproduce the paper's measurement methodology: warm-up exclusion,
throughput over a steady-state window, latency percentiles, and testbed
saturation flags (the paper's red circles).
"""

from repro.runtime.metrics import CommitRecord, LatencyHistogram, Metrics
from repro.runtime.clients import (
    ClientHarness,
    MempoolWorkload,
    PoissonWorkload,
    SaturatedWorkload,
    Tx,
    TxChunk,
)
from repro.runtime.cluster import Cluster, build_cluster_tree
from repro.runtime.experiment import ExperimentResult, run_experiment
from repro.runtime.sweep import (
    ExperimentSpec,
    ResultCache,
    SweepRunner,
    SweepStats,
    run_specs,
)
from repro.runtime.workload import (
    ClientClassSpec,
    LoadShape,
    MmppModulator,
    WorkloadHarness,
    WorkloadSpec,
    ZipfSampler,
    make_workload_factory,
)

__all__ = [
    "Metrics",
    "CommitRecord",
    "SaturatedWorkload",
    "PoissonWorkload",
    "MempoolWorkload",
    "ClientHarness",
    "LatencyHistogram",
    "Tx",
    "TxChunk",
    "Cluster",
    "build_cluster_tree",
    "ExperimentResult",
    "run_experiment",
    "ExperimentSpec",
    "ResultCache",
    "SweepRunner",
    "SweepStats",
    "run_specs",
    "LoadShape",
    "MmppModulator",
    "ZipfSampler",
    "ClientClassSpec",
    "WorkloadSpec",
    "WorkloadHarness",
    "make_workload_factory",
]
