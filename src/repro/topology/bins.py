"""Disjoint-bin partitioning for reconfiguration (paper §5.2, Algorithm 4).

Processes are split into ``m`` disjoint bins, each large enough to fill
every internal position of the tree. Tree ``j`` draws its internal nodes
exclusively from bin ``j mod m`` (round robin). Because the bins are
disjoint and there are at most ``f < m`` faults, at least one bin contains
only correct processes, so a robust tree appears at least once every ``m``
consecutive configurations -- Theorem 3's (m)-Bounded Conformity.

A balanced tree of fanout ``m`` has roughly ``n/m`` internal nodes, so at
most ``m`` bins fit: the algorithm achieves at most (m-1)... in practice
``floor(n / i)``-Bounded Conformity, where ``i`` is the internal count.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import TopologyError


class BinPartition:
    """Disjoint bins of processes, each able to staff a tree's internals."""

    def __init__(
        self,
        processes: Sequence[int],
        internal_count: int,
        num_bins: Optional[int] = None,
    ):
        processes = list(processes)
        if len(set(processes)) != len(processes):
            raise TopologyError("duplicate processes in bin partition")
        if internal_count < 1:
            raise TopologyError(f"internal_count must be >= 1, got {internal_count}")
        max_bins = len(processes) // internal_count
        if max_bins < 1:
            raise TopologyError(
                f"{len(processes)} processes cannot fill even one bin of "
                f"{internal_count} internal nodes"
            )
        m = max_bins if num_bins is None else num_bins
        if not 1 <= m <= max_bins:
            raise TopologyError(
                f"num_bins={m} out of range 1..{max_bins} "
                f"(n={len(processes)}, internals={internal_count})"
            )
        self.processes = tuple(processes)
        self.internal_count = internal_count
        self._bins: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(processes[k * internal_count : (k + 1) * internal_count])
            for k in range(m)
        )
        # Processes beyond m * internal_count belong to no bin; they are
        # always leaves. (Algorithm 4 only constrains internal positions.)

    @property
    def num_bins(self) -> int:
        return len(self._bins)

    def bin(self, index: int) -> Tuple[int, ...]:
        """The bin used for configuration ``index`` (round robin)."""
        return self._bins[index % len(self._bins)]

    @property
    def bins(self) -> Tuple[Tuple[int, ...], ...]:
        return self._bins

    def are_disjoint(self) -> bool:
        """Invariant check: bi ∩ bj = ∅ for i ≠ j."""
        seen: set = set()
        for members in self._bins:
            if seen & set(members):
                return False
            seen |= set(members)
        return True

    def has_clean_bin(self, faulty: Sequence[int]) -> bool:
        """Theorem 3's pigeonhole: with f < m faults, some bin is all-correct."""
        faulty_set = set(faulty)
        return any(not (set(members) & faulty_set) for members in self._bins)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BinPartition(m={self.num_bins}, bin_size={self.internal_count}, "
            f"n={len(self.processes)})"
        )
