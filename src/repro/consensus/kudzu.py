"""Kudzu-style optimistic fast path over the shared SMR fabric.

A single aggregated round suffices to commit when enough replicas are
honest and responsive: the leader disseminates the proposal, replicas send
a *fast vote*, and if the aggregate reaches the **fast quorum**
⌈(n+f+1)/2⌉ the leader forms a ``Phase.FAST`` certificate that commits the
block immediately -- one round-trip instead of the chained protocol's
three. Any two fast quorums intersect in at least f+1 processes, hence in
one honest process, so two conflicting fast certificates cannot both form;
and a fast certificate intersects every regular quorum (n-f) in an honest
process, so the slow path cannot contradict a fast commit either.

When the fast quorum does not form (faults, slow links, a partition), the
leader explicitly signals *fallback* down the dissemination tree and both
sides rerun the instance through the regular chained rounds
(:class:`~repro.consensus.protocol.Protocol.run_rounds`), guaranteeing the
slow path's liveness. A crashed or silent leader is handled the same way
as in the chained protocol: the pacemaker expires and the view changes.

Fast certificates subsume the prepare/lock state
(:meth:`~repro.consensus.safety.SafetyRules.observe_fast_qc`) and are
acceptable justifications for later proposals and new-view messages
(:meth:`KudzuProtocol.verify_justify`), keeping view changes safe after
fast commits.
"""

from __future__ import annotations

from repro.config import max_faults
from repro.consensus.protocol import HotStuffProtocol
from repro.consensus.vote import Phase, QuorumCert, vote_value
from repro.net.impatient import BOTTOM

#: Wire sentinel the leader sends on the fast QC tag when the fast quorum
#: missed, so replicas fall back immediately instead of waiting out Δ.
FALLBACK = "kudzu-fallback"

#: Framing bytes of the fallback notice.
FALLBACK_SIZE = 16


def fast_quorum_size(n: int) -> int:
    """The optimistic quorum ⌈(n+f+1)/2⌉ with f = ⌊(n-1)/3⌋.

    Always at most the regular quorum n-f (equality at n = 3f+1 and
    3f+2), and any two fast quorums intersect in ≥ f+1 processes.
    """
    f = max_faults(n)
    return (n + f + 2) // 2


class KudzuProtocol(HotStuffProtocol):
    """Optimistic single-round commit with chained-HotStuff fallback.

    Runs on the HotStuff star fabric (same pacing: instance k+1 starts on
    instance k's first QC -- fast or prepare)."""

    name = "kudzu"

    def fast_quorum(self, node) -> int:
        return fast_quorum_size(node.n)

    def verify_justify(self, node, justify: QuorumCert) -> bool:
        """A proposal/new-view justification may be a regular prepare QC or
        a fast certificate (which certifies at the fast-quorum threshold)."""
        if justify.phase is Phase.FAST:
            return justify.verify(self.fast_quorum(node))
        return super().verify_justify(node, justify)

    def fast_commit_rule(self, node, qc: QuorumCert, block) -> None:
        """A verified fast certificate commits immediately."""
        node.safety.observe_qc(qc)
        assert node.pacemaker is not None
        node.pacemaker.record_progress()
        node.fast_commits += 1
        node._commit(block)

    # ------------------------------------------------------------------
    def run_rounds(self, node, view, block, can_vote, is_leader, observer, recorder):
        """One optimistic round; on a miss, the full chained slow path."""
        height = block.height
        phase = Phase.FAST
        own = yield from self.vote_rule(node, view, height, phase, block, can_vote)
        collection = yield from node.comm.wait_for(
            self.vote_tag(view, height, phase),
            own,
            node.scheme,
            node.cpu,
            observer=observer,
        )
        resolve_started = node.sim.now
        qc = yield from self._resolve_fast_qc(
            node, view, height, block, collection, is_leader
        )
        if recorder is not None:
            recorder.wait(height, node.sim.now - resolve_started)
        if qc is not None:
            self.fast_commit_rule(node, qc, block)
            return True
        node.fast_fallbacks += 1
        return (
            yield from super().run_rounds(
                node, view, block, can_vote, is_leader, observer, recorder
            )
        )

    def _resolve_fast_qc(self, node, view, height, block, collection, is_leader):
        """Coroutine: the fast certificate, or None to fall back.

        The root checks the aggregate against the fast quorum and sends
        either the certificate or an explicit fallback notice down the
        tree; replicas receive and verify it. Timeouts and malformed data
        also mean fallback -- never a hang.
        """
        fast_quorum = self.fast_quorum(node)
        tag = self.qc_tag(view, height, Phase.FAST)
        if is_leader:
            value = vote_value(Phase.FAST, view, height, block.hash)
            if not collection.has(value, fast_quorum):
                node.comm.send_to_children(tag, FALLBACK, FALLBACK_SIZE)
                return None
            qc = QuorumCert(Phase.FAST, view, height, block.hash, collection)
            signal = node._prepare_signals.get(height)
            if signal is not None:
                # The pacing chain waits on the instance's first QC; on the
                # fast path that is the fast certificate.
                signal.fire_if_unfired()
            node.comm.send_to_children(tag, qc, qc.wire_size())
            return qc
        data = yield from node.comm.broadcast(tag)
        if data is BOTTOM or not isinstance(data, QuorumCert):
            return None
        qc = data
        if (
            qc.phase is not Phase.FAST
            or qc.view != view
            or qc.height != height
            or qc.block_hash != block.hash
            or qc.is_genesis
        ):
            return None
        yield from node.cpu.consume(node.scheme.cost_verify_collection(qc.collection))
        if not qc.verify(fast_quorum):
            return None
        return qc
