"""Unit tests for the metrics collector."""

import pytest

from repro.consensus import Block
from repro.consensus.block import GENESIS_HASH
from repro.runtime import Metrics
from repro.runtime.metrics import percentile
from repro.sim import Simulator


def block(height, created_at=0.0, num_txs=10, salt=0):
    return Block.create(
        height, 0, GENESIS_HASH, 0, 1000, num_txs, created_at, salt=salt
    )


@pytest.fixture
def metrics():
    sim = Simulator()
    sim.schedule(100.0, lambda: None)
    sim.run()  # now = 100
    return Metrics(sim)


def test_first_commit_wins(metrics):
    b = block(1, created_at=1.0)
    metrics.on_commit(0, b, 3.0)
    metrics.on_commit(1, b, 4.0)  # later replica: counted per node only
    assert metrics.committed_blocks == 1
    rec = metrics.first_commits[1]
    assert rec.time == 3.0
    assert rec.latency == pytest.approx(2.0)
    assert rec.first_committer == 0
    assert metrics.commits_per_node[0] == 1
    assert metrics.commits_per_node[1] == 1


def test_throughput_over_window(metrics):
    for height in range(1, 6):
        metrics.on_commit(0, block(height, num_txs=100), 10.0 * height)
    # 5 commits of 100 txs in [0, 100] -> 5 tx/s
    assert metrics.throughput_txs() == pytest.approx(5.0)
    # window [25, 45]: commits at 30, 40 -> 200 txs / 20 s
    assert metrics.throughput_txs(25.0, 45.0) == pytest.approx(10.0)
    assert metrics.throughput_blocks(25.0, 45.0) == pytest.approx(0.1)
    assert metrics.throughput_txs(90.0, 90.0) == 0.0


def test_latency_stats(metrics):
    for height, latency in enumerate([1.0, 2.0, 3.0, 4.0], start=1):
        metrics.on_commit(0, block(height, created_at=0.0), latency)
    stats = metrics.latency_stats()
    assert stats["mean"] == pytest.approx(2.5)
    assert stats["p50"] == pytest.approx(2.0)
    assert stats["max"] == pytest.approx(4.0)
    assert stats["count"] == 4


def test_latency_stats_empty(metrics):
    assert metrics.latency_stats()["count"] == 0


def test_timeseries_buckets(metrics):
    metrics.on_commit(0, block(1, num_txs=50), 0.5)
    metrics.on_commit(0, block(2, num_txs=50), 1.5)
    metrics.on_commit(0, block(3, num_txs=100), 1.9)
    series = metrics.timeseries_txs(bucket=1.0, end=3.0)
    assert series[0] == (0.0, pytest.approx(50.0))
    assert series[1] == (1.0, pytest.approx(150.0))
    assert series[2] == (2.0, pytest.approx(0.0))


def test_timeseries_validation(metrics):
    with pytest.raises(ValueError):
        metrics.timeseries_txs(bucket=0.0)


def test_commit_gap_after(metrics):
    metrics.on_commit(0, block(1), 10.0)
    metrics.on_commit(0, block(2), 30.0)
    assert metrics.commit_gap_after(15.0) == pytest.approx(15.0)
    assert metrics.commit_gap_after(10.0) == pytest.approx(0.0)
    assert metrics.commit_gap_after(31.0) is None


def test_view_changes_and_max_view(metrics):
    assert metrics.max_view == 0
    metrics.on_view_change(3, 1, 5.0)
    metrics.on_view_change(4, 2, 6.0)
    assert metrics.max_view == 2
    assert len(metrics.view_changes) == 2


def test_records_sorted_by_height(metrics):
    metrics.on_commit(0, block(2), 2.0)
    metrics.on_commit(0, block(1), 2.5)
    assert [r.height for r in metrics.records()] == [1, 2]


class TestPercentile:
    def test_basic(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 50) == 3.0
        assert percentile(values, 100) == 5.0
        assert percentile(values, 95) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


# ---------------------------------------------------------------------------
# Half-open window convention [lo, hi)
# ---------------------------------------------------------------------------
def test_window_boundaries_are_half_open(metrics):
    """Regression: closed intervals (lo <= t <= hi) double-counted commits
    landing exactly on a shared boundary of two adjacent windows."""
    metrics.on_commit(0, block(1, num_txs=100), 10.0)
    metrics.on_commit(0, block(2, num_txs=100), 20.0)
    metrics.on_commit(0, block(3, num_txs=100), 25.0)
    # The commit at exactly t=20 belongs to [20, 30), not [10, 20).
    assert metrics.throughput_txs(10.0, 20.0) == pytest.approx(10.0)
    assert metrics.throughput_txs(20.0, 30.0) == pytest.approx(20.0)
    assert len(metrics.latencies(10.0, 20.0)) == 1
    assert len(metrics.latencies(20.0, 30.0)) == 2
    assert metrics.throughput_blocks(10.0, 20.0) == pytest.approx(0.1)


def test_adjacent_windows_partition_commits(metrics):
    """Tx counts over adjacent half-open windows sum to the whole window."""
    times = [5.0, 10.0, 10.0 + 1e-12, 15.0, 20.0]
    for height, when in enumerate(times, start=1):
        metrics.on_commit(0, block(height, num_txs=10), when)
    whole = metrics.throughput_txs(0.0, 25.0) * 25.0
    for cut in (5.0, 10.0, 12.5, 20.0):
        split = (
            metrics.throughput_txs(0.0, cut) * cut
            + metrics.throughput_txs(cut, 25.0) * (25.0 - cut)
        )
        assert split == pytest.approx(whole), cut


def test_timeseries_event_at_horizon_extends_series(metrics):
    """Regression: a commit at exactly t == end was clamped into the last
    bucket instead of opening the next one."""
    metrics.on_commit(0, block(1, num_txs=50), 0.5)
    metrics.on_commit(0, block(2, num_txs=70), 2.0)
    series = metrics.timeseries_txs(bucket=1.0, end=2.0)
    assert series[0] == (0.0, pytest.approx(50.0))
    assert series[1] == (1.0, pytest.approx(0.0))
    # The t=2.0 commit opens bucket [2, 3), appended past the horizon.
    assert series[2] == (2.0, pytest.approx(70.0))
