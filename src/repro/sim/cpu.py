"""Single-core CPU resource with FIFO queueing.

Each replica owns one :class:`Cpu`. Cryptographic work (signing, verifying,
aggregating) is charged to the CPU via :meth:`Cpu.consume`, so concurrent
pipelined consensus instances on the same node contend for compute exactly
as they would on one core of the paper's testbed machines. Utilization is
tracked so experiments can flag CPU-saturated data points (the paper marks
these with red circles).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import Signal, Sleep, WaitSignal


class Cpu:
    """FIFO busy-server: one unit of work at a time, queued arrivals.

    Coroutine usage::

        yield from node.cpu.consume(cost_model.bls_verify)
    """

    def __init__(self, sim: Simulator, name: str = "cpu"):
        self.sim = sim
        self.name = name
        self._busy = False
        self._queue: Deque[Signal] = deque()
        self.busy_time = 0.0
        self.jobs_completed = 0
        self._created_at = sim.now

    def consume(self, seconds: float) -> Generator:
        """Occupy the CPU for ``seconds`` of simulated compute time.

        Zero-cost work returns immediately without queueing, so disabled
        cost models add no events.
        """
        if seconds < 0:
            raise SimulationError(f"negative CPU time: {seconds}")
        if seconds == 0.0:
            return
        # Acquire: loop because wakeups are broadcast and a same-instant
        # arrival may win the race; losers simply re-queue. The broadcast
        # (rather than hand-off) makes the queue robust to waiters that
        # were cancelled while waiting.
        while self._busy:
            turn = Signal()
            self._queue.append(turn)
            yield WaitSignal(turn)
        self._busy = True
        try:
            yield Sleep(seconds)
            self.busy_time += seconds
            self.jobs_completed += 1
        finally:
            self._busy = False
            waiters, self._queue = self._queue, deque()
            for turn in waiters:
                turn.fire_if_unfired()

    @property
    def queue_length(self) -> int:
        """Number of jobs waiting (excludes the one running)."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        return self._busy

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of wall (simulated) time spent computing since ``since``."""
        elapsed = self.sim.now - max(since, self._created_at)
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cpu({self.name!r}, busy={self._busy}, queued={len(self._queue)})"
