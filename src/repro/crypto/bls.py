"""BLS-style non-interactive multisignatures (Kauri and HotStuff-bls, §6).

Each internal node aggregates its children's shares into a single
aggregated vote (§3.3.2): O(m) aggregation work per node, O(1) aggregate
size and verification. The wire representation is modeled as one 48-byte
aggregate plus a signer bitmap per distinct value; the in-memory object
mirrors that wire shape directly: each value's signer set is an int
bitmask, and the canonical per-signer tags live in an interned arena
shared per :class:`~repro.crypto.keys.Pki` (its expected-MAC memo) rather
than being duplicated into every collection. Forged or out-of-range
entries -- which by definition carry a tag *other* than the arena's
canonical one -- are quarantined in a tiny per-value ``extras`` dict, so
they stay detectable and never count toward a quorum, exactly the
behaviour of real BLS multisignatures with rogue-key protection (§2 cites
the proof-of-possession requirement).

Performance model of ⊕ (the simulator's hottest crypto path): collections
are immutable, so ``combine`` is copy-on-write. Per-value slots are
``(mask, extras)`` pairs shared by reference between parent and child
collections whenever one side already holds the union; merging two
honest slots is two int ORs and an equality check -- no per-signer walk
at all -- and ``cardinality`` is a popcount. Only slots that actually
contain adversarial ``extras`` fall back to a Python merge loop, and
``MERGE_STATS`` counts exactly that residual work (see
``tests/test_perf_hotpaths.py``). The invariant that makes sharing safe:
``_byvalue`` and its slot tuples are never mutated after construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Mapping, Optional, Tuple

from repro.crypto.collection import Collection
from repro.crypto.costs import CryptoCostModel, bitmap_size
from repro.crypto.keys import KeyPair, Pki, canonical_digest
from repro.crypto.signature import SignatureScheme
from repro.errors import CryptoError


class MergeStats:
    """Counters of Python-level ⊕ work; reset/read by perf tests.

    ``entries_examined`` counts the signer entries walked by the Python
    merge loop -- with bitmap slots that is only the adversarial
    ``extras`` residue, since honest signer sets union with int ORs.
    ``slot_copies`` counts per-value slots actually rebuilt,
    ``slots_shared`` the slots passed between collections by reference.
    """

    __slots__ = ("entries_examined", "slot_copies", "slots_shared")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.entries_examined = 0
        self.slot_copies = 0
        self.slots_shared = 0


MERGE_STATS = MergeStats()

#: Bitmask -> frozenset of set bit positions. Quorum masks repeat across
#: every collection that reaches the same signer set, so the expansion is
#: interned process-wide; entries are pure facts about ints (never
#: invalidated), inserts stop at the cap to bound memory on long sweeps.
_SIGNERS_MEMO: Dict[int, FrozenSet[int]] = {0: frozenset()}
_SIGNERS_MEMO_CAP = 1 << 16

#: Slot layout: ``(mask, extras)``. Bit ``i`` of ``mask`` set means
#: signer ``i`` contributed the *canonical* tag for the value (the one
#: the Pki arena would mint), i.e. a valid signature. ``extras`` maps
#: signer -> tag for entries whose tag differs from the canonical one
#: (forged) or whose signer is outside the PKI; ``None`` when absent.
_Slot = Tuple[int, Optional[Dict[int, bytes]]]


def _signers_of(mask: int) -> FrozenSet[int]:
    signers = _SIGNERS_MEMO.get(mask)
    if signers is None:
        bits = []
        m = mask
        while m:
            low = m & -m
            bits.append(low.bit_length() - 1)
            m ^= low
        signers = frozenset(bits)
        if len(_SIGNERS_MEMO) < _SIGNERS_MEMO_CAP:
            _SIGNERS_MEMO[mask] = signers
    return signers


@dataclass(frozen=True)
class BlsShare:
    """One process's multisignature share over one value."""

    signer: int
    value: Any
    tag: bytes


class BlsCollection(Collection):
    """Per-value aggregates: value -> (signer bitmask, forged extras)."""

    __slots__ = ("_pki", "_costs", "_byvalue", "_frozen_cache",
                 "_hash_cache", "_card_cache")

    def __init__(
        self,
        pki: Pki,
        costs: CryptoCostModel,
        byvalue: Mapping[Any, Mapping[int, bytes]] = None,
    ):
        self._pki = pki
        self._costs = costs
        # The public constructor classifies raw signer->tag maps against
        # the Pki's canonical-tag arena; internal construction goes
        # through _adopt, which shares already-classified slots.
        self._byvalue: Dict[Any, _Slot] = {
            value: _classify(pki, value, signers)
            for value, signers in (byvalue or {}).items()
        }
        self._frozen_cache: Optional[FrozenSet] = None
        self._hash_cache: Optional[int] = None
        self._card_cache: Optional[int] = None

    @classmethod
    def _adopt(
        cls,
        pki: Pki,
        costs: CryptoCostModel,
        byvalue: Dict[Any, _Slot],
    ) -> "BlsCollection":
        """Build a collection taking ownership of ``byvalue`` uncopied.

        Callers must guarantee the slots are never mutated afterwards --
        they may be shared with other collections.
        """
        self = cls.__new__(cls)
        self._pki = pki
        self._costs = costs
        self._byvalue = byvalue
        self._frozen_cache = None
        self._hash_cache = None
        self._card_cache = None
        return self

    # ------------------------------------------------------------------
    def combine(self, other: Collection) -> "BlsCollection":
        if not isinstance(other, BlsCollection):
            raise CryptoError(
                f"cannot combine bls collection with {type(other).__name__}"
            )
        if other._pki is not self._pki:
            raise CryptoError("cannot combine collections from different PKIs")
        # ⊕ identities: nothing to merge, nothing to copy.
        if other is self or not other._byvalue:
            return self
        if not self._byvalue and other._costs is self._costs:
            return other
        stats = MERGE_STATS
        merged = dict(self._byvalue)  # shallow: slots shared until replaced
        changed = False
        for value, theirs in other._byvalue.items():
            ours = merged.get(value)
            if ours is None:
                merged[value] = theirs  # share the whole slot by reference
                stats.slots_shared += 1
                changed = True
                continue
            if ours is theirs:
                stats.slots_shared += 1
                continue
            ours_mask, ours_extras = ours
            theirs_mask, theirs_extras = theirs
            if ours_extras is None and theirs_extras is None:
                # Honest ⊕ honest: union is a couple of int ORs.
                mask = ours_mask | theirs_mask
                if mask == ours_mask:
                    stats.slots_shared += 1  # theirs ⊆ ours
                    continue
                if mask == theirs_mask:
                    merged[value] = theirs  # ours ⊆ theirs: adopt theirs
                    stats.slots_shared += 1
                    changed = True
                    continue
                merged[value] = (mask, None)
                changed = True
                continue
            # Adversarial residue on at least one side: rebuild the slot.
            # A canonical (valid) tag always shadows a forged one for the
            # same signer; between two forged tags, ours wins -- exactly
            # the old per-signer verify-and-keep-the-valid-one rule.
            mask = ours_mask | theirs_mask
            extras: Dict[int, bytes] = {}
            if theirs_extras:
                stats.entries_examined += len(theirs_extras)
                for signer, tag in theirs_extras.items():
                    if signer < 0 or not (mask >> signer) & 1:
                        extras[signer] = tag
            if ours_extras:
                stats.entries_examined += len(ours_extras)
                for signer, tag in ours_extras.items():
                    if signer < 0 or not (mask >> signer) & 1:
                        extras[signer] = tag
            slot = (mask, extras or None)
            if slot == ours:
                stats.slots_shared += 1  # theirs ⊆ ours
                continue
            if slot == theirs:
                merged[value] = theirs
                stats.slots_shared += 1
                changed = True
                continue
            stats.slot_copies += 1
            merged[value] = slot
            changed = True
        if not changed:
            return self  # other ⊆ self: ⊕ is idempotent
        return BlsCollection._adopt(self._pki, self._costs, merged)

    def has(self, value: Any, threshold: int) -> bool:
        slot = self._byvalue.get(value)
        if slot is None:
            return threshold <= 0
        return slot[0].bit_count() >= threshold

    def signers_for(self, value: Any) -> FrozenSet[int]:
        slot = self._byvalue.get(value)
        if slot is None:
            return frozenset()
        return _signers_of(slot[0])

    def cardinality(self) -> int:
        card = self._card_cache
        if card is None:
            card = 0
            for mask, extras in self._byvalue.values():
                card += mask.bit_count()
                if extras:
                    card += len(extras)
            self._card_cache = card
        return card

    def values(self) -> FrozenSet[Any]:
        return frozenset(self._byvalue)

    def wire_size(self) -> int:
        """One constant-size aggregate + signer bitmap per distinct value."""
        per_value = self._costs.aggregate_base_size + bitmap_size(self._pki.n)
        return 8 + per_value * len(self._byvalue)

    # ------------------------------------------------------------------
    def _frozen(self) -> FrozenSet:
        frozen = self._frozen_cache
        if frozen is None:
            frozen = frozenset(
                (value, mask,
                 frozenset(extras.items()) if extras else None)
                for value, (mask, extras) in self._byvalue.items()
            )
            self._frozen_cache = frozen
        return frozen

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, BlsCollection):
            return False
        if self._byvalue is other._byvalue:
            return True
        h1, h2 = self._hash_cache, other._hash_cache
        if h1 is not None and h2 is not None and h1 != h2:
            return False
        # Slot equality is exactly same-(value, signer, tag) multiset:
        # masks stand for canonical tags, extras carry the rest verbatim.
        return self._byvalue == other._byvalue

    def __hash__(self) -> int:
        h = self._hash_cache
        if h is None:
            h = hash(self._frozen())
            self._hash_cache = h
        return h

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlsCollection({self.cardinality()} shares, {len(self._byvalue)} values)"


def _classify(pki: Pki, value: Any, signers: Mapping[int, bytes]) -> _Slot:
    """Split a raw signer->tag map into (canonical bitmask, forged extras).

    A tag equal to the arena's canonical MAC for ``(signer, value)`` is a
    valid signature and becomes a mask bit; anything else (wrong tag,
    signer outside the PKI) is quarantined in ``extras``.
    """
    mask = 0
    extras: Optional[Dict[int, bytes]] = None
    digest = None
    n = pki.n
    for signer, tag in signers.items():
        if 0 <= signer < n:
            if digest is None:
                digest = canonical_digest(value)
            if pki.expected_mac(signer, digest) == tag:
                mask |= 1 << signer
                continue
        if extras is None:
            extras = {}
        extras[signer] = tag
    return (mask, extras)


class BlsScheme(SignatureScheme):
    """Scheme factory for BLS-style multisignature collections."""

    def new(self, keypair: KeyPair, value: Any) -> BlsCollection:
        pki = self.pki
        if pki.owns(keypair):
            # A share minted with the signer's own PKI-issued key is the
            # canonical tag by construction: the slot is just the bit.
            # The tag bytes themselves stay in the per-Pki arena and are
            # only materialised if a verifier ever meets a forgery.
            return BlsCollection._adopt(
                pki, self.costs, {value: (1 << keypair.node_id, None)}
            )
        # Foreign keypair (not issued by this PKI): classify its tag
        # honestly against the arena, like any received raw share.
        tag = keypair.mac(canonical_digest(value))
        return BlsCollection(pki, self.costs, {value: {keypair.node_id: tag}})

    def empty(self) -> BlsCollection:
        return BlsCollection._adopt(self.pki, self.costs, {})
