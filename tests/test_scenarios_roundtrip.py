"""Proof obligation of the pack subsystem: packs for the existing figures
compile to **byte-identical** ExperimentSpecs (same ``_encode_scenario``
cache keys) as the inline grids the figure generators used to build, so
the on-disk result cache and the golden RunReports keep hitting across
the refactor."""

import math

import pytest

from repro.analysis.figures import adaptive_duration
from repro.config import (
    GLOBAL,
    KB,
    REGIONAL,
    SCENARIOS,
    NetworkParams,
    mbps,
    ms,
    resilientdb_clusters,
)
from repro.core.modes import mode_spec
from repro.runtime.sweep import ExperimentSpec, ResultCache, _encode_scenario
from repro.scenarios import compile_pack, load_pack

SCALES = (0.3, 1.0)


def assert_identical(grid, inline):
    __tracebackhide__ = True
    assert grid.specs == inline
    assert [s.key() for s in grid.specs] == [s.key() for s in inline]


@pytest.mark.parametrize("scale", SCALES)
def test_fig5_pack_matches_inline_grid(scale):
    grid = compile_pack(load_pack("fig5"), scale=scale, seed=0)
    inline = [
        ExperimentSpec(
            mode="kauri", scenario="global", n=100, block_size=kb * KB,
            stretch=float(stretch),
            duration=adaptive_duration("kauri", 100, GLOBAL, kb * KB, scale=scale),
            max_commits=int(200 * scale) or 20, seed=0,
        )
        for kb in (50, 100, 200, 250)
        for stretch in (1, 2, 4, 6, 8, 12, 16, 20)
    ]
    assert_identical(grid, inline)


@pytest.mark.parametrize("scale", SCALES)
def test_fig6_pack_matches_inline_grid(scale):
    grid = compile_pack(load_pack("fig6"), scale=scale, seed=0, observability=False)
    inline = [
        ExperimentSpec(
            mode=mode, scenario=scenario, n=n,
            duration=adaptive_duration(mode, n, SCENARIOS[scenario], 250 * KB, scale=scale),
            max_commits=int(150 * scale) or 15, seed=0, observability=False,
        )
        for scenario in ("national", "regional", "global")
        for n in (100, 200, 400)
        for mode in ("kauri", "kauri-np", "hotstuff-secp", "hotstuff-bls")
    ]
    assert_identical(grid, inline)


@pytest.mark.parametrize("scale", SCALES)
def test_fig7_pack_matches_inline_grid(scale):
    grid = compile_pack(load_pack("fig7"), scale=scale, seed=0)
    inline = [
        ExperimentSpec(
            mode=mode, scenario=params, n=100,
            duration=adaptive_duration(mode, 100, params, 250 * KB, scale=scale),
            max_commits=int(150 * scale) or 15, seed=0,
        )
        for rtt in (50, 100, 200, 300, 400)
        for mode, params in (
            (mode, REGIONAL.with_rtt(ms(rtt)))
            for mode in ("kauri", "hotstuff-secp")
        )
    ]
    assert_identical(grid, inline)


@pytest.mark.parametrize("scale", SCALES)
def test_fig8_pack_matches_inline_grid(scale):
    grid = compile_pack(load_pack("fig8"), scale=scale, seed=0)
    inline = [
        ExperimentSpec(
            mode=mode,
            scenario=NetworkParams(f"bw{bw}", rtt=ms(100), bandwidth_bps=mbps(bw)),
            n=100,
            duration=adaptive_duration(
                mode, 100,
                NetworkParams(f"bw{bw}", rtt=ms(100), bandwidth_bps=mbps(bw)),
                250 * KB, scale=scale,
            ),
            max_commits=int(100 * scale) or 10, seed=0,
        )
        for bw in (25, 50, 100, 1000)
        for mode in ("kauri", "hotstuff-secp", "hotstuff-bls")
    ]
    assert_identical(grid, inline)


@pytest.mark.parametrize("scale", SCALES)
def test_fig9_pack_matches_inline_grid(scale):
    grid = compile_pack(load_pack("fig9"), scale=scale, seed=0)
    inline = [
        ExperimentSpec(
            mode=mode, scenario="global", n=100, block_size=kb * KB,
            duration=adaptive_duration(mode, 100, GLOBAL, kb * KB, scale=scale),
            max_commits=int(150 * scale) or 15, seed=0,
        )
        for kb in (32, 64, 125, 250, 500, 1024)
        for mode in ("kauri", "hotstuff-secp", "hotstuff-bls")
    ]
    assert_identical(grid, inline)


@pytest.mark.parametrize("scale", SCALES)
def test_fig10_pack_matches_inline_grid(scale):
    grid = compile_pack(load_pack("fig10"), scale=scale, seed=0)
    systems = [
        ("kauri-h2", "kauri", 2),
        ("kauri-h3", "kauri", 3),
        ("hotstuff-secp", "hotstuff-secp", 1),
        ("hotstuff-bls", "hotstuff-bls", 1),
    ]
    inline = [
        ExperimentSpec(
            mode=mode,
            scenario=NetworkParams(f"bw{bw}", rtt=ms(100), bandwidth_bps=mbps(bw)),
            n=100,
            height=max(height, 2) if mode_spec(mode).uses_tree else 2,
            duration=adaptive_duration(
                mode, 100,
                NetworkParams(f"bw{bw}", rtt=ms(100), bandwidth_bps=mbps(bw)),
                250 * KB, height=max(height, 1), scale=scale,
            ),
            max_commits=int(150 * scale) or 15, seed=0,
        )
        for bw in (25, 50, 100, 1000)
        for _, mode, height in systems
    ]
    assert_identical(grid, inline)
    assert grid.labels() == [label for label, _, _ in systems]


@pytest.mark.parametrize("scale", SCALES)
def test_fig11_pack_matches_inline_grid(scale):
    grid = compile_pack(load_pack("fig11"), scale=scale, seed=0)
    clusters = resilientdb_clusters(per_cluster=10)
    inline = [
        ExperimentSpec(
            mode=mode, scenario=clusters, n=clusters.n, duration=scale * 120.0,
            max_commits=int(200 * scale) or 20, seed=0,
        )
        for mode in ("kauri", "kauri-np", "hotstuff-secp", "hotstuff-bls")
    ]
    # ClusterParams carries dict-typed fields, so compare via cache keys
    # (the canonical encoding) rather than dataclass equality alone.
    assert [s.key() for s in grid.specs] == [s.key() for s in inline]
    assert grid.specs[0].n == 60


@pytest.mark.parametrize("scale", SCALES)
def test_depth_pack_matches_inline_grid(scale):
    grid = compile_pack(load_pack("depth"), scale=scale, seed=0)
    systems = [(f"kauri-h{h}", "kauri", h) for h in (2, 3, 4)] + [
        ("hotstuff-bls", "hotstuff-bls", 1)
    ]
    inline = [
        ExperimentSpec(
            mode=mode, scenario=GLOBAL, n=n,
            height=max(height, 2) if mode_spec(mode).uses_tree else 2,
            duration=adaptive_duration(
                mode, n, GLOBAL, 250 * KB, height=max(height, 1), scale=scale
            ),
            max_commits=int(60 * scale) or 6, seed=0,
        )
        for n in (200, 400, 1000)
        for _, mode, height in systems
    ]
    assert_identical(grid, inline)


def test_scenario_comparison_pack_matches_example_grid():
    # The example compiles at scale 0.5: 60-commit budget, 6-instance
    # horizons -- exactly the hand-rolled loop it replaced.
    grid = compile_pack(load_pack("scenario-comparison"), scale=0.5, seed=0)
    inline = [
        ExperimentSpec(
            mode=mode, scenario=scenario, n=31,
            duration=adaptive_duration(
                mode, 31, SCENARIOS[scenario], 250 * KB,
                instances=6.0, scale=0.5,
            ),
            max_commits=60, seed=0,
        )
        for scenario in ("national", "regional", "global")
        for mode in ("kauri", "kauri-np", "hotstuff-secp", "hotstuff-bls")
    ]
    assert_identical(grid, inline)


# ---------------------------------------------------------------------------
# _encode_scenario round-trips over every scenario form
# ---------------------------------------------------------------------------
def test_encode_scenario_string_form():
    assert _encode_scenario("global") == ["name", "global"]


def test_encode_scenario_params_form():
    params = NetworkParams("bw50", rtt=ms(100), bandwidth_bps=mbps(50))
    encoded = _encode_scenario(params)
    assert encoded[0] == "params"
    assert encoded == _encode_scenario(
        NetworkParams("bw50", rtt=ms(100), bandwidth_bps=mbps(50))
    )


def test_encode_scenario_cluster_form_is_stable():
    a = _encode_scenario(resilientdb_clusters(per_cluster=10))
    b = _encode_scenario(resilientdb_clusters(per_cluster=10))
    assert a == b and a[0] == "clusters"
    assert a != _encode_scenario(resilientdb_clusters(per_cluster=2))


def test_derived_scenario_keeps_base_name_but_changes_key():
    # The Figure 7 idiom: with_rtt keeps the name; the key must still
    # distinguish the derived point from the base scenario.
    derived = REGIONAL.with_rtt(ms(400))
    assert derived.name == REGIONAL.name
    assert _encode_scenario(derived) != _encode_scenario(REGIONAL)


def test_infinite_bandwidth_not_representable_in_specs():
    # fig8's analytic floor uses math.inf; it stays outside the spec/cache
    # vocabulary (JSON has no inf), which is why the floor is computed
    # analytically rather than as a pack cell.
    params = NetworkParams("inf", rtt=ms(100), bandwidth_bps=math.inf)
    assert math.isinf(params.bandwidth_bps)


# ---------------------------------------------------------------------------
# cache-key stability: pack-compiled and hand-built specs share cache entries
# ---------------------------------------------------------------------------
def test_pack_compiled_spec_hits_hand_built_cache_entry(tmp_path):
    from repro.runtime.experiment import run_experiment

    grid = compile_pack(load_pack("smoke"), scale=0.5, seed=0)
    spec = grid.specs[0]
    hand_built = ExperimentSpec(
        mode="kauri", scenario="national", n=7, duration=4.0,
        max_commits=20, seed=0,
    )
    assert spec == hand_built
    assert spec.key() == hand_built.key()

    cache = ResultCache(root=tmp_path)
    result = run_experiment(
        mode="kauri", scenario="national", n=7, duration=4.0,
        max_commits=20, seed=0,
    )
    cache.put(hand_built, result)
    hit = cache.get(spec)
    assert hit is not None
    assert hit.committed_blocks == result.committed_blocks
