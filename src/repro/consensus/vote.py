"""Votes, phases and quorum certificates (paper §3.1).

Each consensus instance runs four rounds: *prepare*, *pre-commit*,
*commit*, *decide*. Rounds 1-3 aggregate a quorum of N-f signatures over
``(phase, view, height, block_hash)``; round 4 only disseminates the commit
quorum. A :class:`QuorumCert` wraps a cryptographic collection whose valid
signer count for that value reaches the quorum.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.collection import Collection
from repro.errors import ConsensusError


class Phase(enum.Enum):
    """The four rounds of one consensus instance (§3.1), plus the optional
    single-round optimistic phase used by the Kudzu fast path (a ``FAST``
    quorum commits in one round; on a miss the protocol falls back to the
    regular ``PREPARE`` round, which is why ``FAST.next is PREPARE``)."""

    FAST = 0
    PREPARE = 1
    PRECOMMIT = 2
    COMMIT = 3
    DECIDE = 4

    @property
    def has_aggregation(self) -> bool:
        """Rounds 1-3 (and the fast round) collect votes; round 4 only
        disseminates."""
        return self is not Phase.DECIDE

    @property
    def next(self) -> "Phase":
        if self is Phase.DECIDE:
            raise ConsensusError("DECIDE has no next phase")
        return Phase(self.value + 1)


def vote_value(phase: Phase, view: int, height: int, block_hash: str) -> Tuple:
    """The canonical value signed by a vote in ``phase``."""
    return ("vote", phase.name, view, height, block_hash)


@dataclass(frozen=True)
class QuorumCert:
    """A certified quorum for one (phase, view, height, block)."""

    phase: Phase
    view: int
    height: int
    block_hash: str
    collection: Optional[Collection]  # None only for the genesis QC

    @property
    def value(self) -> Tuple:
        return vote_value(self.phase, self.view, self.height, self.block_hash)

    @property
    def is_genesis(self) -> bool:
        return self.collection is None

    def verify(self, quorum: int) -> bool:
        """Check the embedded collection certifies the value with ``quorum``
        valid distinct signers. The genesis QC is valid by agreement."""
        if self.is_genesis:
            return True
        return self.collection.has(self.value, quorum)

    def signers(self):
        if self.is_genesis:
            return frozenset()
        return self.collection.signers_for(self.value)

    def wire_size(self) -> int:
        """Bytes on the wire: framing plus the collection."""
        if self.is_genesis:
            return 16
        return 16 + self.collection.wire_size()

    def newer_than(self, other: "QuorumCert") -> bool:
        """Ordering used to pick the high QC from new-view messages (§6)."""
        return (self.view, self.height) > (other.view, other.height)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QC({self.phase.name}, view={self.view}, height={self.height}, "
            f"block={self.block_hash[:8]})"
        )


def genesis_qc() -> QuorumCert:
    """The pre-agreed certificate for the genesis block."""
    from repro.consensus.block import GENESIS_HASH

    return QuorumCert(
        phase=Phase.PREPARE, view=-1, height=0, block_hash=GENESIS_HASH, collection=None
    )
