"""Proposal pacing: static stretch and the runtime-adaptive controller.

The published Kauri uses "a static pre-configured value, but this could be
automatically adapted at runtime, which we leave for future work" (§6).
:class:`AdaptivePacer` implements that future work with an AIMD controller
on the leader's own uplink backlog:

- the ideal operating point keeps the root's NIC continuously busy but
  not growing (§4.2: under-pipelining idles the root, over-pipelining
  congests the system);
- backlog above ``high × sending_time`` ⇒ multiplicative back-off of the
  proposal interval; backlog below ``low × sending_time`` ⇒ gentle
  speed-up;
- the interval stays within [bottleneck time, round time], i.e. between
  "fully pipelined" and "no pipelining".

The controller needs no clock beyond the NIC's backlog and no coordination
-- only the leader runs it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.perfmodel import PerfModel
from repro.errors import ConfigError
from repro.net.nic import Nic


@dataclass
class AdaptivePacer:
    """AIMD controller for the leader's proposal interval."""

    model: PerfModel
    initial_stretch: float
    backoff: float = 1.3
    speedup: float = 0.94
    high_watermark: float = 2.0  # in units of sending time
    low_watermark: float = 0.5

    def __post_init__(self) -> None:
        if self.backoff <= 1.0:
            raise ConfigError(f"backoff must exceed 1.0: {self.backoff}")
        if not 0.0 < self.speedup < 1.0:
            raise ConfigError(f"speedup must be in (0,1): {self.speedup}")
        if self.low_watermark >= self.high_watermark:
            raise ConfigError("low watermark must be below high watermark")
        self.interval = self.model.proposal_interval(self.initial_stretch)
        self._floor = max(1e-6, self.model.bottleneck_time * 0.9)
        self._ceiling = self.model.round_time
        self.interval = self._clamp(self.interval)
        self.adjustments = 0

    def _clamp(self, interval: float) -> float:
        return min(max(interval, self._floor), self._ceiling)

    def next_interval(self, nic: Nic) -> float:
        """The interval to wait before the next proposal, given the NIC."""
        sending = max(self.model.sending_time, 1e-9)
        backlog_units = nic.backlog / sending
        if backlog_units > self.high_watermark:
            self.interval = self._clamp(self.interval * self.backoff)
            self.adjustments += 1
        elif backlog_units < self.low_watermark:
            self.interval = self._clamp(self.interval * self.speedup)
            self.adjustments += 1
        return self.interval

    @property
    def effective_stretch(self) -> float:
        """The stretch the current interval corresponds to (§4.3 inverse)."""
        return max(0.0, self.model.round_time / self.interval - 1.0)
