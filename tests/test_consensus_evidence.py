"""Tests for double-vote evidence collection (Byzantine accountability)."""

import pytest

from repro import Cluster
from repro.consensus.byzantine import EquivocatingLeaderNode
from repro.consensus.evidence import (
    DoubleVoteEvidence,
    EvidenceLog,
    attach_evidence_log,
)
from repro.consensus.vote import Phase, vote_value
from repro.crypto import Pki, make_scheme


class TestEvidenceLogUnit:
    @pytest.fixture
    def setup(self):
        pki = Pki(n=7)
        return pki, make_scheme("bls", pki), EvidenceLog(pki)

    def test_single_votes_produce_no_evidence(self, setup):
        pki, scheme, log = setup
        value = vote_value(Phase.PREPARE, 0, 1, "block-a")
        coll = scheme.new(pki.keypair(0), value) | scheme.new(pki.keypair(1), value)
        assert log.observe_collection(coll) == []
        assert len(log) == 0

    def test_double_vote_detected(self, setup):
        pki, scheme, log = setup
        a = vote_value(Phase.PREPARE, 0, 1, "block-a")
        b = vote_value(Phase.PREPARE, 0, 1, "block-b")
        log.observe_collection(scheme.new(pki.keypair(3), a))
        new = log.observe_collection(scheme.new(pki.keypair(3), b))
        assert len(new) == 1
        item = new[0]
        assert item.signer == 3
        assert {item.block_a, item.block_b} == {"block-a", "block-b"}
        assert log.accused == {3}

    def test_distinct_slots_are_not_conflicts(self, setup):
        pki, scheme, log = setup
        log.observe_collection(
            scheme.new(pki.keypair(3), vote_value(Phase.PREPARE, 0, 1, "a"))
        )
        # different phase / height / view: all legitimate
        log.observe_collection(
            scheme.new(pki.keypair(3), vote_value(Phase.PRECOMMIT, 0, 1, "a"))
        )
        log.observe_collection(
            scheme.new(pki.keypair(3), vote_value(Phase.PREPARE, 0, 2, "b"))
        )
        log.observe_collection(
            scheme.new(pki.keypair(3), vote_value(Phase.PREPARE, 1, 1, "b"))
        )
        assert len(log) == 0

    def test_duplicate_evidence_reported_once(self, setup):
        pki, scheme, log = setup
        a = vote_value(Phase.PREPARE, 0, 1, "a")
        b = vote_value(Phase.PREPARE, 0, 1, "b")
        log.observe_collection(scheme.new(pki.keypair(3), a))
        log.observe_collection(scheme.new(pki.keypair(3), b))
        log.observe_collection(scheme.new(pki.keypair(3), b))
        log.observe_collection(scheme.new(pki.keypair(3), a))
        assert len(log) == 1

    def test_forged_votes_cannot_frame(self, setup):
        """Integrity: invalid signatures never become evidence."""
        pki, scheme, log = setup
        from repro.crypto.bls import BlsCollection

        a = vote_value(Phase.PREPARE, 0, 1, "a")
        b = vote_value(Phase.PREPARE, 0, 1, "b")
        log.observe_collection(scheme.new(pki.keypair(3), a))
        forged = BlsCollection(pki, scheme.costs, {b: {3: b"\x00" * 32}})
        log.observe_collection(forged)
        assert len(log) == 0


class TestEvidenceEndToEnd:
    def test_equivocating_leader_is_identified(self):
        """An equivocating root signs prepare votes for both of its twin
        blocks; the vote traffic convicts exactly that process."""
        probe = Cluster(n=13, mode="kauri", scenario="national")
        root = probe.policy.leader_of(0)
        cluster = Cluster(
            n=13,
            mode="kauri",
            scenario="national",
            byzantine={root: EquivocatingLeaderNode},
        )
        log = attach_evidence_log(cluster)
        cluster.start()
        cluster.run(duration=40.0)
        cluster.check_agreement()
        assert root in log.accused
        # no correct process is ever framed
        assert log.accused <= {root}

    def test_honest_run_produces_no_evidence(self):
        cluster = Cluster(n=13, mode="kauri", scenario="national")
        log = attach_evidence_log(cluster)
        cluster.start()
        cluster.run(duration=10.0)
        cluster.check_agreement()
        assert len(log) == 0
