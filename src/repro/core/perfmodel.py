"""The §4.3 performance model: pipelining stretch and expected speedup.

For a topology with root fanout ``m`` over ``N`` processes:

- *sending time*  ≈ ``m · b / c``: the root's uplink occupancy per block
  (fanout × block wire size / bandwidth);
- *processing time*: per-round crypto work at the root (measured values per
  scheme, from :mod:`repro.crypto.costs`);
- *remaining time* ≈ ``h · (RTT + processing)``: from last byte sent until
  the aggregated reply is processed;
- *pipelining stretch* = remaining / bottleneck, where the bottleneck is
  sending time (bandwidth-bound) or processing time (CPU-bound);
- *max speedup* = ``(N - 1) / m``: the star-to-tree sending-time ratio
  (19.95 for N=400, m=20 -- §4.3's example).

The same formulas cover HotStuff by setting ``m = N - 1`` and ``h = 1``.
The model drives Table 2, the default stretch used by the benches ("for
Kauri we adjust the pipelining stretch following our performance model",
§7.7), the leader's proposal pacing, and the pacemaker's scenario-derived
base timeout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import NetworkParams, ProtocolConfig, quorum_size
from repro.crypto.costs import CryptoCostModel, bitmap_size
from repro.errors import ConfigError

#: Fixed per-proposal framing (headers, tags, parent metadata), bytes.
PROPOSAL_OVERHEAD = 256


@dataclass(frozen=True)
class PerfModel:
    """Closed-form round timing for one (topology, scheme, scenario)."""

    n: int
    height: int
    root_fanout: int
    rtt: float
    bandwidth_bps: float
    block_size: int
    costs: CryptoCostModel
    #: Largest per-node fanout anywhere in the tree. In the paper's
    #: balanced shapes this equals the root fanout; in skewed shapes (small
    #: n, deep trees) the last interior level can fan out wider, and *its*
    #: forwarding time bounds the sustainable instance rate, not the
    #: root's. ``None`` means "same as the root fanout".
    bottleneck_fanout: int = None  # type: ignore[assignment]
    #: Parallel uplink lanes per process (see :class:`repro.net.nic.Nic`).
    #: 1 = the strict §4.3 model; >1 approximates a testbed whose machines
    #: carry several shaped streams concurrently.
    uplink_lanes: int = 1

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigError(f"need n >= 2, got {self.n}")
        if not 1 <= self.root_fanout <= self.n - 1:
            raise ConfigError(f"root fanout {self.root_fanout} out of range")
        if self.height < 1:
            raise ConfigError(f"height must be >= 1, got {self.height}")
        if self.bottleneck_fanout is not None and self.bottleneck_fanout < 1:
            raise ConfigError(f"bottleneck fanout {self.bottleneck_fanout} invalid")

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------
    @property
    def quorum(self) -> int:
        return quorum_size(self.n)

    def qc_wire_size(self) -> int:
        """Bytes of one quorum certificate on the wire."""
        if self.costs.supports_aggregation:
            return 24 + self.costs.aggregate_base_size + bitmap_size(self.n)
        return 24 + self.costs.signature_size * self.quorum

    def block_wire_size(self) -> int:
        """Round-1 proposal: payload + embedded justify QC + framing."""
        return self.block_size + self.qc_wire_size() + PROPOSAL_OVERHEAD

    def _send_time_for_fanout(self, fanout: int) -> float:
        serial_sends = -(-fanout // max(1, self.uplink_lanes))  # ceil
        return serial_sends * self.block_wire_size() * 8.0 / self.bandwidth_bps

    @property
    def sending_time(self) -> float:
        """§4.3: the root's per-instance uplink occupancy, m·b/c
        (divided across parallel lanes when the NIC model has them)."""
        return self._send_time_for_fanout(self.root_fanout)

    @property
    def effective_bottleneck_fanout(self) -> int:
        if self.bottleneck_fanout is None:
            return self.root_fanout
        return max(self.bottleneck_fanout, self.root_fanout)

    @property
    def forwarding_time(self) -> float:
        """Per-instance uplink occupancy of the widest internal node."""
        return self._send_time_for_fanout(self.effective_bottleneck_fanout)

    def qc_sending_time(self) -> float:
        """Uplink occupancy for one round of QC dissemination."""
        return self.root_fanout * self.qc_wire_size() * 8.0 / self.bandwidth_bps

    @property
    def processing_time(self) -> float:
        """Per-round crypto work at the root (the busiest node).

        With aggregation (BLS): verify + merge each of ``m`` child
        aggregates, plus the root's own share -- O(m), §3.3.2. Without
        (secp): the collected quorum is a list that must be verified
        signature by signature -- O(N), §3.3.2's "classical asymmetric
        signatures require O(N) verifications".
        """
        if self.costs.supports_aggregation:
            return (
                self.costs.sign_time
                + self.root_fanout
                * (self.costs.aggregate_verify_time + self.costs.combine_per_input_time)
            )
        return self.costs.sign_time + self.quorum * self.costs.verify_time

    @property
    def remaining_time_paper(self) -> float:
        """§4.3's simple form: h · (RTT + processing time)."""
        return self.height * (self.rtt + self.processing_time)

    @property
    def remaining_time(self) -> float:
        """Refined remaining time: §4.3's h · (RTT + processing) plus the
        store-and-forward sending time of the ``h - 1`` lower tree levels.

        The paper's simple form counts only propagation and processing per
        level; in a bandwidth-constrained deployment each internal level
        also occupies its own uplink for one sending time before the block
        reaches the leaves, and the root is idle for that long too. The
        refinement markedly improves the predicted optimal stretch on deep
        trees (see EXPERIMENTS.md) and reduces to the paper's formula for
        stars (h = 1).
        """
        return self.remaining_time_paper + (self.height - 1) * self.sending_time

    @property
    def round_time(self) -> float:
        """One dissemination + aggregation sweep for a block-carrying round."""
        return self.sending_time + self.remaining_time

    # ------------------------------------------------------------------
    # §4.3 headline quantities
    # ------------------------------------------------------------------
    @property
    def bottleneck_time(self) -> float:
        """The per-instance cost at the busiest resource: the root's
        sending time (bandwidth-bound), an internal node's forwarding time
        (skewed trees), or the processing time (CPU-bound)."""
        return max(self.sending_time, self.forwarding_time, self.processing_time)

    @property
    def is_cpu_bound(self) -> bool:
        return self.processing_time > max(self.sending_time, self.forwarding_time)

    @property
    def pipelining_stretch(self) -> float:
        """Instances startable during one round's remaining time (§4.3).

        Computed from the pacing identity ``interval = round_time /
        (1 + stretch)`` at ``interval = bottleneck_time``, which reduces to
        the paper's ``remaining / sending`` (bandwidth-bound) and
        approximates ``remaining / processing`` (CPU-bound) while staying
        correct when an internal level, not the root, is the bottleneck.
        """
        return max(0.0, self.round_time / self.bottleneck_time - 1.0)

    @property
    def max_speedup(self) -> float:
        """(N-1)/m: the best tree-over-star factor (19.95 at N=400, m=20)."""
        return (self.n - 1) / self.root_fanout

    # ------------------------------------------------------------------
    # Derived operating parameters
    # ------------------------------------------------------------------
    def instance_latency(self) -> float:
        """End-to-end latency of one full 4-round instance, unpipelined.

        Round 1 carries the block; rounds 2-4 carry QCs only.
        """
        block_round = self.sending_time + self.remaining_time
        qc_round = self.qc_sending_time() + self.remaining_time
        return block_round + 3 * qc_round

    def proposal_interval(self, stretch: float) -> float:
        """Time between consecutive instance starts for a given stretch.

        ``round_time / (1 + stretch)``: at the model's ideal stretch this
        equals the bottleneck time, keeping the root exactly busy; larger
        stretches push the interval below the sending time and the NIC
        backlog grows -- the §4.2 over-pipelining regime.
        """
        if stretch < 0:
            raise ConfigError(f"negative stretch: {stretch}")
        return self.round_time / (1.0 + stretch)

    def expected_throughput_blocks(self, pipelined: bool = True) -> float:
        """Blocks per second at the model's optimum."""
        if pipelined:
            return 1.0 / self.bottleneck_time
        return 1.0 / self.instance_latency()

    def expected_throughput_txs(self, config: ProtocolConfig, pipelined: bool = True) -> float:
        return self.expected_throughput_blocks(pipelined) * config.txs_per_block

    def suggested_timeout(self, base: float) -> float:
        """Pacemaker base: generous multiple of the instance latency.

        Mirrors the paper's empirical calibration (§7.10): start large,
        shrink until spurious reconfigurations appear. Kauri's smaller
        instance latency automatically yields its more aggressive timeout.
        """
        return max(base, 2.5 * self.instance_latency())

    def suggested_delta(self) -> float:
        """Impatient-channel bound Δ for vote aggregation waits.

        Must cover a full dissemination + aggregation sweep below the
        waiting node, plus pipelining-induced queueing of up to one block
        sending time per tree level.
        """
        return self.round_time + self.height * self.sending_time + 0.25

    # ------------------------------------------------------------------
    @staticmethod
    def for_topology(
        n: int,
        height: int,
        root_fanout: int,
        params: NetworkParams,
        block_size: int,
        costs: CryptoCostModel,
        bottleneck_fanout: int = None,
        uplink_lanes: int = 1,
    ) -> "PerfModel":
        return PerfModel(
            n=n,
            height=height,
            root_fanout=root_fanout,
            rtt=params.rtt,
            bandwidth_bps=params.bandwidth_bps,
            block_size=block_size,
            costs=costs,
            bottleneck_fanout=bottleneck_fanout,
            uplink_lanes=uplink_lanes,
        )

    @staticmethod
    def for_tree_shape(
        n: int,
        height: int,
        root_fanout: int,
        params: NetworkParams,
        block_size: int,
        costs: CryptoCostModel,
    ) -> "PerfModel":
        """Like :meth:`for_topology`, deriving the bottleneck fanout from
        the balanced-tree level sizes the builder would produce."""
        from repro.topology.builder import tree_level_sizes

        widest = root_fanout
        if height > 1:
            sizes = tree_level_sizes(n, height, root_fanout)
            last_interior, leaves = sizes[-2], sizes[-1]
            widest = max(widest, -(-leaves // last_interior))  # ceil division
        return PerfModel.for_topology(
            n, height, root_fanout, params, block_size, costs,
            bottleneck_fanout=widest,
        )

    @staticmethod
    def for_star(
        n: int, params: NetworkParams, block_size: int, costs: CryptoCostModel
    ) -> "PerfModel":
        """HotStuff: a height-1 'tree' whose root talks to everyone."""
        return PerfModel.for_topology(n, 1, n - 1, params, block_size, costs)
