"""Unit tests for generator-based tasks, signals and waits."""

import pytest

from repro.errors import TaskCancelled
from repro.sim import TIMEOUT, Signal, Simulator, Sleep, Task, WaitSignal
from repro.sim.process import spawn, wait_all


def test_sleep_advances_task_clock():
    sim = Simulator()
    times = []

    def proc():
        times.append(sim.now)
        yield Sleep(2.5)
        times.append(sim.now)

    spawn(sim, proc())
    sim.run()
    assert times == [0.0, 2.5]


def test_task_does_not_run_synchronously_at_spawn():
    sim = Simulator()
    ran = []

    def proc():
        ran.append(True)
        yield Sleep(0)

    spawn(sim, proc())
    assert ran == []
    sim.run()
    assert ran == [True]


def test_task_return_value():
    sim = Simulator()

    def proc():
        yield Sleep(1.0)
        return 42

    task = spawn(sim, proc())
    sim.run()
    assert task.done
    assert task.result == 42


def test_signal_delivers_value():
    sim = Simulator()
    sig = Signal()
    got = []

    def waiter():
        value = yield WaitSignal(sig)
        got.append((sim.now, value))

    spawn(sim, waiter())
    sim.schedule(3.0, sig.fire, "payload")
    sim.run()
    assert got == [(3.0, "payload")]


def test_wait_on_fired_signal_completes_immediately():
    sim = Simulator()
    sig = Signal()
    sig.fire("early")
    got = []

    def waiter():
        got.append((yield WaitSignal(sig)))

    spawn(sim, waiter())
    sim.run()
    assert got == ["early"]
    assert sim.now == 0.0


def test_signal_wakes_multiple_waiters_in_order():
    sim = Simulator()
    sig = Signal()
    got = []

    def waiter(tag):
        yield WaitSignal(sig)
        got.append(tag)

    for tag in "abc":
        spawn(sim, waiter(tag))
    sim.schedule(1.0, sig.fire)
    sim.run()
    assert got == ["a", "b", "c"]


def test_signal_double_fire_raises():
    sig = Signal()
    sig.fire()
    with pytest.raises(Exception):
        sig.fire()
    assert sig.fire_if_unfired() is False


def test_wait_with_timeout_returns_sentinel():
    sim = Simulator()
    sig = Signal()
    got = []

    def waiter():
        value = yield WaitSignal(sig, timeout=2.0)
        got.append((sim.now, value))

    spawn(sim, waiter())
    sim.run()
    assert got == [(2.0, TIMEOUT)]
    assert not TIMEOUT  # falsy sentinel


def test_wait_with_timeout_receives_early_signal():
    sim = Simulator()
    sig = Signal()
    got = []

    def waiter():
        value = yield WaitSignal(sig, timeout=5.0)
        got.append((sim.now, value))

    spawn(sim, waiter())
    sim.schedule(1.0, sig.fire, "fast")
    sim.run()
    assert got == [(1.0, "fast")]
    # the timeout timer must have been cancelled: no event at t=5
    assert sim.now == 1.0


def test_late_signal_after_timeout_is_ignored():
    sim = Simulator()
    sig = Signal()
    got = []

    def waiter():
        got.append((yield WaitSignal(sig, timeout=1.0)))
        yield Sleep(10.0)
        got.append("alive")

    spawn(sim, waiter())
    sim.schedule(5.0, sig.fire, "late")
    sim.run()
    assert got == [TIMEOUT, "alive"]


def test_yield_from_subroutine_returns_value():
    sim = Simulator()
    results = []

    def helper(x):
        yield Sleep(1.0)
        return x * 2

    def proc():
        value = yield from helper(21)
        results.append((sim.now, value))

    spawn(sim, proc())
    sim.run()
    assert results == [(1.0, 42)]


def test_join_task_returns_its_result():
    sim = Simulator()
    results = []

    def worker():
        yield Sleep(3.0)
        return "done"

    def joiner(task):
        value = yield task
        results.append((sim.now, value))

    worker_task = spawn(sim, worker())
    spawn(sim, joiner(worker_task))
    sim.run()
    assert results == [(3.0, "done")]


def test_join_finished_task_completes_immediately():
    sim = Simulator()
    results = []

    def worker():
        yield Sleep(1.0)
        return 7

    def joiner(task):
        yield Sleep(5.0)
        results.append((yield task))

    worker_task = spawn(sim, worker())
    spawn(sim, joiner(worker_task))
    sim.run()
    assert results == [7]


def test_join_propagates_exception():
    sim = Simulator(strict=False)
    caught = []

    def worker():
        yield Sleep(1.0)
        raise ValueError("boom")

    def joiner(task):
        try:
            yield task
        except ValueError as exc:
            caught.append(str(exc))

    worker_task = spawn(sim, worker())
    spawn(sim, joiner(worker_task))
    sim.run()
    assert caught == ["boom"]


def test_wait_all_helper():
    sim = Simulator()
    results = []

    def worker(delay, value):
        yield Sleep(delay)
        return value

    def collector(tasks):
        values = yield from wait_all(tasks)
        results.append((sim.now, values))

    tasks = [spawn(sim, worker(3.0, "a")), spawn(sim, worker(1.0, "b"))]
    spawn(sim, collector(tasks))
    sim.run()
    assert results == [(3.0, ["a", "b"])]


def test_cancel_interrupts_sleep():
    sim = Simulator()
    trace = []

    def proc():
        try:
            yield Sleep(100.0)
            trace.append("unreachable")
        except TaskCancelled:
            trace.append(("cancelled", sim.now))
            raise

    task = spawn(sim, proc())
    sim.schedule(2.0, task.cancel)
    sim.run()
    assert trace == [("cancelled", 2.0)]
    assert task.done and task.cancelled


def test_cancel_before_start():
    sim = Simulator()
    ran = []

    def proc():
        ran.append(True)
        yield Sleep(1.0)

    task = spawn(sim, proc())
    task.cancel()
    sim.run()
    assert ran == []
    assert task.done and task.cancelled


def test_cancel_finished_task_is_noop():
    sim = Simulator()

    def proc():
        yield Sleep(1.0)
        return "ok"

    task = spawn(sim, proc())
    sim.run()
    task.cancel()
    sim.run()
    assert task.result == "ok"
    assert not task.cancelled


def test_cancelled_waiter_does_not_receive_signal():
    sim = Simulator()
    sig = Signal()
    got = []

    def waiter():
        got.append((yield WaitSignal(sig)))

    task = spawn(sim, waiter())
    sim.schedule(1.0, task.cancel)
    sim.schedule(2.0, sig.fire, "late")
    sim.run()
    assert got == []
    assert task.cancelled


def test_task_exception_strict_mode():
    sim = Simulator(strict=True)

    def proc():
        yield Sleep(1.0)
        raise RuntimeError("explode")

    spawn(sim, proc())
    with pytest.raises(RuntimeError):
        sim.run()


def test_task_exception_lenient_mode_recorded():
    sim = Simulator(strict=False)

    def proc():
        yield Sleep(1.0)
        raise RuntimeError("explode")

    task = spawn(sim, proc())
    sim.run()
    assert isinstance(task.exception, RuntimeError)
    assert any(isinstance(f, RuntimeError) for f in sim.failures)


def test_yielding_garbage_raises_inside_task():
    sim = Simulator(strict=False)

    def proc():
        yield "not a wait request"

    task = spawn(sim, proc())
    sim.run()
    assert task.exception is not None


def test_done_signal_fires_with_result():
    sim = Simulator()
    seen = []

    def proc():
        yield Sleep(1.0)
        return "finished"

    task = spawn(sim, proc())
    task.done_signal.add_waiter(seen.append)
    sim.run()
    assert seen == ["finished"]


def test_task_requires_generator():
    sim = Simulator()
    with pytest.raises(Exception):
        Task(sim, lambda: None)  # type: ignore[arg-type]
