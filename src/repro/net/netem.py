"""Link shaping: which RTT/bandwidth applies between each pair of processes.

Mirrors the paper's use of NetEm (§7.1): homogeneous scenarios give every
pair the same parameters; the heterogeneous scenario (§7.9) derives them
from cluster membership.
"""

from __future__ import annotations

from typing import Protocol

from repro.config import ClusterParams, NetworkParams


class Netem(Protocol):
    """Interface: per-pair link parameters.

    Shapers whose parameters depend on the pair only through a small
    number of *link classes* (e.g. "any pair" for homogeneous scenarios,
    "cluster a -> cluster b" for clustered ones) may additionally expose
    ``link_key(src, dst) -> Hashable`` mapping a pair to its class. The
    fabric then memoises ``params_between`` per class instead of per pair,
    collapsing the memo from O(n^2) entries to O(classes) -- the flyweight
    that matters at N=1000. The contract: two pairs with equal keys MUST
    shape identically. Shapers without ``link_key`` are memoised per pair
    as before.
    """

    def params_between(self, src: int, dst: int) -> NetworkParams:
        """Link characteristics for messages from ``src`` to ``dst``."""
        ...  # pragma: no cover


class HomogeneousNetem:
    """Every pair of processes shares one RTT/bandwidth (§7.1 scenarios)."""

    def __init__(self, params: NetworkParams):
        self.params = params

    def params_between(self, src: int, dst: int) -> NetworkParams:
        return self.params

    def link_key(self, src: int, dst: int):
        """One link class: every pair shapes identically."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HomogeneousNetem({self.params.name})"


class ClusterNetem:
    """Cluster-based heterogeneous shaping (§7.9, ResilientDB scenario).

    Pairs inside a cluster get LAN-class parameters; pairs across clusters
    get the configured inter-cluster parameters. The pair -> cluster-pair
    map is precomputed so :meth:`link_key` is two tuple indexes.
    """

    def __init__(self, clusters: ClusterParams):
        self.clusters = clusters
        self._cluster_index = tuple(
            clusters.cluster_of(process) for process in range(clusters.n)
        )

    def params_between(self, src: int, dst: int) -> NetworkParams:
        return self.clusters.params_between(src, dst)

    def link_key(self, src: int, dst: int):
        """Link class = ordered cluster pair (intra pairs share a class
        per cluster; params_between collapses them to ``intra`` anyway)."""
        index = self._cluster_index
        return (index[src], index[dst])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusterNetem({self.clusters.name}, n={self.clusters.n})"
