"""Consensus substrate: HotStuff's 4-round protocol state (paper §3.1, §6).

Kauri is deliberately *not* a new consensus algorithm: it replaces
HotStuff's star-based ``broadcastMsg``/``waitFor`` with tree-based
implementations. This package holds everything both share: blocks and the
block store, quorum certificates, the replica safety rules (vote-once,
locking), and the pacemaker driving view changes (§6, §7.10).
"""

from repro.consensus.block import Block, BlockStore, GENESIS_HASH, make_genesis
from repro.consensus.vote import Phase, QuorumCert, genesis_qc, vote_value
from repro.consensus.safety import SafetyRules
from repro.consensus.pacemaker import Pacemaker

__all__ = [
    "Block",
    "BlockStore",
    "GENESIS_HASH",
    "make_genesis",
    "Phase",
    "QuorumCert",
    "genesis_qc",
    "vote_value",
    "SafetyRules",
    "Pacemaker",
]
