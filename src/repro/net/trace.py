"""Optional message tracing.

A :class:`MessageTrace` subscribes to a network's observer hook and records
one event per send/drop/delivery into a bounded ring buffer, with running
counts by message kind (the first element of tuple tags). Used for
debugging, for the observability tests, and for protocol-flow assertions
(e.g. "proposals travel strictly level by level down the tree").
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Hashable, Optional

from repro.net.message import Message


@dataclass(frozen=True)
class TraceEvent:
    """One network-level event."""

    time: float
    kind: str  # "send" | "deliver" | "drop"
    src: int
    dst: int
    tag: Hashable
    size: int

    @property
    def tag_kind(self) -> str:
        if isinstance(self.tag, tuple) and self.tag:
            return str(self.tag[0])
        return str(self.tag)


class MessageTrace:
    """Bounded trace of network events with per-kind counters."""

    def __init__(self, capacity: int = 100_000):
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.counts: Counter = Counter()
        self.bytes_by_kind: Counter = Counter()

    def __call__(self, kind: str, msg: Message, time: float) -> None:
        """Observer hook invoked by the network."""
        event = TraceEvent(
            time=time, kind=kind, src=msg.src, dst=msg.dst, tag=msg.tag,
            size=msg.size,
        )
        self.events.append(event)
        self.counts[(kind, event.tag_kind)] += 1
        if kind == "send":
            self.bytes_by_kind[event.tag_kind] += msg.size

    # ------------------------------------------------------------------
    def sends(self, tag_kind: Optional[str] = None):
        return [
            e
            for e in self.events
            if e.kind == "send" and (tag_kind is None or e.tag_kind == tag_kind)
        ]

    def deliveries(self, tag_kind: Optional[str] = None):
        return [
            e
            for e in self.events
            if e.kind == "deliver" and (tag_kind is None or e.tag_kind == tag_kind)
        ]

    def summary(self) -> dict:
        """Counts and bytes per message kind."""
        kinds = {kind for _, kind in self.counts}
        return {
            kind: {
                "sent": self.counts[("send", kind)],
                "delivered": self.counts[("deliver", kind)],
                "dropped": self.counts[("drop", kind)],
                "bytes": self.bytes_by_kind[kind],
            }
            for kind in sorted(kinds)
        }

    def __len__(self) -> int:
        return len(self.events)
