"""secp256k1-style individual signatures (HotStuff-secp, §1 and §6).

No aggregation: a collection is a set of individual signatures, so quorum
certificates are O(N) on the wire ("the leader has to relay the full set of
signatures to all processes", §1) and verifying one costs O(N) individual
checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet

from repro.crypto.collection import Collection
from repro.crypto.costs import CryptoCostModel
from repro.crypto.keys import KeyPair, Pki, canonical_digest
from repro.crypto.signature import SignatureScheme
from repro.errors import CryptoError


@dataclass(frozen=True)
class SecpSignature:
    """One process's signature over one value."""

    signer: int
    value: Any
    mac: bytes

    def digest(self) -> bytes:
        return canonical_digest(self.value)


class SecpCollection(Collection):
    """A set of individual signatures; ⊕ is set union.

    Quorum verification is the hot path (O(N) individual checks, §1):
    ``signers_for`` scans a lazily-built per-value index instead of the
    whole signature set, digests are memoised in
    :func:`~repro.crypto.keys.canonical_digest`, and expected MACs are
    memoised at the :class:`~repro.crypto.keys.Pki`, so re-verifying a
    quorum certificate costs dict lookups, not hashes.
    """

    __slots__ = ("_pki", "_costs", "_entries", "_valid_cache", "_index")

    def __init__(
        self,
        pki: Pki,
        costs: CryptoCostModel,
        entries: FrozenSet[SecpSignature] = frozenset(),
    ):
        self._pki = pki
        self._costs = costs
        self._entries = entries
        self._valid_cache: Dict[Any, FrozenSet[int]] = {}
        self._index: Dict[Any, list] = None

    # ------------------------------------------------------------------
    def combine(self, other: Collection) -> "SecpCollection":
        if not isinstance(other, SecpCollection):
            raise CryptoError(
                f"cannot combine secp collection with {type(other).__name__}"
            )
        if other._pki is not self._pki:
            raise CryptoError("cannot combine collections from different PKIs")
        if other is self or not other._entries:
            return self
        if not self._entries and other._costs is self._costs:
            return other
        return SecpCollection(self._pki, self._costs, self._entries | other._entries)

    def has(self, value: Any, threshold: int) -> bool:
        return len(self.signers_for(value)) >= threshold

    def _value_index(self) -> Dict[Any, list]:
        index = self._index
        if index is None:
            index = {}
            for sig in self._entries:
                index.setdefault(sig.value, []).append(sig)
            self._index = index
        return index

    def signers_for(self, value: Any) -> FrozenSet[int]:
        cached = self._valid_cache.get(value)
        if cached is not None:
            return cached
        candidates = self._value_index().get(value, ())
        digest = canonical_digest(value)
        valid = frozenset(
            sig.signer
            for sig in candidates
            if self._pki.verify_mac(sig.signer, digest, sig.mac)
        )
        self._valid_cache[value] = valid
        return valid

    def cardinality(self) -> int:
        # Distinct (process, value) tuples; duplicate MACs collapse in the set.
        return len({(sig.signer, sig.value) for sig in self._entries})

    def values(self) -> FrozenSet[Any]:
        return frozenset(sig.value for sig in self._entries)

    def wire_size(self) -> int:
        """8-byte framing plus one full signature per tuple."""
        return 8 + self._costs.signature_size * len(self._entries)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, SecpCollection) and self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SecpCollection({len(self._entries)} sigs)"


class SecpScheme(SignatureScheme):
    """Scheme factory for secp-style signature lists."""

    def new(self, keypair: KeyPair, value: Any) -> SecpCollection:
        sig = SecpSignature(
            signer=keypair.node_id,
            value=value,
            mac=keypair.mac(canonical_digest(value)),
        )
        return SecpCollection(self.pki, self.costs, frozenset([sig]))

    def empty(self) -> SecpCollection:
        return SecpCollection(self.pki, self.costs)
