"""Shared benchmark configuration.

Environment knobs:

- ``REPRO_BENCH_SCALE`` (float, default 1.0): uniformly shrinks simulation
  horizons and commit budgets. 0.2 gives a quick smoke pass; 1.0 runs the
  evaluation at meaningful statistical depth.
- ``REPRO_BENCH_FULL_N`` (set to 1): include N=400 points where the default
  grid stops at N=200 to bound wall-clock time.
- ``REPRO_BENCH_JOBS`` (int, default 1): worker processes for the sweep
  engine; every grid-shaped bench fans its independent cells out over this
  many processes (results are identical for any value -- each cell is a
  deterministic function of its spec).
- ``REPRO_BENCH_CACHE`` (set to 1): reuse completed cells from the on-disk
  result cache under ``benchmarks/results/.cache/``.

Every bench prints the paper-style table it regenerates and also writes it
to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference the
exact rows.
"""

import os
import pathlib

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
FULL_N = os.environ.get("REPRO_BENCH_FULL_N", "") not in ("", "0")
JOBS = max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1"))
CACHE = os.environ.get("REPRO_BENCH_CACHE", "") not in ("", "0")

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def scale():
    return SCALE


@pytest.fixture
def jobs():
    return JOBS


@pytest.fixture
def bench_ns():
    """System sizes for size sweeps (paper: 100/200/400)."""
    return (100, 200, 400) if FULL_N else (100, 200)


@pytest.fixture
def save_table():
    def _save(name: str, text: str) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print("\n" + text)
        return str(path)

    return _save


def run_grid(specs):
    """Run a list of ExperimentSpecs through the shared sweep engine.

    Honours ``REPRO_BENCH_JOBS`` / ``REPRO_BENCH_CACHE``; results come back
    in spec order, so callers can ``zip`` them with their cell keys.
    """
    from repro.runtime.sweep import SweepRunner

    return SweepRunner(jobs=JOBS, cache=CACHE).run(specs)


def run_once(benchmark, fn):
    """Run a deterministic experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
