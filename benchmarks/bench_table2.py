"""Table 2: performance-model parameters per scenario (§7.2).

Processing / sending / remaining time, ideal pipelining stretch, and the
expected speedup, for HotStuff-secp and Kauri across the §7.1 scenarios.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.analysis.tables import TABLE2_HEADERS, table2_rows


def test_table2_model_parameters(benchmark, save_table):
    rows = run_once(benchmark, table2_rows)
    save_table("table2", format_table(TABLE2_HEADERS, rows, title="Table 2 (250 KB blocks)"))

    def row(scenario, system, n):
        return next(r for r in rows if r[:3] == (scenario, system, n))

    # §4.3: max speedup 19.95 at N=400, fanout 20
    assert abs(row("global", "kauri", 400)[7] - 19.95) < 0.1
    # Kauri's sending time is an order of magnitude below HotStuff's
    for scenario, n in (("national", 100), ("regional", 100), ("global", 400)):
        assert row(scenario, "kauri", n)[4] < row(scenario, "hotstuff-secp", n)[4] / 5
    # the expected speedup grows with N in the global scenario (§7.4)
    speedups = [row("global", "kauri", n)[8] for n in (100, 200, 400)]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 15  # paper: ~30 predicted, 28.2 observed
