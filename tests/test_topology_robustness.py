"""Unit + property tests for robustness predicates (Definitions 3-4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    Tree,
    all_internals_correct,
    build_star,
    build_tree,
    can_reach_quorum,
    is_robust,
    is_robust_star,
)
from repro.topology.robustness import reachable_correct


@pytest.fixture
def tree7():
    return Tree(0, {0: [1, 2], 1: [3, 4], 2: [5, 6]})


class TestRobustStar:
    def test_correct_leader_is_robust(self):
        star = build_star(range(4))
        assert is_robust_star(star, faulty=set())
        assert is_robust_star(star, faulty={1, 2})

    def test_faulty_leader_is_not_robust(self):
        star = build_star(range(4))
        assert not is_robust_star(star, faulty={0})


class TestRobustTree:
    def test_no_faults_is_robust(self, tree7):
        assert is_robust(tree7, set())

    def test_faulty_root_is_not_robust(self, tree7):
        assert not is_robust(tree7, {0})

    def test_faulty_internal_with_correct_child_is_not_robust(self, tree7):
        assert not is_robust(tree7, {1})

    def test_faulty_leaf_is_robust(self, tree7):
        assert is_robust(tree7, {3})
        assert is_robust(tree7, {3, 5, 6})

    def test_faulty_internal_with_all_faulty_subtree_is_robust(self, tree7):
        """§3.2: the pairwise definition admits this viable configuration."""
        assert is_robust(tree7, {1, 3, 4})
        # ... but the corollary condition rejects it (sufficient only)
        assert not all_internals_correct(tree7, {1, 3, 4})

    def test_corollary_all_internals_correct(self, tree7):
        assert all_internals_correct(tree7, {3, 4, 5})
        assert not all_internals_correct(tree7, {2})


class TestQuorumReachability:
    def test_reachable_correct_counts(self, tree7):
        assert reachable_correct(tree7, set()) == set(range(7))
        # faulty internal 1 cuts off its subtree
        assert reachable_correct(tree7, {1}) == {0, 2, 5, 6}
        assert reachable_correct(tree7, {0}) == set()

    def test_can_reach_quorum(self, tree7):
        # n=7 -> f=2 -> quorum=5
        assert can_reach_quorum(tree7, set(), 5)
        assert not can_reach_quorum(tree7, {1}, 5)  # only 4 reachable
        assert can_reach_quorum(tree7, {3, 4}, 5)


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------

heights = st.sampled_from([1, 2, 3])
sizes = st.integers(min_value=40, max_value=80)


@settings(max_examples=50, deadline=None)
@given(sizes, heights, st.sets(st.integers(0, 79), max_size=12))
def test_corollary_implies_definition(n, height, faulty_candidates):
    """All internal nodes correct  =>  robust (Definition 4)."""
    tree = build_tree(range(n), height=height)
    faulty = {node for node in faulty_candidates if node < n}
    if all_internals_correct(tree, faulty):
        assert is_robust(tree, faulty)


@settings(max_examples=50, deadline=None)
@given(sizes, heights, st.sets(st.integers(0, 79), max_size=12))
def test_definition_matches_pairwise_check(n, height, faulty_candidates):
    """is_robust agrees with a brute-force check of Definition 4."""
    tree = build_tree(range(n), height=height)
    faulty = {node for node in faulty_candidates if node < n}
    correct = [node for node in tree.nodes if node not in faulty]

    def brute_force():
        if tree.root in faulty:
            return False
        for i, a in enumerate(correct):
            for b in correct[i + 1 :]:
                path = tree.path_between(a, b)
                if any(node in faulty for node in path):
                    return False
        return True

    assert is_robust(tree, faulty) == brute_force()


@settings(max_examples=50, deadline=None)
@given(sizes, heights, st.sets(st.integers(0, 79), max_size=12))
def test_robust_tree_reaches_all_correct_nodes(n, height, faulty_candidates):
    """In a robust tree, the leader reaches every correct process (§3.3.3)."""
    tree = build_tree(range(n), height=height)
    faulty = {node for node in faulty_candidates if node < n}
    if is_robust(tree, faulty):
        reached = reachable_correct(tree, faulty)
        assert reached == set(tree.nodes) - faulty
