"""Unit + integration tests for multi-lane NICs (uplink-model ablation)."""

import pytest

from repro import Cluster
from repro.errors import NetworkError
from repro.net import Nic
from repro.sim import Simulator


def test_two_lanes_transmit_in_parallel():
    sim = Simulator()
    nic = Nic(sim, lanes=2)
    done = []
    nic.transmit(1250, 10_000.0, lambda: done.append(("a", sim.now)))
    nic.transmit(1250, 10_000.0, lambda: done.append(("b", sim.now)))
    nic.transmit(1250, 10_000.0, lambda: done.append(("c", sim.now)))
    sim.run()
    assert done == [
        ("a", pytest.approx(1.0)),
        ("b", pytest.approx(1.0)),  # parallel with a
        ("c", pytest.approx(2.0)),  # queued behind the earlier lane
    ]


def test_single_lane_matches_original_fifo():
    sim = Simulator()
    nic = Nic(sim, lanes=1)
    done = []
    nic.transmit(1250, 10_000.0, lambda: done.append(sim.now))
    nic.transmit(1250, 10_000.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(1.0), pytest.approx(2.0)]


def test_backlog_is_time_to_first_free_lane():
    sim = Simulator()
    nic = Nic(sim, lanes=2)
    nic.transmit(2500, 10_000.0, lambda: None)  # lane 0 busy 2s
    assert nic.backlog == 0.0  # lane 1 free
    nic.transmit(1250, 10_000.0, lambda: None)  # lane 1 busy 1s
    assert nic.backlog == pytest.approx(1.0)


def test_utilization_counts_aggregate_capacity():
    sim = Simulator()
    nic = Nic(sim, lanes=2)
    nic.transmit(1250, 10_000.0, lambda: None)
    sim.run(until=1.0)
    assert nic.utilization() == pytest.approx(0.5)  # 1 of 2 lane-seconds


def test_invalid_lanes_rejected():
    sim = Simulator()
    with pytest.raises(NetworkError):
        Nic(sim, lanes=0)


def test_lanes_shrink_hotstuff_sending_time_end_to_end():
    """More uplink parallelism helps the star's leader most (ablation A4)."""

    def tput(mode, lanes):
        cluster = Cluster(
            n=31, mode=mode, scenario="global", uplink_lanes=lanes, seed=1
        )
        cluster.start()
        cluster.run(duration=120.0, max_commits=120)
        cluster.check_agreement()
        return cluster.metrics.throughput_txs(start=cluster.sim.now * 0.25)

    hotstuff_1 = tput("hotstuff-bls", 1)
    hotstuff_8 = tput("hotstuff-bls", 8)
    assert hotstuff_8 > 2 * hotstuff_1
    kauri_1 = tput("kauri", 1)
    kauri_8 = tput("kauri", 8)
    # Kauri still wins with a parallel uplink; at this small scale (fanout
    # ~ lane count) the speedup ratio is roughly preserved rather than
    # shrunk -- the N=100 ablation bench shows the shrink.
    assert kauri_8 > hotstuff_8
    assert (kauri_8 / hotstuff_8) < 1.3 * (kauri_1 / hotstuff_1)


def test_model_accounts_for_lanes():
    from repro.config import GLOBAL, KB
    from repro.core import PerfModel
    from repro.crypto.costs import BLS_COSTS

    one = PerfModel.for_topology(100, 2, 10, GLOBAL, 250 * KB, BLS_COSTS)
    five = PerfModel.for_topology(
        100, 2, 10, GLOBAL, 250 * KB, BLS_COSTS, uplink_lanes=5
    )
    assert five.sending_time == pytest.approx(one.sending_time / 5)
