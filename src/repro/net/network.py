"""The network fabric: endpoints, sends, and tag-based receives.

``Network.send`` charges the sender's NIC (serialization at the pair's
bandwidth), adds the pair's propagation delay, consults the fault injector,
and delivers into the destination :class:`Endpoint`. Endpoints hand
messages to blocked ``receive`` coroutines by tag (and optional sender
filter), queueing unclaimed messages per tag.

Delivered-but-stale traffic is garbage collected by tag prefix when a view
ends (:meth:`Endpoint.purge`), mirroring a real implementation discarding
messages from superseded instances.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Hashable, List, Optional, Tuple

from repro.errors import NetworkError
from repro.net.faults import FaultInjector
from repro.net.message import Message
from repro.net.netem import Netem
from repro.net.nic import Nic
from repro.sim.engine import Simulator
from repro.sim.process import TIMEOUT, Signal, WaitSignal

#: Fixed per-message framing overhead (TCP/IP + protocol header), bytes.
HEADER_BYTES = 64

MatchFn = Callable[[Message], bool]


class Endpoint:
    """Receiving side of one process."""

    __slots__ = (
        "sim", "node_id", "_inbox", "_waiters", "messages_delivered",
        "bytes_delivered", "_queued", "max_queued",
    )

    def __init__(self, sim: Simulator, node_id: int):
        self.sim = sim
        self.node_id = node_id
        self._inbox: Dict[Hashable, Deque[Message]] = {}
        self._waiters: Dict[Hashable, List[Tuple[Optional[MatchFn], Signal]]] = {}
        self.messages_delivered = 0
        self.bytes_delivered = 0
        #: Live count of queued (delivered-but-unclaimed) messages, and its
        #: high-water mark -- maintained incrementally, the per-tag sum in
        #: :attr:`queued_messages` is too slow for per-delivery bookkeeping.
        self._queued = 0
        self.max_queued = 0

    # ------------------------------------------------------------------
    def deliver(self, msg: Message) -> None:
        """Fabric hook: hand ``msg`` to a blocked receiver or queue it.

        Fired-signal entries (waiters whose timeout or cancellation already
        resolved but whose owning coroutine has not yet run its ``finally``)
        are pruned during the scan, so hot tags under deep pipelining don't
        accumulate dead waiters between deliveries.
        """
        self.messages_delivered += 1
        self.bytes_delivered += msg.size
        waiters = self._waiters.get(msg.tag)
        consumer = None
        if waiters:
            live = []
            for entry in waiters:
                match, signal = entry
                if signal.fired:
                    continue  # dead waiter: prune instead of skipping
                if consumer is None and (match is None or match(msg)):
                    consumer = signal
                    continue  # consumed: drop the entry now
                live.append(entry)
            if live:
                waiters[:] = live
            else:
                del self._waiters[msg.tag]
            if consumer is not None:
                consumer.fire(msg)
                return
        self._inbox.setdefault(msg.tag, deque()).append(msg)
        self._queued += 1
        if self._queued > self.max_queued:
            self.max_queued = self._queued

    def try_receive(
        self, tag: Hashable, match: Optional[MatchFn] = None
    ) -> Optional[Message]:
        """Non-blocking receive: pop the first queued match, if any."""
        queue = self._inbox.get(tag)
        if not queue:
            return None
        if match is None:
            msg = queue.popleft()
        else:
            # Locate by index and rotate/pop: deque.remove would rescan the
            # queue comparing every element a second time.
            for index, candidate in enumerate(queue):
                if match(candidate):
                    break
            else:
                return None
            if index:
                queue.rotate(-index)
                msg = queue.popleft()
                queue.rotate(index)
            else:
                msg = queue.popleft()
        if not queue:
            del self._inbox[tag]
        self._queued -= 1
        return msg

    def receive(
        self,
        tag: Hashable,
        timeout: Optional[float] = None,
        match: Optional[MatchFn] = None,
    ):
        """Coroutine: block until a message tagged ``tag`` arrives.

        Returns the :class:`Message`, or :data:`~repro.sim.TIMEOUT` if
        ``timeout`` elapses first. ``match`` filters candidates (e.g. by
        sender). Cancellation-safe: a cancelled receiver never consumes a
        message.
        """
        msg = self.try_receive(tag, match)
        if msg is not None:
            return msg
        signal = Signal()
        entry = (match, signal)
        self._waiters.setdefault(tag, []).append(entry)
        try:
            result = yield WaitSignal(signal, timeout)
        finally:
            waiters = self._waiters.get(tag)
            if waiters is not None:
                try:
                    waiters.remove(entry)
                except ValueError:
                    pass
                if not waiters:
                    del self._waiters[tag]
        return result  # Message or TIMEOUT

    # ------------------------------------------------------------------
    def purge(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop queued messages whose tag satisfies ``predicate``.

        Returns the number of messages discarded. Live waiters are left
        alone (their owning tasks are cancelled separately on view change),
        but dead entries -- waiters whose signal already resolved, lingering
        until their coroutine's ``finally`` runs -- are pruned for purged
        tags, mirroring :meth:`deliver`. A view change would otherwise
        leave them behind forever on tags no message will touch again.
        """
        doomed = [tag for tag in self._inbox if predicate(tag)]
        dropped = 0
        for tag in doomed:
            dropped += len(self._inbox.pop(tag))
        self._queued -= dropped
        for tag in [tag for tag in self._waiters if predicate(tag)]:
            live = [entry for entry in self._waiters[tag] if not entry[1].fired]
            if live:
                self._waiters[tag][:] = live
            else:
                del self._waiters[tag]
        return dropped

    @property
    def queued_messages(self) -> int:
        return sum(len(q) for q in self._inbox.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Endpoint(node={self.node_id}, queued={self.queued_messages})"


class Network:
    """Full-mesh fabric over a :class:`~repro.net.netem.Netem` shaper."""

    def __init__(
        self,
        sim: Simulator,
        netem: Netem,
        faults: Optional[FaultInjector] = None,
        header_bytes: int = HEADER_BYTES,
        uplink_lanes: int = 1,
    ):
        self.sim = sim
        self.netem = netem
        self.faults = faults if faults is not None else FaultInjector(sim)
        self.header_bytes = header_bytes
        self.uplink_lanes = uplink_lanes
        self.endpoints: Dict[int, Endpoint] = {}
        self.nics: Dict[int, Nic] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self._uid = 0
        #: Route :meth:`multicast` through the batched single-pass path.
        #: The multicast equivalence property test flips this off to force
        #: the sequential per-destination reference path.
        self.multicast_enabled = True
        # Link-parameter memo in front of the shaper: every Netem in the
        # library is static, and the fabric queries per message. Keyed by
        # the shaper's link *class* when it exposes ``link_key`` (one
        # entry for a homogeneous scenario, O(clusters^2) for a clustered
        # one -- never O(n^2) pairs), by (src, dst) pair otherwise.
        # Swapping ``self.netem`` rebinds and clears the memo on the next
        # send (see _rebind_netem); invalidate_links() clears explicitly.
        self._params_cache: Dict[Any, Any] = {}
        self._keyed_netem: Any = netem
        self._link_key: Optional[Callable[[int, int], Any]] = getattr(
            netem, "link_key", None
        )
        #: Optional observers called as f(kind, msg, time) on "send",
        #: "deliver" and "drop" events (see repro.net.trace.MessageTrace).
        self.observers: List[Callable[[str, Message, float], None]] = []

    def _notify(self, kind: str, msg: Message) -> None:
        for observer in self.observers:
            observer(kind, msg, self.sim.now)

    # ------------------------------------------------------------------
    def register(self, node_id: int) -> Endpoint:
        """Create (or return) the endpoint and NIC for ``node_id``."""
        if node_id not in self.endpoints:
            self.endpoints[node_id] = Endpoint(self.sim, node_id)
            self.nics[node_id] = Nic(
                self.sim, name=f"nic-{node_id}", lanes=self.uplink_lanes
            )
        return self.endpoints[node_id]

    def endpoint(self, node_id: int) -> Endpoint:
        """The registered endpoint of ``node_id`` (raises if unknown)."""
        try:
            return self.endpoints[node_id]
        except KeyError:
            raise NetworkError(f"process {node_id} is not registered") from None

    def nic(self, node_id: int) -> Nic:
        """The registered NIC of ``node_id`` (raises if unknown)."""
        try:
            return self.nics[node_id]
        except KeyError:
            raise NetworkError(f"process {node_id} is not registered") from None

    # ------------------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        tag: Hashable,
        payload: Any,
        size: int,
    ) -> Message:
        """Send ``payload`` from ``src`` to ``dst``.

        The message occupies the sender's NIC for ``(size + header) * 8 /
        bandwidth`` seconds, then arrives ``propagation_delay`` (plus any
        injected delay) later -- unless a fault drops it. Self-sends are
        delivered immediately without touching the NIC.
        """
        # Single .get() per dict on the hot path (no membership check
        # followed by a second hash of the same key).
        nic = self.nics.get(src)
        dst_endpoint = self.endpoints.get(dst)
        if nic is None or dst_endpoint is None:
            raise NetworkError(f"send between unregistered processes {src}->{dst}")
        self._uid += 1
        msg = Message(
            src=src, dst=dst, tag=tag, payload=payload, size=size,
            sent_at=self.sim.now, uid=self._uid,
        )
        self.messages_sent += 1
        if self.observers:
            self._notify("send", msg)
        faults = self.faults
        if src in faults.crashed:
            faults.dropped_messages += 1
            if self.observers:
                self._notify("drop", msg)
            return msg
        if src == dst:
            self._deliver(msg)
            return msg
        if self.netem is not self._keyed_netem:
            self._rebind_netem()
        link_key = self._link_key
        key = (src, dst) if link_key is None else link_key(src, dst)
        params = self._params_cache.get(key)
        if params is None:
            params = self.netem.params_between(src, dst)
            self._params_cache[key] = params
        done = nic.transmit_raw(size + self.header_bytes, params.bandwidth_bps)
        if faults._armed:
            self.sim.schedule_call_at(
                done, self._serialized, msg, params.propagation_delay
            )
        else:
            # No fault rule has ever been registered on this injector, and
            # arming is monotonic, so none can exist when serialization
            # completes either: skip the completion hop and schedule the
            # delivery directly -- one handle-free event instead of two.
            self.sim.schedule_call_at(
                done + params.propagation_delay, self._deliver, msg
            )
        return msg

    def _serialized(self, msg: Message, propagation_delay: float) -> None:
        """Per-message serialization-completion hook (armed injector only).

        Fault checks must run at serialization completion (a crash can land
        mid-serialization, also mid-multicast-fan-out), but the common
        no-rule case is decided by plain attribute peeks at the injector's
        rule sets (see FaultInjector) -- no method dispatch, no per-message
        tuple allocation.
        """
        faults = self.faults
        if faults.crashed or faults._omission_edges or (
            faults._drop_predicate is not None
        ):
            if faults.should_drop(msg):
                if self.observers:
                    self._notify("drop", msg)
                return
        if faults._delay_fn is None:
            delay = propagation_delay
        else:
            delay = propagation_delay + faults.extra_delay(msg)
        self.sim.schedule_call(delay, self._deliver, msg)

    def multicast(
        self,
        src: int,
        dsts: Tuple[int, ...],
        tag: Hashable,
        payload: Any,
        size: int,
    ) -> List[Message]:
        """Send ``payload`` from ``src`` to every process in ``dsts``.

        Equivalent -- message for message, event for event, bit for bit --
        to ``[self.send(src, dst, tag, payload, size) for dst in dsts]``,
        but in one pass: one wire size, one params lookup per destination
        (memoised), one chained NIC occupancy computation
        (:meth:`Nic.transmit_batch`), and one handle-free completion event
        per destination instead of a per-destination closure. Per-message
        fault decisions still happen at each serialization-completion
        instant, so a crash landing mid-fan-out drops exactly the suffix
        it would have dropped under sequential sends.

        Self-sends (``src in dsts``) deliver synchronously mid-sequence,
        so such batches take the sequential reference path.
        """
        if not dsts:
            return []
        if not self.multicast_enabled or src in dsts:
            return [self.send(src, dst, tag, payload, size) for dst in dsts]
        nic = self.nics.get(src)
        if nic is None:
            raise NetworkError(f"multicast from unregistered process {src}")
        sim = self.sim
        now = sim.now
        faults = self.faults
        observers = self.observers
        endpoints = self.endpoints
        uid = self._uid
        msgs: List[Message] = []
        if src in faults.crashed:
            for dst in dsts:
                if dst not in endpoints:
                    raise NetworkError(
                        f"send between unregistered processes {src}->{dst}"
                    )
                uid += 1
                msg = Message(
                    src=src, dst=dst, tag=tag, payload=payload, size=size,
                    sent_at=now, uid=uid,
                )
                msgs.append(msg)
                self.messages_sent += 1
                if observers:
                    self._notify("send", msg)
                faults.dropped_messages += 1
                if observers:
                    self._notify("drop", msg)
            self._uid = uid
            return msgs
        netem = self.netem
        if netem is not self._keyed_netem:
            self._rebind_netem()
        cache = self._params_cache
        link_key = self._link_key
        props: List[float] = []
        bandwidths: List[float] = []
        for dst in dsts:
            if dst not in endpoints:
                raise NetworkError(
                    f"send between unregistered processes {src}->{dst}"
                )
            uid += 1
            msg = Message(
                src=src, dst=dst, tag=tag, payload=payload, size=size,
                sent_at=now, uid=uid,
            )
            msgs.append(msg)
            self.messages_sent += 1
            if observers:
                self._notify("send", msg)
            key = (src, dst) if link_key is None else link_key(src, dst)
            params = cache.get(key)
            if params is None:
                params = netem.params_between(src, dst)
                cache[key] = params
            props.append(params.propagation_delay)
            bandwidths.append(params.bandwidth_bps)
        self._uid = uid
        done_times = nic.transmit_batch(size + self.header_bytes, bandwidths)
        if faults._armed:
            schedule_call_at = sim.schedule_call_at
            serialized = self._serialized
            for i, msg in enumerate(msgs):
                schedule_call_at(done_times[i], serialized, msg, props[i])
        else:
            # Same direct-delivery fast path as ``send``.
            schedule_call_at = sim.schedule_call_at
            deliver = self._deliver
            for i, msg in enumerate(msgs):
                schedule_call_at(done_times[i] + props[i], deliver, msg)
        return msgs

    def _rebind_netem(self) -> None:
        """Adopt a swapped shaper (reconfiguration, client-harness
        wrapping): drop every memoised entry so stale bandwidth or
        propagation values never price new traffic, and pick up the new
        shaper's ``link_key`` (or lack of one)."""
        netem = self.netem
        self._keyed_netem = netem
        self._link_key = getattr(netem, "link_key", None)
        self._params_cache.clear()

    def invalidate_links(
        self, src: Optional[int] = None, dst: Optional[int] = None
    ) -> int:
        """Evict memoised link params for matching ``(src, dst)`` pairs.

        The fabric memoises :meth:`Netem.params_between` because every
        shaper in the library is static -- but a reconfiguration that
        swaps the shaper (see :mod:`repro.topology.reconfig`) breaks that
        assumption, and must call this so no message is priced with stale
        bandwidth or propagation values. ``None`` acts as a wildcard;
        returns the number of evicted entries.

        With a class-keyed memo (the shaper exposes ``link_key``), entries
        cannot be matched back to individual pairs, so a filtered eviction
        conservatively clears the whole memo: over-eviction merely costs a
        re-query, under-eviction would misprice messages.
        """
        cache = self._params_cache
        if self.netem is not self._keyed_netem:
            count = len(cache)
            self._rebind_netem()
            return count
        if (src is None and dst is None) or self._link_key is not None:
            count = len(cache)
            cache.clear()
            return count
        doomed = [
            key for key in cache
            if (src is None or key[0] == src) and (dst is None or key[1] == dst)
        ]
        for key in doomed:
            del cache[key]
        return len(doomed)

    def _deliver(self, msg: Message) -> None:
        faults = self.faults
        if msg.dst in faults.crashed:
            faults.dropped_messages += 1
            if self.observers:
                self._notify("drop", msg)
            return
        msg.delivered_at = self.sim.now
        self.messages_delivered += 1
        if self.observers:
            self._notify("deliver", msg)
        self.endpoints[msg.dst].deliver(msg)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(n={len(self.endpoints)}, sent={self.messages_sent}, "
            f"delivered={self.messages_delivered})"
        )
