"""Figure generators: one function per evaluation figure (§7.3-§7.10).

Every function runs real deployments and returns the same series the
paper plots. Since the scenario-pack refactor the *grids* live in
checked-in data files under ``scenarios/`` (one pack per figure); each
generator loads its pack, substitutes any caller-supplied axis values,
and compiles it to the same frozen :class:`~repro.runtime.sweep.ExperimentSpec`
cells the inline grids used to build -- byte-identical, so the on-disk
result cache keeps hitting (tests/test_scenarios_roundtrip.py holds the
proof). Simulation horizons adapt to each configuration's expected
instance latency via :mod:`repro.runtime.horizon`; ``scale`` < 1.0
shrinks horizons uniformly for quick smoke runs.

``jobs`` fans the independent cells out over a process pool (``None``
reads ``$REPRO_SWEEP_JOBS``), and ``use_cache`` re-uses completed cells
from the on-disk result cache. Results are identical for any ``jobs``
value -- every cell is a deterministic function of its spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config import KB, NetworkParams, ms
from repro.runtime.experiment import ExperimentResult
from repro.runtime.horizon import adaptive_duration, model_for as _model_for
from repro.runtime.sweep import SweepRunner
from repro.scenarios import CompiledGrid, compile_pack, load_pack

__all__ = [
    "FIGURES",
    "RED_CIRCLE",
    "adaptive_duration",
    "saturation_marker",
    "fig5_stretch_sweep",
    "fig6_scenarios",
    "fig6_kudzu_headtohead",
    "fig7_rtt_sweep",
    "fig8_latency_bandwidth",
    "fig9_throughput_latency",
    "fig10_tree_height",
    "fig11_heterogeneous",
    "fig12_reconfiguration",
    "fig_depth_scaling",
]

#: Registry of every figure the CLI can regenerate: key -> what it shows.
#: ``repro fig``'s choice list derives from this (the way ``--mode``
#: derives from ``MODES``), so adding a figure here surfaces it in the CLI.
FIGURES: Dict[str, str] = {
    "3": "pipelining Gantt: in-flight instances at the leader (§4.2)",
    "5": "throughput vs pipelining stretch (§7.3)",
    "6": "Kauri vs HotStuff-bls vs Kudzu across scenarios (§7.4)",
    "7": "throughput vs RTT (§7.5)",
    "8": "latency vs bandwidth (§7.6)",
    "9": "throughput vs latency under varying load (§7.7)",
    "10": "impact of tree height (§7.8)",
    "11": "heterogeneous networks (§7.9)",
    "12a": "reconfiguration: one faulty leader (§7.10)",
    "12b": "reconfiguration: three consecutive faulty leaders (§7.10)",
    "12c": "reconfiguration: internal nodes + leaders, full walk (§7.10)",
    "depth": "tree-depth scaling to N=1000 (beyond Figure 10)",
}


def _runner(jobs: Optional[int], use_cache: bool) -> SweepRunner:
    """The sweep engine instance shared by every figure generator."""
    return SweepRunner(jobs=jobs, cache=use_cache)


def _pack_grid(
    name: str,
    scale: float,
    seed: int,
    axes: Optional[Mapping[str, Sequence[Any]]] = None,
    overrides: Optional[Mapping[str, Any]] = None,
    observability: Optional[bool] = None,
) -> CompiledGrid:
    """Load a checked-in figure pack and compile it for this invocation."""
    return compile_pack(
        load_pack(name),
        scale=scale,
        seed=seed,
        observability=observability,
        axes=axes,
        overrides=overrides,
    )


# ---------------------------------------------------------------------------
# Figure 5: throughput vs pipelining stretch (§7.3)
# ---------------------------------------------------------------------------
def fig5_stretch_sweep(
    block_sizes_kb: Sequence[int] = (50, 100, 200, 250),
    stretches: Sequence[float] = (1, 2, 4, 6, 8, 12, 16, 20),
    n: int = 100,
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
) -> Dict[int, List[Tuple[float, float]]]:
    """Global scenario, N=100: throughput (Ktx/s) per stretch per block size."""
    grid = _pack_grid(
        "fig5",
        scale,
        seed,
        axes={
            "block_kb": list(block_sizes_kb),
            "stretch": [float(stretch) for stretch in stretches],
        },
        overrides={"n": n},
    )
    out: Dict[int, List[Tuple[float, float]]] = {kb: [] for kb in block_sizes_kb}
    for cell, result in zip(grid.cells, _runner(jobs, use_cache).run(grid.specs)):
        out[cell.bindings["block_kb"]].append(
            (cell.bindings["stretch"], result.throughput_txs / 1000.0)
        )
    return out


# ---------------------------------------------------------------------------
# Figure 6: throughput across scenarios and system sizes (§7.4)
# ---------------------------------------------------------------------------
#: The paper's marker for "data point obtained in a saturated testbed".
RED_CIRCLE = "●"


def saturation_marker(result: ExperimentResult) -> str:
    """Figure annotation for a data point: the paper's red circle when the
    run's leader CPU saturated over the measurement window, else empty."""
    return RED_CIRCLE if result.cpu_saturated else ""


def fig6_scenarios(
    scenarios: Sequence[str] = ("national", "regional", "global"),
    ns: Sequence[int] = (100, 200, 400),
    modes: Sequence[str] = ("kauri", "kauri-np", "hotstuff-secp", "hotstuff-bls"),
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
    observability: bool = False,
) -> List[ExperimentResult]:
    """The paper's headline grid: every system in every scenario at every
    size, 250 KB blocks, model-driven stretch for Kauri. With
    ``observability=True`` each result carries a full RunReport
    (``result.report``) for bottleneck attribution behind the red circles."""
    grid = _pack_grid(
        "fig6",
        scale,
        seed,
        axes={"scenario": list(scenarios), "n": list(ns), "mode": list(modes)},
        observability=observability,
    )
    return _runner(jobs, use_cache).run(grid.specs)


def fig6_kudzu_headtohead(
    scenarios: Sequence[str] = ("national", "global"),
    ns: Sequence[int] = (31, 100),
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
    observability: bool = False,
) -> List[ExperimentResult]:
    """Fig. 6-style head-to-head of the protocol zoo's star contenders:
    Kauri (tree, pipelined) vs HotStuff-bls (star, chained) vs Kudzu (star,
    chained, optimistic single-round fast path). One sweep command; the
    Kudzu rows carry ``fast_commits``/``fast_fallbacks`` so the fast-path
    engagement is visible next to the throughput numbers."""
    grid = _pack_grid(
        "fig6-kudzu",
        scale,
        seed,
        axes={"scenario": list(scenarios), "n": list(ns)},
        observability=observability,
    )
    return _runner(jobs, use_cache).run(grid.specs)


# ---------------------------------------------------------------------------
# Figure 7: throughput vs RTT (§7.5)
# ---------------------------------------------------------------------------
def fig7_rtt_sweep(
    rtts_ms: Sequence[int] = (50, 100, 200, 300, 400),
    modes: Sequence[str] = ("kauri", "hotstuff-secp"),
    n: int = 100,
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
) -> Dict[str, List[Tuple[int, float, float]]]:
    """Regional bandwidth (100 Mb/s), varying RTT: (rtt_ms, Ktx/s, stretch)."""
    grid = _pack_grid(
        "fig7",
        scale,
        seed,
        axes={
            "scenario": [{"base": "regional", "rtt_ms": rtt} for rtt in rtts_ms],
            "mode": list(modes),
        },
        overrides={"n": n},
    )
    out: Dict[str, List[Tuple[int, float, float]]] = {mode: [] for mode in modes}
    for cell, result in zip(grid.cells, _runner(jobs, use_cache).run(grid.specs)):
        spec = cell.spec
        model = _model_for(spec.mode, n, spec.scenario, 250 * KB)
        out[spec.mode].append(
            (
                cell.bindings["scenario"]["rtt_ms"],
                result.throughput_txs / 1000.0,
                round(model.pipelining_stretch, 1),
            )
        )
    return out


# ---------------------------------------------------------------------------
# Figure 8: latency vs bandwidth (§7.6)
# ---------------------------------------------------------------------------
def fig8_latency_bandwidth(
    bandwidths_mbps: Sequence[int] = (25, 50, 100, 1000),
    modes: Sequence[str] = ("kauri", "hotstuff-secp", "hotstuff-bls"),
    n: int = 100,
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
) -> Dict[str, List[Tuple[float, float]]]:
    """RTT fixed at 100 ms, bandwidth swept: (bandwidth, p50 latency ms).

    Includes the paper's analytical infinite-bandwidth floor as the
    ``"<mode>-infinite"`` entries.
    """
    grid = _pack_grid(
        "fig8",
        scale,
        seed,
        axes={
            "scenario": [
                {"name": f"bw{bw}", "rtt_ms": 100, "bandwidth_mbps": bw}
                for bw in bandwidths_mbps
            ],
            "mode": list(modes),
        },
        overrides={"n": n},
    )
    out: Dict[str, List[Tuple[float, float]]] = {mode: [] for mode in modes}
    for cell, result in zip(grid.cells, _runner(jobs, use_cache).run(grid.specs)):
        out[cell.spec.mode].append(
            (
                float(cell.bindings["scenario"]["bandwidth_mbps"]),
                result.latency["p50"] * 1000.0,
            )
        )
    # Analytical floor: zero sending time, pure RTT + processing.
    import math

    inf_params = NetworkParams("inf", rtt=ms(100), bandwidth_bps=math.inf)
    for mode in modes:
        model = _model_for(mode, n, inf_params, 250 * KB)
        out[f"{mode}-infinite"] = [(math.inf, model.instance_latency() * 1000.0)]
    return out


# ---------------------------------------------------------------------------
# Figure 9: throughput vs latency under varying load (§7.7)
# ---------------------------------------------------------------------------
def fig9_throughput_latency(
    block_sizes_kb: Sequence[int] = (32, 64, 125, 250, 500, 1024),
    modes: Sequence[str] = ("kauri", "hotstuff-secp", "hotstuff-bls"),
    n: int = 100,
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
) -> Dict[str, List[Tuple[int, float, float]]]:
    """Global scenario: (block_kb, Ktx/s, p50 latency ms) per mode; Kauri's
    stretch follows the model per block size (§7.7)."""
    grid = _pack_grid(
        "fig9",
        scale,
        seed,
        axes={"block_kb": list(block_sizes_kb), "mode": list(modes)},
        overrides={"n": n},
    )
    out: Dict[str, List[Tuple[int, float, float]]] = {mode: [] for mode in modes}
    for cell, result in zip(grid.cells, _runner(jobs, use_cache).run(grid.specs)):
        out[cell.spec.mode].append(
            (
                cell.bindings["block_kb"],
                result.throughput_txs / 1000.0,
                result.latency["p50"] * 1000.0,
            )
        )
    return out


# ---------------------------------------------------------------------------
# Figure 10: impact of tree height (§7.8)
# ---------------------------------------------------------------------------
def fig10_tree_height(
    bandwidths_mbps: Sequence[int] = (25, 50, 100, 1000),
    n: int = 100,
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
) -> Dict[str, List[Tuple[float, float, float, bool]]]:
    """RTT=100 ms: Kauri h=2 (f=10) vs h=3 (f=5) vs HotStuff variants.
    Rows: (bandwidth, Ktx/s, p50 latency ms, cpu_saturated). The system
    list (label/mode/height) is the pack's composite ``system`` axis."""
    grid = _pack_grid(
        "fig10",
        scale,
        seed,
        axes={
            "scenario": [
                {"name": f"bw{bw}", "rtt_ms": 100, "bandwidth_mbps": bw}
                for bw in bandwidths_mbps
            ],
        },
        overrides={"n": n},
    )
    out: Dict[str, List[Tuple[float, float, float, bool]]] = {
        label: [] for label in grid.labels()
    }
    for cell, result in zip(grid.cells, _runner(jobs, use_cache).run(grid.specs)):
        out[cell.label].append(
            (
                float(cell.bindings["scenario"]["bandwidth_mbps"]),
                result.throughput_txs / 1000.0,
                result.latency["p50"] * 1000.0,
                result.cpu_saturated,
            )
        )
    return out


# ---------------------------------------------------------------------------
# Beyond Figure 10: tree-depth scaling up to N = 1000
# ---------------------------------------------------------------------------
def fig_depth_scaling(
    sizes: Sequence[int] = (200, 400, 1000),
    heights: Sequence[int] = (2, 3, 4),
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
) -> Dict[str, List[Tuple[int, float, float, bool]]]:
    """Tree depth vs system size past the paper's largest plotted scale.

    Fig. 10 asks which tree height wins at which bandwidth with N fixed
    at 100; this sweep asks the same question along the *size* axis, up
    to N = 1000 on the global scenario -- the regime the bitmap signer
    sets, flyweight replica state, and batched event dispatch make
    simulable in minutes. Star-shaped HotStuff-bls rides along as the
    depth-1 contrast whose leader uplink the trees exist to relieve.
    Rows per system: (n, Ktx/s, p50 latency ms, cpu_saturated).
    """
    systems = [
        {"label": f"kauri-h{height}", "mode": "kauri", "height": height}
        for height in heights
    ]
    systems.append({"label": "hotstuff-bls", "mode": "hotstuff-bls", "height": 2})
    grid = _pack_grid(
        "depth", scale, seed, axes={"n": list(sizes), "system": systems}
    )
    out: Dict[str, List[Tuple[int, float, float, bool]]] = {
        label: [] for label in grid.labels()
    }
    for cell, result in zip(grid.cells, _runner(jobs, use_cache).run(grid.specs)):
        out[cell.label].append(
            (
                cell.spec.n,
                result.throughput_txs / 1000.0,
                result.latency["p50"] * 1000.0,
                result.cpu_saturated,
            )
        )
    return out


# ---------------------------------------------------------------------------
# Figure 11: heterogeneous networks (§7.9)
# ---------------------------------------------------------------------------
def fig11_heterogeneous(
    modes: Sequence[str] = ("kauri", "kauri-np", "hotstuff-secp", "hotstuff-bls"),
    per_cluster: int = 10,
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    use_cache: bool = False,
) -> List[ExperimentResult]:
    """The ResilientDB deployment: N=60 over six geo clusters."""
    grid = _pack_grid(
        "fig11",
        scale,
        seed,
        axes={"mode": list(modes)},
        overrides={
            "scenario": {"clusters": "resilientdb", "per_cluster": per_cluster}
        },
    )
    return _runner(jobs, use_cache).run(grid.specs)


# ---------------------------------------------------------------------------
# Figure 12: reconfiguration under faults (§7.10)
# ---------------------------------------------------------------------------
@dataclass
class ReconfigRun:
    """One Figure 12 sub-experiment."""

    label: str
    mode: str
    fault_time: float
    faulty: List[int]
    timeseries: List[Tuple[float, float]]
    recovery_gap: Optional[float]
    max_view: int
    final_is_star: bool
    prefault_txs: float
    postfault_txs: float


def fig12_reconfiguration(
    case: str,
    mode: str = "kauri",
    n: int = 100,
    scenario: str = "global",
    fault_time: float = 40.0,
    duration: float = 100.0,
    bucket: float = 2.0,
    seed: int = 0,
) -> ReconfigRun:
    """Inject §7.10's fault patterns and record the throughput time series.

    ``case`` is one of:

    - ``"leader"`` -- one faulty leader (Fig. 12a);
    - ``"three-leaders"`` -- three consecutive faulty leaders (Fig. 12b);
    - ``"internal+leaders"`` -- f faulty processes placed to poison every
      bin and then the first star leaders, forcing the full m+f+1 walk
      (Fig. 12c, "Kauri internal+leaders");
    - ``"f-leaders"`` -- f consecutive tree roots / star leaders (Fig. 12c,
      "Kauri leaders").

    Fault placement needs the deployment's leader schedule (a cluster
    probe), so this figure stays imperative rather than pack-driven; packs
    express *explicit* crash schedules via their ``faults`` field.
    """
    from repro.runtime.cluster import Cluster

    cluster = Cluster(n=n, mode=mode, scenario=scenario, seed=seed)
    policy = cluster.policy
    f = cluster.f
    faulty: List[int] = []

    def add(node: int) -> None:
        if node not in faulty and len(faulty) < f:
            faulty.append(node)

    if case == "leader":
        add(policy.leader_of(0))
    elif case == "three-leaders":
        for view in range(3):
            add(policy.leader_of(view))
    elif case == "f-leaders":
        view = 0
        cycle = getattr(policy, "num_bins", 0) + n
        while len(faulty) < f and view < 2 * cycle:
            add(policy.leader_of(view))
            view += 1
    elif case == "internal+leaders":
        # The paper's worst case (§7.10): faulty processes block every tree
        # configuration (as internal nodes -- the root is an internal node
        # too, and one faulty root blocks its whole tree) and then serve as
        # the first star leaders, forcing the full m + f + 1 walk. A single
        # non-root internal node cannot block a tree here: its subtree only
        # cuts ~n/m processes, leaving the N-f quorum intact -- blocking
        # via non-root internals costs ~4 faults per tree, which exceeds
        # the f budget across all bins, so roots are the binding choice.
        m = getattr(policy, "num_bins", 0)
        for view in range(m):
            add(policy.configuration(view).root)
        view = m
        while len(faulty) < f and view < m + n:
            add(policy.leader_of(view))
            view += 1
    else:
        raise ValueError(f"unknown case {case!r}")

    for node in faulty:
        cluster.crash_at(node, fault_time)
    cluster.start()
    cluster.run(duration=duration)
    cluster.check_agreement()

    metrics = cluster.metrics
    max_view = metrics.max_view
    final = policy.configuration(max_view)
    recovery = metrics.commit_gap_after(fault_time)
    return ReconfigRun(
        label=case,
        mode=mode,
        fault_time=fault_time,
        faulty=faulty,
        timeseries=metrics.timeseries_txs(bucket=bucket),
        recovery_gap=recovery,
        max_view=max_view,
        final_is_star=final.is_star,
        prefault_txs=metrics.throughput_txs(start=fault_time * 0.25, end=fault_time),
        postfault_txs=metrics.throughput_txs(
            start=fault_time + (recovery or 0.0), end=duration
        ),
    )
