"""Link shaping: which RTT/bandwidth applies between each pair of processes.

Mirrors the paper's use of NetEm (§7.1): homogeneous scenarios give every
pair the same parameters; the heterogeneous scenario (§7.9) derives them
from cluster membership.
"""

from __future__ import annotations

from typing import Protocol

from repro.config import ClusterParams, NetworkParams


class Netem(Protocol):
    """Interface: per-pair link parameters."""

    def params_between(self, src: int, dst: int) -> NetworkParams:
        """Link characteristics for messages from ``src`` to ``dst``."""
        ...  # pragma: no cover


class HomogeneousNetem:
    """Every pair of processes shares one RTT/bandwidth (§7.1 scenarios)."""

    def __init__(self, params: NetworkParams):
        self.params = params

    def params_between(self, src: int, dst: int) -> NetworkParams:
        return self.params

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HomogeneousNetem({self.params.name})"


class ClusterNetem:
    """Cluster-based heterogeneous shaping (§7.9, ResilientDB scenario).

    Pairs inside a cluster get LAN-class parameters; pairs across clusters
    get the configured inter-cluster parameters. Results are memoised since
    the fabric queries per message.
    """

    def __init__(self, clusters: ClusterParams):
        self.clusters = clusters
        self._cache: dict = {}

    def params_between(self, src: int, dst: int) -> NetworkParams:
        key = (src, dst)
        params = self._cache.get(key)
        if params is None:
            params = self.clusters.params_between(src, dst)
            self._cache[key] = params
        return params

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusterNetem({self.clusters.name}, n={self.clusters.n})"
