"""Tests for the fixed (hand-placed) topology policy used in §7.9."""

import pytest

from repro import Cluster, resilientdb_clusters
from repro.errors import TopologyError
from repro.runtime.cluster import build_cluster_tree
from repro.topology.reconfig import FixedTopologyPolicy


@pytest.fixture
def policy():
    return FixedTopologyPolicy(build_cluster_tree(resilientdb_clusters()))


def test_view_zero_is_the_hand_placed_tree(policy):
    assert policy.configuration(0) == policy.tree
    assert policy.is_tree_view(0)
    assert policy.leader_of(0) == policy.tree.root


def test_later_views_fall_back_to_rotating_stars(policy):
    one = policy.configuration(1)
    two = policy.configuration(2)
    assert one.is_star and two.is_star
    assert one.root != two.root
    assert not policy.is_tree_view(1)


def test_cycle_wraps_back_to_tree(policy):
    assert policy.configuration(policy.cycle_length) == policy.tree


def test_negative_view_rejected(policy):
    with pytest.raises(TopologyError):
        policy.configuration(-1)


def test_heterogeneous_deployment_recovers_from_head_crash():
    """Crash a cluster head mid-run: the fixed tree is dead, the policy
    must rotate to a star with a live leader and keep committing."""
    clusters = resilientdb_clusters(per_cluster=3)  # N=18, keeps it fast
    cluster = Cluster(mode="kauri", scenario=clusters, seed=1)
    tree = cluster.policy.configuration(0)
    head = tree.children(tree.root)[1]  # an internal cluster head
    cluster.crash_at(head, 20.0)
    cluster.start()
    cluster.run(duration=240.0)
    cluster.check_agreement()
    metrics = cluster.metrics
    assert metrics.max_view >= 1
    assert metrics.commit_gap_after(20.0) is not None
    final = cluster.policy.configuration(metrics.max_view)
    assert final.is_star
    assert final.root != head
