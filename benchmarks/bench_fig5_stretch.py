"""Figure 5: throughput vs pipelining stretch (§7.3).

Global scenario, N=100, block sizes 50-250 KB. The paper's observations to
reproduce: throughput rises with stretch to an optimum near the model's
prediction, then degrades (over-pipelining); smaller blocks need larger
stretch values.

The grid comes from the checked-in ``scenarios/fig5.toml`` pack; the bench
widens the stretch axis below 1.0 to also show the under-pipelining side.
"""

from conftest import SCALE, run_grid, run_once

from repro.analysis import format_table
from repro.config import GLOBAL, KB
from repro.core.perfmodel import PerfModel
from repro.crypto.costs import BLS_COSTS
from repro.scenarios import compile_pack, load_pack


def test_fig5_throughput_vs_stretch(benchmark, save_table):
    grid = compile_pack(
        load_pack("fig5"),
        scale=SCALE,
        axes={
            "block_kb": [50, 100, 200, 250],
            "stretch": [0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 8.0, 12.0],
        },
    )
    results = run_once(benchmark, lambda: run_grid(grid.specs))
    data = {}
    for cell, r in zip(grid.cells, results):
        data.setdefault(cell.bindings["block_kb"], []).append(
            (cell.bindings["stretch"], r.throughput_txs / 1000.0)
        )
    rows = []
    for kb, series in sorted(data.items()):
        model = PerfModel.for_topology(100, 2, 10, GLOBAL, kb * KB, BLS_COSTS)
        for stretch, ktx in series:
            rows.append((f"{kb}KB", stretch, ktx, round(model.pipelining_stretch, 2)))
    save_table(
        "fig5",
        format_table(
            ("Block", "Stretch", "Throughput (Ktx/s)", "Model stretch"),
            rows,
            title="Figure 5: global, N=100",
        ),
    )

    for kb, series in data.items():
        by_stretch = dict(series)
        best_stretch = max(series, key=lambda p: p[1])[0]
        model = PerfModel.for_topology(100, 2, 10, GLOBAL, kb * KB, BLS_COSTS)
        # the measured optimum lies in the model's neighbourhood ...
        assert best_stretch <= 4 * max(1.0, model.pipelining_stretch)
        # ... under-pipelining clearly loses to the optimum
        assert by_stretch[0.5] < max(p[1] for p in series)

    # §7.3: smaller blocks support their peak at higher stretch values
    def peak_stretch(kb):
        return max(data[kb], key=lambda p: p[1])[0]

    assert peak_stretch(50) >= peak_stretch(250)
