"""Shared benchmark configuration.

Environment knobs:

- ``REPRO_BENCH_SCALE`` (float, default 1.0): uniformly shrinks simulation
  horizons and commit budgets. 0.2 gives a quick smoke pass; 1.0 runs the
  evaluation at meaningful statistical depth.
- ``REPRO_BENCH_FULL_N`` (set to 1): include N=400 points where the default
  grid stops at N=200 to bound wall-clock time.

Every bench prints the paper-style table it regenerates and also writes it
to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference the
exact rows.
"""

import os
import pathlib

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
FULL_N = os.environ.get("REPRO_BENCH_FULL_N", "") not in ("", "0")

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def scale():
    return SCALE


@pytest.fixture
def bench_ns():
    """System sizes for size sweeps (paper: 100/200/400)."""
    return (100, 200, 400) if FULL_N else (100, 200)


@pytest.fixture
def save_table():
    def _save(name: str, text: str) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print("\n" + text)
        return str(path)

    return _save


def run_once(benchmark, fn):
    """Run a deterministic experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
