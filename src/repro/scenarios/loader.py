"""Scenario-pack file format: parsing and structural validation.

Packs are TOML on Python >= 3.11 (stdlib :mod:`tomllib`); JSON packs carry
the identical structure for 3.9/3.10 environments without a TOML parser.
The format::

    [pack]
    name = "fig6"              # must match the file stem
    title = "Figure 6: ..."
    description = "..."
    schema = 1

    [defaults]                 # cell fields applied to every cell
    mode = "kauri"
    scenario = "global"
    n = 100
    blocks = 150               # commit budget at scale = 1.0
    duration = "adaptive"      # model-driven horizon (or a number)

    [[grid]]                   # one cross-product; a pack may have several
    [grid.axes]                # declaration order = nesting (first outermost)
    scenario = ["national", "regional", "global"]
    mode = ["kauri", "hotstuff-secp"]

Axis values are either scalars binding the axis's own field, or tables
binding several fields at once (a *composite* axis, e.g. a ``system`` axis
binding ``label``/``mode``/``height`` together).

Validation here is structural (sections, keys, shapes) with precise
messages including did-you-mean suggestions; value-level validation (modes,
scenarios, quorums) happens in :mod:`repro.scenarios.compiler`, which the
``validate`` entry points invoke via a dry-run compile.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.9/3.10 fallback
    tomllib = None  # type: ignore[assignment]

#: The pack-format version this loader understands.
PACK_SCHEMA = 1

#: Every key a cell may carry (in ``[defaults]``, ``[grid.set]``, or an
#: axis binding), with a one-line meaning for error messages and docs.
CELL_FIELDS: Dict[str, str] = {
    "label": "presentation label for the cell (figure series name)",
    "mode": "protocol mode, one of the registered MODES",
    "scenario": "deployment scenario: name, netem table, or cluster table",
    "n": "system size (derived from the cluster table when omitted)",
    "block_kb": "block size in KB (the client-load knob)",
    "stretch": "Kauri pipelining stretch; omit to follow the model",
    "height": "tree height",
    "root_fanout": "root fanout override",
    "duration": "'adaptive' (model-driven) or simulated seconds at scale 1.0",
    "instances": "adaptive horizon: instances per window (default 8.0)",
    "min_duration": "adaptive horizon: floor in seconds (default 30.0)",
    "blocks": "commit budget at scale 1.0 (lowered to max_commits)",
    "warmup_fraction": "measurement warm-up fraction",
    "seed": "simulation seed",
    "lanes": "uplink lanes per process",
    "observability": "attach a full RunReport to every result",
    "saturation_threshold": "CPU-saturation flag threshold",
    "faults": "crash schedule: list of [node, at_seconds] pairs",
    "config": "ProtocolConfig overrides (base_timeout, tx_size, ...)",
    "workload": "workload-engine table (classes, capacity_txs, policy, ...)",
}

#: Keys allowed inside a ``scenario`` table.
SCENARIO_KEYS = ("name", "base", "clusters", "per_cluster", "rtt_ms", "bandwidth_mbps")


class PackError(ConfigError):
    """A scenario pack failed to parse, validate, or compile."""


def _suggest(key: str, known: Sequence[str]) -> str:
    matches = difflib.get_close_matches(key, list(known), n=1)
    return f"; did you mean {matches[0]!r}?" if matches else ""


def _check_keys(
    mapping: Mapping[str, Any], allowed: Sequence[str], where: str
) -> None:
    for key in mapping:
        if key not in allowed:
            raise PackError(
                f"{where}: unknown key {key!r}{_suggest(key, allowed)} "
                f"(allowed: {', '.join(sorted(allowed))})"
            )


@dataclass
class PackGrid:
    """One cross-product inside a pack."""

    name: str
    set: Dict[str, Any] = field(default_factory=dict)
    #: Ordered (axis-name, values) pairs; first axis varies slowest.
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()


@dataclass
class ScenarioPack:
    """A parsed, structurally valid scenario pack."""

    name: str
    title: str
    description: str
    schema: int
    defaults: Dict[str, Any]
    grids: Tuple[PackGrid, ...]
    source: Optional[Path] = None

    @property
    def axis_names(self) -> List[str]:
        seen: List[str] = []
        for grid in self.grids:
            for axis, _ in grid.axes:
                if axis not in seen:
                    seen.append(axis)
        return seen


def _validate_axis(pack: str, grid: str, axis: str, values: Any) -> Tuple[Any, ...]:
    """An axis named after a cell field binds that field (whatever the value
    shape -- scenario tables included); any other axis name is *composite*
    and its values must be tables binding several cell fields at once."""
    where = f"pack {pack!r}, grid {grid!r}, axis {axis!r}"
    if not isinstance(values, list) or not values:
        raise PackError(f"{where}: axis values must be a non-empty list")
    if axis in CELL_FIELDS:
        return tuple(values)
    for entry in values:
        if not isinstance(entry, dict):
            raise PackError(
                f"{where}: not a cell field{_suggest(axis, list(CELL_FIELDS))}, "
                "so it must be a composite axis -- a list of tables binding "
                "cell fields (e.g. {label=..., mode=..., height=...})"
            )
        _check_keys(entry, list(CELL_FIELDS), where)
    return tuple(values)


def parse_pack(
    data: Mapping[str, Any], source: Optional[Path] = None
) -> ScenarioPack:
    """Build and structurally validate a pack from a parsed mapping."""
    origin = str(source) if source is not None else "<pack>"
    if not isinstance(data, Mapping):
        raise PackError(f"{origin}: top level must be a table/object")
    _check_keys(data, ("pack", "defaults", "grid"), origin)
    header = data.get("pack")
    if not isinstance(header, Mapping):
        raise PackError(f"{origin}: missing [pack] header table")
    _check_keys(header, ("name", "title", "description", "schema"), f"{origin} [pack]")
    name = header.get("name")
    if not isinstance(name, str) or not name:
        raise PackError(f"{origin} [pack]: 'name' must be a non-empty string")
    schema = header.get("schema", PACK_SCHEMA)
    if schema != PACK_SCHEMA:
        raise PackError(
            f"pack {name!r}: unsupported schema version {schema!r} "
            f"(this loader reads schema {PACK_SCHEMA})"
        )

    defaults = dict(data.get("defaults", {}))
    _check_keys(defaults, list(CELL_FIELDS), f"pack {name!r} [defaults]")

    raw_grids = data.get("grid", [])
    if isinstance(raw_grids, Mapping):  # a single [grid] table
        raw_grids = [raw_grids]
    if not isinstance(raw_grids, list):
        raise PackError(f"pack {name!r}: [[grid]] must be an array of tables")
    grids: List[PackGrid] = []
    for index, raw in enumerate(raw_grids):
        gname = raw.get("name", f"grid{index}") if isinstance(raw, Mapping) else ""
        where = f"pack {name!r}, grid {gname!r}"
        if not isinstance(raw, Mapping):
            raise PackError(f"{where}: each [[grid]] entry must be a table")
        _check_keys(raw, ("name", "set", "axes"), where)
        fixed = dict(raw.get("set", {}))
        _check_keys(fixed, list(CELL_FIELDS), f"{where} [grid.set]")
        axes_raw = raw.get("axes", {})
        if not isinstance(axes_raw, Mapping):
            raise PackError(f"{where}: [grid.axes] must be a table")
        axes = tuple(
            (axis, _validate_axis(name, gname, axis, values))
            for axis, values in axes_raw.items()
        )
        grids.append(PackGrid(name=gname, set=fixed, axes=axes))

    return ScenarioPack(
        name=name,
        title=str(header.get("title", name)),
        description=str(header.get("description", "")),
        schema=int(schema),
        defaults=defaults,
        grids=tuple(grids),
        source=source,
    )


def parse_pack_text(
    text: str, fmt: str = "toml", source: Optional[Path] = None
) -> ScenarioPack:
    """Parse pack ``text`` in ``fmt`` (``"toml"`` or ``"json"``)."""
    origin = str(source) if source is not None else "<pack>"
    if fmt == "toml":
        if tomllib is None:  # pragma: no cover - 3.9/3.10 only
            raise PackError(
                f"{origin}: TOML packs need Python >= 3.11 (stdlib tomllib); "
                "author the pack as JSON with the same structure instead"
            )
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise PackError(f"{origin}: invalid TOML: {exc}") from None
    elif fmt == "json":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise PackError(f"{origin}: invalid JSON: {exc}") from None
    else:
        raise PackError(f"unknown pack format {fmt!r}; expected 'toml' or 'json'")
    return parse_pack(data, source=source)


def load_pack_file(path: Union[str, Path]) -> ScenarioPack:
    """Load one ``.toml`` / ``.json`` pack file; the [pack] name must match
    the file stem (so the catalog's names and the files stay in sync)."""
    path = Path(path)
    fmt = path.suffix.lstrip(".").lower()
    try:
        text = path.read_text()
    except OSError as exc:
        raise PackError(f"cannot read pack file {path}: {exc}") from None
    pack = parse_pack_text(text, fmt=fmt, source=path)
    if pack.name != path.stem:
        raise PackError(
            f"pack file {path.name}: [pack] name {pack.name!r} does not "
            f"match the file stem {path.stem!r}"
        )
    return pack
