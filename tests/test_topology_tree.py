"""Unit tests for the Tree structure."""

import pytest

from repro.errors import TopologyError
from repro.topology import Tree


@pytest.fixture
def seven_node_tree():
    """The paper's Figure 1 example: P0 root, fanout 2, height 2."""
    return Tree(0, {0: [1, 2], 1: [3, 4], 2: [5, 6]})


def test_basic_structure(seven_node_tree):
    t = seven_node_tree
    assert t.root == 0
    assert t.n == 7
    assert t.nodes == (0, 1, 2, 3, 4, 5, 6)
    assert t.height == 2
    assert t.children(0) == (1, 2)
    assert t.children(3) == ()
    assert t.parent(0) is None
    assert t.parent(3) == 1
    assert t.fanout(0) == 2
    assert t.fanout(5) == 0


def test_internal_nodes_and_leaves(seven_node_tree):
    assert seven_node_tree.internal_nodes == (0, 1, 2)
    assert seven_node_tree.leaves == (3, 4, 5, 6)


def test_depths(seven_node_tree):
    assert seven_node_tree.depth(0) == 0
    assert seven_node_tree.depth(2) == 1
    assert seven_node_tree.depth(6) == 2


def test_star_properties():
    star = Tree(0, {0: [1, 2, 3]})
    assert star.is_star
    assert star.height == 1
    assert star.internal_nodes == (0,)
    assert star.leaves == (1, 2, 3)


def test_single_node_tree():
    solo = Tree(5, {})
    assert solo.n == 1
    assert solo.height == 0
    assert solo.is_star
    assert solo.leaves == (5,)


def test_subtree(seven_node_tree):
    assert set(seven_node_tree.subtree(1)) == {1, 3, 4}
    assert set(seven_node_tree.subtree(0)) == set(range(7))
    assert seven_node_tree.subtree(6) == (6,)


def test_path_to_root(seven_node_tree):
    assert seven_node_tree.path_to_root(6) == (6, 2, 0)
    assert seven_node_tree.path_to_root(0) == (0,)


def test_path_between(seven_node_tree):
    assert seven_node_tree.path_between(3, 4) == (3, 1, 4)
    assert seven_node_tree.path_between(3, 6) == (3, 1, 0, 2, 6)
    assert seven_node_tree.path_between(3, 3) == (3,)
    assert seven_node_tree.path_between(0, 5) == (0, 2, 5)


def test_edges(seven_node_tree):
    assert set(seven_node_tree.edges()) == {
        (0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6),
    }


def test_contains(seven_node_tree):
    assert 3 in seven_node_tree
    assert 99 not in seven_node_tree


def test_unknown_node_rejected(seven_node_tree):
    with pytest.raises(TopologyError):
        seven_node_tree.children(99)
    with pytest.raises(TopologyError):
        seven_node_tree.depth(99)


def test_cycle_rejected():
    with pytest.raises(TopologyError):
        Tree(0, {0: [1], 1: [0]})


def test_two_parents_rejected():
    with pytest.raises(TopologyError):
        Tree(0, {0: [1, 2], 1: [3], 2: [3]})


def test_unreachable_nodes_rejected():
    with pytest.raises(TopologyError):
        Tree(0, {0: [1], 5: [6]})


def test_equality_and_hash():
    a = Tree(0, {0: [1, 2]})
    b = Tree(0, {0: [1, 2]})
    c = Tree(0, {0: [2, 1]})  # different child order
    assert a == b
    assert hash(a) == hash(b)
    assert a != c
