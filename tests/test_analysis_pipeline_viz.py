"""Unit tests for the pipelining-schedule reconstruction (Figures 3-4)."""

import pytest

from repro import Cluster
from repro.analysis import extract_spans, max_concurrency, render_gantt
from repro.analysis.pipeline_viz import InstanceSpan
from repro.net.trace import MessageTrace


def traced(mode, duration=10.0, n=13):
    cluster = Cluster(n=n, mode=mode, scenario="national")
    trace = MessageTrace(capacity=200_000)
    cluster.network.observers.append(trace)
    cluster.start()
    cluster.run(duration=duration)
    cluster.check_agreement()
    return extract_spans(trace, cluster.policy.leader_of(0))


def test_spans_ordered_and_wellformed():
    spans = traced("kauri")
    assert spans
    assert [s.height for s in spans] == sorted(s.height for s in spans)
    for span in spans:
        assert span.send_start <= span.send_end <= span.qc_end


def test_sequential_mode_has_no_overlap():
    spans = traced("kauri-np")
    assert max_concurrency(spans) == 1
    for earlier, later in zip(spans, spans[1:]):
        assert later.send_start >= earlier.qc_end - 1e-9


def test_kauri_overlaps_instances():
    assert max_concurrency(traced("kauri")) > 1


def test_max_concurrency_synthetic():
    spans = [
        InstanceSpan(1, 0.0, 1.0, 4.0),
        InstanceSpan(2, 1.0, 2.0, 5.0),
        InstanceSpan(3, 2.0, 3.0, 6.0),
        InstanceSpan(4, 10.0, 11.0, 12.0),
    ]
    assert max_concurrency(spans) == 3
    assert max_concurrency([]) == 0


def test_render_gantt_output():
    spans = [InstanceSpan(1, 0.0, 1.0, 2.0), InstanceSpan(2, 0.5, 1.5, 2.5)]
    art = render_gantt(spans, width=20)
    lines = art.split("\n")
    assert len(lines) == 3
    assert "h=   1" in lines[1]
    assert "#" in lines[1] and "." in lines[1]


def test_render_gantt_empty():
    assert "no completed instances" in render_gantt([])
