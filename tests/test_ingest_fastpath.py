"""High-rate ingest fast path: chunked arrival synthesis, bulk mempool
admission, histogram-backed latency accounting, and the sweep-cache
maintenance surface that rides along with them.

The load-bearing invariants pinned here:

* the chunked client path produces the byte-identical arrival sequence
  the per-``Tx`` path produced (digest pinned below), for any chunk size;
* ``admit_batch`` is outcome-equivalent to the per-item ``admit`` oracle,
  and invariant to how a batch is partitioned into chunks;
* the admission conservation law ``offered == ingested + dropped +
  deferred_txs`` holds at every step across defer -> release cycles;
* ``LatencyHistogram`` percentiles track the exact nearest-rank
  percentile within the documented relative-error bound, in O(buckets)
  memory regardless of sample volume.
"""

import hashlib
import math
import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster, ProtocolConfig
from repro.config import KB
from repro.runtime import LatencyHistogram, MempoolWorkload, Tx, TxChunk
from repro.runtime.metrics import (
    E2E_PERCENTILES,
    latency_summary,
    percentile,
)
from repro.runtime.workload import (
    ClientClassSpec,
    WorkloadHarness,
    WorkloadSpec,
    make_workload_factory,
)


# ---------------------------------------------------------------------------
# TxChunk flyweight
# ---------------------------------------------------------------------------
class TestTxChunk:
    def test_split_partitions_the_run(self):
        chunk = TxChunk(client_id=3, start_seq=10, count=7, size=512,
                        submitted_at=1.5)
        head, tail = chunk.split(2)
        assert head.count == 2 and head.start_seq == 10
        assert tail.count == 5 and tail.start_seq == 12
        assert head.tx_ids() + tail.tx_ids() == chunk.tx_ids()

    def test_materialize_matches_tx_ids(self):
        chunk = TxChunk(client_id=1, start_seq=0, count=4, size=256,
                        submitted_at=0.25)
        txs = chunk.materialize()
        assert [tx.tx_id for tx in txs] == chunk.tx_ids()
        assert all(isinstance(tx, Tx) for tx in txs)
        assert all(tx.size == 256 and tx.submitted_at == 0.25 for tx in txs)


# ---------------------------------------------------------------------------
# Bulk admission: differential vs the per-item oracle
# ---------------------------------------------------------------------------
def make_pool(capacity, policy, block_size=64 * KB, tx_size=512):
    config = ProtocolConfig(block_size=block_size, tx_size=tx_size)
    return MempoolWorkload(config, capacity_txs=capacity, policy=policy)


def flatten(items):
    """Materialise a mixed Tx/TxChunk batch into per-tx objects."""
    txs = []
    for item in items:
        if isinstance(item, TxChunk):
            txs.extend(item.materialize())
        else:
            txs.append(item)
    return txs


def pool_state(pool):
    return {
        "offered": pool.offered,
        "ingested": pool.ingested,
        "dropped": pool.dropped,
        "queued": pool.queued_txs,
        "deferred": pool.deferred_txs,
        "admitted_by_client": dict(pool.admitted_by_client),
        "dropped_by_client": dict(pool.dropped_by_client),
    }


def drain(pool, rounds=200):
    """Repeated next_fill until the pool is empty; returns the concatenated
    tx id sequence and payload sizes (the proposer-visible surface)."""
    ids, payloads = [], []
    for now in range(rounds):
        fill = pool.next_fill(float(now))
        if fill.num_txs == 0 and pool.queued_txs == 0 and pool.deferred_txs == 0:
            break
        ids.extend(fill.tx_ids)
        payloads.append(fill.payload_size)
    return ids, payloads


batch_items = st.lists(
    st.tuples(
        st.booleans(),                      # chunk or single tx
        st.integers(min_value=0, max_value=3),   # client id
        st.integers(min_value=1, max_value=40),  # chunk count
        st.sampled_from([128, 512, 700]),        # tx size
    ),
    min_size=0,
    max_size=25,
)


def build_items(raw):
    """Unique, per-client-monotonic tx ids, as the workload engine emits."""
    items, next_seq = [], {}
    for is_chunk, client, count, size in raw:
        seq = next_seq.get(client, 0)
        if is_chunk:
            items.append(TxChunk(client, seq, count, size, 0.125))
            next_seq[client] = seq + count
        else:
            items.append(Tx((client, seq), size, 0.125))
            next_seq[client] = seq + 1
    return items


@settings(max_examples=120, deadline=None)
@given(
    raw=batch_items,
    capacity=st.one_of(st.none(), st.integers(min_value=1, max_value=60)),
    policy=st.sampled_from(["drop", "defer"]),
)
def test_admit_batch_matches_per_item_oracle(raw, capacity, policy):
    items = build_items(raw)
    fast = make_pool(capacity, policy)
    oracle = make_pool(capacity, policy)
    admitted_fast = fast.admit_batch(items)
    admitted_ref = oracle.admit(flatten(items))
    assert admitted_fast == admitted_ref
    assert pool_state(fast) == pool_state(oracle)
    assert drain(fast) == drain(oracle)


@settings(max_examples=120, deadline=None)
@given(
    count=st.integers(min_value=1, max_value=120),
    cuts=st.lists(st.integers(min_value=1, max_value=119), max_size=6),
    capacity=st.one_of(st.none(), st.integers(min_value=1, max_value=60)),
    policy=st.sampled_from(["drop", "defer"]),
)
def test_admission_invariant_to_chunk_partition(count, cuts, capacity, policy):
    """Splitting one arrival run into sub-chunks never changes the
    admit/drop/defer outcome (headroom is consumed in arrival order)."""
    whole = TxChunk(client_id=0, start_seq=0, count=count, size=512,
                    submitted_at=0.0)
    bounds = [0] + sorted(set(c for c in cuts if c < count)) + [count]
    parts = [
        TxChunk(0, lo, hi - lo, 512, 0.0)
        for lo, hi in zip(bounds, bounds[1:])
        if hi > lo
    ]
    assert sum(p.count for p in parts) == count

    one = make_pool(capacity, policy)
    many = make_pool(capacity, policy)
    one.admit_batch([whole])
    many.admit_batch(parts)
    assert pool_state(one) == pool_state(many)
    assert drain(one) == drain(many)


def test_admit_accepts_chunks_too():
    """The reference path understands chunks (used by plain harness code
    and as the fallback when a workload lacks admit_batch)."""
    pool = make_pool(capacity=5, policy="drop")
    taken = pool.admit([TxChunk(0, 0, 8, 512, 0.0)])
    assert taken == 5
    assert pool.offered == 8 and pool.dropped == 3
    assert pool.dropped_by_client[0] == 3


def test_chunk_drain_splits_across_blocks():
    """A chunk larger than one block drains partially and keeps ids
    contiguous across fills."""
    config = ProtocolConfig(block_size=4 * 512, tx_size=512)
    pool = MempoolWorkload(config, capacity_txs=None, policy="drop")
    pool.admit_batch([TxChunk(7, 100, 10, 512, 0.0)])
    first = pool.next_fill(0.0)
    second = pool.next_fill(1.0)
    third = pool.next_fill(2.0)
    assert first.num_txs == 4 and second.num_txs == 4 and third.num_txs == 2
    assert list(first.tx_ids + second.tx_ids + third.tx_ids) == [
        (7, seq) for seq in range(100, 110)
    ]
    assert first.payload_size == 4 * 512
    assert pool.queued_txs == 0


# ---------------------------------------------------------------------------
# Conservation law across defer -> release cycles
# ---------------------------------------------------------------------------
def check_conservation(pool):
    assert pool.offered == pool.ingested + pool.dropped + pool.deferred_txs
    if pool.capacity_txs is not None:
        assert pool.queued_txs <= pool.capacity_txs


@pytest.mark.parametrize("policy", ["drop", "defer"])
@pytest.mark.parametrize("use_batch", [False, True])
def test_conservation_law_across_release_cycles(policy, use_batch):
    """offered == ingested + dropped + deferred holds at every step, for
    both admission paths, across sustained defer -> release cycles.

    Deferred entries are counted as offered at arrival, so the release
    loop inside next_fill must bypass the offered counter; double-counting
    there is exactly what this regression test exists to catch.
    """
    rng = random.Random(11)
    pool = make_pool(capacity=50, policy=policy)
    admit = pool.admit_batch if use_batch else pool.admit
    for step in range(60):
        items = []
        for _ in range(rng.randrange(4)):
            client = rng.randrange(3)
            if rng.random() < 0.5:
                items.append(TxChunk(client, step * 1000 + len(items) * 100,
                                     rng.randrange(1, 40), 512, float(step)))
            else:
                items.append(Tx((client, step * 1000 + len(items) * 100),
                               512, float(step)))
        admit(items)
        check_conservation(pool)
        pool.next_fill(float(step))
        check_conservation(pool)
    # Drain to empty: with defer nothing is ever dropped, and everything
    # offered is eventually ingested.
    drain(pool)
    check_conservation(pool)
    assert pool.deferred_txs == 0
    if policy == "defer":
        assert pool.dropped == 0
        assert pool.ingested == pool.offered


def test_release_preserves_arrival_order_with_chunks():
    pool = make_pool(capacity=4, policy="defer", block_size=2 * 512)
    pool.admit_batch([
        TxChunk(0, 0, 3, 512, 0.0),
        Tx((1, 0), 512, 0.0),
        TxChunk(2, 0, 3, 512, 0.0),
    ])
    check_conservation(pool)
    ids, _ = drain(pool)
    assert ids == [(0, 0), (0, 1), (0, 2), (1, 0), (2, 0), (2, 1), (2, 2)]
    check_conservation(pool)


# ---------------------------------------------------------------------------
# LatencyHistogram
# ---------------------------------------------------------------------------
class TestLatencyHistogram:
    def test_empty_summary_matches_exact_shape(self):
        hist = LatencyHistogram()
        assert hist.summary(E2E_PERCENTILES) == latency_summary(
            [], E2E_PERCENTILES
        )
        assert len(hist) == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LatencyHistogram(buckets_per_octave=0)
        with pytest.raises(ValueError):
            LatencyHistogram(low=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(50)

    def test_exact_count_min_max_and_clamped_mean(self):
        hist = LatencyHistogram()
        values = [0.003, 0.8, 0.0021, 2.5, 0.8]
        hist.add_many(values)
        summary = hist.summary(E2E_PERCENTILES)
        assert summary["count"] == len(values)
        assert summary["max"] == max(values)
        assert hist.min == min(values)
        assert summary["mean"] == pytest.approx(sum(values) / len(values))
        assert min(values) <= summary["mean"] <= max(values)

    def test_documented_error_bound_on_random_latencies(self):
        """p50/p95/p99/p999 stay within relative_error of the exact
        nearest-rank percentile across seven orders of magnitude."""
        rng = random.Random(5)
        hist = LatencyHistogram()
        values = [10 ** rng.uniform(-5.5, 1.5) for _ in range(20_000)]
        hist.add_many(values)
        values.sort()
        bound = hist.relative_error * (1 + 1e-9) + 1e-15
        for p in E2E_PERCENTILES:
            exact = percentile(values, p)
            assert abs(hist.percentile(p) - exact) <= exact * bound

    def test_memory_is_bounded_by_dynamic_range_not_volume(self):
        hist = LatencyHistogram()
        rng = random.Random(9)
        for _ in range(50_000):
            hist.add(10 ** rng.uniform(-6, 4))
        # 1e-6 .. 1e4 is ~33 octaves; sparse buckets can never exceed
        # (octaves + 1) * buckets_per_octave however many samples arrive.
        assert len(hist.counts) <= 34 * hist.buckets_per_octave
        assert hist.count == 50_000

    @settings(max_examples=80, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=1e-6, max_value=1e4, allow_nan=False,
                      allow_infinity=False),
            min_size=1,
            max_size=300,
        )
    )
    def test_percentile_parity_with_exact_path(self, values):
        hist = LatencyHistogram()
        hist.add_many(values)
        ordered = sorted(values)
        # relative_error covers the half-bucket representative offset; one
        # extra half bucket absorbs float rounding of the log at bucket
        # boundaries (hypothesis aims for them).
        bound = 2.0 ** (1.5 / hist.buckets_per_octave) - 1.0 + 1e-12
        for p in (0, 50, 95, 99, 100):
            exact = percentile(ordered, p)
            got = hist.percentile(p)
            assert abs(got - exact) <= exact * bound
            assert hist.min <= got <= hist.max

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=1e-6, max_value=1e4, allow_nan=False,
                      allow_infinity=False),
            min_size=1,
            max_size=200,
        ),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_insertion_order_independent(self, values, seed):
        forward = LatencyHistogram()
        forward.add_many(values)
        shuffled = list(values)
        random.Random(seed).shuffle(shuffled)
        other = LatencyHistogram()
        other.add_many(shuffled)
        assert forward.counts == other.counts
        forward_summary = forward.summary(E2E_PERCENTILES)
        other_summary = other.summary(E2E_PERCENTILES)
        assert forward_summary["count"] == other_summary["count"]
        assert forward_summary["max"] == other_summary["max"]
        for p in E2E_PERCENTILES:
            key = f"p{f'{p:g}'.replace('.', '')}"
            assert forward_summary[key] == other_summary[key]
        assert forward_summary["mean"] == pytest.approx(
            other_summary["mean"], rel=1e-9
        )

    def test_summary_matches_percentile_method(self):
        hist = LatencyHistogram()
        hist.add_many([0.01 * (i + 1) for i in range(500)])
        summary = hist.summary(E2E_PERCENTILES)
        for p in E2E_PERCENTILES:
            key = f"p{f'{p:g}'.replace('.', '')}"
            assert summary[key] == hist.percentile(p)


# ---------------------------------------------------------------------------
# Chunked arrival synthesis: byte-identical sequences, any chunk size
# ---------------------------------------------------------------------------
#: SHA-256 over the fully materialised (src, dst, tx_id, size, submitted_at)
#: arrival sequence of the reference spec below -- recorded from the
#: pre-chunking per-Tx client path. The fast path must reproduce it bit
#: for bit; a change here means simulated behaviour moved.
ARRIVAL_DIGEST = "7c3bc064f00a0d4c598609250a120674561040e8837c98a322e1c6a6e85463f7"
ARRIVAL_TXS = 1939


def digest_spec():
    return WorkloadSpec(
        classes=(
            ClientClassSpec(name="mobile", population=40_000,
                            rate_per_user=0.004,
                            mmpp=((0.5, 2.0), (2.0, 1.0))),
            ClientClassSpec(name="api", population=10_000,
                            rate_per_user=0.01),
        ),
        keyspace=64,
        zipf_s=1.0,
        capacity_txs=200,
        policy="drop",
    )


def run_arrival_capture(duration, seed=3):
    """Digest of the materialised client arrival stream plus the workload
    summary, under whatever REPRO_INGEST_CHUNK is currently set."""
    from repro.core.smr import CLIENT_TX_TAG

    spec = digest_spec()
    config = ProtocolConfig()
    cluster = Cluster(
        n=7, mode="kauri", scenario="national", config=config, seed=seed,
        workload_factory=make_workload_factory(spec, config),
    )
    harness = WorkloadHarness(cluster, spec, seed=seed)
    seen = []

    def observer(kind, msg, time):
        if (kind == "send" and msg.tag == CLIENT_TX_TAG
                and isinstance(msg.payload, list)):
            for item in msg.payload:
                txs = (item.materialize() if isinstance(item, TxChunk)
                       else [item])
                for tx in txs:
                    seen.append((msg.src, msg.dst, tx.tx_id, tx.size,
                                 round(tx.submitted_at, 9)))

    cluster.network.observers.append(observer)
    cluster.start()
    harness.start()
    cluster.run(duration=duration)
    digest = hashlib.sha256(repr(seen).encode()).hexdigest()
    return digest, len(seen), harness.summary()


@pytest.fixture
def chunk_env(monkeypatch):
    def set_chunk(value):
        if value is None:
            monkeypatch.delenv("REPRO_INGEST_CHUNK", raising=False)
        else:
            monkeypatch.setenv("REPRO_INGEST_CHUNK", str(value))
    return set_chunk


class TestChunkedArrivals:
    def test_arrival_sequence_is_byte_identical_to_per_tx_path(self, chunk_env):
        chunk_env(None)
        digest, count, _ = run_arrival_capture(duration=8.0)
        assert count == ARRIVAL_TXS
        assert digest == ARRIVAL_DIGEST

    def test_arrivals_and_summary_invariant_to_chunk_size(self, chunk_env):
        results = {}
        for chunk in (1, 7, None):
            chunk_env(chunk)
            digest, count, summary = run_arrival_capture(duration=3.0)
            results[chunk] = (digest, count, summary)
        baseline = results[None]
        assert baseline[1] > 0
        for chunk in (1, 7):
            assert results[chunk] == baseline
