"""Kauri core: communication abstraction, pipelining, and protocol nodes.

This is the paper's primary contribution (§3-§5):

- :mod:`repro.core.comm` -- ``broadcastMsg``/``waitFor`` on arbitrary
  rooted trees (Algorithms 2 and 3); a star is the height-1 special case,
  which is exactly HotStuff's pattern.
- :mod:`repro.core.perfmodel` -- the §4.3 performance model: sending /
  processing / remaining time, the pipelining stretch, and the expected
  speedup (generates Table 2).
- :mod:`repro.core.smr` -- the protocol-agnostic replica base
  (:class:`SmrNode`): view lifecycle, client pump, commit plumbing, and the
  §5/§6 reconfiguration machinery, parameterized by a pluggable
  :class:`~repro.consensus.protocol.Protocol` strategy.
- :mod:`repro.core.node` -- the historical ``ProtocolNode`` facade over
  ``SmrNode``.
- :mod:`repro.core.modes` -- the evaluated systems (Kauri, Kauri-np,
  HotStuff-secp, HotStuff-bls, PBFT, Kudzu; §7) and the ``PROTOCOLS``
  strategy registry.
"""

from repro.core.comm import TreeComm
from repro.core.perfmodel import PerfModel
from repro.core.node import ProtocolNode
from repro.core.smr import ReplicaShared, SmrNode
from repro.core.modes import (
    MODES,
    PROTOCOLS,
    ModeSpec,
    mode_spec,
    protocol_class,
    protocol_kind,
)
from repro.core.pipeline import AdaptivePacer
from repro.core.autotune import (
    PlacementResult,
    TuningResult,
    tune_heterogeneous,
    tune_homogeneous,
)

__all__ = [
    "TreeComm",
    "PerfModel",
    "ProtocolNode",
    "ReplicaShared",
    "SmrNode",
    "MODES",
    "PROTOCOLS",
    "ModeSpec",
    "mode_spec",
    "protocol_class",
    "protocol_kind",
    "AdaptivePacer",
    "TuningResult",
    "PlacementResult",
    "tune_homogeneous",
    "tune_heterogeneous",
]
