"""Evolving graphs and conformity properties (paper §5.1, Definitions 5-6).

A reconfiguration strategy induces an *evolving graph*: the sequence of
trees used in successive views. :func:`t_bounded_conformity` checks
Definition 6 over a finite window -- a robust configuration appears at
least once in every ``t`` consecutive graphs -- which is what Theorem 3
guarantees for Algorithm 4's bin strategy.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.topology.robustness import is_robust
from repro.topology.tree import Tree


class EvolvingGraph:
    """A lazily evaluated sequence of configurations (trees)."""

    def __init__(self, generator: Callable[[int], Tree]):
        self._generator = generator
        self._cache: dict = {}

    def at(self, index: int) -> Tree:
        """The configuration used at step ``index`` (deterministic)."""
        tree = self._cache.get(index)
        if tree is None:
            tree = self._generator(index)
            self._cache[index] = tree
        return tree

    def window(self, start: int, length: int) -> List[Tree]:
        return [self.at(index) for index in range(start, start + length)]


def t_bounded_conformity(
    graph: EvolvingGraph,
    t: int,
    faulty: Iterable[int],
    horizon: int,
) -> bool:
    """Definition 6 over ``horizon`` steps: every ``t`` consecutive
    configurations include at least one robust one."""
    faulty_set = set(faulty)
    flags = [is_robust(graph.at(index), faulty_set) for index in range(horizon)]
    if t > horizon:
        return any(flags)
    return all(any(flags[start : start + t]) for start in range(horizon - t + 1))


def first_robust_index(
    graph: EvolvingGraph,
    faulty: Iterable[int],
    horizon: int,
) -> Optional[int]:
    """Index of the first robust configuration, or ``None`` within horizon.

    For Algorithm 4 with f < m this is at most m (i.e. found within m+1
    steps counting the initial configuration), which §1 calls optimal.
    """
    faulty_set = set(faulty)
    for index in range(horizon):
        if is_robust(graph.at(index), faulty_set):
            return index
    return None
