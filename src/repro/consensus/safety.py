"""Replica safety rules: vote-once and locking (HotStuff, paper §3.1).

Safety is independent of the communication topology -- these rules are
shared by the star (HotStuff) and tree (Kauri) nodes, and they are what the
Byzantine tests attack:

- A replica votes at most once per (view, height, phase).
- A replica only prepare-votes for a proposal that *safely extends* its
  lock: the proposal's justify QC is at least as recent as the locked QC,
  or the proposal extends the locked block (the HotStuff safeNode rule).
- A replica locks on seeing a pre-commit quorum (§3.1, second round: "the
  value proposed by the leader is locked and will not be changed, even if
  the leader is subsequently suspected").
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.consensus.block import Block, BlockStore
from repro.consensus.vote import Phase, QuorumCert, genesis_qc


class SafetyRules:
    """Per-replica voting state machine."""

    def __init__(self, store: BlockStore):
        self.store = store
        self.locked_qc: QuorumCert = genesis_qc()  # pre-commit lock
        self.high_prepare_qc: QuorumCert = genesis_qc()  # for new-view messages
        self._voted: Set[Tuple[int, int, Phase]] = set()

    # ------------------------------------------------------------------
    # Voting guards
    # ------------------------------------------------------------------
    def may_vote(self, view: int, height: int, phase: Phase) -> bool:
        """Vote-once check (does not record)."""
        return (view, height, phase) not in self._voted

    def record_vote(self, view: int, height: int, phase: Phase) -> None:
        self._voted.add((view, height, phase))

    def safe_proposal(self, block: Block, justify: QuorumCert) -> bool:
        """The safeNode predicate for a prepare vote on ``block``.

        Pipelining-aware (§4.2): the justify QC may certify an *ancestor*
        several heights up rather than the direct parent, because the leader
        proposes optimistically before earlier instances certify. The
        proposal must descend from the justify QC's block, and either the
        justify is strictly newer than our lock (liveness rule) or the block
        extends the locked block (safety rule). The strict inequality plus
        the vote-once rule is what makes conflicting commits impossible.
        """
        if block.height <= justify.height:
            return False
        if not self.store.extends(block, justify.block_hash):
            return False
        if self.locked_qc.is_genesis:
            return True
        if justify.view > self.locked_qc.view:
            return True
        return self.store.extends(block, self.locked_qc.block_hash)

    # ------------------------------------------------------------------
    # QC-driven state updates
    # ------------------------------------------------------------------
    def observe_prepare_qc(self, qc: QuorumCert) -> None:
        """Track the highest prepare QC seen (relayed in new-view, §6)."""
        if qc.phase is Phase.PREPARE and qc.newer_than(self.high_prepare_qc):
            self.high_prepare_qc = qc

    def observe_precommit_qc(self, qc: QuorumCert) -> None:
        """Lock on the pre-commit quorum (§3.1)."""
        if qc.phase is Phase.PRECOMMIT and qc.newer_than(self.locked_qc):
            self.locked_qc = qc

    def observe_fast_qc(self, qc: QuorumCert) -> None:
        """A Kudzu fast certificate commits in one round, so it subsumes
        both the prepare and the lock state: it becomes the high QC relayed
        in new-view messages and the lock no later proposal may cross."""
        if qc.phase is not Phase.FAST:
            return
        if qc.newer_than(self.high_prepare_qc):
            self.high_prepare_qc = qc
        if qc.newer_than(self.locked_qc):
            self.locked_qc = qc

    def observe_qc(self, qc: QuorumCert) -> None:
        """Dispatch on phase."""
        if qc.phase is Phase.PREPARE:
            self.observe_prepare_qc(qc)
        elif qc.phase is Phase.PRECOMMIT:
            self.observe_precommit_qc(qc)
        elif qc.phase is Phase.FAST:
            self.observe_fast_qc(qc)

    @property
    def locked_block_hash(self) -> str:
        return self.locked_qc.block_hash
