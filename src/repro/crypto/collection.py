"""The cryptographic collection abstraction (paper §3.3.2).

A collection is a secure multiset of ``(process, value)`` tuples:

- ``new((p, v))`` -- create a collection with one tuple (scheme method);
- ``c1 | c2`` / ``c1.combine(c2)`` -- merge two collections (⊕);
- ``c.has(v, t)`` -- does the collection contain at least ``t`` *valid*
  distinct tuples with value ``v``?
- ``len(c)`` -- total number of distinct input tuples combined.

Required laws, property-tested in ``tests/test_crypto_collection.py``:

- Commutativity: ``c1 ⊕ c2 == c2 ⊕ c1``
- Associativity: ``c1 ⊕ (c2 ⊕ c3) == (c1 ⊕ c2) ⊕ c3``
- Idempotency:   ``c1 ⊕ c1 == c1``
- Integrity:     ``has(c, v, t)`` implies at least ``t`` distinct processes
  executed ``new((p, v))`` (forged entries never count).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, FrozenSet


class Collection(ABC):
    """Abstract cryptographic collection; instances are immutable."""

    @abstractmethod
    def combine(self, other: "Collection") -> "Collection":
        """The ⊕ operator: merge two collections of the same scheme."""

    @abstractmethod
    def has(self, value: Any, threshold: int) -> bool:
        """True iff ≥ ``threshold`` distinct processes validly signed ``value``."""

    @abstractmethod
    def signers_for(self, value: Any) -> FrozenSet[int]:
        """The set of processes with a *valid* tuple for ``value``."""

    @abstractmethod
    def cardinality(self) -> int:
        """Total distinct ``(process, value)`` tuples combined (``|c|``)."""

    @abstractmethod
    def wire_size(self) -> int:
        """Modeled size in bytes when sent over the network."""

    @abstractmethod
    def values(self) -> FrozenSet[Any]:
        """All distinct values appearing in the collection."""

    # ------------------------------------------------------------------
    def __or__(self, other: "Collection") -> "Collection":
        return self.combine(other)

    def __len__(self) -> int:
        return self.cardinality()

    def count_for(self, value: Any) -> int:
        """Number of valid signers for ``value``."""
        return len(self.signers_for(value))
