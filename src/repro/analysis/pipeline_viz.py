"""Pipelining schedule visualisation (the paper's Figures 3-4).

Figures 3 and 4 illustrate how HotStuff piggybacks one new instance per
round while Kauri's stretch starts several instances during a single
round. This module reconstructs that picture from a *traced run*: for each
consensus height it extracts the leader's dissemination window (first to
last round-1 ``prop`` send) and the aggregation tail (until the commit QC
is sent), and renders the overlap as an ASCII Gantt chart -- measured
Figure 3/4 analogues rather than schematic ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.trace import MessageTrace


@dataclass(frozen=True)
class InstanceSpan:
    """The leader-visible lifetime of one consensus instance."""

    height: int
    send_start: float  # first round-1 byte leaves the leader
    send_end: float  # dissemination handed to the NIC
    qc_end: float  # commit QC dissemination begins (aggregation done)

    @property
    def sending(self) -> Tuple[float, float]:
        return (self.send_start, self.send_end)

    @property
    def remaining(self) -> Tuple[float, float]:
        return (self.send_end, self.qc_end)


def extract_spans(trace: MessageTrace, leader: int) -> List[InstanceSpan]:
    """Instance spans from a traced run, ordered by height.

    Proposal tags carry no height (they are per-view streams), so the
    height-tagged vote/QC traffic brackets each instance instead:

    - *send_start*: the first PREPARE vote sent anywhere -- dissemination
      has reached the first voter;
    - *send_end*: the leader sends the prepare QC -- round 1 complete;
    - *qc_end*: the leader sends the commit QC -- the instance decided.

    Heights whose commit QC never left the leader (view change, run tail)
    are omitted.
    """
    commit_qc: Dict[int, float] = {}
    prepare_qc: Dict[int, float] = {}
    first_prepare_vote: Dict[int, float] = {}
    for event in trace.events:
        if event.kind != "send":
            continue
        tag = event.tag
        if not isinstance(tag, tuple) or len(tag) < 4:
            continue
        kind, height, phase = tag[0], tag[2], tag[3]
        if kind == "vote" and phase == "PREPARE":
            first_prepare_vote.setdefault(height, event.time)
        elif kind == "qc" and event.src == leader:
            if phase == "PREPARE":
                prepare_qc.setdefault(height, event.time)
            elif phase == "COMMIT":
                commit_qc.setdefault(height, event.time)
    spans = []
    for height, qc_time in sorted(commit_qc.items()):
        start = first_prepare_vote.get(height)
        prepared = prepare_qc.get(height)
        if start is None or prepared is None:
            continue
        spans.append(
            InstanceSpan(
                height=height, send_start=start, send_end=prepared, qc_end=qc_time
            )
        )
    return spans


def render_gantt(
    spans: List[InstanceSpan],
    width: int = 72,
    max_rows: int = 12,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> str:
    """ASCII Gantt: one row per instance, ``#`` = round 1 in flight
    (dissemination + prepare aggregation), ``.`` = later rounds until the
    commit QC. Overlapping rows *are* the pipeline (Figures 3-4)."""
    if not spans:
        return "(no completed instances in trace window)"
    spans = spans[:max_rows]
    lo = t0 if t0 is not None else min(s.send_start for s in spans)
    hi = t1 if t1 is not None else max(s.qc_end for s in spans)
    if hi <= lo:
        hi = lo + 1e-9
    scale = width / (hi - lo)

    def col(t: float) -> int:
        return max(0, min(width - 1, int((t - lo) * scale)))

    lines = [f"t = {lo:.2f}s .. {hi:.2f}s  (# round 1, . rounds 2-4)"]
    for span in spans:
        row = [" "] * width
        for c in range(col(span.send_start), col(span.send_end) + 1):
            row[c] = "#"
        for c in range(col(span.send_end) + 1, col(span.qc_end) + 1):
            row[c] = "."
        lines.append(f"h={span.height:4d} |{''.join(row)}|")
    return "\n".join(lines)


def max_concurrency(spans: List[InstanceSpan]) -> int:
    """Peak number of instances simultaneously in flight -- the measured
    pipeline depth (HotStuff: ~4; Kauri: ~4·(1+stretch))."""
    boundaries = []
    for span in spans:
        boundaries.append((span.send_start, 1))
        boundaries.append((span.qc_end, -1))
    boundaries.sort()
    live = peak = 0
    for _, delta in boundaries:
        live += delta
        peak = max(peak, live)
    return peak
