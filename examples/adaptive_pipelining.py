#!/usr/bin/env python
"""Runtime-adaptive pipelining stretch (the paper's §6 future work).

The published Kauri uses a statically configured stretch ("this could be
automatically adapted at runtime, which we leave for future work", §6).
This example misconfigures the stretch badly — 8x the model's optimum —
and shows that the AIMD controller recovers while the static configuration
collapses into view-change churn.

Run:  python examples/adaptive_pipelining.py      (~1 minute)
"""

from repro import Cluster, ProtocolConfig
from repro.analysis import format_table
from repro.config import GLOBAL, KB
from repro.core import PerfModel
from repro.crypto.costs import BLS_COSTS

N = 31
BAD_STRETCH = 12.0


def run(adaptive: bool):
    config = ProtocolConfig(stretch=BAD_STRETCH, adaptive_stretch=adaptive)
    cluster = Cluster(n=N, mode="kauri", scenario="global", config=config, seed=2)
    cluster.start()
    cluster.run(duration=120.0, max_commits=120)
    cluster.check_agreement()
    metrics = cluster.metrics
    leader = cluster.nodes[cluster.policy.leader_of(0)]
    final_stretch = leader.pacer.effective_stretch if leader.pacer else BAD_STRETCH
    return (
        metrics.throughput_txs(),
        metrics.latency_stats()["p50"],
        metrics.committed_blocks,
        len(metrics.view_changes),
        final_stretch,
    )


def main() -> None:
    tree = Cluster(n=N, mode="kauri", scenario="global").policy.configuration(0)
    model = PerfModel.for_topology(
        N, 2, tree.fanout(tree.root), GLOBAL, 250 * KB, BLS_COSTS
    )
    print(f"Model-recommended stretch : {model.pipelining_stretch:.1f}")
    print(f"Configured (bad) stretch  : {BAD_STRETCH:.1f}\n")

    rows = []
    for label, adaptive in (("static (as published)", False), ("adaptive (§6 future work)", True)):
        tput, p50, blocks, view_changes, stretch = run(adaptive)
        rows.append(
            (label, round(tput, 0), round(p50, 2), blocks, view_changes,
             round(stretch, 2))
        )
    print(
        format_table(
            ("Pacing", "tx/s", "p50 latency (s)", "Blocks", "View changes",
             "Final stretch"),
            rows,
            title=f"Over-pipelined Kauri, N={N}, global scenario",
        )
    )
    print(
        "\nThe adaptive controller watches the leader's own uplink backlog"
        "\nand backs the proposal interval off toward the model's operating"
        "\npoint; the static configuration keeps flooding its NIC."
    )


if __name__ == "__main__":
    main()
