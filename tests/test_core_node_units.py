"""Mechanism-level tests of ProtocolNode internals."""

import pytest

from repro import Cluster, ProtocolConfig
from repro.consensus import Block, Phase
from repro.consensus.block import GENESIS_HASH
from repro.consensus.vote import QuorumCert, genesis_qc
from repro.core.node import _is_stale_tag, ProtocolNode


@pytest.fixture
def cluster():
    return Cluster(n=7, mode="kauri", scenario="national")


class TestStaleTagPredicate:
    def test_protocol_tags_of_older_views_are_stale(self):
        assert _is_stale_tag(("prop", 1), view=2)
        assert _is_stale_tag(("vote", 0, 5, "PREPARE"), view=1)
        assert _is_stale_tag(("qc", 1, 5, "COMMIT"), view=2)
        assert _is_stale_tag(("newview", 1), view=2)

    def test_current_and_future_views_kept(self):
        assert not _is_stale_tag(("prop", 2), view=2)
        assert not _is_stale_tag(("newview", 3), view=2)

    def test_foreign_tags_kept(self):
        assert not _is_stale_tag("random", view=5)
        assert not _is_stale_tag(("other", 0), view=5)
        assert not _is_stale_tag(("prop", "x"), view=5)


class TestParseProposal:
    def test_valid_payload(self, cluster):
        node = cluster.nodes[1]
        block = Block.create(1, 0, GENESIS_HASH, 0, 10, 1, 0.0)
        parsed = ProtocolNode._parse_proposal((block, genesis_qc(), None))
        assert parsed == (block, genesis_qc(), None)

    def test_garbage_payloads_rejected(self):
        block = Block.create(1, 0, GENESIS_HASH, 0, 10, 1, 0.0)
        assert ProtocolNode._parse_proposal("junk") is None
        assert ProtocolNode._parse_proposal((block,)) is None
        assert ProtocolNode._parse_proposal((block, "not-a-qc", None)) is None
        assert ProtocolNode._parse_proposal(("not-a-block", genesis_qc(), None)) is None
        assert ProtocolNode._parse_proposal((block, genesis_qc(), "junk")) is None


class TestPendingCommits:
    def test_orphan_commit_buffers_until_chain_known(self, cluster):
        node = cluster.nodes[0]
        node.start()
        parent = Block.create(1, 0, GENESIS_HASH, 0, 10, 1, 0.0, salt=1)
        child = Block.create(2, 0, parent.hash, 0, 10, 1, 0.0, salt=2)
        node.store.add(child)  # parent unknown: chain incomplete
        node._commit(child)
        assert node.committed_height == 0
        assert child in node._pending_commits
        node.store.add(parent)
        node._commit(parent)  # commits parent, then drains the buffer
        assert node.committed_height == 2

    def test_commit_idempotent(self, cluster):
        node = cluster.nodes[0]
        node.start()
        block = Block.create(1, 0, GENESIS_HASH, 0, 10, 1, 0.0)
        node.store.add(block)
        node._commit(block)
        node._commit(block)
        assert node.committed_height == 1
        assert cluster.metrics.commits_per_node[0] == 1


class TestLeaderPacing:
    def make_node(self, mode, stretch=None):
        config = ProtocolConfig(stretch=stretch)
        cluster = Cluster(n=7, mode=mode, scenario="national", config=config)
        return cluster, cluster.nodes[cluster.policy.leader_of(0)]

    def test_effective_stretch_by_mode(self):
        _, kauri = self.make_node("kauri", stretch=5.0)
        kauri.start()
        assert kauri._effective_stretch() == 5.0
        _, kauri_np = self.make_node("kauri-np")
        kauri_np.start()
        assert kauri_np._effective_stretch() == 0.0
        _, hotstuff = self.make_node("hotstuff-bls")
        hotstuff.start()
        assert hotstuff._effective_stretch() == 3.0  # depth 4 = 1 + 3

    def test_model_stretch_when_unset(self):
        cluster, node = self.make_node("kauri")
        node.start()
        assert node._effective_stretch() == pytest.approx(
            node.model.pipelining_stretch
        )

    def test_inflight_caps(self):
        _, kauri = self.make_node("kauri", stretch=5.0)
        kauri.start()
        assert kauri._inflight_cap(5.0) == 24  # 4 * (1 + 5)
        _, np_node = self.make_node("kauri-np")
        np_node.start()
        assert np_node._inflight_cap(0.0) == 1
        _, hs = self.make_node("hotstuff-bls")
        hs.start()
        assert hs._inflight_cap(3.0) == 4

    def test_sequential_mode_never_overlaps_instances(self):
        cluster = Cluster(n=7, mode="kauri-np", scenario="national")
        cluster.start()
        cluster.run(duration=5.0)
        leader = cluster.nodes[cluster.policy.leader_of(0)]
        assert len(leader._inflight) <= 1


class TestViewEntry:
    def test_enter_view_rebuilds_comm_and_model(self, cluster):
        node = cluster.nodes[0]
        node.start()
        tree0_comm = node.comm
        node._enter_view(1)
        assert node.view == 1
        assert node.comm is not tree0_comm
        assert node.tree == cluster.policy.configuration(1)

    def test_stopped_node_ignores_view_entry(self, cluster):
        node = cluster.nodes[0]
        node.start()
        node.stop()
        view_before = node.view
        node._enter_view(5)
        assert node.view == view_before

    def test_stop_is_idempotent(self, cluster):
        node = cluster.nodes[0]
        node.start()
        node.stop()
        node.stop()
        assert node.stopped

    def test_timeout_sends_newview_to_next_leader(self, cluster):
        cluster.start()
        cluster.sim.run(until=0.5)
        node = cluster.nodes[3]
        sent_before = cluster.network.messages_sent
        node._on_timeout()
        assert node.view == 1
        # a new-view message was sent toward leader_of(1)
        assert cluster.network.messages_sent > sent_before


class TestNewViewQuorum:
    def test_quorum_is_2f_plus_1(self):
        for n, expected in ((7, 5), (13, 9), (100, 67)):
            cluster = Cluster(n=n, mode="kauri", scenario="national")
            assert cluster.nodes[0].newview_quorum == expected
