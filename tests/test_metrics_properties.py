"""Property-based tests for metrics invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus.block import GENESIS_HASH, Block
from repro.runtime import Metrics
from repro.sim import Simulator

commit_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=99.0, allow_nan=False),
        st.integers(min_value=1, max_value=500),  # txs
    ),
    min_size=1,
    max_size=40,
)


def build_metrics(specs):
    sim = Simulator()
    sim.schedule(100.0, lambda: None)
    sim.run()
    metrics = Metrics(sim)
    for height, (time, txs) in enumerate(sorted(specs), start=1):
        block = Block.create(
            height, 0, GENESIS_HASH, 0, txs * 512, txs, max(0.0, time - 0.5),
            salt=height,
        )
        metrics.on_commit(0, block, time)
    return metrics


@settings(max_examples=50, deadline=None)
@given(commit_specs)
def test_bucket_series_sums_to_total(specs):
    """The time series partitions the committed transactions exactly."""
    metrics = build_metrics(specs)
    series = metrics.timeseries_txs(bucket=2.5, end=100.0)
    total_from_series = sum(rate * 2.5 for _, rate in series)
    total_txs = sum(txs for _, txs in specs)
    assert abs(total_from_series - total_txs) < 1e-6


@settings(max_examples=50, deadline=None)
@given(commit_specs)
def test_window_throughput_consistent_with_events(specs):
    metrics = build_metrics(specs)
    full = metrics.throughput_txs(0.0, 100.0) * 100.0
    assert abs(full - sum(t for _, t in specs)) < 1e-6
    # splitting the window partitions throughput mass
    first = metrics.throughput_txs(0.0, 50.0) * 50.0
    second = metrics.throughput_txs(50.0, 100.0) * 50.0
    boundary = sum(txs for time, txs in specs if abs(time - 50.0) < 1e-12)
    assert first + second >= full - 1e-6
    assert first + second <= full + boundary + 1e-6


@settings(max_examples=50, deadline=None)
@given(commit_specs)
def test_latency_stats_ordering(specs):
    metrics = build_metrics(specs)
    stats = metrics.latency_stats()
    assert 0 <= stats["p50"] <= stats["p95"] <= stats["max"]
    assert stats["mean"] <= stats["max"]
    assert stats["count"] == len(specs)


@settings(max_examples=30, deadline=None)
@given(commit_specs)
def test_records_heights_unique_and_sorted(specs):
    metrics = build_metrics(specs)
    records = metrics.records()
    heights = [r.height for r in records]
    assert heights == sorted(set(heights))
