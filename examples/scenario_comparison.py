#!/usr/bin/env python
"""Compare Kauri against HotStuff across the paper's deployment scenarios.

A miniature of Figure 6 (§7.4): all four systems in the national, regional
and global scenarios at N=31, printing throughput and latency side by
side. Expect Kauri on top everywhere, with the gap widening as bandwidth
shrinks; expect Kauri-np (trees without pipelining) to beat HotStuff only
when bandwidth is scarce.

Run:  python examples/scenario_comparison.py      (~1 minute)
"""

from repro import run_experiment
from repro.analysis import adaptive_duration, format_table
from repro.config import KB, SCENARIOS

MODES = ("kauri", "kauri-np", "hotstuff-secp", "hotstuff-bls")
N = 31


def main() -> None:
    rows = []
    for scenario, params in SCENARIOS.items():
        for mode in MODES:
            duration = adaptive_duration(
                mode, N, params, 250 * KB, instances=6.0, scale=0.5
            )
            result = run_experiment(
                mode=mode,
                scenario=scenario,
                n=N,
                duration=duration,
                max_commits=60,
                seed=0,
            )
            rows.append(
                (
                    scenario,
                    mode,
                    round(result.throughput_txs, 0),
                    round(result.latency["p50"] * 1000, 0),
                    "yes" if result.cpu_saturated else "",
                )
            )
    print(
        format_table(
            ("Scenario", "System", "Throughput (tx/s)", "p50 latency (ms)", "CPU-bound"),
            rows,
            title=f"Scenario comparison, N={N}, 250 KB blocks",
        )
    )
    kauri_global = next(r[2] for r in rows if r[:2] == ("global", "kauri"))
    hotstuff_global = next(r[2] for r in rows if r[:2] == ("global", "hotstuff-secp"))
    print(
        f"\nKauri / HotStuff-secp throughput in the global scenario: "
        f"{kauri_global / hotstuff_global:.1f}x"
    )


if __name__ == "__main__":
    main()
