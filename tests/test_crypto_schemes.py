"""Unit tests for the secp and bls schemes: sizes, costs, verification."""

import pytest

from repro.crypto import (
    BLS_COSTS,
    SECP_COSTS,
    BlsScheme,
    CryptoCostModel,
    Pki,
    SecpScheme,
    make_scheme,
)
from repro.crypto.costs import bitmap_size
from repro.errors import ConfigError, CryptoError


@pytest.fixture
def pki():
    return Pki(n=10)


def collect(scheme, pki, value, signers):
    coll = scheme.empty()
    for node in signers:
        coll = coll | scheme.new(pki.keypair(node), value)
    return coll


class TestMakeScheme:
    def test_factory(self, pki):
        assert isinstance(make_scheme("secp", pki), SecpScheme)
        assert isinstance(make_scheme("bls", pki), BlsScheme)
        with pytest.raises(CryptoError):
            make_scheme("rsa", pki)

    def test_names(self, pki):
        assert make_scheme("secp", pki).name == "secp256k1"
        assert make_scheme("bls", pki).name == "bls"


class TestQuorumSemantics:
    @pytest.mark.parametrize("kind", ["secp", "bls"])
    def test_threshold_reached(self, pki, kind):
        scheme = make_scheme(kind, pki)
        coll = collect(scheme, pki, "block", range(7))
        assert coll.has("block", 7)
        assert not coll.has("block", 8)
        assert coll.signers_for("block") == frozenset(range(7))
        assert coll.cardinality() == 7

    @pytest.mark.parametrize("kind", ["secp", "bls"])
    def test_mixed_values_counted_separately(self, pki, kind):
        scheme = make_scheme(kind, pki)
        coll = collect(scheme, pki, "a", [0, 1, 2]) | collect(scheme, pki, "b", [3, 4])
        assert coll.signers_for("a") == frozenset({0, 1, 2})
        assert coll.signers_for("b") == frozenset({3, 4})
        assert coll.values() == frozenset({"a", "b"})
        assert coll.cardinality() == 5

    @pytest.mark.parametrize("kind", ["secp", "bls"])
    def test_double_signing_counts_once(self, pki, kind):
        scheme = make_scheme(kind, pki)
        kp = pki.keypair(0)
        coll = scheme.new(kp, "v") | scheme.new(kp, "v")
        assert coll.cardinality() == 1
        assert coll.count_for("v") == 1

    @pytest.mark.parametrize("kind", ["secp", "bls"])
    def test_cross_scheme_combine_rejected(self, pki, kind):
        this = make_scheme(kind, pki)
        other = make_scheme("bls" if kind == "secp" else "secp", pki)
        with pytest.raises(CryptoError):
            this.new(pki.keypair(0), "v").combine(other.new(pki.keypair(1), "v"))

    @pytest.mark.parametrize("kind", ["secp", "bls"])
    def test_cross_pki_combine_rejected(self, pki, kind):
        scheme_a = make_scheme(kind, pki)
        other_pki = Pki(n=10, seed=99)
        scheme_b = make_scheme(kind, other_pki)
        with pytest.raises(CryptoError):
            scheme_a.new(pki.keypair(0), "v") | scheme_b.new(other_pki.keypair(1), "v")


class TestWireSizes:
    def test_secp_grows_linearly(self, pki):
        """§1: the leader relays the full set of signatures."""
        scheme = make_scheme("secp", pki)
        small = collect(scheme, pki, "v", range(2))
        large = collect(scheme, pki, "v", range(8))
        assert large.wire_size() - small.wire_size() == 6 * SECP_COSTS.signature_size

    def test_bls_constant_per_value(self, pki):
        """§3.3.2: aggregates have small O(1) size."""
        scheme = make_scheme("bls", pki)
        small = collect(scheme, pki, "v", range(2))
        large = collect(scheme, pki, "v", range(8))
        assert small.wire_size() == large.wire_size()
        expected = 8 + BLS_COSTS.aggregate_base_size + bitmap_size(10)
        assert large.wire_size() == expected

    def test_bls_smaller_than_secp_for_quorums(self):
        """Why HotStuff-bls beats HotStuff-secp on constrained links (§7.4)."""
        pki = Pki(n=100)
        secp = make_scheme("secp", pki)
        bls = make_scheme("bls", pki)
        quorum = range(67)
        assert (
            collect(bls, pki, "v", quorum).wire_size()
            < collect(secp, pki, "v", quorum).wire_size() / 10
        )


class TestCpuCosts:
    def test_secp_quorum_verification_linear(self, pki):
        scheme = make_scheme("secp", pki)
        c3 = collect(scheme, pki, "v", range(3))
        c9 = collect(scheme, pki, "v", range(9))
        assert scheme.cost_verify_collection(c9) == pytest.approx(
            3 * scheme.cost_verify_collection(c3)
        )

    def test_bls_quorum_verification_constant(self, pki):
        """§3.3.2: complexity of verifying an aggregated vote is O(1)."""
        scheme = make_scheme("bls", pki)
        c3 = collect(scheme, pki, "v", range(3))
        c9 = collect(scheme, pki, "v", range(9))
        assert scheme.cost_verify_collection(c3) == scheme.cost_verify_collection(c9)

    def test_combine_cost_scales_with_fanout(self, pki):
        """§3.3.2: burden on each internal node is O(m)."""
        scheme = make_scheme("bls", pki)
        assert scheme.cost_combine(10) == pytest.approx(10 * BLS_COSTS.combine_per_input_time)
        assert scheme.cost_combine(0) == 0.0

    def test_bls_ops_slower_than_secp(self):
        """The per-op tradeoff that lets secp win at high bandwidth (§7.4)."""
        assert BLS_COSTS.sign_time > SECP_COSTS.sign_time
        assert BLS_COSTS.verify_time > SECP_COSTS.verify_time

    def test_cost_verify_share(self, pki):
        assert make_scheme("secp", pki).cost_verify_share() == SECP_COSTS.verify_time
        assert make_scheme("bls", pki).cost_verify_share() == BLS_COSTS.aggregate_verify_time


class TestCostModel:
    def test_scaled(self):
        fast = BLS_COSTS.scaled(0.5)
        assert fast.sign_time == pytest.approx(BLS_COSTS.sign_time / 2)
        assert fast.signature_size == BLS_COSTS.signature_size

    def test_validation(self):
        with pytest.raises(ConfigError):
            CryptoCostModel("bad", -1, 0, 0, 0, 64, 0, False)
        with pytest.raises(ConfigError):
            CryptoCostModel("bad", 0, 0, 0, 0, 0, 0, False)
        with pytest.raises(ConfigError):
            BLS_COSTS.scaled(-1)

    def test_bitmap_size(self):
        assert bitmap_size(1) == 1
        assert bitmap_size(8) == 1
        assert bitmap_size(9) == 2
        assert bitmap_size(400) == 50
