"""Liveness-attack and fuzzing tests: starvation leaders, QC tampering,
and randomized crash schedules."""

import random

import pytest

from repro import Cluster
from repro.consensus.byzantine import QcTamperingNode, QcWithholdingLeaderNode


class TestQcWithholdingLeader:
    def test_starvation_leader_is_voted_out(self):
        """A leader that proposes but never releases QCs must not keep the
        system hostage: no QC progress -> pacemaker fires -> view change."""
        cluster = Cluster(n=13, mode="kauri", scenario="national")
        root = cluster.policy.leader_of(0)
        attacked = Cluster(
            n=13,
            mode="kauri",
            scenario="national",
            byzantine={root: QcWithholdingLeaderNode},
        )
        attacked.start()
        attacked.run(duration=60.0)
        attacked.check_agreement()
        assert attacked.metrics.max_view >= 1
        assert attacked.metrics.committed_blocks > 0

    def test_withholding_replica_only_hurts_its_subtree(self):
        """The same behaviour in a non-root internal position drops QCs for
        its subtree; the rest of the system keeps committing."""
        cluster = Cluster(n=13, mode="kauri", scenario="national")
        tree0 = cluster.policy.configuration(0)
        internal = next(n for n in tree0.internal_nodes if n != tree0.root)
        attacked = Cluster(
            n=13,
            mode="kauri",
            scenario="national",
            byzantine={internal: QcWithholdingLeaderNode},
        )
        attacked.start()
        attacked.run(duration=30.0)
        attacked.check_agreement()
        assert attacked.metrics.committed_blocks > 0


class TestQcTampering:
    def test_tampered_qcs_never_verify(self):
        """A forged QC binds signatures to the wrong value; descendants must
        reject it and safety must hold."""
        cluster = Cluster(n=13, mode="kauri", scenario="national")
        tree0 = cluster.policy.configuration(0)
        internal = next(n for n in tree0.internal_nodes if n != tree0.root)
        attacked = Cluster(
            n=13,
            mode="kauri",
            scenario="national",
            byzantine={internal: QcTamperingNode},
        )
        attacked.start()
        attacked.run(duration=60.0)
        attacked.check_agreement()
        assert attacked.metrics.committed_blocks > 0
        # no correct replica ever committed a forged hash
        for node in attacked.nodes:
            if node.node_id == internal:
                continue
            for block in node.store.commit_log:
                assert not block.hash.startswith("forged-")


class TestCrashScheduleFuzz:
    """Randomized crash schedules must never violate agreement."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_crashes_preserve_agreement(self, seed):
        rng = random.Random(seed)
        n = 13
        f = 4
        cluster = Cluster(n=n, mode="kauri", scenario="national", seed=seed)
        victims = rng.sample(range(n), rng.randint(1, f))
        for victim in victims:
            cluster.crash_at(victim, rng.uniform(1.0, 20.0))
        cluster.start()
        cluster.run(duration=90.0)
        cluster.check_agreement()
        survivors = [x for x in cluster.nodes if x.node_id not in victims]
        assert max(node.committed_height for node in survivors) > 0

    @pytest.mark.parametrize("seed", range(3))
    def test_random_crashes_hotstuff(self, seed):
        rng = random.Random(100 + seed)
        cluster = Cluster(n=13, mode="hotstuff-bls", scenario="national", seed=seed)
        victims = rng.sample(range(13), rng.randint(1, 4))
        for victim in victims:
            cluster.crash_at(victim, rng.uniform(1.0, 10.0))
        cluster.start()
        cluster.run(duration=120.0)
        cluster.check_agreement()
        survivors = [x for x in cluster.nodes if x.node_id not in victims]
        assert max(node.committed_height for node in survivors) > 0

    def test_staggered_leader_crashes_during_recovery(self):
        """Crash the next leader shortly after each view change begins."""
        cluster = Cluster(n=13, mode="kauri", scenario="national", seed=5)
        cluster.crash_at(cluster.policy.leader_of(0), 5.0)
        cluster.crash_at(cluster.policy.leader_of(1), 7.0)
        cluster.start()
        cluster.run(duration=60.0)
        cluster.check_agreement()
        assert cluster.metrics.commit_gap_after(8.0) is not None
